#!/usr/bin/env bash
# Measures the incremental experiment pipeline and records the results to
# BENCH_pipeline.json at the repo root: wall time for a cold run (empty
# cache), a warm rerun (everything cached), and an incremental rerun after
# editing a single model's training config (only that model's train/eval and
# the table should recompute). The hit/miss counts come from the CLI's own
# `pipeline summary:` line, so the JSON records what the scheduler actually
# did, not what the script assumed.
#
# Usage: tools/run_pipeline_bench.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build_dir="$1"
  shift
fi

source "$repo_root/tools/bench_provenance.sh"
bench_ensure_build "$repo_root" "$build_dir" musenet

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cli="$build_dir/tools/musenet"

# Smoke scale keeps the cold run in CI territory while still exercising a
# real roster: a closed-form baseline, a trained baseline, and MUSE-Net.
models="HistoricalAverage,RNN,MUSE-Net"
base_override="*:epochs=1"

run_pipeline() {  # run_pipeline <tag> <overrides>
  local tag="$1" overrides="$2"
  local t0 t1
  t0="$(date +%s%N)"
  MUSE_BENCH_SCALE=smoke MUSE_BENCH_RESULTS_DIR="$workdir/results" \
    "$cli" pipeline --datasets bike --models "$models" \
    --override "$overrides" --cache-dir "$workdir/cache" --explain 1 \
    > "$workdir/$tag.log"
  t1="$(date +%s%N)"
  echo $(((t1 - t0) / 1000000)) > "$workdir/$tag.ms"
  echo "  $tag: $(cat "$workdir/$tag.ms") ms" \
       "($(grep 'pipeline summary:' "$workdir/$tag.log" | tail -1))"
}

echo "Running pipeline bench (smoke scale, models: $models)"
run_pipeline cold "$base_override"
run_pipeline warm "$base_override"
# Edit one model's training config: only RNN's train/eval and the table
# downstream of them should miss.
run_pipeline incremental "$base_override,RNN:lr=0.002"

provenance="$(bench_provenance_json "$repo_root" "$build_dir")"

python3 - "$workdir" "$repo_root/BENCH_pipeline.json" "$provenance" \
  "$models" <<'PY'
import json, os, re, sys

workdir, out_path, provenance = sys.argv[1], sys.argv[2], json.loads(sys.argv[3])
models = sys.argv[4]

runs = {}
for tag in ("cold", "warm", "incremental"):
    ms = int(open(os.path.join(workdir, tag + ".ms")).read())
    log = open(os.path.join(workdir, tag + ".log")).read()
    m = re.findall(r"pipeline summary: (.*)", log)
    summary = dict(kv.split("=", 1) for kv in m[-1].split()) if m else {}
    runs[tag] = {
        "wall_ms": ms,
        "stages": int(summary.get("stages", 0)),
        "hits": int(summary.get("hits", 0)),
        "misses": int(summary.get("misses", 0)),
    }

doc = {
    "scenario": {
        "scale": "smoke",
        "datasets": ["bike"],
        "models": models.split(","),
        "incremental_edit": "RNN:lr=0.002 (single-model training override)",
    },
    "provenance": provenance,
    "runs": runs,
    "warm_speedup": round(runs["cold"]["wall_ms"]
                          / max(1, runs["warm"]["wall_ms"]), 2),
    "incremental_speedup": round(runs["cold"]["wall_ms"]
                                 / max(1, runs["incremental"]["wall_ms"]), 2),
}
json.dump(doc, open(out_path, "w"), indent=2)
print(f"Wrote {out_path}")
print(f"  cold {runs['cold']['wall_ms']} ms, warm {runs['warm']['wall_ms']} ms"
      f" ({doc['warm_speedup']}x), incremental"
      f" {runs['incremental']['wall_ms']} ms ({doc['incremental_speedup']}x,"
      f" {runs['incremental']['misses']}/{runs['incremental']['stages']}"
      " stages recomputed)")
if runs["warm"]["misses"] != 0:
    sys.exit("warm rerun had cache misses — pipeline cache is not stable")
if doc["warm_speedup"] < 10:
    sys.exit(f"warm speedup {doc['warm_speedup']}x is below the 10x floor")
PY
