#!/usr/bin/env bash
# Records the multi-tenant serving layer's behavior under load to
# BENCH_serving.json at the repo root: the calibrated sustainable rate, an
# uncontended latency baseline, and p50/p99 + shed rate at 1x/4x/8x the
# sustainable load — the evidence that overload degrades into shedding with
# correct serve.* accounting while admitted-request p99 stays within the 5x
# budget of the uncontended baseline.
#
# The script simulates a dataset and trains a short checkpoint in a temp
# directory (one epoch — serving cost does not depend on weight quality),
# then drives `musenet serve --models ... --bench-out` and stamps the result
# with build provenance.
#
# Usage: tools/run_serving_bench.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build_dir="$1"
  shift
fi

source "$repo_root/tools/bench_provenance.sh"
bench_ensure_build "$repo_root" "$build_dir" musenet

workdir="$(mktemp -d)"
trap 'rm -f "$workdir"/*.json "$workdir"/flows.bin "$workdir"/model.ckpt; rmdir "$workdir"' EXIT
cli="$build_dir/tools/musenet"

# Taxi preset: the 10x20 grid keeps one forward around a millisecond, so a
# few seconds of closed-loop saturation resolves the sustainable rate and
# the overload phases produce thousands of admission decisions each.
"$cli" simulate --dataset taxi --out "$workdir/flows.bin" \
  --days 40 --seed 7 > /dev/null
"$cli" train --flows "$workdir/flows.bin" --ckpt "$workdir/model.ckpt" \
  --epochs 1 --d 8 --k 16 --verbose 0 > /dev/null

"$cli" serve --models "taxi=$workdir/model.ckpt" \
  --flows "$workdir/flows.bin" --d 8 --k 16 \
  --bench-out "$workdir/serving.json" \
  --calib-s "${MUSE_SERVE_CALIB_S:-2}" \
  --phase-s "${MUSE_SERVE_PHASE_S:-3}" \
  --load-mults 1,4,8

# Gate against the committed baseline before overwriting it: a p50 more
# than MUSE_BENCH_TOL (fraction, default 0.25) above the committed number
# fails here instead of silently becoming the new baseline. Set
# MUSE_BENCH_TOL higher on noisy machines.
if [[ -f "$repo_root/BENCH_serving.json" ]]; then
  python3 "$repo_root/tools/check_bench_regression.py" \
    --committed "$repo_root/BENCH_serving.json" \
    --fresh "$workdir/serving.json" \
    --tolerance "${MUSE_BENCH_TOL:-0.25}"
fi

provenance="$(bench_provenance_json "$repo_root" "$build_dir")"

python3 - "$workdir/serving.json" "$repo_root/BENCH_serving.json" \
  "$(nproc)" "$provenance" <<'PY'
import json, sys

bench = json.load(open(sys.argv[1]))
out_path, cores, provenance = sys.argv[2], int(sys.argv[3]), json.loads(sys.argv[4])

# Counters must reconcile or the shed/latency columns mean nothing.
c = bench["counters"]
assert c["requests"] == c["admitted"] + c["shed"], c
assert c["admitted"] == c["completed"] + c["timed_out"], c

doc = {
    "model": "MUSE-Net (d=8, k=16, taxi 10x20 grid)",
    "hardware_cores": cores,
    "provenance": provenance,
}
doc.update(bench)

# The acceptance bound: at every overload multiple, completed-request p99
# stays within 5x of the uncontended p99 (load is shed, not queued forever).
for run in doc["runs"]:
    assert run["p99_vs_uncontended"] <= 5.0 or run["completed"] == 0, run

json.dump(doc, open(out_path, "w"), indent=2)
print(f"wrote {out_path}")
PY
