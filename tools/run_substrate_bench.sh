#!/usr/bin/env bash
# Builds bench_micro_substrate and dumps its results to BENCH_substrate.json
# at the repo root, seeding the performance trajectory across PRs.
#
# Usage: tools/run_substrate_bench.sh [build_dir] [extra benchmark flags...]
# e.g.   tools/run_substrate_bench.sh build --benchmark_filter='BM_MatMul.*'
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build_dir="$1"
  shift
fi

source "$repo_root/tools/bench_provenance.sh"
bench_ensure_build "$repo_root" "$build_dir" bench_micro_substrate

"$build_dir/bench/bench_micro_substrate" \
  --benchmark_out="$repo_root/BENCH_substrate.json" \
  --benchmark_out_format=json \
  "$@"

# Stamp provenance into the google-benchmark JSON so the record identifies
# the commit, compiler, flags, and GEMM ISA tier it was measured at.
provenance="$(bench_provenance_json "$repo_root" "$build_dir")"
python3 - "$repo_root/BENCH_substrate.json" "$provenance" <<'PY'
import json, sys
path = sys.argv[1]
doc = json.load(open(path))
doc["provenance"] = json.loads(sys.argv[2])
json.dump(doc, open(path, "w"), indent=2)
PY

echo "Wrote $repo_root/BENCH_substrate.json"
