#!/usr/bin/env bash
# Records the graph-free inference engine's performance to
# BENCH_inference.json at the repo root: single-stream latency (p50/p99) for
# the engine vs the autograd Predict path at batch 1, and batched planned
# throughput at several thread counts, so both the latency claim and the
# thread-scaling claim stay auditable.
#
# The script simulates a dataset and trains a short checkpoint in a temp
# directory (one epoch — inference cost does not depend on weight quality),
# then drives `musenet bench-infer` across the (batch, threads) grid.
#
# Usage: tools/run_inference_bench.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build_dir="$1"
  shift
fi

source "$repo_root/tools/bench_provenance.sh"
bench_ensure_build "$repo_root" "$build_dir" musenet

workdir="$(mktemp -d)"
trap 'rm -f "$workdir"/*.json "$workdir"/flows.bin "$workdir"/model.ckpt; rmdir "$workdir"' EXIT
cli="$build_dir/tools/musenet"

# BJ-preset flows at a 16x16 grid: serving-scale work per request (the tiny
# default grids finish a forward in well under a millisecond, where timer
# noise and fixed per-call overheads swamp the comparison).
"$cli" simulate --dataset bj --grid-h 16 --grid-w 16 \
  --out "$workdir/flows.bin" --days 70 --seed 7 > /dev/null
"$cli" train --flows "$workdir/flows.bin" --ckpt "$workdir/model.ckpt" \
  --epochs 1 --d 12 --k 32 --verbose 0 > /dev/null

run_point() {  # run_point <threads> <batch> <iters> <tag> [extra flags...]
  local threads="$1" batch="$2" iters="$3" tag="$4"
  shift 4
  MUSENET_NUM_THREADS="$threads" "$cli" bench-infer \
    --flows "$workdir/flows.bin" --ckpt "$workdir/model.ckpt" \
    --d 12 --k 32 --iters "$iters" --batch "$batch" \
    --out "$workdir/$tag.json" "$@" > /dev/null
}

run_point 1 1 200 single_t1
run_point 2 1 200 single_t2
run_point 4 1 200 single_t4
run_point 1 8 50 batched_t1
run_point 2 8 50 batched_t2
run_point 4 8 50 batched_t4
# Plan-time specialized replay (BN folding + tiled weight repacking) at each
# precision, single-stream batch 1 — the latency-critical serving shape.
run_point 1 1 200 spec_fp32 --specialize 1 --precision fp32
run_point 1 1 200 spec_int8 --precision int8
run_point 1 1 200 spec_bf16 --precision bf16

provenance="$(bench_provenance_json "$repo_root" "$build_dir")"

python3 - "$workdir" "$repo_root/BENCH_inference.json" "$(nproc)" \
  "$provenance" <<'PY'
import json, os, sys

workdir, out_path = sys.argv[1], sys.argv[2]
hardware_cores = int(sys.argv[3])
provenance = json.loads(sys.argv[4])
points = {}
for tag in ["single_t1", "single_t2", "single_t4",
            "batched_t1", "batched_t2", "batched_t4",
            "spec_fp32", "spec_int8", "spec_bf16"]:
    points[tag] = json.load(open(os.path.join(workdir, tag + ".json")))

single = points["single_t1"]
doc = {
    "model": "MUSE-Net (d=12, k=32, 16x16 grid)",
    "hardware_cores": hardware_cores,
    "provenance": provenance,
    "single_stream_batch1": {
        "autograd_ms": single["autograd_ms"],
        "engine_ms": single["engine_ms"],
        "speedup_p50": single["speedup_p50"],
    },
    "single_stream_by_threads": {
        t: {"engine_p50_ms": points[f"single_t{t}"]["engine_ms"]["p50"],
            "speedup_p50": points[f"single_t{t}"]["speedup_p50"]}
        for t in (1, 2, 4)
    },
    "batched_throughput_by_threads": {
        t: points[f"batched_t{t}"]["engine_throughput_rps"]
        for t in (1, 2, 4)
    },
}
doc["batched_scaling_t4_over_t1"] = round(
    doc["batched_throughput_by_threads"][4]
    / doc["batched_throughput_by_threads"][1], 3)
# Plan-time specialized engines vs the unspecialized fp32 engine, single
# stream at batch 1 and one thread. speedup_vs_fp32_engine compares against
# this script's own single_t1 column (same process shape, different run) so
# the ratio is between steady-state replays, not against the one-off number
# the specialized process happened to measure for its base engine.
fp32_p50 = doc["single_stream_batch1"]["engine_ms"]["p50"]
doc["specialized_batch1"] = {}
for prec in ("fp32", "int8", "bf16"):
    p = points[f"spec_{prec}"]
    spec = p["specialized"]
    doc["specialized_batch1"][prec] = {
        "engine_p50_ms": spec["engine_ms"]["p50"],
        "engine_p99_ms": spec["engine_ms"]["p99"],
        "speedup_vs_fp32_engine": round(
            fp32_p50 / spec["engine_ms"]["p50"], 3),
        "spec_active": spec["spec_active"],
        "max_abs_delta": spec["max_abs_delta"],
        "mae_fp32": spec["mae_fp32"],
        "mae_spec": spec["mae_spec"],
        "mae_delta": spec["mae_delta"],
    }
# Batched runs shard the batch across lanes (one pool dispatch per
# inference), so throughput tracks min(MUSENET_NUM_THREADS, physical
# cores). Record the core count so the scaling column stays interpretable:
# on a single-core host the 2- and 4-thread lanes time-slice one CPU and
# the ratio is expectedly ~1.0.
doc["note"] = (
    "batched runs use lane sharding; scaling saturates at "
    f"{hardware_cores} physical core(s) on this host")
json.dump(doc, open(out_path, "w"), indent=2)
print(f"Wrote {out_path}")
print(f"  single-stream batch-1 speedup (engine vs autograd Predict): "
      f"{doc['single_stream_batch1']['speedup_p50']}x")
for t in (1, 2, 4):
    print(f"  batched (batch=8) throughput @ {t} threads: "
          f"{doc['batched_throughput_by_threads'][t]:.1f} samples/s")
print(f"  t4/t1 batched scaling: {doc['batched_scaling_t4_over_t1']}x "
      f"(host has {hardware_cores} core(s))")
for prec in ("fp32", "int8", "bf16"):
    s = doc["specialized_batch1"][prec]
    print(f"  specialized {prec}: p50 {s['engine_p50_ms']:.3f} ms "
          f"({s['speedup_vs_fp32_engine']}x vs fp32 engine, "
          f"active={s['spec_active']}, max_abs_delta={s['max_abs_delta']:g}, "
          f"mae_delta={s['mae_delta']:g})")
PY
