#!/usr/bin/env bash
# Builds bench_training_step and records end-to-end training-step throughput
# to BENCH_training.json at the repo root. The file also carries the fixed
# pre-PR baseline (measured on the same machine immediately before the pooled
# storage + fused training path landed) and the speedup against it, so the
# performance claim stays auditable.
#
# Usage: tools/run_training_bench.sh [build_dir] [extra benchmark flags...]
# e.g.   tools/run_training_bench.sh build --benchmark_min_time=5
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
if [[ $# -gt 0 && "$1" != -* ]]; then
  build_dir="$1"
  shift
fi

source "$repo_root/tools/bench_provenance.sh"
bench_ensure_build "$repo_root" "$build_dir" bench_training_step

raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$build_dir/bench/bench_training_step" \
  --benchmark_out="$raw_json" \
  --benchmark_out_format=json \
  --benchmark_min_time=2 \
  "$@"

provenance="$(bench_provenance_json "$repo_root" "$build_dir")"

fresh_json="$(mktemp)"
trap 'rm -f "$raw_json" "$fresh_json"' EXIT

python3 - "$raw_json" "$fresh_json" "$provenance" <<'PY'
import json, sys

# Pre-PR throughput (items/s), measured with this same benchmark at the
# commit before the pooled storage + fused training path changes.
BASELINE = {
    "BM_MuseNetTrainStep/8": 79.06,
    "BM_MuseNetTrainStep/32": 101.19,
    "BM_DeepStnTrainStep/8": 209.49,
    "BM_DeepStnTrainStep/32": 233.27,
}

raw = json.load(open(sys.argv[1]))
out = {"context": raw["context"],
       "provenance": json.loads(sys.argv[3]),
       "benchmarks": []}
for bench in raw["benchmarks"]:
    entry = dict(bench)
    base = BASELINE.get(bench["name"])
    if base is not None:
        entry["baseline_items_per_second"] = base
        entry["speedup_vs_baseline"] = round(
            bench["items_per_second"] / base, 3)
    out["benchmarks"].append(entry)

# Data-parallel scaling headline: optimizer steps/s of the sharded step
# (fixed 4 shards, batch 32) at each worker count, and the speedup against
# the fused single-stream step measured in the same run. On hosts with
# fewer cores than workers the extra workers time-slice, so speedups there
# reflect scheduling overhead, not scaling (see provenance.hardware_cores).
single_stream = next(
    (b["items_per_second"] for b in raw["benchmarks"]
     if b["name"] == "BM_MuseNetTrainStep/32"), None)
by_workers = {}
for bench in raw["benchmarks"]:
    name = bench["name"]
    if not name.startswith("BM_MuseNetTrainStepSharded/"):
        continue
    batch, workers = (int(part) for part in name.split("/")[1:3])
    steps = bench["items_per_second"] / batch
    entry = {"steps_per_sec": round(steps, 3)}
    if single_stream:
        entry["speedup_vs_single_stream"] = round(
            steps / (single_stream / batch), 3)
    by_workers[str(workers)] = entry
if by_workers:
    out["steps_per_sec_by_workers"] = by_workers

json.dump(out, open(sys.argv[2], "w"), indent=2)
for b in out["benchmarks"]:
    if "speedup_vs_baseline" in b:
        print(f"  {b['name']:28s} {b['items_per_second']:8.2f} items/s "
              f"({b['speedup_vs_baseline']}x vs baseline)")
for workers, entry in sorted(by_workers.items(), key=lambda kv: int(kv[0])):
    line = f"  sharded workers={workers:2s} {entry['steps_per_sec']:8.2f} steps/s"
    if "speedup_vs_single_stream" in entry:
        line += f" ({entry['speedup_vs_single_stream']}x vs single-stream)"
    print(line)
PY

# Gate against the committed record before overwriting it, exactly like the
# serving bench: a regressed run must fail here, not become the new baseline.
if [[ -f "$repo_root/BENCH_training.json" ]]; then
  python3 "$repo_root/tools/check_bench_regression.py" \
    --committed "$repo_root/BENCH_training.json" \
    --fresh "$fresh_json" \
    --tolerance "${MUSE_BENCH_TOL:-0.25}"
fi

mv "$fresh_json" "$repo_root/BENCH_training.json"
trap 'rm -f "$raw_json"' EXIT
echo "Wrote $repo_root/BENCH_training.json"
