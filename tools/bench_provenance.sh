#!/usr/bin/env bash
# Shared helpers for the run_*_bench.sh scripts: a provenance stamp (JSON
# identifying exactly what was measured — git SHA, compiler + the flags the
# build directory was configured with, and the SIMD tier the GEMM
# micro-kernel dispatches to on this host) and the configure-if-absent build
# step every script needs before it can drive a binary. Sourced, not
# executed.
#
#   source "$repo_root/tools/bench_provenance.sh"
#   bench_ensure_build "$repo_root" "$build_dir" musenet
#   prov="$(bench_provenance_json "$repo_root" "$build_dir")"

bench_ensure_build() {  # bench_ensure_build <repo_root> <build_dir> <target...>
  local root="$1" bdir="$2"
  shift 2
  if [[ ! -d "$bdir" ]]; then
    cmake -B "$bdir" -S "$root"
  fi
  local target
  for target in "$@"; do
    cmake --build "$bdir" --target "$target" -j"$(nproc)"
  done
}

bench_provenance_json() {  # bench_provenance_json <repo_root> <build_dir>
  local root="$1" bdir="$2"
  local sha cache cxx compiler flags native isa
  sha="$(git -C "$root" rev-parse HEAD 2>/dev/null || echo unknown)"
  cache="$bdir/CMakeCache.txt"
  cxx="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$cache" 2>/dev/null | head -1)"
  compiler="$("${cxx:-c++}" --version 2>/dev/null | head -1 || true)"
  [[ -n "$compiler" ]] || compiler=unknown
  flags="$(sed -n 's/^CMAKE_CXX_FLAGS_RELEASE:[^=]*=//p' "$cache" 2>/dev/null | head -1)"
  native="$(sed -n 's/^MUSENET_NATIVE_ARCH:[^=]*=//p' "$cache" 2>/dev/null | head -1)"
  if [[ "$native" == "ON" ]]; then
    flags="${flags:+$flags }-march=native"
  fi
  # ISA tier of the benchmarked binary. The GEMM micro-kernel selects its
  # tier at compile time (src/tensor/gemm.cc #if __AVX512F__ / __AVX2__), so
  # the host CPU only matters when the build targets the host
  # (-march=native or explicit -mavx* flags); otherwise the binary is the
  # portable scalar kernel regardless of what the CPU supports.
  if [[ "$native" == "ON" || "$flags" == *-march=native* ]]; then
    if grep -qw avx512f /proc/cpuinfo 2>/dev/null; then
      isa=avx512
    elif grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
      isa=avx2
    else
      isa=scalar
    fi
  elif [[ "$flags" == *avx512f* ]]; then
    isa=avx512
  elif [[ "$flags" == *avx2* ]]; then
    isa=avx2
  else
    isa=scalar
  fi
  # hardware_cores pins the record to the parallel budget it was measured
  # under: scaling claims (steps_per_sec_by_workers) are only comparable
  # between hosts with the same core count.
  local cores
  cores="$(nproc 2>/dev/null || echo 1)"
  printf '{"git_sha": "%s", "compiler": "%s", "cxx_flags": "%s", "isa": "%s", "hardware_cores": %s}\n' \
    "$sha" "$compiler" "$flags" "$isa" "$cores"
}
