#!/usr/bin/env python3
"""Compares a fresh benchmark run against the committed BENCH_*.json.

Guards the committed performance claims: a code change that silently
regresses serving or inference latency should fail CI (or a local
tools/run_*_bench.sh) before the regressed numbers get committed as the
new baseline.

The tool auto-detects which benchmark document it was handed:

  serving   (BENCH_serving.json)   -- uncontended p50 and the per-overload
                                      p50s at every load multiple
  inference (BENCH_inference.json) -- single-stream engine/autograd p50 and
                                      the specialized per-precision p50s
  training  (BENCH_training.json)  -- per-benchmark training-step throughput
                                      (items/s), including the sharded
                                      data-parallel workers sweep

Only p50s are compared: p99s on shared hardware are too noisy to gate on.
A metric regresses when fresh > committed * (1 + tolerance); improvements
are reported but never fail. Throughput-like metrics (sustainable_rps)
regress in the opposite direction and are handled accordingly.

Usage:
  tools/check_bench_regression.py --committed BENCH_serving.json \
      --fresh /tmp/serving_fresh.json [--tolerance 0.25]

Exit status: 0 when every metric is within tolerance, 1 on any regression,
2 on malformed input. Stdlib only.
"""

import argparse
import json
import sys


def detect_kind(doc):
    if "runs" in doc and "uncontended" in doc:
        return "serving"
    if "single_stream_batch1" in doc:
        return "inference"
    if any("TrainStep" in bench.get("name", "")
           for bench in doc.get("benchmarks", [])):
        return "training"
    return None


def serving_metrics(doc):
    """Named p50-style metrics from a serving bench document."""
    metrics = {}
    unc = doc.get("uncontended", {})
    if "p50_ms" in unc:
        metrics["uncontended.p50_ms"] = (unc["p50_ms"], "latency")
    if "sustainable_rps" in doc:
        metrics["sustainable_rps"] = (doc["sustainable_rps"], "throughput")
    for run in doc.get("runs", []):
        mult = run.get("mult")
        if mult is None or run.get("completed", 0) == 0:
            continue
        metrics[f"overload_{mult:g}x.p50_ms"] = (run["p50_ms"], "latency")
    return metrics


def inference_metrics(doc):
    metrics = {}
    single = doc.get("single_stream_batch1", {})
    for lane in ("engine_ms", "autograd_ms"):
        if lane in single and "p50" in single[lane]:
            metrics[f"single_stream_batch1.{lane}.p50"] = (
                single[lane]["p50"], "latency")
    for prec, spec in doc.get("specialized_batch1", {}).items():
        if "engine_p50_ms" in spec:
            metrics[f"specialized_batch1.{prec}.engine_p50_ms"] = (
                spec["engine_p50_ms"], "latency")
    return metrics


def training_metrics(doc):
    """Per-benchmark throughput from a training bench document (google-
    benchmark JSON plus provenance). Single-run entries only; aggregates,
    when present, are too coarse to pair reliably across formats."""
    metrics = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if "items_per_second" in bench:
            metrics[f"{bench['name']}.items_per_second"] = (
                bench["items_per_second"], "throughput")
    return metrics


EXTRACTORS = {
    "serving": serving_metrics,
    "inference": inference_metrics,
    "training": training_metrics,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--committed", required=True,
                        help="baseline document (the committed BENCH_*.json)")
    parser.add_argument("--fresh", required=True,
                        help="freshly measured document of the same kind")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args()

    try:
        committed = json.load(open(args.committed))
        fresh = json.load(open(args.fresh))
    except (OSError, ValueError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    kind = detect_kind(committed)
    if kind is None or detect_kind(fresh) != kind:
        print("error: unrecognized or mismatched benchmark documents "
              f"(committed={detect_kind(committed)}, fresh={detect_kind(fresh)})",
              file=sys.stderr)
        return 2

    base = EXTRACTORS[kind](committed)
    new = EXTRACTORS[kind](fresh)

    regressions = []
    compared = 0
    for name, (base_value, direction) in sorted(base.items()):
        if name not in new or base_value <= 0:
            continue
        fresh_value = new[name][0]
        compared += 1
        if direction == "latency":
            ratio = fresh_value / base_value
            regressed = ratio > 1.0 + args.tolerance
        else:  # throughput: lower is worse
            ratio = base_value / fresh_value if fresh_value > 0 else float("inf")
            regressed = ratio > 1.0 + args.tolerance
        delta_pct = (fresh_value / base_value - 1.0) * 100.0
        status = "REGRESSED" if regressed else "ok"
        print(f"{status:>9}  {name}: committed={base_value:g} "
              f"fresh={fresh_value:g} ({delta_pct:+.1f}%)")
        if regressed:
            regressions.append((name, delta_pct))

    if compared == 0:
        print("error: no comparable metrics between the two documents",
              file=sys.stderr)
        return 2
    if regressions:
        names = ", ".join(f"{n} ({d:+.1f}%)" for n, d in regressions)
        print(f"FAIL: {len(regressions)} metric(s) beyond "
              f"+/-{args.tolerance:.0%} tolerance: {names}", file=sys.stderr)
        return 1
    print(f"PASS: {compared} {kind} metric(s) within "
          f"{args.tolerance:.0%} of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
