// Command-line front end to the MUSE-Net library.
//
//   musenet simulate --dataset taxi --out flows.bin [--days N] [--seed S]
//   musenet train    --flows flows.bin --ckpt model.ckpt [--epochs N] ...
//   musenet evaluate --flows flows.bin --ckpt model.ckpt
//   musenet predict  --flows flows.bin --ckpt model.ckpt --index I
//
// `simulate` writes a FlowSeries container; `train` fits MUSE-Net on it and
// writes a checkpoint; `evaluate` reports test metrics; `predict` prints one
// frame's forecast next to the ground truth. Model hyper-parameters at train
// and load time must match (the checkpoint loader validates shapes).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "data/dataset.h"
#include "eval/evaluate.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "sim/serialize.h"
#include "tensor/serialize.h"
#include "util/bench_config.h"
#include "util/string_util.h"

namespace musenet {
namespace {

/// Minimal --flag value parser; flags are position-independent.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (StartsWith(argv[i], "--")) {
        values_[argv[i] + 2] = argv[i + 1];
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

sim::DatasetId ParseDataset(const std::string& name) {
  if (name == "bike") return sim::DatasetId::kNycBike;
  if (name == "bj") return sim::DatasetId::kTaxiBj;
  return sim::DatasetId::kNycTaxi;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Simulate(const Args& args) {
  BenchScale scale = ResolveBenchScale();
  scale.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  if (args.GetInt("days", 0) > 0) scale.days = args.GetInt("days", 0);
  const sim::DatasetId id = ParseDataset(args.Get("dataset", "taxi"));
  const std::string out = args.Get("out", "flows.bin");

  sim::FlowSeries flows = sim::GenerateDatasetFlows(id, scale, scale.seed);
  const Status status = sim::SaveFlowSeries(out, flows);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s: %lld intervals, %lldx%lld grid, mean flow %.2f\n",
              out.c_str(), static_cast<long long>(flows.num_intervals()),
              static_cast<long long>(flows.grid().height),
              static_cast<long long>(flows.grid().width), flows.MeanValue());
  return 0;
}

struct LoadedDataset {
  data::TrafficDataset dataset;
  muse::MuseNetConfig config;
};

Result<LoadedDataset> LoadForModel(const Args& args) {
  MUSE_ASSIGN_OR_RETURN(sim::FlowSeries flows,
                        sim::LoadFlowSeries(args.Get("flows", "flows.bin")));
  data::DatasetOptions options;
  options.max_train_samples = args.GetInt("max_train_samples", 320);
  data::TrafficDataset dataset(std::move(flows), options);

  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = args.GetInt("d", 12);
  config.dist_dim = args.GetInt("k", 32);
  return LoadedDataset{std::move(dataset), config};
}

int Train(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  muse::MuseNet model(loaded->config,
                      static_cast<uint64_t>(args.GetInt("seed", 7)));

  eval::TrainConfig train;
  train.epochs = args.GetInt("epochs", 60);
  train.patience = args.GetInt("patience", 15);
  train.learning_rate = std::atof(args.Get("lr", "1e-3").c_str());
  train.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  train.verbose = args.GetInt("verbose", 1) != 0;

  // Fault tolerance: periodic crash-safe checkpoints, resume, and the
  // non-finite policy (see eval/train_loop.h).
  train.checkpoint_dir = args.Get("checkpoint-dir", "");
  train.checkpoint_every = args.GetInt("checkpoint-every", 1);
  train.keep_last = args.GetInt("keep-last", 3);
  train.resume = args.GetInt("resume", 0) != 0;

  // Observability (see DESIGN.md "Observability"): --run-log streams JSONL
  // training telemetry; --trace-out and --metrics-out write a Perfetto
  // trace and a metrics snapshot at the end of the run.
  train.run_log_path = args.Get("run-log", "");
  train.run_log_timings = args.GetInt("run-log-timings", 1) != 0;
  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!trace_out.empty()) obs::StartTracing();
  const std::string policy = args.Get("on-nonfinite", "abort");
  if (policy == "skip") {
    train.on_non_finite = eval::FailurePolicy::kSkipBatch;
  } else if (policy == "rollback") {
    train.on_non_finite = eval::FailurePolicy::kRollback;
  } else if (policy == "abort") {
    train.on_non_finite = eval::FailurePolicy::kAbort;
  } else {
    std::fprintf(stderr,
                 "error: --on-nonfinite must be abort, skip or rollback\n");
    return 2;
  }

  eval::TrainReport report;
  const Status trained = model.TrainWithReport(loaded->dataset, train,
                                               &report);
  if (!trace_out.empty()) {
    const Status wrote = obs::StopTracingAndWrite(trace_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote trace %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status wrote = obs::WriteMetricsSnapshot(metrics_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote metrics %s\n", metrics_out.c_str());
  }
  if (!trained.ok()) return Fail(trained);
  if (report.resumed_from_epoch >= 0) {
    std::printf("resumed from epoch %d\n", report.resumed_from_epoch);
  }
  // One-line run summary: everything the report knows, greppable in CI logs.
  std::printf(
      "train summary: epochs=%d steps=%lld best_val=%.6f "
      "skipped_batches=%d rollbacks=%d checkpoint_failures=%d\n",
      report.epochs_run, static_cast<long long>(report.steps),
      report.best_val, report.skipped_batches, report.rollbacks,
      report.checkpoint_write_failures);

  const std::string ckpt = args.Get("ckpt", "model.ckpt");
  const Status status = tensor::SaveTensors(ckpt, model.StateDict());
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s (%lld parameters)\n", ckpt.c_str(),
              static_cast<long long>(model.NumParameters()));
  return 0;
}

Result<std::unique_ptr<muse::MuseNet>> LoadModel(
    const Args& args, const muse::MuseNetConfig& config) {
  auto model = std::make_unique<muse::MuseNet>(
      config, static_cast<uint64_t>(args.GetInt("seed", 7)));
  MUSE_ASSIGN_OR_RETURN(auto state,
                        tensor::LoadTensors(args.Get("ckpt", "model.ckpt")));
  MUSE_RETURN_IF_ERROR(model->LoadStateDict(state));
  model->SetTraining(false);
  return model;
}

int Evaluate(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  eval::FlowMetrics m = eval::EvaluateOnTest(**model, loaded->dataset, 8);
  std::printf("test outflow: RMSE %.2f  MAE %.2f  MAPE %s\n", m.outflow.rmse,
              m.outflow.mae, FormatPercent(m.outflow.mape).c_str());
  std::printf("test inflow:  RMSE %.2f  MAE %.2f  MAPE %s\n", m.inflow.rmse,
              m.inflow.mae, FormatPercent(m.inflow.mape).c_str());
  return 0;
}

int Predict(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  const auto& test = loaded->dataset.test_indices();
  const int index = args.GetInt("index", 0);
  if (index < 0 || index >= static_cast<int>(test.size())) {
    std::fprintf(stderr, "error: --index must be in [0, %zu)\n", test.size());
    return 1;
  }
  data::Batch batch =
      loaded->dataset.MakeBatch({test[static_cast<size_t>(index)]});
  tensor::Tensor pred =
      loaded->dataset.scaler().Inverse((*model)->Predict(batch));
  tensor::Tensor truth = loaded->dataset.scaler().Inverse(batch.target);

  const auto& flows = loaded->dataset.flows();
  std::printf("forecast for interval %lld (hour %.1f, weekday %d):\n",
              static_cast<long long>(batch.target_indices[0]),
              flows.HourOfDay(batch.target_indices[0]),
              flows.WeekdayOf(batch.target_indices[0]));
  for (int64_t h = 0; h < pred.dim(2); ++h) {
    for (int64_t w = 0; w < pred.dim(3); ++w) {
      std::printf("  region (%lld,%lld): out %.1f (truth %.1f)  in %.1f "
                  "(truth %.1f)\n",
                  static_cast<long long>(h), static_cast<long long>(w),
                  pred.at({0, 0, h, w}), truth.at({0, 0, h, w}),
                  pred.at({0, 1, h, w}), truth.at({0, 1, h, w}));
    }
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: musenet <command> [--flag value ...]\n"
      "  simulate  --dataset bike|taxi|bj --out FILE [--days N] [--seed S]\n"
      "  train     --flows FILE --ckpt FILE [--epochs N] [--patience P]\n"
      "            [--lr LR] [--d D] [--k K] [--seed S]\n"
      "            [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "            [--keep-last K] [--resume 0|1]\n"
      "            [--on-nonfinite abort|skip|rollback]\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "            [--run-log FILE] [--run-log-timings 0|1]\n"
      "  evaluate  --flows FILE --ckpt FILE [--d D] [--k K]\n"
      "  predict   --flows FILE --ckpt FILE --index I [--d D] [--k K]\n");
  return 2;
}

}  // namespace
}  // namespace musenet

int main(int argc, char** argv) {
  using namespace musenet;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "simulate") return Simulate(args);
  if (command == "train") return Train(args);
  if (command == "evaluate") return Evaluate(args);
  if (command == "predict") return Predict(args);
  return Usage();
}
