// Command-line front end to the MUSE-Net library.
//
//   musenet simulate    --dataset taxi --out flows.bin [--days N] [--seed S]
//   musenet train       --flows flows.bin --ckpt model.ckpt [--epochs N] ...
//   musenet evaluate    --flows flows.bin --ckpt model.ckpt
//   musenet predict     --flows flows.bin --ckpt model.ckpt --index I
//   musenet serve       --flows flows.bin --ckpt model.ckpt --requests N ...
//   musenet bench-infer --flows flows.bin --ckpt model.ckpt --iters N ...
//
// `simulate` writes a FlowSeries container; `train` fits MUSE-Net on it and
// writes a checkpoint; `evaluate` reports test metrics; `predict` prints one
// frame's forecast next to the ground truth; `serve` runs the batched
// inference session against simulated clients (or, with --models, the
// multi-tenant hot-swap serving stack; --obs-port exposes live /metrics,
// /healthz and /statusz over HTTP); `bench-infer` times the
// graph-free engine against the autograd Predict path. Model
// hyper-parameters at train and load time must match (the checkpoint loader
// validates shapes).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_pipeline.h"
#include "data/dataset.h"
#include "eval/evaluate.h"
#include "infer/engine.h"
#include "infer/session.h"
#include "obs/expo.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "muse/model.h"
#include "serve/loadgen.h"
#include "serve/registry.h"
#include "serve/service.h"
#include "serve/status.h"
#include "serve/watcher.h"
#include "sim/presets.h"
#include "sim/serialize.h"
#include "tensor/serialize.h"
#include "util/bench_config.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace musenet {
namespace {

/// Minimal --flag value parser; flags are position-independent.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (StartsWith(argv[i], "--")) {
        values_[argv[i] + 2] = argv[i + 1];
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

sim::DatasetId ParseDataset(const std::string& name) {
  if (name == "bike") return sim::DatasetId::kNycBike;
  if (name == "bj") return sim::DatasetId::kTaxiBj;
  return sim::DatasetId::kNycTaxi;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Shared --obs-port / --postmortem handling for the serving commands.
/// Starts the exposition server when --obs-port is present (0 = ephemeral;
/// the bound port is printed so scripts can scrape it) and arms the
/// flight-recorder post-mortem when --postmortem names a dump path.
/// Returns false (with a message on stderr) when the server fails to bind.
bool StartObservability(const Args& args,
                        std::unique_ptr<obs::ExpoServer>* server) {
  if (args.Has("postmortem")) {
    obs::SetPostmortemPath(args.Get("postmortem", ""));
    obs::InstallCrashHandler();
  }
  if (!args.Has("obs-port")) return true;
  auto started = obs::ExpoServer::Start(args.GetInt("obs-port", 0));
  if (!started.ok()) {
    std::fprintf(stderr, "error: --obs-port: %s\n",
                 started.status().ToString().c_str());
    return false;
  }
  *server = std::move(started).value();
  std::printf("obs: listening on 127.0.0.1:%d (/metrics /healthz%s)\n",
              (*server)->port(), args.Has("models") ? " /statusz" : "");
  // Scrape drills read the bound port from a redirected log while the
  // process is still serving; don't leave the line in the stdio buffer.
  std::fflush(stdout);
  return true;
}

/// Shared --specialize / --precision / --max-abs-delta parsing for serve and
/// bench-infer. A non-fp32 precision implies --specialize 1. Returns false
/// (with a message on stderr) on an unknown precision name.
bool ParseEngineOptions(const Args& args, infer::EngineOptions* out) {
  const std::string precision = args.Get("precision", "fp32");
  if (precision == "fp32") {
    out->precision = infer::PrecisionMode::kFp32;
  } else if (precision == "int8") {
    out->precision = infer::PrecisionMode::kInt8;
  } else if (precision == "bf16") {
    out->precision = infer::PrecisionMode::kBf16;
  } else {
    std::fprintf(stderr, "error: unknown --precision '%s' (fp32|int8|bf16)\n",
                 precision.c_str());
    return false;
  }
  const bool non_fp32 = out->precision != infer::PrecisionMode::kFp32;
  out->specialize = args.GetInt("specialize", non_fp32 ? 1 : 0) != 0;
  out->max_abs_delta =
      static_cast<float>(args.GetDouble("max-abs-delta", -1.0));
  return true;
}

const char* PrecisionName(infer::PrecisionMode mode) {
  switch (mode) {
    case infer::PrecisionMode::kInt8: return "int8";
    case infer::PrecisionMode::kBf16: return "bf16";
    default: return "fp32";
  }
}

/// Resolves the simulation scale the way `simulate` does: the bench scale
/// from the environment with --seed/--days/--grid-h/--grid-w overrides.
/// Shared with LoadForModel so a `--dataset` flag on train/evaluate recomputes
/// the same provenance hash `simulate` stamped.
BenchScale ResolveSimScale(const Args& args) {
  BenchScale scale = ResolveBenchScale();
  scale.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  if (args.GetInt("days", 0) > 0) scale.days = args.GetInt("days", 0);
  if (args.GetInt("grid-h", 0) > 0) scale.grid_h = args.GetInt("grid-h", 0);
  if (args.GetInt("grid-w", 0) > 0) scale.grid_w = args.GetInt("grid-w", 0);
  return scale;
}

int Simulate(const Args& args) {
  const BenchScale scale = ResolveSimScale(args);
  const sim::DatasetId id = ParseDataset(args.Get("dataset", "taxi"));
  const std::string out = args.Get("out", "flows.bin");

  sim::FlowSeries flows = sim::GenerateDatasetFlows(id, scale, scale.seed);
  const uint64_t hash = sim::SimConfigHash(id, scale, scale.seed);
  const Status status = sim::SaveFlowSeries(out, flows, hash);
  if (!status.ok()) return Fail(status);
  std::printf(
      "wrote %s: %lld intervals, %lldx%lld grid, mean flow %.2f, "
      "sim config hash 0x%s\n",
      out.c_str(), static_cast<long long>(flows.num_intervals()),
      static_cast<long long>(flows.grid().height),
      static_cast<long long>(flows.grid().width), flows.MeanValue(),
      util::HashHex(hash).c_str());
  return 0;
}

struct LoadedDataset {
  data::TrafficDataset dataset;
  muse::MuseNetConfig config;
};

/// The provenance hash `flows.bin` must carry, or 0 for no check:
/// --expect-flows-hash takes an explicit hex digest; --dataset recomputes
/// SimConfigHash from the same flag resolution `simulate` used.
uint64_t ExpectedFlowsHash(const Args& args) {
  if (args.Has("expect-flows-hash")) {
    return std::strtoull(args.Get("expect-flows-hash", "0").c_str(), nullptr,
                         16);
  }
  if (args.Has("dataset")) {
    const BenchScale scale = ResolveSimScale(args);
    return sim::SimConfigHash(ParseDataset(args.Get("dataset", "taxi")), scale,
                              scale.seed);
  }
  return 0;
}

Result<LoadedDataset> LoadForModel(const Args& args) {
  MUSE_ASSIGN_OR_RETURN(
      sim::FlowSeries flows,
      sim::LoadFlowSeriesChecked(args.Get("flows", "flows.bin"),
                                 ExpectedFlowsHash(args)));
  data::DatasetOptions options;
  options.max_train_samples = args.GetInt("max_train_samples", 320);
  data::TrafficDataset dataset(std::move(flows), options);

  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = args.GetInt("d", 12);
  config.dist_dim = args.GetInt("k", 32);
  return LoadedDataset{std::move(dataset), config};
}

int Train(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  muse::MuseNet model(loaded->config,
                      static_cast<uint64_t>(args.GetInt("seed", 7)));

  eval::TrainConfig train;
  train.epochs = args.GetInt("epochs", 60);
  train.patience = args.GetInt("patience", 15);
  train.learning_rate = std::atof(args.Get("lr", "1e-3").c_str());
  train.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  train.verbose = args.GetInt("verbose", 1) != 0;

  // Fault tolerance: periodic crash-safe checkpoints, resume, and the
  // non-finite policy (see eval/train_loop.h).
  train.checkpoint_dir = args.Get("checkpoint-dir", "");
  train.checkpoint_every = args.GetInt("checkpoint-every", 1);
  train.keep_last = args.GetInt("keep-last", 3);
  train.resume = args.GetInt("resume", 0) != 0;

  // Data-parallel training (see DESIGN.md "Data-parallel training"):
  // --train-shards fixes the numerics, --train-workers only schedules, and
  // --prefetch overlaps the next batch's assembly with the current step.
  train.train_workers = args.GetInt("train-workers", 1);
  train.train_shards = args.GetInt("train-shards", 0);
  train.prefetch = args.GetInt("prefetch", 0) != 0;

  // Observability (see DESIGN.md "Observability"): --run-log streams JSONL
  // training telemetry; --trace-out and --metrics-out write a Perfetto
  // trace and a metrics snapshot at the end of the run.
  train.run_log_path = args.Get("run-log", "");
  train.run_log_timings = args.GetInt("run-log-timings", 1) != 0;
  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!trace_out.empty()) obs::StartTracing();
  const std::string policy = args.Get("on-nonfinite", "abort");
  if (policy == "skip") {
    train.on_non_finite = eval::FailurePolicy::kSkipBatch;
  } else if (policy == "rollback") {
    train.on_non_finite = eval::FailurePolicy::kRollback;
  } else if (policy == "abort") {
    train.on_non_finite = eval::FailurePolicy::kAbort;
  } else {
    std::fprintf(stderr,
                 "error: --on-nonfinite must be abort, skip or rollback\n");
    return 2;
  }

  eval::TrainReport report;
  const Status trained = model.TrainWithReport(loaded->dataset, train,
                                               &report);
  if (!trace_out.empty()) {
    const Status wrote = obs::StopTracingAndWrite(trace_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote trace %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status wrote = obs::WriteMetricsSnapshot(metrics_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote metrics %s\n", metrics_out.c_str());
  }
  if (!trained.ok()) return Fail(trained);
  if (report.resumed_from_epoch >= 0) {
    std::printf("resumed from epoch %d\n", report.resumed_from_epoch);
  }
  // One-line run summary: everything the report knows, greppable in CI logs.
  std::printf(
      "train summary: epochs=%d steps=%lld best_val=%.6f "
      "skipped_batches=%d rollbacks=%d checkpoint_failures=%d\n",
      report.epochs_run, static_cast<long long>(report.steps),
      report.best_val, report.skipped_batches, report.rollbacks,
      report.checkpoint_write_failures);

  const std::string ckpt = args.Get("ckpt", "model.ckpt");
  const Status status = tensor::SaveTensors(ckpt, model.StateDict());
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s (%lld parameters)\n", ckpt.c_str(),
              static_cast<long long>(model.NumParameters()));
  return 0;
}

Result<std::unique_ptr<muse::MuseNet>> LoadModel(
    const Args& args, const muse::MuseNetConfig& config) {
  auto model = std::make_unique<muse::MuseNet>(
      config, static_cast<uint64_t>(args.GetInt("seed", 7)));
  MUSE_ASSIGN_OR_RETURN(auto state,
                        tensor::LoadTensors(args.Get("ckpt", "model.ckpt")));
  MUSE_RETURN_IF_ERROR(model->LoadStateDict(state));
  model->SetTraining(false);
  return model;
}

int Evaluate(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  eval::FlowMetrics m = eval::EvaluateOnTest(**model, loaded->dataset, 8);
  std::printf("test outflow: RMSE %.2f  MAE %.2f  MAPE %s\n", m.outflow.rmse,
              m.outflow.mae, FormatPercent(m.outflow.mape).c_str());
  std::printf("test inflow:  RMSE %.2f  MAE %.2f  MAPE %s\n", m.inflow.rmse,
              m.inflow.mae, FormatPercent(m.inflow.mape).c_str());
  return 0;
}

int Predict(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  const auto& test = loaded->dataset.test_indices();
  const int index = args.GetInt("index", 0);
  if (index < 0 || index >= static_cast<int>(test.size())) {
    std::fprintf(stderr, "error: --index must be in [0, %zu)\n", test.size());
    return 1;
  }
  data::Batch batch =
      loaded->dataset.MakeBatch({test[static_cast<size_t>(index)]});
  tensor::Tensor pred =
      loaded->dataset.scaler().Inverse((*model)->Predict(batch));
  tensor::Tensor truth = loaded->dataset.scaler().Inverse(batch.target);

  const auto& flows = loaded->dataset.flows();
  std::printf("forecast for interval %lld (hour %.1f, weekday %d):\n",
              static_cast<long long>(batch.target_indices[0]),
              flows.HourOfDay(batch.target_indices[0]),
              flows.WeekdayOf(batch.target_indices[0]));
  for (int64_t h = 0; h < pred.dim(2); ++h) {
    for (int64_t w = 0; w < pred.dim(3); ++w) {
      std::printf("  region (%lld,%lld): out %.1f (truth %.1f)  in %.1f "
                  "(truth %.1f)\n",
                  static_cast<long long>(h), static_cast<long long>(w),
                  pred.at({0, 0, h, w}), truth.at({0, 0, h, w}),
                  pred.at({0, 1, h, w}), truth.at({0, 1, h, w}));
    }
  }
  return 0;
}

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = q * static_cast<double>(sorted_ms.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

/// `serve --models ...`: the multi-tenant ModelRegistry/ForecastService path
/// (hot-swap, admission control, load generation). Defined after the signal
/// token it shares with `pipeline`.
int ServeMulti(const Args& args);

/// `serve`: drives the batched InferenceSession with simulated clients, each
/// submitting single-grid requests drawn round-robin from the test split.
/// Reports throughput and client-observed latency; --trace-out /
/// --metrics-out dump the obs layer afterwards (infer.requests,
/// infer.batch_size, infer.latency_ms, infer.batch spans).
/// With --models the command switches to the multi-tenant serving path.
int Serve(const Args& args) {
  if (args.Has("models")) return ServeMulti(args);
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  const int requests = args.GetInt("requests", 256);
  const int clients = std::max(1, args.GetInt("clients", 4));
  infer::SessionOptions options;
  options.max_batch = args.GetInt("max-batch", 8);
  options.max_wait_ms = args.GetDouble("max-wait-ms", 2.0);
  if (!ParseEngineOptions(args, &options.engine)) return 2;
  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  if (!trace_out.empty()) obs::StartTracing();
  std::unique_ptr<obs::ExpoServer> obs_server;
  if (!StartObservability(args, &obs_server)) return 2;

  const auto& test = loaded->dataset.test_indices();
  if (test.empty()) {
    std::fprintf(stderr, "error: dataset has no test samples\n");
    return 1;
  }

  infer::InferenceSession session(**model, options);
  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  util::Stopwatch wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    const int share = requests / clients + (c < requests % clients ? 1 : 0);
    workers.emplace_back([&, c, share] {
      for (int i = 0; i < share; ++i) {
        const size_t sample = static_cast<size_t>(c + i * clients);
        data::Batch request =
            loaded->dataset.MakeBatch({test[sample % test.size()]});
        util::Stopwatch rtt;
        tensor::Tensor pred = session.Submit(std::move(request)).get();
        latencies[static_cast<size_t>(c)].push_back(rtt.ElapsedMillis());
        (void)pred;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed_s = wall.ElapsedSeconds();
  session.Shutdown();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  const int64_t batches = obs::GetCounter("infer.batches").Value();
  std::printf(
      "served %zu requests from %d clients in %.2fs (%.1f req/s, %lld "
      "batches, max_batch=%d, max_wait_ms=%.1f)\n",
      all.size(), clients, elapsed_s,
      static_cast<double>(all.size()) / elapsed_s,
      static_cast<long long>(batches), options.max_batch,
      options.max_wait_ms);
  std::printf("latency ms: p50 %.3f  p99 %.3f\n", Percentile(all, 0.5),
              Percentile(all, 0.99));
  if (options.engine.specialize) {
    std::printf(
        "specialization: precision=%s plans_adopted=%lld plans_rejected=%lld\n",
        PrecisionName(options.engine.precision),
        static_cast<long long>(
            obs::GetCounter("infer.engine.spec_builds").Value()),
        static_cast<long long>(
            obs::GetCounter("infer.engine.spec_rejected").Value()));
  }

  if (!trace_out.empty()) {
    const Status wrote = obs::StopTracingAndWrite(trace_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote trace %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status wrote = obs::WriteMetricsSnapshot(metrics_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote metrics %s\n", metrics_out.c_str());
  }
  return 0;
}

/// `bench-infer`: single-process latency comparison of the planned engine
/// against the autograd Predict path at a fixed batch size, plus planned
/// throughput. Writes a JSON record when --out is given (consumed by
/// tools/run_inference_bench.sh into BENCH_inference.json).
int BenchInfer(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model = LoadModel(args, loaded->config);
  if (!model.ok()) return Fail(model.status());

  infer::EngineOptions eopts;
  if (!ParseEngineOptions(args, &eopts)) return 2;

  const int iters = std::max(1, args.GetInt("iters", 50));
  const int batch_size = std::max(1, args.GetInt("batch", 1));
  const auto& test = loaded->dataset.test_indices();
  if (test.empty()) {
    std::fprintf(stderr, "error: dataset has no test samples\n");
    return 1;
  }
  std::vector<int64_t> chunk;
  for (int b = 0; b < batch_size; ++b) {
    chunk.push_back(test[static_cast<size_t>(b) % test.size()]);
  }
  data::Batch batch = loaded->dataset.MakeBatch(chunk);

  // Autograd path: what Predict cost before the engine existed (graph nodes
  // built and dropped every call).
  std::vector<double> autograd_ms;
  (*model)->Predict(batch);  // Warm the pool.
  for (int i = 0; i < iters; ++i) {
    util::Stopwatch watch;
    (*model)->Predict(batch);
    autograd_ms.push_back(watch.ElapsedMillis());
  }

  // Planned engine, steady state (plan compiled once, zero-alloc replay).
  infer::Engine engine(**model);
  tensor::Tensor out = engine.Predict(batch);  // Warm: compiles the plan.
  std::vector<double> engine_ms;
  util::Stopwatch total;
  for (int i = 0; i < iters; ++i) {
    util::Stopwatch watch;
    const Status run = engine.PredictInto(batch, &out);
    if (!run.ok()) return Fail(run);
    engine_ms.push_back(watch.ElapsedMillis());
  }
  const double throughput =
      static_cast<double>(iters) * batch_size / total.ElapsedSeconds();

  const double a50 = Percentile(autograd_ms, 0.5);
  const double a99 = Percentile(autograd_ms, 0.99);
  const double e50 = Percentile(engine_ms, 0.5);
  const double e99 = Percentile(engine_ms, 0.99);
  const int threads = static_cast<int>(util::ActivePool().num_threads());
  std::printf(
      "batch=%d threads=%d iters=%d\n"
      "autograd Predict ms: p50 %.3f  p99 %.3f\n"
      "engine   Predict ms: p50 %.3f  p99 %.3f  (%.2fx)\n"
      "engine throughput: %.1f samples/s\n",
      batch_size, threads, iters, a50, a99, e50, e99, a50 / e50, throughput);

  // Optional specialized engine: same plan shapes, but BN folded into the
  // weights and the weights repacked (possibly quantized) at plan time.
  // Timed against the fp32 engine above, and accuracy-checked on held-out
  // test batches (max element delta and per-engine MAE in real flow units).
  double s50 = 0.0, s99 = 0.0;
  double max_abs_delta = 0.0, mae_fp32 = 0.0, mae_spec = 0.0;
  bool spec_active = false;
  if (eopts.specialize) {
    infer::Engine spec_engine(**model, eopts);
    tensor::Tensor sout = spec_engine.Predict(batch);  // Warm + gate.
    spec_active = spec_engine.spec_active_for(batch_size);
    std::vector<double> spec_ms;
    for (int i = 0; i < iters; ++i) {
      util::Stopwatch watch;
      const Status run = spec_engine.PredictInto(batch, &sout);
      if (!run.ok()) return Fail(run);
      spec_ms.push_back(watch.ElapsedMillis());
    }
    s50 = Percentile(spec_ms, 0.5);
    s99 = Percentile(spec_ms, 0.99);

    // Accuracy sweep over held-out test batches (scaler-inverted units).
    const auto& scaler = loaded->dataset.scaler();
    const int calib = std::max(1, args.GetInt("calib-batches", 8));
    double abs_fp32 = 0.0, abs_spec = 0.0;
    int64_t count = 0;
    for (int cb = 0; cb < calib; ++cb) {
      std::vector<int64_t> idx;
      for (int b = 0; b < batch_size; ++b) {
        const size_t at = static_cast<size_t>(cb) * batch_size + b;
        idx.push_back(test[at % test.size()]);
      }
      data::Batch probe = loaded->dataset.MakeBatch(idx);
      tensor::Tensor ref = engine.Predict(probe);
      tensor::Tensor got = spec_engine.Predict(probe);
      for (int64_t i = 0; i < ref.num_elements(); ++i) {
        const double d = std::abs(static_cast<double>(got.flat(i)) -
                                  static_cast<double>(ref.flat(i)));
        if (d > max_abs_delta) max_abs_delta = d;
        abs_fp32 += std::abs(scaler.Inverse(ref.flat(i)) -
                             scaler.Inverse(probe.target.flat(i)));
        abs_spec += std::abs(scaler.Inverse(got.flat(i)) -
                             scaler.Inverse(probe.target.flat(i)));
      }
      count += ref.num_elements();
    }
    mae_fp32 = abs_fp32 / static_cast<double>(count);
    mae_spec = abs_spec / static_cast<double>(count);
    std::printf(
        "specialized(%s) Predict ms: p50 %.3f  p99 %.3f  (%.2fx vs engine)\n"
        "specialized accuracy: active=%d max_abs_delta %.6g  "
        "mae fp32 %.4f vs spec %.4f (delta %.4g)\n",
        PrecisionName(eopts.precision), s50, s99, e50 / s50,
        spec_active ? 1 : 0, max_abs_delta, mae_fp32, mae_spec,
        mae_spec - mae_fp32);
  }

  const std::string out_path = args.Get("out", "");
  if (!out_path.empty()) {
    char buf[1280];
    int len = std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"batch\": %d,\n"
        "  \"threads\": %d,\n"
        "  \"iters\": %d,\n"
        "  \"autograd_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n"
        "  \"engine_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n"
        "  \"speedup_p50\": %.3f,\n"
        "  \"engine_throughput_rps\": %.3f",
        batch_size, threads, iters, a50, a99, e50, e99, a50 / e50,
        throughput);
    if (eopts.specialize && len > 0 &&
        static_cast<size_t>(len) < sizeof(buf)) {
      len += std::snprintf(
          buf + len, sizeof(buf) - static_cast<size_t>(len),
          ",\n"
          "  \"precision\": \"%s\",\n"
          "  \"specialized\": {\n"
          "    \"engine_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n"
          "    \"speedup_vs_fp32_engine\": %.3f,\n"
          "    \"spec_active\": %s,\n"
          "    \"max_abs_delta\": %.6g,\n"
          "    \"mae_fp32\": %.6f,\n"
          "    \"mae_spec\": %.6f,\n"
          "    \"mae_delta\": %.6g\n"
          "  }",
          PrecisionName(eopts.precision), s50, s99, e50 / s50,
          spec_active ? "true" : "false", max_abs_delta, mae_fp32, mae_spec,
          mae_spec - mae_fp32);
    }
    if (len > 0 && static_cast<size_t>(len) < sizeof(buf)) {
      std::snprintf(buf + len, sizeof(buf) - static_cast<size_t>(len),
                    "\n}\n");
    }
    const Status wrote = util::AtomicWriteFile(out_path, buf);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// SIGINT flips this token; the pipeline scheduler and every training loop
/// poll it cooperatively, so one Ctrl-C stops the run at the next step
/// boundary with the cache in a resumable state.
std::atomic<bool> g_cancel{false};

extern "C" void HandleSigint(int) {
  g_cancel.store(true, std::memory_order_relaxed);
}

/// One `--models` entry: name=ckpt[:precision]. The optional precision
/// suffix overrides the global --precision for that tenant (non-fp32 implies
/// specialization, as in ParseEngineOptions).
bool ParseModelSpecs(const Args& args, const muse::MuseNetConfig& config,
                     std::vector<serve::ModelSpec>* out) {
  infer::EngineOptions base;
  if (!ParseEngineOptions(args, &base)) return false;
  for (const std::string& entry : StrSplit(args.Get("models", ""), ',')) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      std::fprintf(stderr,
                   "error: --models entries are name=ckpt[:precision]; "
                   "got '%s'\n",
                   entry.c_str());
      return false;
    }
    serve::ModelSpec spec;
    spec.name = entry.substr(0, eq);
    spec.path = entry.substr(eq + 1);
    spec.config = config;
    spec.engine = base;
    spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    const size_t colon = spec.path.rfind(':');
    if (colon != std::string::npos) {
      const std::string suffix = spec.path.substr(colon + 1);
      if (suffix == "fp32" || suffix == "int8" || suffix == "bf16") {
        spec.path = spec.path.substr(0, colon);
        spec.engine.precision = suffix == "int8"
                                    ? infer::PrecisionMode::kInt8
                                    : suffix == "bf16"
                                          ? infer::PrecisionMode::kBf16
                                          : infer::PrecisionMode::kFp32;
        spec.engine.specialize =
            spec.engine.precision != infer::PrecisionMode::kFp32;
      }
    }
    out->push_back(std::move(spec));
  }
  if (out->empty()) {
    std::fprintf(stderr, "error: --models must name at least one tenant\n");
    return false;
  }
  return true;
}

/// Greppable one-line roll-up of the serve.* counters, printed after drain
/// (CI reconciles these against the metrics snapshot and the load report).
void PrintServeSummary(size_t tenants) {
  std::printf(
      "serve summary: tenants=%zu requests=%lld admitted=%lld shed=%lld "
      "completed=%lld timed_out=%lld swapped=%lld shadow_rejected=%lld\n",
      tenants,
      static_cast<long long>(obs::GetCounter("serve.requests").Value()),
      static_cast<long long>(obs::GetCounter("serve.admitted").Value()),
      static_cast<long long>(obs::GetCounter("serve.shed").Value()),
      static_cast<long long>(obs::GetCounter("serve.completed").Value()),
      static_cast<long long>(obs::GetCounter("serve.timed_out").Value()),
      static_cast<long long>(obs::GetCounter("serve.swapped").Value()),
      static_cast<long long>(
          obs::GetCounter("serve.shadow_rejected").Value()));
}

void PrintLoadReport(const char* label, const serve::LoadGenReport& report) {
  std::printf(
      "%s: issued=%lld completed=%lld shed=%lld timed_out=%lld errored=%lld "
      "wall=%.2fs shed_rate=%.3f p50=%.3fms p99=%.3fms\n",
      label, static_cast<long long>(report.issued),
      static_cast<long long>(report.completed),
      static_cast<long long>(report.shed),
      static_cast<long long>(report.timed_out),
      static_cast<long long>(report.errored), report.wall_s,
      report.shed_rate(), report.p50_ms, report.p99_ms);
}

/// Built-in serving bench (tools/run_serving_bench.sh -> BENCH_serving.json):
/// calibrates the sustainable closed-loop rate, measures an uncontended
/// baseline, then drives flat --load-mults multiples of sustainable with
/// deadline-aware shedding and records p50/p99/shed-rate per multiple.
int RunServingBench(serve::ForecastService& service, const std::string& tenant,
                    const std::vector<data::Batch>& pool,
                    const sim::City& city, const Args& args) {
  const double calib_s = args.GetDouble("calib-s", 2.0);
  const double phase_s = args.GetDouble("phase-s", 3.0);

  // Saturation phase: a flat rate far beyond capacity with a closed-loop cap
  // measures what the service actually completes per second.
  serve::LoadGenOptions calib;
  calib.duration_s = calib_s;
  calib.peak_rps = 1e6;
  calib.flat = true;
  calib.deadline_ms = 0.0;
  calib.max_outstanding = std::max(16, 4 * service.options().max_batch);
  calib.cancel = &g_cancel;
  serve::LoadGenReport cal = RunLoadGen(service, tenant, pool, city, calib);
  const double sustainable =
      std::max(1.0, static_cast<double>(cal.completed) /
                        std::max(1e-6, cal.wall_s));
  std::printf("calibration: sustainable=%.1f req/s\n", sustainable);

  // Uncontended baseline: well under capacity, no deadline — the p99 the
  // overload runs are judged against.
  serve::LoadGenOptions unc = calib;
  unc.duration_s = phase_s;
  unc.peak_rps = std::max(1.0, 0.25 * sustainable);
  unc.deadline_ms = 0.0;
  serve::LoadGenReport base = RunLoadGen(service, tenant, pool, city, unc);
  PrintLoadReport("uncontended", base);

  // Overload deadline: explicit --deadline-ms wins; otherwise 4x the
  // uncontended p99, which keeps completed-request latency within the 5x
  // budget by construction (expired requests shed or time out instead).
  double deadline_ms = args.GetDouble("deadline-ms", 0.0);
  if (deadline_ms <= 0.0) {
    deadline_ms = std::max(2.0, 4.0 * base.p99_ms);
  }

  std::string runs_json;
  for (const std::string& mult_text :
       StrSplit(args.Get("load-mults", "1,4,8"), ',')) {
    const double mult = std::atof(mult_text.c_str());
    if (mult <= 0.0) continue;
    serve::LoadGenOptions opts = calib;
    opts.duration_s = phase_s;
    opts.peak_rps = mult * sustainable;
    opts.deadline_ms = deadline_ms;
    opts.max_outstanding = args.GetInt("max-outstanding", 512);
    serve::LoadGenReport r = RunLoadGen(service, tenant, pool, city, opts);
    char label[64];
    std::snprintf(label, sizeof(label), "load %.0fx", mult);
    PrintLoadReport(label, r);

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"mult\": %.2f, \"rate_rps\": %.2f, \"issued\": %lld, "
        "\"completed\": %lld, \"shed\": %lld, \"timed_out\": %lld, "
        "\"errored\": %lld, \"shed_rate\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"p99_vs_uncontended\": %.3f}",
        runs_json.empty() ? "" : ",\n", mult, opts.peak_rps,
        static_cast<long long>(r.issued),
        static_cast<long long>(r.completed),
        static_cast<long long>(r.shed),
        static_cast<long long>(r.timed_out),
        static_cast<long long>(r.errored), r.shed_rate(), r.p50_ms, r.p99_ms,
        base.p99_ms > 0.0 ? r.p99_ms / base.p99_ms : 0.0);
    runs_json += buf;
    if (g_cancel.load(std::memory_order_relaxed)) break;
  }

  const std::string out_path = args.Get("bench-out", "");
  if (!out_path.empty()) {
    char head[512];
    std::snprintf(
        head, sizeof(head),
        "{\n"
        "  \"sustainable_rps\": %.2f,\n"
        "  \"deadline_ms\": %.3f,\n"
        "  \"max_batch\": %d,\n"
        "  \"max_queue\": %d,\n"
        "  \"shed_policy\": \"%s\",\n"
        "  \"uncontended\": {\"rate_rps\": %.2f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f},\n"
        "  \"runs\": [\n",
        sustainable, deadline_ms, service.options().max_batch,
        service.options().max_queue,
        service.options().shed_policy == serve::ShedPolicy::kDropOldest
            ? "oldest"
            : "reject",
        unc.peak_rps, base.p50_ms, base.p99_ms);
    char tail[512];
    std::snprintf(
        tail, sizeof(tail),
        "\n  ],\n"
        "  \"counters\": {\"requests\": %lld, \"admitted\": %lld, "
        "\"shed\": %lld, \"completed\": %lld, \"timed_out\": %lld, "
        "\"swapped\": %lld, \"shadow_rejected\": %lld}\n"
        "}\n",
        static_cast<long long>(obs::GetCounter("serve.requests").Value()),
        static_cast<long long>(obs::GetCounter("serve.admitted").Value()),
        static_cast<long long>(obs::GetCounter("serve.shed").Value()),
        static_cast<long long>(obs::GetCounter("serve.completed").Value()),
        static_cast<long long>(obs::GetCounter("serve.timed_out").Value()),
        static_cast<long long>(obs::GetCounter("serve.swapped").Value()),
        static_cast<long long>(
            obs::GetCounter("serve.shadow_rejected").Value()));
    const Status wrote =
        util::AtomicWriteFile(out_path, head + runs_json + tail);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// The multi-tenant serving path behind `serve --models`. Registers every
/// tenant in a ModelRegistry (shadow-validated against held-out probes),
/// fronts it with a ForecastService (bounded queues, token buckets,
/// deadline-aware shedding), optionally watches containers for hot-swap, and
/// drives it with either a fixed request count, the diurnal load generator
/// (--loadgen), or the serving bench (--bench). SIGINT/SIGTERM drain
/// gracefully: stop issuing, run queues dry, flush telemetry, exit 0.
int ServeMulti(const Args& args) {
  auto loaded = LoadForModel(args);
  if (!loaded.ok()) return Fail(loaded.status());

  std::vector<serve::ModelSpec> specs;
  if (!ParseModelSpecs(args, loaded->config, &specs)) return 2;

  const std::string trace_out = args.Get("trace-out", "");
  const std::string metrics_out = args.Get("metrics-out", "");
  const std::string run_log_path = args.Get("run-log", "");
  if (!trace_out.empty()) obs::StartTracing();

  const auto& test = loaded->dataset.test_indices();
  if (test.empty()) {
    std::fprintf(stderr, "error: dataset has no test samples\n");
    return 1;
  }

  // Held-out probes: shadow validation replays the first few test batches on
  // every candidate plan; the request pool cycles through the rest.
  serve::RegistryOptions ropts;
  const int probes = std::max(1, args.GetInt("probes", 3));
  for (int p = 0; p < probes; ++p) {
    ropts.probes.push_back(
        loaded->dataset.MakeBatch({test[static_cast<size_t>(p) % test.size()]}));
  }
  ropts.max_abs_delta =
      static_cast<float>(args.GetDouble("max-abs-delta", -1.0));

  serve::ModelRegistry registry(ropts);
  for (const serve::ModelSpec& spec : specs) {
    const Status status = registry.Load(spec);
    if (!status.ok()) return Fail(status);
    std::printf("loaded tenant %s v%lld from %s\n", spec.name.c_str(),
                static_cast<long long>(registry.version(spec.name)),
                spec.path.c_str());
  }

  serve::ServiceOptions sopts;
  sopts.max_batch = args.GetInt("max-batch", 8);
  sopts.max_wait_ms = args.GetDouble("max-wait-ms", 2.0);
  sopts.max_queue = args.GetInt("max-queue", 64);
  sopts.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  sopts.shed_policy = serve::ParseShedPolicy(args.Get("shed-policy", "reject"));
  sopts.rate_rps = args.GetDouble("rate-rps", 0.0);
  sopts.burst = args.GetDouble("burst", 0.0);
  sopts.monitor_quality = args.GetInt("quality", 0) != 0;
  serve::ForecastService service(registry, sopts);

  // The exposition server is declared after the service so its handlers
  // (which read registry + service state) are unregistered — the server
  // thread joins — before either is destroyed.
  std::unique_ptr<obs::ExpoServer> obs_server;
  if (!StartObservability(args, &obs_server)) return 2;
  if (obs_server != nullptr) {
    serve::RegisterServeEndpoints(*obs_server, registry, &service);
  }

  std::unique_ptr<serve::SwapWatcher> watcher;
  if (args.GetInt("hot-swap-watch", 0) != 0) {
    watcher = std::make_unique<serve::SwapWatcher>(
        registry, args.GetDouble("watch-interval-ms", 200.0));
  }

  g_cancel.store(false, std::memory_order_relaxed);
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);

  std::vector<data::Batch> pool;
  const int pool_size =
      std::min<int>(args.GetInt("pool", 32),
                    static_cast<int>(test.size()) - probes > 0
                        ? static_cast<int>(test.size()) - probes
                        : static_cast<int>(test.size()));
  for (int i = 0; i < std::max(1, pool_size); ++i) {
    pool.push_back(loaded->dataset.MakeBatch(
        {test[static_cast<size_t>(probes + i) % test.size()]}));
  }

  const BenchScale scale = ResolveSimScale(args);
  const sim::DatasetId dataset = ParseDataset(args.Get("dataset", "taxi"));
  sim::City city(sim::MakeCityConfig(dataset, scale, scale.seed), scale.seed);

  int exit_code = 0;
  if (args.GetInt("bench", 0) != 0 || args.Has("bench-out")) {
    exit_code = RunServingBench(service, specs[0].name, pool, city, args);
  } else if (args.GetInt("loadgen", 0) != 0) {
    serve::LoadGenOptions lopts;
    lopts.duration_s = args.GetDouble("duration-s", 8.0);
    lopts.peak_rps = args.GetDouble("peak-rps", 32.0);
    lopts.sim_days = args.GetInt("sim-days", 1);
    lopts.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    lopts.max_outstanding = args.GetInt("max-outstanding", 256);
    lopts.cancel = &g_cancel;
    serve::LoadGenReport report =
        RunLoadGen(service, specs[0].name, pool, city, lopts);
    PrintLoadReport("loadgen", report);
    if (!run_log_path.empty()) {
      auto log = obs::RunLog::Open(run_log_path, /*truncate=*/true);
      if (log.ok()) {
        (void)log->Append(obs::RunRecord("serve_loadgen")
                              .Int("issued", report.issued)
                              .Int("completed", report.completed)
                              .Int("shed", report.shed)
                              .Int("timed_out", report.timed_out)
                              .Double("wall_s", report.wall_s)
                              .Double("p50_ms", report.p50_ms)
                              .Double("p99_ms", report.p99_ms));
      }
    }
  } else {
    // Fixed request count, round-robin across tenants, closed loop.
    const int requests = args.GetInt("requests", 256);
    const int cap = std::max(8, 4 * sopts.max_batch);
    std::deque<std::future<tensor::Tensor>> outstanding;
    int64_t completed = 0, failed = 0;
    auto harvest = [&](std::future<tensor::Tensor> f) {
      try {
        f.get();
        ++completed;
      } catch (...) {
        ++failed;
      }
    };
    for (int i = 0; i < requests; ++i) {
      if (g_cancel.load(std::memory_order_relaxed)) break;
      while (static_cast<int>(outstanding.size()) >= cap) {
        harvest(std::move(outstanding.front()));
        outstanding.pop_front();
      }
      const serve::ModelSpec& spec =
          specs[static_cast<size_t>(i) % specs.size()];
      outstanding.push_back(service.Submit(
          spec.name, pool[static_cast<size_t>(i) % pool.size()]));
    }
    while (!outstanding.empty()) {
      harvest(std::move(outstanding.front()));
      outstanding.pop_front();
    }
    std::printf("served %lld requests across %zu tenants (%lld failed)\n",
                static_cast<long long>(completed), specs.size(),
                static_cast<long long>(failed));
  }

  // Graceful drain: stop the watcher, run every queue dry, then flush
  // telemetry. Reached on normal completion and on SIGINT/SIGTERM alike.
  if (watcher != nullptr) watcher->Stop();
  service.Drain();
  PrintServeSummary(specs.size());
  if (watcher != nullptr) {
    std::printf("watcher: swaps=%lld rejects=%lld\n",
                static_cast<long long>(watcher->swaps()),
                static_cast<long long>(watcher->rejects()));
  }

  if (!trace_out.empty()) {
    const Status wrote = obs::StopTracingAndWrite(trace_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote trace %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    const Status wrote = obs::WriteMetricsSnapshot(metrics_out);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("wrote metrics %s\n", metrics_out.c_str());
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::printf("serve drained cleanly\n");
  return exit_code;
}

/// `pipeline`: declares the full experiment DAG (simulate → dataset →
/// per-model train → eval → table) and runs it incrementally against the
/// content-addressed stage cache. Reruns hit; config edits rerun exactly
/// the affected stages (--explain prints why); Ctrl-C leaves a resumable
/// cache.
int RunPipeline(const Args& args) {
  bench::ExperimentContext ctx = bench::MakeContext("incremental pipeline");

  std::vector<sim::DatasetId> datasets;
  for (const std::string& name :
       StrSplit(args.Get("datasets", "bike,taxi,bj"), ',')) {
    datasets.push_back(ParseDataset(name));
  }
  std::vector<std::string> models = StrSplit(
      args.Get("models",
               "HistoricalAverage,RNN,Seq2Seq,CONVGCN,GMAN,ST-Norm,STGSP,"
               "DeepSTN+,ST-SSL,MUSE-Net"),
      ',');

  std::vector<bench::TrainOverride> overrides;
  if (args.Has("override")) {
    for (const std::string& text :
         StrSplit(args.Get("override", ""), ',')) {
      auto parsed = bench::ParseTrainOverride(text);
      if (!parsed.ok()) return Fail(parsed.status());
      overrides.push_back(std::move(parsed).value());
    }
  }

  const std::string bucket_name = args.Get("bucket", "all");
  eval::TimeBucket bucket = eval::TimeBucket::kAll;
  if (bucket_name == "peak") bucket = eval::TimeBucket::kPeak;
  else if (bucket_name == "nonpeak") bucket = eval::TimeBucket::kNonPeak;
  else if (bucket_name == "weekday") bucket = eval::TimeBucket::kWeekday;
  else if (bucket_name == "weekend") bucket = eval::TimeBucket::kWeekend;
  else if (bucket_name != "all") {
    std::fprintf(stderr, "error: unknown --bucket '%s'\n",
                 bucket_name.c_str());
    return 2;
  }

  pipeline::Pipeline graph;
  auto built = bench::BuildOneStepGraph(
      &graph, ctx, datasets, models,
      static_cast<int64_t>(args.GetInt("horizon", 0)), bucket, overrides);
  if (!built.ok()) return Fail(built.status());

  pipeline::Pipeline::RunOptions options;
  options.cache_dir = args.Get("cache-dir", bench::PipelineCacheDir(ctx));
  options.jobs = std::max(1, args.GetInt("jobs", 1));
  options.explain = args.GetInt("explain", 0) != 0;
  options.cancel = &g_cancel;
  std::signal(SIGINT, HandleSigint);

  auto run = graph.Run(options);
  std::signal(SIGINT, SIG_DFL);
  if (!run.ok()) {
    // 130 = interrupted by SIGINT; completed stages are cached, rerunning
    // the same command resumes.
    if (run.status().code() == StatusCode::kCancelled) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 130;
    }
    return Fail(run.status());
  }

  for (size_t d = 0; d < datasets.size(); ++d) {
    std::vector<const std::string*> metric_payloads;
    for (const int eval_stage : built->eval_stages[d]) {
      metric_payloads.push_back(&graph.payload(eval_stage));
    }
    auto table = bench::OneStepTableFromPayloads(models, metric_payloads);
    if (!table.ok()) return Fail(table.status());
    std::printf("--- %s ---\n%s\n", sim::DatasetName(datasets[d]).c_str(),
                table->ToString().c_str());
    const int table_stage = built->table_stages[d];
    bench::EmitCsv(ctx, graph.stage_name(table_stage).substr(6),
                   graph.payload(table_stage));
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: musenet <command> [--flag value ...]\n"
      "  simulate  --dataset bike|taxi|bj --out FILE [--days N] [--seed S]\n"
      "            [--grid-h H] [--grid-w W]\n"
      "  train     --flows FILE --ckpt FILE [--epochs N] [--patience P]\n"
      "            [--lr LR] [--d D] [--k K] [--seed S]\n"
      "            [--dataset bike|taxi|bj | --expect-flows-hash HEX]\n"
      "            (provenance check: fail fast on a stale flows file)\n"
      "            [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "            [--keep-last K] [--resume 0|1]\n"
      "            [--on-nonfinite abort|skip|rollback]\n"
      "            [--train-workers N] [--train-shards S] [--prefetch 0|1]\n"
      "            (data-parallel step: S fixes numerics, N only schedules;\n"
      "            results are bit-exact across N at fixed S)\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "            [--run-log FILE] [--run-log-timings 0|1]\n"
      "  evaluate  --flows FILE --ckpt FILE [--d D] [--k K]\n"
      "  predict   --flows FILE --ckpt FILE --index I [--d D] [--k K]\n"
      "  serve     --flows FILE --ckpt FILE [--requests N] [--clients C]\n"
      "            [--max-batch B] [--max-wait-ms W] [--d D] [--k K]\n"
      "            [--specialize 0|1] [--precision fp32|int8|bf16]\n"
      "            [--max-abs-delta D] [--trace-out FILE]\n"
      "            [--metrics-out FILE]\n"
      "            [--obs-port P]  (HTTP /metrics /healthz; 0 = ephemeral,\n"
      "            bound port is printed)  [--postmortem FILE]  (flight-\n"
      "            recorder dump on fatal signal / shadow rejection)\n"
      "            Multi-tenant mode (hot-swap + admission control):\n"
      "            --models name=ckpt[:precision],...  [--probes N]\n"
      "            [--hot-swap-watch 0|1] [--watch-interval-ms MS]\n"
      "            [--max-queue Q] [--deadline-ms MS]\n"
      "            [--shed-policy reject|oldest] [--rate-rps R] [--burst B]\n"
      "            [--quality 0|1]  (rolling MAE/bias + CUSUM drift gauges)\n"
      "            [--loadgen 0|1] [--duration-s S] [--peak-rps R]\n"
      "            [--sim-days N] [--run-log FILE]\n"
      "            [--bench 0|1] [--bench-out FILE] [--load-mults 1,4,8]\n"
      "            [--calib-s S] [--phase-s S] [--max-outstanding N]\n"
      "            --obs-port additionally serves /statusz (JSON tenant +\n"
      "            queue + drift status; ?dump=1 dumps the flight recorder)\n"
      "            SIGINT/SIGTERM drain queues, flush telemetry, exit 0.\n"
      "  bench-infer --flows FILE --ckpt FILE [--iters N] [--batch B]\n"
      "            [--specialize 0|1] [--precision fp32|int8|bf16]\n"
      "            [--max-abs-delta D] [--calib-batches N]\n"
      "            [--d D] [--k K] [--out FILE]\n"
      "  pipeline  [--datasets bike,taxi,bj] [--models M1,M2,...]\n"
      "            [--cache-dir DIR] [--jobs N] [--explain 0|1]\n"
      "            [--horizon H] [--bucket all|peak|nonpeak|weekday|weekend]\n"
      "            [--override MODEL:key=value[,...]]  (keys: epochs, lr,\n"
      "            batch, patience; MODEL '*' matches all)\n"
      "            Incremental experiment DAG vs the content-hashed stage\n"
      "            cache; Ctrl-C leaves a resumable cache.\n");
  return 2;
}

}  // namespace
}  // namespace musenet

int main(int argc, char** argv) {
  using namespace musenet;
  if (argc < 2) return Usage();
  obs::AutoInitFromEnv();            // MUSENET_TRACE=<path>
  obs::AutoInitPostmortemFromEnv();  // MUSENET_POSTMORTEM=<path>
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "simulate") return Simulate(args);
  if (command == "train") return Train(args);
  if (command == "evaluate") return Evaluate(args);
  if (command == "predict") return Predict(args);
  if (command == "serve") return Serve(args);
  if (command == "bench-infer") return BenchInfer(args);
  if (command == "pipeline") return RunPipeline(args);
  return Usage();
}
