#!/usr/bin/env python3
"""Summarizes a MUSE-Net trace_event JSON dump.

Two views over the trace the obs layer writes (--trace-out / MUSENET_TRACE):

  * Top-N span names by total SELF time -- duration minus the time spent in
    child spans on the same thread, so an outer span that merely wraps a hot
    inner loop does not dominate the table. This is the "where does the time
    actually go" view.

  * Per-request critical path -- spans carrying a "rid" argument (the
    request id minted at Submit and threaded through batching into engine
    replay) are grouped per request and printed in timestamp order:
    request -> batch -> engine replay, with the gap between submit and
    batch-start visible as queue wait.

CI uses --assert-spans to fail when an instrumented layer goes silent
(substring match against span names, the same contract as the inline
python checks in ci.yml).

Usage:
  tools/trace_summary.py trace.json [--top 10] [--requests 5]
      [--assert-spans infer.batch,infer.run]

Stdlib only. Exit status: 0, or 1 when an --assert-spans name is missing.
"""

import argparse
import collections
import json
import sys


def load_events(path):
    doc = json.load(open(path))
    events = doc.get("traceEvents", [])
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "i"]
    return complete, instants, doc.get("droppedEvents", 0)


def self_times(complete):
    """Total self time (us) per span name, nesting computed per tid.

    Events arrive timestamp-ordered with enclosing spans first (the writer
    sorts by ts, then longer-duration first), so a single stack per tid
    recovers the nesting: when a span opens inside the stack top, its
    duration is subtracted from the parent's self time.
    """
    totals = collections.defaultdict(float)
    counts = collections.defaultdict(int)
    stacks = collections.defaultdict(list)  # tid -> [[end_ts, name, child_us]]
    for event in complete:
        tid = event.get("tid", 0)
        ts, dur = event["ts"], event["dur"]
        stack = stacks[tid]
        # Finalize spans that ended before this one starts: their child time
        # is complete, subtract it from the name's running self-time total.
        while stack and stack[-1][0] <= ts:
            _, name, child_us = stack.pop()
            totals[name] -= child_us
        if stack:
            # This span nests inside the stack top; credit its duration as
            # the parent's child time (grandchildren are credited to their
            # own parent, so self time subtracts direct children only).
            stack[-1][2] += dur
        totals[event["name"]] += dur
        counts[event["name"]] += 1
        stack.append([ts + dur, event["name"], 0.0])
    for stack in stacks.values():
        for _, name, child_us in stack:
            totals[name] -= child_us
    return totals, counts


def request_paths(complete, instants):
    """rid -> timestamp-ordered [(ts, name, dur_or_None)]."""
    paths = collections.defaultdict(list)
    for event in complete:
        rid = event.get("args", {}).get("rid")
        if rid is not None:
            paths[rid].append((event["ts"], event["name"], event["dur"]))
    for event in instants:
        rid = event.get("args", {}).get("rid")
        if rid is not None:
            paths[rid].append((event["ts"], event["name"], None))
    for spans in paths.values():
        spans.sort()
    return paths


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace_event JSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="span names to list by self time (default 10)")
    parser.add_argument("--requests", type=int, default=5,
                        help="request critical paths to print (default 5)")
    parser.add_argument("--assert-spans", default="",
                        help="comma-separated span names that must appear "
                             "(substring match); exit 1 when any is missing")
    args = parser.parse_args()

    complete, instants, dropped = load_events(args.trace)
    names = {e["name"] for e in complete} | {e["name"] for e in instants}

    missing = []
    for want in filter(None, args.assert_spans.split(",")):
        if not any(want in name for name in names):
            missing.append(want)
    if missing:
        print(f"FAIL: trace is missing span(s): {', '.join(missing)}",
              file=sys.stderr)
        return 1

    print(f"{len(complete)} spans, {len(instants)} instants, "
          f"{len(names)} distinct names, {dropped} dropped")

    totals, counts = self_times(complete)
    if totals:
        print(f"\ntop {args.top} span names by self time:")
        print(f"  {'self ms':>10}  {'count':>7}  {'avg us':>9}  name")
        ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
        for name, self_us in ranked[:args.top]:
            n = counts[name]
            print(f"  {self_us / 1000.0:10.3f}  {n:7d}  "
                  f"{self_us / n:9.1f}  {name}")

    paths = request_paths(complete, instants)
    if paths:
        shown = sorted(paths)[:args.requests]
        print(f"\nper-request critical path "
              f"({len(paths)} requests traced, showing {len(shown)}):")
        for rid in shown:
            spans = paths[rid]
            origin = spans[0][0]
            print(f"  rid {rid}:")
            for ts, name, dur in spans:
                wait = ts - origin
                if dur is None:
                    print(f"    +{wait:9.1f}us  {name} (instant)")
                else:
                    print(f"    +{wait:9.1f}us  {name} ({dur:.1f}us)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
