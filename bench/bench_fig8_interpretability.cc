// Reproduces Fig. 8: interpretability of the disentangled representations —
// exclusive representations align with future flow during *peak* periods
// (fluctuating traffic), while the interactive representation aligns during
// *non-peak* periods (steady traffic). TaxiBJ, a 39-hour window, as in the
// paper.

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/similarity.h"
#include "bench/bench_common.h"
#include "eval/splits.h"
#include "tensor/tensor_ops.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;
namespace ag = musenet::autograd;

/// Per-sample cosine similarity between the *spatial patterns* of a
/// representation map and the future flow: channel-averaged maps are
/// mean-centered per sample before the cosine, so a constant offset (all
/// representations positive, all scaled flows near −1) cannot saturate the
/// similarity at ±1. This mirrors the paper's heatmaps, which compare
/// spatial structure.
std::vector<double> SpatialSimilarity(const ts::Tensor& z_map,
                                      const ts::Tensor& future) {
  // z_map: [B, d, H, W]; future: [B, 2, H, W].
  ts::Tensor z = ts::Mean(z_map, 1);    // [B, H, W]
  ts::Tensor y = ts::Mean(future, 1);   // [B, H, W]
  const int64_t b = z.dim(0);
  const int64_t plane = z.dim(1) * z.dim(2);
  std::vector<double> out(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    double mz = 0.0, my = 0.0;
    for (int64_t k = 0; k < plane; ++k) {
      mz += z.flat(i * plane + k);
      my += y.flat(i * plane + k);
    }
    mz /= plane;
    my /= plane;
    double dot = 0.0, nz = 0.0, ny = 0.0;
    for (int64_t k = 0; k < plane; ++k) {
      const double a = z.flat(i * plane + k) - mz;
      const double c = y.flat(i * plane + k) - my;
      dot += a * c;
      nz += a * a;
      ny += c * c;
    }
    const double denom = std::sqrt(nz * ny);
    out[static_cast<size_t>(i)] = denom < 1e-12 ? 0.0 : dot / denom;
  }
  return out;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  namespace ts = musenet::tensor;
  bench::ExperimentContext ctx = bench::MakeContext(
      "Fig. 8 — peak/non-peak interpretability of representations (TaxiBJ)");

  const sim::DatasetId id = sim::DatasetId::kTaxiBj;
  data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
  auto model = bench::GetOrTrainMuse(id, dataset, ctx);
  model->SetTraining(false);
  const auto& flows = dataset.flows();

  // A consecutive window of test samples (~39 hours at f = 48 ⇒ 78 frames).
  const int64_t window = std::min<int64_t>(
      78, static_cast<int64_t>(dataset.test_indices().size()));

  double excl_peak = 0.0, excl_off = 0.0;
  double inter_peak = 0.0, inter_off = 0.0;
  int64_t n_peak = 0, n_off = 0;

  TablePrinter series({"interval", "hour", "peak", "sim Z^C", "sim Z^P",
                       "sim Z^T", "sim Z^S"});

  for (int64_t begin = 0; begin < window; begin += 8) {
    data::Batch batch = dataset.MakeBatchFromPool(
        dataset.test_indices(), static_cast<size_t>(begin), 8);
    auto forward = model->Forward(batch, /*stochastic=*/false);
    const auto sc = SpatialSimilarity(
        forward.exclusive[muse::kCloseness].representation.value(),
        batch.target);
    const auto sp = SpatialSimilarity(
        forward.exclusive[muse::kPeriod].representation.value(),
        batch.target);
    const auto st = SpatialSimilarity(
        forward.exclusive[muse::kTrend].representation.value(),
        batch.target);
    const auto ss = SpatialSimilarity(
        forward.interactive[0].representation.value(), batch.target);
    for (size_t b = 0; b < sc.size(); ++b) {
      const int64_t t = batch.target_indices[b];
      const bool peak = eval::IsPeakInterval(flows, t);
      const double excl_mean = (sc[b] + sp[b] + st[b]) / 3.0;
      if (peak) {
        excl_peak += excl_mean;
        inter_peak += ss[b];
        ++n_peak;
      } else {
        excl_off += excl_mean;
        inter_off += ss[b];
        ++n_off;
      }
      series.AddRow({std::to_string(t), bench::F2(flows.HourOfDay(t)),
                     peak ? "1" : "0", bench::F2(sc[b]), bench::F2(sp[b]),
                     bench::F2(st[b]), bench::F2(ss[b])});
    }
  }
  (void)series.WriteCsv(ctx.results_dir + "/fig8_series.csv");

  TablePrinter table({"Representation", "Mean sim (peak)",
                      "Mean sim (non-peak)", "Peak − NonPeak"});
  const double ep = excl_peak / std::max<int64_t>(1, n_peak);
  const double eo = excl_off / std::max<int64_t>(1, n_off);
  const double ip = inter_peak / std::max<int64_t>(1, n_peak);
  const double io = inter_off / std::max<int64_t>(1, n_off);
  table.AddRow({"Exclusive (avg of Z^C,Z^P,Z^T)", bench::F2(ep),
                bench::F2(eo), bench::F2(ep - eo)});
  table.AddRow({"Interactive (Z^S)", bench::F2(ip), bench::F2(io),
                bench::F2(ip - io)});
  bench::EmitTable(ctx, "fig8_interpretability", table);

  std::printf(
      "Shape check vs paper Fig. 8: the paper finds exclusive codes aligning\n"
      "with future flow during peaks (positive Peak−NonPeak gap) and the\n"
      "interactive code during non-peak periods (negative gap). At reduced\n"
      "scale expect the interactive gap's sign to match and the exclusive\n"
      "gap to be small (see EXPERIMENTS.md).\n");
  return 0;
}
