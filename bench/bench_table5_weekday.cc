// Reproduces Table V: weekday vs weekend one-step performance of ST-GSP,
// DeepSTN+, ST-SSL and MUSE-Net.
//
// Weekdays are Monday–Friday, as in the paper. Predictions are reused from
// the Table II cache when available.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table V — weekday vs weekend comparison");

  const std::vector<std::string> methods = {"STGSP", "DeepSTN+", "ST-SSL",
                                            "MUSE-Net"};

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    std::printf("--- %s ---\n", sim::DatasetName(id).c_str());

    TablePrinter table({"Method", "Wkday Out RMSE", "Wkday Out MAPE",
                        "Wkday In RMSE", "Wkday In MAPE", "Wkend Out RMSE",
                        "Wkend Out MAPE", "Wkend In RMSE", "Wkend In MAPE"});
    for (const std::string& method : methods) {
      eval::PredictionSeries series =
          bench::GetOrComputePredictions(id, method, 0, ctx);
      eval::FlowMetrics weekday = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kWeekday);
      eval::FlowMetrics weekend = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kWeekend);
      table.AddRow({method, bench::F2(weekday.outflow.rmse),
                    bench::Pct(weekday.outflow.mape),
                    bench::F2(weekday.inflow.rmse),
                    bench::Pct(weekday.inflow.mape),
                    bench::F2(weekend.outflow.rmse),
                    bench::Pct(weekend.outflow.mape),
                    bench::F2(weekend.inflow.rmse),
                    bench::Pct(weekend.inflow.mape)});
    }
    bench::EmitTable(ctx,
                     std::string("table5_weekday_") + sim::DatasetName(id),
                     table);
  }

  std::printf(
      "Shape check vs paper Table V: weekend errors differ from weekday\n"
      "errors (travel demand shifts) for every model. The paper additionally\n"
      "has MUSE-Net leading both buckets (4–25%% RMSE gains); at reduced\n"
      "scale expect the Table II ordering per bucket (see EXPERIMENTS.md).\n");
  return 0;
}
