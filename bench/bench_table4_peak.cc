// Reproduces Table IV: peak vs non-peak one-step performance of ST-GSP,
// DeepSTN+, ST-SSL and MUSE-Net.
//
// Peak periods follow the paper: 7:00–9:00 and 17:00–19:00. Predictions are
// reused from the Table II cache when available.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table IV — peak vs non-peak comparison");

  const std::vector<std::string> methods = {"STGSP", "DeepSTN+", "ST-SSL",
                                            "MUSE-Net"};

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    std::printf("--- %s ---\n", sim::DatasetName(id).c_str());

    TablePrinter table({"Method", "Peak Out RMSE", "Peak Out MAPE",
                        "Peak In RMSE", "Peak In MAPE", "NonPeak Out RMSE",
                        "NonPeak Out MAPE", "NonPeak In RMSE",
                        "NonPeak In MAPE"});
    for (const std::string& method : methods) {
      eval::PredictionSeries series =
          bench::GetOrComputePredictions(id, method, 0, ctx);
      eval::FlowMetrics peak = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kPeak);
      eval::FlowMetrics off = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kNonPeak);
      table.AddRow({method, bench::F2(peak.outflow.rmse),
                    bench::Pct(peak.outflow.mape),
                    bench::F2(peak.inflow.rmse),
                    bench::Pct(peak.inflow.mape),
                    bench::F2(off.outflow.rmse),
                    bench::Pct(off.outflow.mape),
                    bench::F2(off.inflow.rmse),
                    bench::Pct(off.inflow.mape)});
    }
    bench::EmitTable(ctx, std::string("table4_peak_") + sim::DatasetName(id),
                     table);
  }

  std::printf(
      "Shape check vs paper Table IV: peak errors exceed non-peak errors\n"
      "for every model (peaks are harder). The paper additionally has\n"
      "MUSE-Net leading both regimes; at reduced scale expect the Table II\n"
      "ordering per bucket (see EXPERIMENTS.md).\n");
  return 0;
}
