// Reproduces Fig. 5: t-SNE visualization of the original sub-series versus
// the disentangled representations (independence analysis, RQ3).
//
// The paper shows that raw closeness/period/trend samples are mixed up in
// 2-D, while the learned Z^C/Z^P/Z^T/Z^S clusters separate. We reproduce the
// embedding, emit it as CSV for plotting, and quantify the separation with
// silhouette scores (raw should be ≈0 or negative; disentangled clearly
// positive) plus a KSG mutual-information check that Z^S is nearly
// independent of each exclusive representation.

#include <cstdio>
#include <vector>

#include "analysis/mutual_info.h"
#include "analysis/similarity.h"
#include "analysis/tsne.h"
#include "bench/bench_common.h"
#include "tensor/tensor_ops.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;

/// Spatially pooled [B, C·?] view of raw sub-series input: mean over space
/// per channel.
ts::Tensor PoolRaw(const ts::Tensor& block) {
  return ts::Mean(ts::Mean(block, 3), 2);  // [B, C]
}

/// Truncates/pads feature dim to `dim` columns so raw views are comparable.
ts::Tensor TakeColumns(const ts::Tensor& m, int64_t dim) {
  return ts::Slice(m, 1, 0, std::min<int64_t>(dim, m.dim(1)));
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Fig. 5 — t-SNE of original vs disentangled");

  TablePrinter table({"Dataset", "Raw silhouette", "Disentangled silhouette",
                      "I(Z^C;Z^S)", "I(Z^P;Z^S)", "I(Z^T;Z^S)"});

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    auto model = bench::GetOrTrainMuse(id, dataset, ctx);
    model->SetTraining(false);

    // Collect pooled raw sub-series and representations over test samples.
    const int64_t max_samples = 120;
    std::vector<ts::Tensor> raw_c, raw_p, raw_t;
    std::vector<ts::Tensor> z_c, z_p, z_t, z_s;
    const auto& pool = dataset.test_indices();
    for (size_t begin = 0;
         begin < pool.size() &&
         static_cast<int64_t>(begin) < max_samples;
         begin += 8) {
      data::Batch batch = dataset.MakeBatchFromPool(pool, begin, 8);
      raw_c.push_back(PoolRaw(batch.closeness));
      raw_p.push_back(PoolRaw(batch.period));
      raw_t.push_back(PoolRaw(batch.trend));
      auto reps = model->ExtractRepresentations(batch);
      z_c.push_back(reps.z_closeness);
      z_p.push_back(reps.z_period);
      z_t.push_back(reps.z_trend);
      z_s.push_back(reps.z_interactive);
    }

    // Raw embedding: one point per (sample, sub-series), matched feature dim.
    const int64_t raw_dim = 6;
    ts::Tensor raw_all = ts::Concat(
        {TakeColumns(ts::Concat(raw_c, 0), raw_dim),
         TakeColumns(ts::Concat(raw_p, 0), raw_dim),
         TakeColumns(ts::Concat(raw_t, 0), raw_dim)},
        0);
    const int64_t per_group_raw = ts::Concat(raw_c, 0).dim(0);
    std::vector<int> raw_labels;
    for (int group = 0; group < 3; ++group) {
      for (int64_t i = 0; i < per_group_raw; ++i) raw_labels.push_back(group);
    }

    ts::Tensor rep_all =
        ts::Concat({ts::Concat(z_c, 0), ts::Concat(z_p, 0),
                    ts::Concat(z_t, 0), ts::Concat(z_s, 0)},
                   0);
    std::vector<int> rep_labels;
    for (int group = 0; group < 4; ++group) {
      for (int64_t i = 0; i < per_group_raw; ++i) rep_labels.push_back(group);
    }

    analysis::TsneOptions tsne;
    tsne.iterations = 250;
    tsne.perplexity = 15.0;
    tsne.seed = ctx.scale.seed;
    ts::Tensor raw_embedded = analysis::RunTsne(raw_all, tsne);
    ts::Tensor rep_embedded = analysis::RunTsne(rep_all, tsne);

    const double raw_sil =
        analysis::SilhouetteScore(raw_embedded, raw_labels);
    const double rep_sil =
        analysis::SilhouetteScore(rep_embedded, rep_labels);

    // Independence (semantic pushing, RQ3): MI between each exclusive
    // representation and the interactive one.
    const double mi_c = analysis::EstimateMutualInformationKsg(
        ts::Concat(z_c, 0), ts::Concat(z_s, 0));
    const double mi_p = analysis::EstimateMutualInformationKsg(
        ts::Concat(z_p, 0), ts::Concat(z_s, 0));
    const double mi_t = analysis::EstimateMutualInformationKsg(
        ts::Concat(z_t, 0), ts::Concat(z_s, 0));

    table.AddRow({sim::DatasetName(id), bench::F2(raw_sil),
                  bench::F2(rep_sil), bench::F2(mi_c), bench::F2(mi_p),
                  bench::F2(mi_t)});

    // Emit embeddings for plotting.
    TablePrinter points({"x", "y", "group", "space"});
    const char* raw_names[3] = {"closeness", "period", "trend"};
    for (int64_t i = 0; i < raw_embedded.dim(0); ++i) {
      points.AddRow({bench::F2(raw_embedded.at({i, 0})),
                     bench::F2(raw_embedded.at({i, 1})),
                     raw_names[raw_labels[static_cast<size_t>(i)]], "raw"});
    }
    const char* rep_names[4] = {"Z^C", "Z^P", "Z^T", "Z^S"};
    for (int64_t i = 0; i < rep_embedded.dim(0); ++i) {
      points.AddRow({bench::F2(rep_embedded.at({i, 0})),
                     bench::F2(rep_embedded.at({i, 1})),
                     rep_names[rep_labels[static_cast<size_t>(i)]],
                     "disentangled"});
    }
    (void)points.WriteCsv(ctx.results_dir + "/fig5_tsne_" +
                          sim::DatasetName(id) + ".csv");
  }

  bench::EmitTable(ctx, "fig5_tsne_summary", table);
  std::printf(
      "Shape check vs paper Fig. 5: raw sub-series are entangled (silhouette\n"
      "near or below 0) while disentangled representations separate\n"
      "(silhouette clearly positive); MI between Z^S and each exclusive code\n"
      "stays small, matching the semantic-pushing goal.\n");
  return 0;
}
