// End-to-end training-step benchmark: the full forward + backward +
// clipped-Adam update that `Train()` runs per mini-batch, measured for
// MUSE-Net and for the strongest CNN baseline (DeepSTN+) at two batch sizes
// on a TaxiBJ-like 16×16 grid. This is the number the perf trajectory tracks
// across PRs — kernel microbenchmarks live in bench_micro_substrate, while
// this binary answers "how many training samples per second does a realistic
// step sustain end to end" (allocation, autograd bookkeeping and optimizer
// included). `tools/run_training_bench.sh` records the results to
// BENCH_training.json at the repo root.

#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "baselines/deepstn.h"
#include "data/dataset.h"
#include "muse/model.h"
#include "optim/adam.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/shard_context.h"
#include "util/thread_pool.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;
namespace ag = musenet::autograd;

constexpr int64_t kGridH = 16;
constexpr int64_t kGridW = 16;
constexpr double kClipNorm = 5.0;  // eval::TrainConfig default.

/// Synthetic scaled batch matching the dataset pipeline's output shapes.
data::Batch MakeSyntheticBatch(int64_t batch_size,
                               const data::PeriodicitySpec& spec) {
  Rng rng(6);
  data::Batch batch;
  batch.closeness = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.ClosenessChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.period = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.PeriodChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.trend = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.TrendChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.target = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, 2, kGridH, kGridW}), rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < batch_size; ++i) batch.target_indices.push_back(i);
  return batch;
}

void BM_MuseNetTrainStep(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  muse::MuseNetConfig config;
  config.grid_h = kGridH;
  config.grid_w = kGridW;
  config.repr_dim = 12;
  config.dist_dim = 32;
  muse::MuseNet model(config, 7);
  optim::Adam optimizer(model.Parameters(), 2e-4);
  data::Batch batch = MakeSyntheticBatch(batch_size, config.periodicity);

  for (auto _ : state) {
    auto forward = model.Forward(batch, /*stochastic=*/true);
    ag::Variable loss = model.ComputeLoss(forward, batch, nullptr);
    model.ZeroGrad();
    ag::Backward(loss);
    optim::ClipGradNorm(optimizer.params(), kClipNorm);
    optimizer.Step();
    benchmark::DoNotOptimize(loss.value().scalar());
    ag::ReleaseGraph(loss);  // As Train() does between batches.
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_MuseNetTrainStep)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

/// Data-parallel training step (see DESIGN.md "Data-parallel training"):
/// the mini-batch splits into a fixed four shards whose forward+backward
/// run across `workers` threads on private autograd graphs (LeafGradSink
/// diverting leaf gradients into per-shard buffers, ShardContext remapping
/// module RNG streams), combined by the deterministic tree reduction. Shard
/// batches are pre-assembled, as the prefetcher arranges during training,
/// so the measurement isolates the compute step. Workers=1 is the sharding
/// overhead floor; the workers sweep is the scaling headline
/// (`steps_per_sec_by_workers` in BENCH_training.json).
void BM_MuseNetTrainStepSharded(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  const int num_workers = static_cast<int>(state.range(1));
  constexpr int kShards = 4;
  muse::MuseNetConfig config;
  config.grid_h = kGridH;
  config.grid_w = kGridW;
  config.repr_dim = 12;
  config.dist_dim = 32;
  muse::MuseNet model(config, 7);
  optim::Adam optimizer(model.Parameters(), 2e-4);
  const std::vector<ag::Variable>& params = optimizer.params();
  std::vector<data::Batch> shard_batches;
  for (int s = 0; s < kShards; ++s) {
    shard_batches.push_back(
        MakeSyntheticBatch(batch_size / kShards, config.periodicity));
  }
  std::vector<std::pair<std::string, Rng*>> named = model.NamedRngs();
  std::unique_ptr<util::ThreadPool> pool;
  if (num_workers > 1) {
    pool = std::make_unique<util::ThreadPool>(num_workers);
  }

  for (auto _ : state) {
    std::vector<std::vector<Rng>> children(kShards);
    for (auto& [name, parent] : named) {
      (void)name;
      for (int s = 0; s < kShards; ++s) {
        children[s].push_back(parent->Fork(static_cast<uint64_t>(s)));
      }
    }
    std::vector<optim::ShardGradients> grads(kShards);
    std::vector<std::vector<std::function<void()>>> deferred(kShards);
    model.ZeroGrad();
    auto run_shard = [&](int s) {
      util::ShardContext context(s, kShards);
      for (size_t k = 0; k < named.size(); ++k) {
        context.MapRng(named[k].second, &children[s][k]);
      }
      util::ShardContext::Scope scope(&context);
      grads[s].grads.resize(params.size());
      grads[s].present.assign(params.size(), 0);
      ag::LeafGradSink sink;
      auto forward = model.Forward(shard_batches[s], /*stochastic=*/true);
      ag::Variable loss =
          model.ComputeLoss(forward, shard_batches[s], nullptr);
      ag::BackwardWithSeed(
          loss, ts::Tensor::Full(loss.value().shape(), 1.0f / kShards));
      benchmark::DoNotOptimize(loss.value().scalar());
      for (size_t i = 0; i < params.size(); ++i) {
        if (sink.Take(params[i].node().get(), &grads[s].grads[i])) {
          grads[s].present[i] = 1;
        }
      }
      deferred[s] = std::move(context.deferred());
      ag::ReleaseGraph(loss);
    };
    if (pool != nullptr) {
      pool->ParallelForAcross(0, kShards, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) run_shard(static_cast<int>(s));
      });
    } else {
      for (int s = 0; s < kShards; ++s) run_shard(s);
    }
    for (auto& shard : deferred) {
      for (auto& update : shard) update();
    }
    optim::ReduceShardGradients(params, &grads);
    optim::ClipGradNorm(params, kClipNorm);
    optimizer.Step();
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
// UseRealTime: with workers > 1 the compute runs on pool threads, so the
// default main-thread CPU clock would overstate scaling; wall clock is the
// honest steps/s basis.
BENCHMARK(BM_MuseNetTrainStepSharded)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Exposes the protected differentiable forward so the bench can drive the
/// exact per-batch step that NeuralForecaster::Train runs.
struct BenchDeepStn : baselines::DeepStnPlus {
  using DeepStnPlus::DeepStnPlus;
  using DeepStnPlus::ForwardPredict;
};

void BM_DeepStnTrainStep(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  data::PeriodicitySpec spec;
  BenchDeepStn model(kGridH, kGridW, spec, /*channels=*/16,
                     /*resplus_blocks=*/2, /*seed=*/7);
  optim::Adam optimizer(model.Parameters(), 2e-4);
  data::Batch batch = MakeSyntheticBatch(batch_size, spec);

  for (auto _ : state) {
    ag::Variable pred = model.ForwardPredict(batch);
    ag::Variable loss =
        ag::MeanAll(ag::Square(ag::Sub(pred, ag::Constant(batch.target))));
    model.ZeroGrad();
    ag::Backward(loss);
    optim::ClipGradNorm(optimizer.params(), kClipNorm);
    optimizer.Step();
    benchmark::DoNotOptimize(loss.value().scalar());
    ag::ReleaseGraph(loss);  // As Train() does between batches.
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_DeepStnTrainStep)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace musenet

BENCHMARK_MAIN();
