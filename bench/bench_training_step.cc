// End-to-end training-step benchmark: the full forward + backward +
// clipped-Adam update that `Train()` runs per mini-batch, measured for
// MUSE-Net and for the strongest CNN baseline (DeepSTN+) at two batch sizes
// on a TaxiBJ-like 16×16 grid. This is the number the perf trajectory tracks
// across PRs — kernel microbenchmarks live in bench_micro_substrate, while
// this binary answers "how many training samples per second does a realistic
// step sustain end to end" (allocation, autograd bookkeeping and optimizer
// included). `tools/run_training_bench.sh` records the results to
// BENCH_training.json at the repo root.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "baselines/deepstn.h"
#include "data/dataset.h"
#include "muse/model.h"
#include "optim/adam.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;
namespace ag = musenet::autograd;

constexpr int64_t kGridH = 16;
constexpr int64_t kGridW = 16;
constexpr double kClipNorm = 5.0;  // eval::TrainConfig default.

/// Synthetic scaled batch matching the dataset pipeline's output shapes.
data::Batch MakeSyntheticBatch(int64_t batch_size,
                               const data::PeriodicitySpec& spec) {
  Rng rng(6);
  data::Batch batch;
  batch.closeness = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.ClosenessChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.period = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.PeriodChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.trend = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, spec.TrendChannels(), kGridH, kGridW}), rng,
      -1.0f, 1.0f);
  batch.target = ts::Tensor::RandomUniform(
      ts::Shape({batch_size, 2, kGridH, kGridW}), rng, -1.0f, 1.0f);
  for (int64_t i = 0; i < batch_size; ++i) batch.target_indices.push_back(i);
  return batch;
}

void BM_MuseNetTrainStep(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  muse::MuseNetConfig config;
  config.grid_h = kGridH;
  config.grid_w = kGridW;
  config.repr_dim = 12;
  config.dist_dim = 32;
  muse::MuseNet model(config, 7);
  optim::Adam optimizer(model.Parameters(), 2e-4);
  data::Batch batch = MakeSyntheticBatch(batch_size, config.periodicity);

  for (auto _ : state) {
    auto forward = model.Forward(batch, /*stochastic=*/true);
    ag::Variable loss = model.ComputeLoss(forward, batch, nullptr);
    model.ZeroGrad();
    ag::Backward(loss);
    optim::ClipGradNorm(optimizer.params(), kClipNorm);
    optimizer.Step();
    benchmark::DoNotOptimize(loss.value().scalar());
    ag::ReleaseGraph(loss);  // As Train() does between batches.
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_MuseNetTrainStep)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

/// Exposes the protected differentiable forward so the bench can drive the
/// exact per-batch step that NeuralForecaster::Train runs.
struct BenchDeepStn : baselines::DeepStnPlus {
  using DeepStnPlus::DeepStnPlus;
  using DeepStnPlus::ForwardPredict;
};

void BM_DeepStnTrainStep(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  data::PeriodicitySpec spec;
  BenchDeepStn model(kGridH, kGridW, spec, /*channels=*/16,
                     /*resplus_blocks=*/2, /*seed=*/7);
  optim::Adam optimizer(model.Parameters(), 2e-4);
  data::Batch batch = MakeSyntheticBatch(batch_size, spec);

  for (auto _ : state) {
    ag::Variable pred = model.ForwardPredict(batch);
    ag::Variable loss =
        ag::MeanAll(ag::Square(ag::Sub(pred, ag::Constant(batch.target))));
    model.ZeroGrad();
    ag::Backward(loss);
    optim::ClipGradNorm(optimizer.params(), kClipNorm);
    optimizer.Step();
    benchmark::DoNotOptimize(loss.value().scalar());
    ag::ReleaseGraph(loss);  // As Train() does between batches.
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_DeepStnTrainStep)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace musenet

BENCHMARK_MAIN();
