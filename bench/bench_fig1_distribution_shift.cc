// Reproduces Fig. 1: the two distribution-shift phenomena in traffic series.
//
// The paper illustrates (a) *level shift* — a sub-series (e.g. closeness)
// whose overall level differs from another (e.g. trend), and (b) *point
// shift* — outliers within a series. Both arise in the simulator from
// level-/point-shift events. This bench quantifies them instead of plotting:
// for each dataset it reports the level divergence between closeness and
// trend windows around level events, and the outlier z-scores around point
// events.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/city.h"

namespace musenet {
namespace {

using bench::ExperimentContext;

/// Mean city-wide outflow over [start, start+len).
double MeanFlow(const sim::FlowSeries& flows, int64_t start, int64_t len) {
  double total = 0.0;
  int64_t count = 0;
  const auto& grid = flows.grid();
  for (int64_t t = std::max<int64_t>(0, start);
       t < std::min(flows.num_intervals(), start + len); ++t) {
    for (int64_t h = 0; h < grid.height; ++h) {
      for (int64_t w = 0; w < grid.width; ++w) {
        total += flows.at(t, sim::kOutflow, h, w);
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

void RunDataset(sim::DatasetId id, const ExperimentContext& ctx,
                TablePrinter* table) {
  const sim::CityConfig config =
      sim::MakeCityConfig(id, ctx.scale, ctx.scale.seed);
  sim::City city(config, ctx.scale.seed * 7919ULL +
                             static_cast<uint64_t>(id) + 1);
  const sim::FlowSeries flows = city.Simulate().flows;
  const int f = config.intervals_per_day;

  // Level shift: during a suppression/boost event, the "closeness" level
  // diverges from the same timeslots one week earlier (the trend view).
  int level_events = 0;
  double level_ratio = 0.0;
  int point_events = 0;
  double max_z = 0.0;

  for (const sim::ShiftEvent& event : config.shifts) {
    if (event.kind == sim::ShiftEvent::Kind::kLevel) {
      const int64_t start = event.start_interval;
      if (start - 7 * f < 0 || start + event.duration > flows.num_intervals())
        continue;
      const double now = MeanFlow(flows, start, event.duration);
      const double week_ago = MeanFlow(flows, start - 7 * f, event.duration);
      if (week_ago > 1e-6) {
        level_ratio += now / week_ago;
        ++level_events;
      }
    } else {
      // Point shift: z-score of the event region's outflow during the burst
      // against that region's overall distribution.
      const auto& region = event.region;
      double mean = 0.0, var = 0.0;
      for (int64_t t = 0; t < flows.num_intervals(); ++t) {
        mean += flows.at(t, sim::kOutflow, region.h, region.w);
      }
      mean /= static_cast<double>(flows.num_intervals());
      for (int64_t t = 0; t < flows.num_intervals(); ++t) {
        const double d =
            flows.at(t, sim::kOutflow, region.h, region.w) - mean;
        var += d * d;
      }
      var /= static_cast<double>(flows.num_intervals());
      const double sd = std::sqrt(std::max(var, 1e-9));
      for (int64_t t = event.start_interval;
           t < std::min(flows.num_intervals(),
                        event.start_interval + event.duration);
           ++t) {
        max_z = std::max(
            max_z, (flows.at(t, sim::kOutflow, region.h, region.w) - mean) /
                       sd);
      }
      ++point_events;
    }
  }

  table->AddRow(
      {sim::DatasetName(id), std::to_string(level_events),
       level_events > 0 ? bench::F2(level_ratio / level_events) : "-",
       std::to_string(point_events),
       point_events > 0 ? bench::F2(max_z) : "-"});
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Fig. 1 — distribution shift (level & point)");

  TablePrinter table({"Dataset", "LevelEvents", "Closeness/Trend level ratio",
                      "PointEvents", "Max outlier z-score"});
  for (sim::DatasetId id : sim::kAllDatasets) {
    RunDataset(id, ctx, &table);
  }
  bench::EmitTable(ctx, "fig1_distribution_shift", table);

  std::printf(
      "Shape check vs paper Fig. 1: level events push the closeness window\n"
      "far from its weekly (trend) level (ratio well below/above 1), and\n"
      "point events appear as strong outliers (z >> 3) — the two shift\n"
      "phenomena MUSE-Net's exclusive representations are built to absorb.\n");
  return 0;
}
