// Reproduces Fig. 4: predicted vs ground-truth flow curves on the three
// datasets for STGSP, DeepSTN+ and MUSE-Net.
//
// The paper plots two test days of city traffic per dataset. We emit the
// same series as CSV (one column per model plus the ground truth, city-wide
// outflow per interval) and report each model's fit quality along the curve:
// RMSE over the plotted window and the correlation with the ground truth,
// split into peak and non-peak slots (the paper's point is that MUSE-Net
// tracks peak dynamics best).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "eval/splits.h"

namespace musenet {
namespace {

/// City-wide outflow of frame k of a prediction series tensor.
double CityOutflow(const tensor::Tensor& frames, int64_t k) {
  const int64_t plane = frames.dim(2) * frames.dim(3);
  double total = 0.0;
  for (int64_t i = 0; i < plane; ++i) {
    total += frames.flat((k * 2 + sim::kOutflow) * plane + i);
  }
  return total;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Fig. 4 — prediction vs ground truth curves");

  const std::vector<std::string> methods = {"STGSP", "DeepSTN+", "MUSE-Net"};

  TablePrinter quality({"Dataset", "Method", "Curve RMSE", "Correlation",
                        "Peak RMSE", "NonPeak RMSE"});

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    const auto& flows = dataset.flows();
    // Plot window: the first two test days (as in the paper's figure).
    const int64_t window = std::min<int64_t>(
        2 * flows.intervals_per_day(),
        static_cast<int64_t>(dataset.test_indices().size()));

    TablePrinter curve({"interval", "hour", "truth", "STGSP", "DeepSTN+",
                        "MUSE-Net"});
    std::vector<std::vector<double>> model_series;
    std::vector<double> truth_series;

    for (const std::string& method : methods) {
      eval::PredictionSeries series =
          bench::GetOrComputePredictions(id, method, 0, ctx);
      std::vector<double> values;
      for (int64_t k = 0; k < window; ++k) {
        values.push_back(CityOutflow(series.predictions, k));
      }
      if (truth_series.empty()) {
        for (int64_t k = 0; k < window; ++k) {
          truth_series.push_back(CityOutflow(series.truths, k));
        }
      }
      // Quality along the curve, split by peak periods.
      double sq = 0.0, sq_peak = 0.0, sq_off = 0.0;
      int64_t n_peak = 0, n_off = 0;
      double mean_p = 0.0, mean_t = 0.0;
      for (int64_t k = 0; k < window; ++k) {
        mean_p += values[static_cast<size_t>(k)];
        mean_t += truth_series[static_cast<size_t>(k)];
      }
      mean_p /= static_cast<double>(window);
      mean_t /= static_cast<double>(window);
      double cov = 0.0, vp = 0.0, vt = 0.0;
      for (int64_t k = 0; k < window; ++k) {
        const double p = values[static_cast<size_t>(k)];
        const double t = truth_series[static_cast<size_t>(k)];
        const double err = p - t;
        sq += err * err;
        const int64_t interval =
            series.target_indices[static_cast<size_t>(k)];
        if (eval::IsPeakInterval(flows, interval)) {
          sq_peak += err * err;
          ++n_peak;
        } else {
          sq_off += err * err;
          ++n_off;
        }
        cov += (p - mean_p) * (t - mean_t);
        vp += (p - mean_p) * (p - mean_p);
        vt += (t - mean_t) * (t - mean_t);
      }
      quality.AddRow(
          {sim::DatasetName(id), method,
           bench::F2(std::sqrt(sq / static_cast<double>(window))),
           bench::F2(cov / std::max(1e-12, std::sqrt(vp * vt))),
           n_peak > 0 ? bench::F2(std::sqrt(sq_peak / n_peak)) : "-",
           n_off > 0 ? bench::F2(std::sqrt(sq_off / n_off)) : "-"});
      model_series.push_back(std::move(values));
    }

    for (int64_t k = 0; k < window; ++k) {
      curve.AddRow({std::to_string(k),
                    bench::F2(flows.HourOfDay(
                        dataset.test_indices()[static_cast<size_t>(k)])),
                    bench::F2(truth_series[static_cast<size_t>(k)]),
                    bench::F2(model_series[0][static_cast<size_t>(k)]),
                    bench::F2(model_series[1][static_cast<size_t>(k)]),
                    bench::F2(model_series[2][static_cast<size_t>(k)])});
    }
    const Status status = curve.WriteCsv(
        ctx.results_dir + "/fig4_curve_" + sim::DatasetName(id) + ".csv");
    if (status.ok()) {
      std::printf("wrote %s\n", (ctx.results_dir + "/fig4_curve_" +
                                 sim::DatasetName(id) + ".csv")
                                    .c_str());
    }
  }

  bench::EmitTable(ctx, "fig4_prediction_quality", quality);
  std::printf(
      "Shape check vs paper Fig. 4: all models track the daily curve\n"
      "(correlation ≥ 0.9); MUSE-Net's relative strength is the peak\n"
      "dynamics — best peak RMSE / correlation on the high-volume datasets.\n");
  return 0;
}
