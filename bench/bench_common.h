#ifndef MUSENET_BENCH_BENCH_COMMON_H_
#define MUSENET_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/dataset.h"
#include "eval/evaluate.h"
#include "eval/forecaster.h"
#include "muse/config.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "util/bench_config.h"
#include "util/table.h"

namespace musenet::bench {

/// Shared configuration of one experiment binary run: the bench scale, the
/// uniform training budget every model receives, and result/cache locations.
struct ExperimentContext {
  BenchScale scale;
  eval::TrainConfig train;
  int64_t max_train_samples = 0;
  std::string results_dir = "results";
};

/// Resolves the context from MUSE_BENCH_SCALE / MUSE_BENCH_SEED and prints a
/// self-describing banner (experiment name, scale, seed, budget) so every
/// output is reproducible from its log.
///
/// Note on the training budget: the paper trains with Adam at lr 2e-4 for
/// 350 epochs; the single-core reproduction uses lr 1e-3 with the scale's
/// epoch budget (30 at "default"), which reaches the comparable regime in
/// minutes instead of hours. `MUSE_BENCH_SCALE=paper` restores the paper's
/// setting.
ExperimentContext MakeContext(const std::string& experiment_name);

/// Generates (deterministically) and intercepts one benchmark dataset.
data::TrafficDataset LoadDataset(sim::DatasetId id,
                                 const ExperimentContext& ctx,
                                 int64_t horizon_offset = 0);

/// MUSE-Net configuration matched to a dataset at the context's scale.
muse::MuseNetConfig MakeMuseConfig(const data::TrafficDataset& dataset,
                                   const ExperimentContext& ctx);

/// Baseline sizing matched to a dataset at the context's scale.
baselines::BaselineSizing MakeSizing(const data::TrafficDataset& dataset,
                                     const ExperimentContext& ctx);

/// Creates a forecaster by table name: "MUSE-Net", a MUSE variant name, or
/// any baseline name from baselines::AllBaselineNames().
std::unique_ptr<eval::Forecaster> MakeModel(const std::string& name,
                                            const data::TrafficDataset& ds,
                                            const ExperimentContext& ctx);

/// Trains `name` on the dataset and collects re-scaled test predictions —
/// or loads them from the on-disk cache if this (scale, seed, dataset,
/// horizon, model) combination ran before. The cache lets Tables IV/V and
/// Fig. 4 reuse Table II's trainings. Set MUSE_BENCH_NO_CACHE=1 to disable.
eval::PredictionSeries GetOrComputePredictions(sim::DatasetId id,
                                               const std::string& model_name,
                                               int64_t horizon_offset,
                                               const ExperimentContext& ctx);

/// Trains (or loads from the checkpoint cache) the full MUSE-Net for a
/// dataset at this context's scale. Used by the representation-analysis
/// figures (Figs. 5–8), which need the model itself, not just predictions.
std::unique_ptr<muse::MuseNet> GetOrTrainMuse(sim::DatasetId id,
                                              const data::TrafficDataset& ds,
                                              const ExperimentContext& ctx);

/// Computes bucketed flow metrics from a cached prediction series.
eval::FlowMetrics MetricsFromSeries(const eval::PredictionSeries& series,
                                    const data::TrafficDataset& dataset,
                                    eval::TimeBucket bucket);

/// As MetricsFromSeries, but from the raw flows (the metrics only need the
/// series and the bucket calendar; pipeline eval stages call this without
/// rebuilding a dataset).
eval::FlowMetrics MetricsFromFlows(const eval::PredictionSeries& series,
                                   const sim::FlowSeries& flows,
                                   eval::TimeBucket bucket);

/// Formats helpers for paper-style cells.
std::string F2(double v);               ///< "12.34".
std::string Pct(double fraction);       ///< "21.28%".

/// Prints the table and writes `<results_dir>/<name>.csv`.
void EmitTable(const ExperimentContext& ctx, const std::string& name,
               TablePrinter& table);

/// Writes pre-rendered CSV bytes to `<results_dir>/<name>.csv` atomically.
/// Used by the pipeline path, where the table stage's cached payload *is*
/// the artifact — a warm rerun rewrites it byte-identically.
void EmitCsv(const ExperimentContext& ctx, const std::string& name,
             const std::string& csv);

}  // namespace musenet::bench

#endif  // MUSENET_BENCH_BENCH_COMMON_H_
