#ifndef MUSENET_BENCH_BENCH_PIPELINE_H_
#define MUSENET_BENCH_BENCH_PIPELINE_H_

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "eval/splits.h"
#include "pipeline/pipeline.h"

namespace musenet::bench {

/// Paper-specific stage builders on top of musenet::pipeline — the
/// experiment DAG behind the table/figure binaries and the `musenet
/// pipeline` CLI verb:
///
///   simulate/<ds>                      city simulation → FlowSeries bytes
///   dataset/<ds>/h<h>                  interception/split/scaler summary
///   train/<ds>/h<h>/<model>            train + collect test predictions
///   train-muse/<ds>                    full MUSE-Net state dict (figures)
///   eval/<ds>/h<h>/<model>/<bucket>    bucketed RMSE/MAE/MAPE text
///   table/<name>                       CSV bytes of a paper-style table
///
/// Every builder fingerprints exactly the inputs its stage function reads,
/// so editing one model's training budget reruns that model's train/eval
/// stages (and the tables downstream) and nothing else.

/// One "MODEL:key=value" training override (CLI --override). `model` "*"
/// matches every model. Keys: epochs, lr, batch, patience.
struct TrainOverride {
  std::string model;
  std::string key;
  std::string value;
};

/// Parses "MODEL:key=value"; rejects unknown keys and malformed text.
Result<TrainOverride> ParseTrainOverride(const std::string& text);

/// The context's training budget with every matching override applied.
Result<eval::TrainConfig> ResolveTrainConfig(
    const ExperimentContext& ctx, const std::string& model_name,
    const std::vector<TrainOverride>& overrides);

/// Short bucket tag used in stage names ("all", "peak", "nonpeak",
/// "weekday", "weekend").
std::string BucketTag(eval::TimeBucket bucket);

// --- Payload codecs -------------------------------------------------------

/// Prediction-series payloads are tensor-container bytes (records
/// "predictions", "truths", "indices") — the same integrity-checked format
/// as model checkpoints.
Result<std::string> SerializePredictionSeries(
    const eval::PredictionSeries& series);
Result<eval::PredictionSeries> ParsePredictionSeries(
    const std::string& label, const std::string& bytes);

/// Metric payloads are canonical "outflow.rmse=<%.17g>\n..." text — small,
/// diffable, and hash-stable across runs and thread counts.
std::string SerializeFlowMetrics(const eval::FlowMetrics& metrics);
Result<eval::FlowMetrics> ParseFlowMetrics(const std::string& label,
                                           const std::string& text);

// --- Stage builders -------------------------------------------------------

/// simulate/<ds>: runs the city simulation at the context's scale and seed.
/// Payload: FlowSeries container bytes, provenance-stamped with
/// sim::SimConfigHash.
int AddSimulateStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                     sim::DatasetId id);

/// dataset/<ds>/h<h>: builds the intercepted/split/scaled dataset and emits
/// a canonical summary (options, split sizes, scaler range). Downstream
/// train stages depend on it so that any dataset-option change invalidates
/// them through one node.
int AddDatasetStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                    sim::DatasetId id, int64_t horizon_offset,
                    int simulate_stage);

/// train/<ds>/h<h>/<model>: trains `model_name` under the resolved budget
/// and collects re-scaled test predictions through the inference engine.
/// Cancellable at step boundaries; with a cache dir, checkpoints land in
/// the stage's keyed scratch directory so an interrupted training resumes.
Result<int> AddTrainStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                          sim::DatasetId id, const std::string& model_name,
                          int64_t horizon_offset, int simulate_stage,
                          int dataset_stage,
                          const std::vector<TrainOverride>& overrides = {});

/// train-muse/<ds>: full MUSE-Net state dict for the representation-analysis
/// figures, which need the model itself rather than its predictions.
Result<int> AddMuseCheckpointStage(
    pipeline::Pipeline* p, const ExperimentContext& ctx, sim::DatasetId id,
    int simulate_stage, int dataset_stage,
    const std::vector<TrainOverride>& overrides = {});

/// eval/<ds>/h<h>/<model>/<bucket>: bucketed flow metrics of a train stage's
/// prediction series.
int AddEvalStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                 sim::DatasetId id, const std::string& model_name,
                 int64_t horizon_offset, eval::TimeBucket bucket,
                 int simulate_stage, int train_stage);

/// Builds the Table-II-style comparison table (method rows + the paper's
/// Improvement row) from the eval payloads of `models` (same order).
Result<TablePrinter> OneStepTableFromPayloads(
    const std::vector<std::string>& models,
    const std::vector<const std::string*>& metric_payloads);

/// table/<name>: CSV bytes of the one-step comparison table over `models`,
/// whose eval stages are `eval_stages` (same order).
int AddOneStepTableStage(pipeline::Pipeline* p, const std::string& table_name,
                         const std::vector<std::string>& models,
                         const std::vector<int>& eval_stages);

// --- Full graphs ----------------------------------------------------------

/// The complete one-step comparison DAG: per dataset, simulate → dataset →
/// one train+eval per model → one table stage.
struct OneStepGraph {
  std::vector<sim::DatasetId> datasets;
  /// table_stages[i] is the table stage id for datasets[i].
  std::vector<int> table_stages;
  /// eval_stages[i][j] is the eval stage id for datasets[i] × models[j].
  std::vector<std::vector<int>> eval_stages;
};

Result<OneStepGraph> BuildOneStepGraph(
    pipeline::Pipeline* p, const ExperimentContext& ctx,
    const std::vector<sim::DatasetId>& datasets,
    const std::vector<std::string>& models, int64_t horizon_offset,
    eval::TimeBucket bucket, const std::vector<TrainOverride>& overrides);

/// Cache directory used by the pipeline-backed bench caches:
/// `<results_dir>/cache/pipeline`, or "" (caching off) when
/// MUSE_BENCH_NO_CACHE=1.
std::string PipelineCacheDir(const ExperimentContext& ctx);

}  // namespace musenet::bench

#endif  // MUSENET_BENCH_BENCH_PIPELINE_H_
