// Reproduces Fig. 9: sensitivity of MUSE-Net to its three hyper-parameters
// on NYC-Bike — (a) the trade-off λ, (b) the distribution dimension k and
// (c) the representation dimension d. The paper repeats each setting ten
// times over wide grids (λ ∈ 1e-3…1e3, k ∈ 16…1024, d ∈ 16…320); we sweep a
// reduced 3-point grid per parameter with 2 repeats at a reduced epoch
// budget — sweeps dominate the harness cost and the relative shape is what
// matters. Widen the loops below for a fuller sweep.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace musenet {
namespace {

struct SweepPoint {
  std::string label;
  double mean_rmse;
  double min_rmse;
  double max_rmse;
};

SweepPoint RunPoint(const std::string& label, muse::MuseNetConfig config,
                    const data::TrafficDataset& dataset,
                    const bench::ExperimentContext& ctx, int repeats) {
  SweepPoint point{label, 0.0, 1e18, -1e18};
  for (int r = 0; r < repeats; ++r) {
    muse::MuseNet model(config, ctx.scale.seed + 101 * r);
    eval::TrainConfig train = ctx.train;
    // Sweeps use a reduced budget (many trainings; see file comment).
    train.epochs = std::max(8, ctx.train.epochs / 4);
    train.seed = ctx.scale.seed + 13 * r;
    model.Train(dataset, train);
    const double rmse =
        eval::EvaluateOnTest(model, dataset, train.batch_size).outflow.rmse;
    point.mean_rmse += rmse;
    point.min_rmse = std::min(point.min_rmse, rmse);
    point.max_rmse = std::max(point.max_rmse, rmse);
  }
  point.mean_rmse /= repeats;
  std::printf("  %s: RMSE %.2f [%.2f, %.2f]\n", label.c_str(),
              point.mean_rmse, point.min_rmse, point.max_rmse);
  std::fflush(stdout);
  return point;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx = bench::MakeContext(
      "Fig. 9 — hyper-parameter sensitivity (λ, k, d) on NYC-Bike");

  data::TrafficDataset dataset =
      bench::LoadDataset(sim::DatasetId::kNycBike, ctx);
  const muse::MuseNetConfig base = bench::MakeMuseConfig(dataset, ctx);
  const int repeats = ctx.scale.name == "smoke" ? 1 : 2;

  // (a) λ sweep — the paper uses 1e-3 … 1e3; performance is stable near 1
  // and degrades/destabilizes at the extremes.
  TablePrinter lambda_table({"lambda", "RMSE mean", "RMSE min", "RMSE max"});
  for (double lambda : {0.1, 1.0, 10.0}) {
    muse::MuseNetConfig config = base;
    config.lambda = lambda;
    auto p = RunPoint("lambda=" + bench::F2(lambda), config, dataset, ctx,
                      repeats);
    lambda_table.AddRow({bench::F2(lambda), bench::F2(p.mean_rmse),
                         bench::F2(p.min_rmse), bench::F2(p.max_rmse)});
  }
  bench::EmitTable(ctx, "fig9a_lambda", lambda_table);

  // (b) k sweep — paper: 16 … 1024, flat response. Scaled to the bench dims.
  TablePrinter k_table({"k", "RMSE mean", "RMSE min", "RMSE max"});
  for (int64_t k : {16, 32, 64}) {
    muse::MuseNetConfig config = base;
    config.dist_dim = k;
    auto p =
        RunPoint("k=" + std::to_string(k), config, dataset, ctx, repeats);
    k_table.AddRow({std::to_string(k), bench::F2(p.mean_rmse),
                    bench::F2(p.min_rmse), bench::F2(p.max_rmse)});
  }
  bench::EmitTable(ctx, "fig9b_k", k_table);

  // (c) d sweep — paper: 16 … 320, mild response with best near d = 64.
  TablePrinter d_table({"d", "RMSE mean", "RMSE min", "RMSE max"});
  for (int64_t d : {8, 12, 16}) {
    muse::MuseNetConfig config = base;
    config.repr_dim = d;
    auto p =
        RunPoint("d=" + std::to_string(d), config, dataset, ctx, repeats);
    d_table.AddRow({std::to_string(d), bench::F2(p.mean_rmse),
                    bench::F2(p.min_rmse), bench::F2(p.max_rmse)});
  }
  bench::EmitTable(ctx, "fig9c_d", d_table);

  std::printf(
      "Shape check vs paper Fig. 9: the λ response is U-shaped/unstable at\n"
      "the extremes and best near λ = 1; performance is largely flat in k;\n"
      "d shows a mild optimum at moderate width.\n");
  return 0;
}
