// Ablations of this reproduction's own design choices (DESIGN.md
// "Substitutions" and the reproduction notes in README.md) — separate from
// the paper's Table VI, which ablates the *model's* components:
//
//   1. pull-term sign: the stable IIAE-style direction (default) versus the
//      sign as printed in Eq. (29), which is unbounded below and diverges —
//      this bench demonstrates the divergence that motivated the deviation;
//   2. the auxiliary-loss weight (aux = 1 reproduces Eq. 26 exactly);
//   3. λ around its paper value of 1 (coarse; Fig. 9 has the full sweep).
//
// Runs on NYC-Bike at a reduced epoch budget (many trainings).

#include <cmath>
#include <cstdio>

#include "autograd/ops.h"
#include "bench/bench_common.h"
#include "eval/training.h"
#include "optim/adam.h"
#include "optim/optimizer.h"

namespace musenet {
namespace {

/// Trains and returns {test outflow RMSE, final pull-term value}.
struct RunResult {
  double rmse = 0.0;
  double final_pull = 0.0;
  bool diverged = false;
};

RunResult RunConfig(muse::MuseNetConfig config,
                    const data::TrafficDataset& dataset,
                    const bench::ExperimentContext& ctx, int epochs) {
  muse::MuseNet model(config, ctx.scale.seed);
  eval::TrainConfig train = ctx.train;
  train.epochs = epochs;

  // Manual loop so the pull component is observable per epoch.
  Rng epoch_rng(train.seed ^ 0xD351F00DULL);
  optim::Adam optimizer(model.Parameters(), train.learning_rate);
  RunResult result;
  model.SetTraining(true);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double pull_sum = 0.0;
    int64_t batches = 0;
    for (const auto& indices : eval::MakeEpochBatches(
             dataset.train_indices(), train.batch_size, epoch_rng)) {
      data::Batch batch = dataset.MakeBatch(indices);
      auto forward = model.Forward(batch, /*stochastic=*/true);
      muse::MuseNet::LossBreakdown parts;
      autograd::Variable loss = model.ComputeLoss(forward, batch, &parts);
      model.ZeroGrad();
      autograd::Backward(loss);
      optim::ClipGradNorm(optimizer.params(), train.clip_norm);
      optimizer.Step();
      pull_sum += parts.pull;
      ++batches;
    }
    result.final_pull = pull_sum / std::max<int64_t>(1, batches);
    if (!std::isfinite(result.final_pull) ||
        std::fabs(result.final_pull) > 1e4) {
      result.diverged = true;
      break;
    }
  }
  model.SetTraining(false);
  result.rmse =
      eval::EvaluateOnTest(model, dataset, train.batch_size).outflow.rmse;
  return result;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx = bench::MakeContext(
      "Design ablations — pull sign, aux weight, λ (NYC-Bike)");

  data::TrafficDataset dataset =
      bench::LoadDataset(sim::DatasetId::kNycBike, ctx);
  const muse::MuseNetConfig base = bench::MakeMuseConfig(dataset, ctx);
  const int epochs = std::max(8, ctx.train.epochs / 3);

  // 1. Pull-term sign.
  TablePrinter sign_table(
      {"Pull direction", "Out RMSE", "Mean pull (last epoch)", "Diverged"});
  {
    auto stable = RunConfig(base, dataset, ctx, epochs);
    sign_table.AddRow({"stable (IIAE-style, default)",
                       bench::F2(stable.rmse), bench::F2(stable.final_pull),
                       stable.diverged ? "yes" : "no"});
    muse::MuseNetConfig paper_sign = base;
    paper_sign.paper_pull_sign = true;
    auto printed = RunConfig(paper_sign, dataset, ctx, epochs);
    sign_table.AddRow({"as printed in Eq. (29)", bench::F2(printed.rmse),
                       bench::F2(printed.final_pull),
                       printed.diverged ? "yes" : "no"});
  }
  bench::EmitTable(ctx, "ablation_pull_sign", sign_table);

  // 2. Auxiliary weight.
  TablePrinter aux_table({"aux weight", "Out RMSE"});
  for (double aux : {1.0, 0.5, 0.1, 0.0}) {
    muse::MuseNetConfig config = base;
    config.aux_weight = aux;
    auto r = RunConfig(config, dataset, ctx, epochs);
    aux_table.AddRow({bench::F2(aux), bench::F2(r.rmse)});
    std::printf("  aux=%.2f RMSE %.2f\n", aux, r.rmse);
  }
  bench::EmitTable(ctx, "ablation_aux_weight", aux_table);

  // 3. λ coarse check around 1 (full sweep: bench_fig9_sensitivity).
  TablePrinter lambda_table({"lambda", "Out RMSE"});
  for (double lambda : {0.5, 1.0, 2.0}) {
    muse::MuseNetConfig config = base;
    config.lambda = lambda;
    auto r = RunConfig(config, dataset, ctx, epochs);
    lambda_table.AddRow({bench::F2(lambda), bench::F2(r.rmse)});
  }
  bench::EmitTable(ctx, "ablation_lambda", lambda_table);

  std::printf(
      "Expected shapes: the printed Eq. (29) sign drives the pull term to\n"
      "large negative values (divergence) while the stable direction stays\n"
      "bounded; aux = 0 (regression only) underuses the disentanglement;\n"
      "λ near 1 is flat, matching the paper's choice.\n");
  return 0;
}
