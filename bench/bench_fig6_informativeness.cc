// Reproduces Fig. 6: similarity of the interactive representation Z^S with
// the original closeness/period/trend sub-series (informativeness analysis,
// RQ4), on TaxiBJ as in the paper.
//
// For each test sample we compute cosine similarities between the pooled
// Z^S vector and the pooled raw sub-series vectors; the paper's observation
// is that "most points in the three heatmaps are greater than zero" — Z^S
// carries shared information from all three sub-series (semantic pulling).

#include <cstdio>
#include <vector>

#include "analysis/similarity.h"
#include "bench/bench_common.h"
#include "tensor/tensor_ops.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;

/// [B, C, H, W] → [B, H·W] channel-averaged spatial maps, mean-centered per
/// sample. Cosine between centered maps is a Pearson-style pattern
/// similarity, immune to the constant offset between representation values
/// and the [-1,1]-scaled inputs (which otherwise saturates cosine at ±1).
ts::Tensor CenteredSpatialMaps(const ts::Tensor& block) {
  ts::Tensor maps = ts::Mean(block, 1);  // [B, H, W]
  const int64_t b = maps.dim(0);
  const int64_t plane = maps.dim(1) * maps.dim(2);
  ts::Tensor out(ts::Shape({b, plane}));
  for (int64_t i = 0; i < b; ++i) {
    double mean = 0.0;
    for (int64_t k = 0; k < plane; ++k) mean += maps.flat(i * plane + k);
    mean /= plane;
    for (int64_t k = 0; k < plane; ++k) {
      out.flat(i * plane + k) =
          static_cast<float>(maps.flat(i * plane + k) - mean);
    }
  }
  return out;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx = bench::MakeContext(
      "Fig. 6 — informativeness of Z^S w.r.t. C/P/T (TaxiBJ)");

  const sim::DatasetId id = sim::DatasetId::kTaxiBj;
  data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
  auto model = bench::GetOrTrainMuse(id, dataset, ctx);
  model->SetTraining(false);

  const int64_t max_samples = 96;
  std::vector<ts::Tensor> raw[3];
  std::vector<ts::Tensor> z_s;
  const auto& pool = dataset.test_indices();
  for (size_t begin = 0;
       begin < pool.size() && static_cast<int64_t>(begin) < max_samples;
       begin += 8) {
    data::Batch batch = dataset.MakeBatchFromPool(pool, begin, 8);
    raw[0].push_back(CenteredSpatialMaps(batch.closeness));
    raw[1].push_back(CenteredSpatialMaps(batch.period));
    raw[2].push_back(CenteredSpatialMaps(batch.trend));
    auto forward = model->Forward(batch, /*stochastic=*/false);
    z_s.push_back(CenteredSpatialMaps(
        forward.interactive[0].representation.value()));
  }
  ts::Tensor zs_all = ts::Concat(z_s, 0);

  TablePrinter table({"Sub-series", "Mean similarity", "Fraction > 0",
                      "Min", "Max"});
  const char* names[3] = {"closeness", "period", "trend"};
  for (int i = 0; i < 3; ++i) {
    ts::Tensor raw_all = ts::Concat(raw[i], 0);
    ts::Tensor sims = analysis::CosineSimilarityMatrix(zs_all, raw_all);
    double mean = 0.0;
    for (int64_t k = 0; k < sims.num_elements(); ++k) mean += sims.flat(k);
    mean /= static_cast<double>(sims.num_elements());
    table.AddRow({names[i], bench::F2(mean),
                  bench::Pct(analysis::FractionAbove(sims, 0.0)),
                  bench::F2(ts::MinValue(sims)),
                  bench::F2(ts::MaxValue(sims))});
    (void)TablePrinter({"similarity"});  // (CSV of full matrix below.)
    TablePrinter matrix_csv({"i", "j", "similarity"});
    for (int64_t a = 0; a < sims.dim(0); ++a) {
      for (int64_t b = 0; b < sims.dim(1); ++b) {
        matrix_csv.AddRow({std::to_string(a), std::to_string(b),
                           bench::F2(sims.at({a, b}))});
      }
    }
    (void)matrix_csv.WriteCsv(ctx.results_dir + "/fig6_similarity_" +
                              names[i] + ".csv");
  }

  bench::EmitTable(ctx, "fig6_informativeness", table);
  std::printf(
      "Shape check vs paper Fig. 6: most similarity entries are positive\n"
      "for all three sub-series — the interactive representation learned\n"
      "shared information from C, P and T (semantic pulling works).\n");
  return 0;
}
