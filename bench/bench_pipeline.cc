#include "bench/bench_pipeline.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "infer/engine.h"
#include "sim/serialize.h"
#include "tensor/serialize.h"
#include "util/check.h"

namespace musenet::bench {

namespace ts = musenet::tensor;

Result<TrainOverride> ParseTrainOverride(const std::string& text) {
  const size_t colon = text.find(':');
  const size_t eq = text.find('=', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || eq == std::string::npos || colon == 0 ||
      eq <= colon + 1 || eq + 1 >= text.size()) {
    return Status::InvalidArgument(
        "override '" + text + "' is not of the form MODEL:key=value");
  }
  TrainOverride ov;
  ov.model = text.substr(0, colon);
  ov.key = text.substr(colon + 1, eq - colon - 1);
  ov.value = text.substr(eq + 1);
  if (ov.key != "epochs" && ov.key != "lr" && ov.key != "batch" &&
      ov.key != "patience") {
    return Status::InvalidArgument(
        "override key '" + ov.key +
        "' unknown (expected epochs, lr, batch or patience)");
  }
  return ov;
}

namespace {

Result<int> ParseIntValue(const TrainOverride& ov) {
  char* end = nullptr;
  const long v = std::strtol(ov.value.c_str(), &end, 10);
  if (end == ov.value.c_str() || *end != '\0' || v < 0) {
    return Status::InvalidArgument("override " + ov.model + ":" + ov.key +
                                   "=" + ov.value +
                                   ": value is not a non-negative integer");
  }
  return static_cast<int>(v);
}

}  // namespace

Result<eval::TrainConfig> ResolveTrainConfig(
    const ExperimentContext& ctx, const std::string& model_name,
    const std::vector<TrainOverride>& overrides) {
  eval::TrainConfig tc = ctx.train;
  for (const TrainOverride& ov : overrides) {
    if (ov.model != "*" && ov.model != model_name) continue;
    if (ov.key == "lr") {
      char* end = nullptr;
      const double v = std::strtod(ov.value.c_str(), &end);
      if (end == ov.value.c_str() || *end != '\0' || v <= 0.0) {
        return Status::InvalidArgument("override " + ov.model +
                                       ":lr=" + ov.value +
                                       ": value is not a positive number");
      }
      tc.learning_rate = v;
      continue;
    }
    auto v = ParseIntValue(ov);
    if (!v.ok()) return v.status();
    if (ov.key == "epochs") tc.epochs = *v;
    else if (ov.key == "batch") tc.batch_size = std::max(1, *v);
    else tc.patience = *v;
  }
  return tc;
}

std::string BucketTag(eval::TimeBucket bucket) {
  switch (bucket) {
    case eval::TimeBucket::kAll:     return "all";
    case eval::TimeBucket::kPeak:    return "peak";
    case eval::TimeBucket::kNonPeak: return "nonpeak";
    case eval::TimeBucket::kWeekday: return "weekday";
    case eval::TimeBucket::kWeekend: return "weekend";
  }
  return "all";
}

// --- Payload codecs -------------------------------------------------------

Result<std::string> SerializePredictionSeries(
    const eval::PredictionSeries& series) {
  ts::Tensor idx(
      ts::Shape({static_cast<int64_t>(series.target_indices.size())}));
  for (size_t i = 0; i < series.target_indices.size(); ++i) {
    idx.flat(static_cast<int64_t>(i)) =
        static_cast<float>(series.target_indices[i]);
  }
  std::map<std::string, ts::Tensor> blob;
  blob.emplace("predictions", series.predictions);
  blob.emplace("truths", series.truths);
  blob.emplace("indices", std::move(idx));
  return ts::SerializeTensors(blob);
}

Result<eval::PredictionSeries> ParsePredictionSeries(
    const std::string& label, const std::string& bytes) {
  auto blob = ts::ParseTensors(label, bytes);
  if (!blob.ok()) return blob.status();
  if (!blob->count("predictions") || !blob->count("truths") ||
      !blob->count("indices")) {
    return Status::IoError(label +
                           ": prediction-series payload is missing records");
  }
  eval::PredictionSeries series;
  series.predictions = blob->at("predictions");
  series.truths = blob->at("truths");
  const ts::Tensor& idx = blob->at("indices");
  series.target_indices.reserve(static_cast<size_t>(idx.num_elements()));
  for (int64_t i = 0; i < idx.num_elements(); ++i) {
    series.target_indices.push_back(static_cast<int64_t>(idx.flat(i)));
  }
  return series;
}

std::string SerializeFlowMetrics(const eval::FlowMetrics& metrics) {
  util::Fingerprint text;
  text.Add("outflow.rmse", metrics.outflow.rmse)
      .Add("outflow.mae", metrics.outflow.mae)
      .Add("outflow.mape", metrics.outflow.mape)
      .Add("inflow.rmse", metrics.inflow.rmse)
      .Add("inflow.mae", metrics.inflow.mae)
      .Add("inflow.mape", metrics.inflow.mape);
  return text.canonical();
}

Result<eval::FlowMetrics> ParseFlowMetrics(const std::string& label,
                                           const std::string& text) {
  std::map<std::string, double> fields;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(begin, end - begin);
    begin = end + 1;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    fields[line.substr(0, eq)] = std::atof(line.c_str() + eq + 1);
  }
  for (const char* key :
       {"outflow.rmse", "outflow.mae", "outflow.mape", "inflow.rmse",
        "inflow.mae", "inflow.mape"}) {
    if (!fields.count(key)) {
      return Status::IoError(label + ": metrics payload is missing '" +
                             key + "'");
    }
  }
  eval::FlowMetrics m;
  m.outflow = {fields["outflow.rmse"], fields["outflow.mae"],
               fields["outflow.mape"]};
  m.inflow = {fields["inflow.rmse"], fields["inflow.mae"],
              fields["inflow.mape"]};
  return m;
}

// --- Stage builders -------------------------------------------------------

namespace {

data::DatasetOptions DatasetOptionsFor(const ExperimentContext& ctx,
                                       int64_t horizon_offset) {
  data::DatasetOptions options;
  options.horizon_offset = horizon_offset;
  options.max_train_samples = ctx.max_train_samples;
  return options;
}

std::string DatasetStageName(sim::DatasetId id, int64_t horizon_offset) {
  return "dataset/" + sim::DatasetName(id) + "/h" +
         std::to_string(horizon_offset);
}

}  // namespace

int AddSimulateStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                     sim::DatasetId id) {
  const std::string name = "simulate/" + sim::DatasetName(id);
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  const uint64_t sim_hash = sim::SimConfigHash(id, ctx.scale, ctx.scale.seed);
  util::Fingerprint config;
  config.Add("dataset", sim::DatasetName(id))
      .Add("seed", ctx.scale.seed)
      .Add("days", ctx.scale.days)
      .Add("grid_h", ctx.scale.grid_h)
      .Add("grid_w", ctx.scale.grid_w)
      .Add("sim_config_hash", util::HashHex(sim_hash));

  const BenchScale scale = ctx.scale;
  return p->AddStage(
      name, std::move(config), {},
      [id, scale, sim_hash](const pipeline::StageContext&)
          -> Result<std::string> {
        sim::FlowSeries flows =
            sim::GenerateDatasetFlows(id, scale, scale.seed);
        return sim::SerializeFlowSeries(flows, sim_hash);
      });
}

int AddDatasetStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                    sim::DatasetId id, int64_t horizon_offset,
                    int simulate_stage) {
  const std::string name = DatasetStageName(id, horizon_offset);
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  const data::DatasetOptions options = DatasetOptionsFor(ctx, horizon_offset);
  util::Fingerprint config;
  config.Add("horizon_offset", options.horizon_offset)
      .Add("len_closeness", options.spec.len_closeness)
      .Add("len_period", options.spec.len_period)
      .Add("len_trend", options.spec.len_trend)
      .Add("test_days", options.test_days)
      .Add("validation_fraction", options.validation_fraction)
      .Add("max_train_samples", options.max_train_samples);

  return p->AddStage(
      name, std::move(config), {simulate_stage},
      [name, options](const pipeline::StageContext& c)
          -> Result<std::string> {
        auto flows = sim::ParseFlowSeries(name, *c.dep_payloads[0]);
        if (!flows.ok()) return flows.status();
        data::TrafficDataset dataset(std::move(flows).value(), options);
        // Canonical dataset summary: everything downstream training depends
        // on beyond the raw flows. Its hash gates the train stages, so a
        // dataset-option change invalidates them through this one node.
        util::Fingerprint summary;
        summary.Add("horizon_offset", options.horizon_offset)
            .Add("len_closeness", options.spec.len_closeness)
            .Add("len_period", options.spec.len_period)
            .Add("len_trend", options.spec.len_trend)
            .Add("max_train_samples", options.max_train_samples)
            .Add("split.train",
                 static_cast<int64_t>(dataset.train_indices().size()))
            .Add("split.val",
                 static_cast<int64_t>(dataset.val_indices().size()))
            .Add("split.test",
                 static_cast<int64_t>(dataset.test_indices().size()))
            .Add("scaler.min",
                 static_cast<double>(dataset.scaler().min_value()))
            .Add("scaler.max",
                 static_cast<double>(dataset.scaler().max_value()));
        return summary.canonical();
      });
}

Result<int> AddTrainStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                          sim::DatasetId id, const std::string& model_name,
                          int64_t horizon_offset, int simulate_stage,
                          int dataset_stage,
                          const std::vector<TrainOverride>& overrides) {
  const std::string name = "train/" + sim::DatasetName(id) + "/h" +
                           std::to_string(horizon_offset) + "/" + model_name;
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  auto tc = ResolveTrainConfig(ctx, model_name, overrides);
  if (!tc.ok()) return tc.status();
  util::Fingerprint config;
  config.Add("model", model_name)
      .Add("epochs", tc->epochs)
      .Add("batch_size", tc->batch_size)
      .Add("learning_rate", tc->learning_rate)
      .Add("clip_norm", tc->clip_norm)
      .Add("seed", tc->seed)
      .Add("patience", tc->patience)
      .Add("repr_dim", ctx.scale.repr_dim)
      .Add("dist_dim", ctx.scale.dist_dim);

  const ExperimentContext ctx_copy = ctx;
  const eval::TrainConfig budget = *tc;
  return p->AddStage(
      name, std::move(config), {simulate_stage, dataset_stage},
      [name, ctx_copy, id, model_name, horizon_offset,
       budget](const pipeline::StageContext& c) -> Result<std::string> {
        auto flows = sim::ParseFlowSeries(name, *c.dep_payloads[0]);
        if (!flows.ok()) return flows.status();
        data::TrafficDataset dataset(
            std::move(flows).value(),
            DatasetOptionsFor(ctx_copy, horizon_offset));
        std::unique_ptr<eval::Forecaster> model =
            MakeModel(model_name, dataset, ctx_copy);

        eval::TrainConfig run = budget;
        run.cancel = c.cancel;
        if (!c.scratch_dir.empty()) {
          // Checkpoints go to the keyed scratch directory: a cancelled
          // training keeps them, and the rerun (same content key → same
          // scratch) resumes bit-identically from the newest one.
          run.checkpoint_dir = c.scratch_dir;
          run.checkpoint_every = 1;
          run.keep_last = 2;
          run.resume = true;
        }
        const Status trained = model->TrainWithStatus(dataset, run);
        if (!trained.ok()) return trained;

        infer::EngineForecaster planned(*model);
        eval::PredictionSeries series = eval::CollectPredictions(
            planned, dataset, dataset.test_indices(), run.batch_size);
        return SerializePredictionSeries(series);
      });
}

Result<int> AddMuseCheckpointStage(
    pipeline::Pipeline* p, const ExperimentContext& ctx, sim::DatasetId id,
    int simulate_stage, int dataset_stage,
    const std::vector<TrainOverride>& overrides) {
  const std::string name = "train-muse/" + sim::DatasetName(id);
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  auto tc = ResolveTrainConfig(ctx, "MUSE-Net", overrides);
  if (!tc.ok()) return tc.status();
  util::Fingerprint config;
  config.Add("model", "MUSE-Net")
      .Add("payload", "state_dict")
      .Add("epochs", tc->epochs)
      .Add("batch_size", tc->batch_size)
      .Add("learning_rate", tc->learning_rate)
      .Add("clip_norm", tc->clip_norm)
      .Add("seed", tc->seed)
      .Add("patience", tc->patience)
      .Add("repr_dim", ctx.scale.repr_dim)
      .Add("dist_dim", ctx.scale.dist_dim);

  const ExperimentContext ctx_copy = ctx;
  const eval::TrainConfig budget = *tc;
  return p->AddStage(
      name, std::move(config), {simulate_stage, dataset_stage},
      [name, ctx_copy, id, budget](const pipeline::StageContext& c)
          -> Result<std::string> {
        auto flows = sim::ParseFlowSeries(name, *c.dep_payloads[0]);
        if (!flows.ok()) return flows.status();
        data::TrafficDataset dataset(std::move(flows).value(),
                                     DatasetOptionsFor(ctx_copy, 0));
        muse::MuseNet model(MakeMuseConfig(dataset, ctx_copy),
                            ctx_copy.scale.seed);
        eval::TrainConfig run = budget;
        run.cancel = c.cancel;
        if (!c.scratch_dir.empty()) {
          run.checkpoint_dir = c.scratch_dir;
          run.checkpoint_every = 1;
          run.keep_last = 2;
          run.resume = true;
        }
        const Status trained = model.TrainWithStatus(dataset, run);
        if (!trained.ok()) return trained;
        return ts::SerializeTensors(model.StateDict());
      });
}

int AddEvalStage(pipeline::Pipeline* p, const ExperimentContext& ctx,
                 sim::DatasetId id, const std::string& model_name,
                 int64_t horizon_offset, eval::TimeBucket bucket,
                 int simulate_stage, int train_stage) {
  (void)ctx;
  const std::string name = "eval/" + sim::DatasetName(id) + "/h" +
                           std::to_string(horizon_offset) + "/" + model_name +
                           "/" + BucketTag(bucket);
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  util::Fingerprint config;
  config.Add("bucket", BucketTag(bucket));
  return p->AddStage(
      name, std::move(config), {simulate_stage, train_stage},
      [name, bucket](const pipeline::StageContext& c)
          -> Result<std::string> {
        auto flows = sim::ParseFlowSeries(name, *c.dep_payloads[0]);
        if (!flows.ok()) return flows.status();
        auto series = ParsePredictionSeries(name, *c.dep_payloads[1]);
        if (!series.ok()) return series.status();
        return SerializeFlowMetrics(
            MetricsFromFlows(*series, *flows, bucket));
      });
}

Result<TablePrinter> OneStepTableFromPayloads(
    const std::vector<std::string>& models,
    const std::vector<const std::string*>& metric_payloads) {
  MUSE_CHECK(models.size() == metric_payloads.size())
      << "one metrics payload per model expected";
  TablePrinter table({"Method", "Out RMSE", "Out MAE", "Out MAPE", "In RMSE",
                      "In MAE", "In MAPE"});
  double best_baseline_out_rmse = 1e18;
  double best_baseline_in_rmse = 1e18;
  double muse_out_rmse = 0.0;
  double muse_in_rmse = 0.0;
  bool has_muse = false;
  bool has_baseline = false;

  for (size_t i = 0; i < models.size(); ++i) {
    auto m = ParseFlowMetrics(models[i], *metric_payloads[i]);
    if (!m.ok()) return m.status();
    table.AddRow({models[i], F2(m->outflow.rmse), F2(m->outflow.mae),
                  Pct(m->outflow.mape), F2(m->inflow.rmse), F2(m->inflow.mae),
                  Pct(m->inflow.mape)});
    if (models[i] == "MUSE-Net") {
      muse_out_rmse = m->outflow.rmse;
      muse_in_rmse = m->inflow.rmse;
      has_muse = true;
    } else if (models[i] != "HistoricalAverage") {
      // The paper's Improvement row compares against the best *published*
      // baseline.
      best_baseline_out_rmse =
          std::min(best_baseline_out_rmse, m->outflow.rmse);
      best_baseline_in_rmse = std::min(best_baseline_in_rmse, m->inflow.rmse);
      has_baseline = true;
    }
  }
  if (has_muse && has_baseline) {
    table.AddSeparator();
    table.AddRow(
        {"Improvement (RMSE)",
         Pct(eval::Improvement(best_baseline_out_rmse, muse_out_rmse)), "",
         "", Pct(eval::Improvement(best_baseline_in_rmse, muse_in_rmse)), "",
         ""});
  }
  return table;
}

int AddOneStepTableStage(pipeline::Pipeline* p, const std::string& table_name,
                         const std::vector<std::string>& models,
                         const std::vector<int>& eval_stages) {
  const std::string name = "table/" + table_name;
  const int existing = p->FindStage(name);
  if (existing >= 0) return existing;

  std::string roster;
  for (const std::string& m : models) {
    if (!roster.empty()) roster += ",";
    roster += m;
  }
  util::Fingerprint config;
  config.Add("models", roster);
  const std::vector<std::string> models_copy = models;
  return p->AddStage(
      name, std::move(config), eval_stages,
      [models_copy](const pipeline::StageContext& c) -> Result<std::string> {
        auto table = OneStepTableFromPayloads(models_copy, c.dep_payloads);
        if (!table.ok()) return table.status();
        return table->ToCsv();
      });
}

// --- Full graphs ----------------------------------------------------------

Result<OneStepGraph> BuildOneStepGraph(
    pipeline::Pipeline* p, const ExperimentContext& ctx,
    const std::vector<sim::DatasetId>& datasets,
    const std::vector<std::string>& models, int64_t horizon_offset,
    eval::TimeBucket bucket, const std::vector<TrainOverride>& overrides) {
  OneStepGraph graph;
  graph.datasets = datasets;
  for (const sim::DatasetId id : datasets) {
    const int sim_stage = AddSimulateStage(p, ctx, id);
    const int ds_stage =
        AddDatasetStage(p, ctx, id, horizon_offset, sim_stage);
    std::vector<int> evals;
    for (const std::string& model : models) {
      auto train = AddTrainStage(p, ctx, id, model, horizon_offset, sim_stage,
                                 ds_stage, overrides);
      if (!train.ok()) return train.status();
      evals.push_back(AddEvalStage(p, ctx, id, model, horizon_offset, bucket,
                                   sim_stage, *train));
    }
    std::string table_name;
    if (horizon_offset == 0 && bucket == eval::TimeBucket::kAll) {
      table_name = "table2_onestep_" + sim::DatasetName(id);
    } else {
      table_name = "table_h" + std::to_string(horizon_offset) + "_" +
                   BucketTag(bucket) + "_" + sim::DatasetName(id);
    }
    graph.table_stages.push_back(
        AddOneStepTableStage(p, table_name, models, evals));
    graph.eval_stages.push_back(std::move(evals));
  }
  return graph;
}

std::string PipelineCacheDir(const ExperimentContext& ctx) {
  if (GetEnvOr("MUSE_BENCH_NO_CACHE", "0") == "1") return "";
  return ctx.results_dir + "/cache/pipeline";
}

}  // namespace musenet::bench
