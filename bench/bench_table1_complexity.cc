// Reproduces Table I: time and space complexity of MUSE-Net against the
// representative CNN (DeepSTN+), GCN (CONVGCN) and attention (STGSP)
// baselines.
//
// The paper states analytic complexities; we verify them empirically by
// measuring (a) wall time per forward pass and (b) trainable parameter
// count while sweeping the grid size M = H·W at fixed d, and report the
// analytic forms alongside. The expected shape: MUSE-Net scales like
// DeepSTN+ (both CNN, O(LdM + d²M + dM²)); the attention model carries the
// L²M token-attention term; the GCN model is O(Ld²M + LdE) with E ≈ 4M on a
// grid.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;

data::Batch RandomBatch(const data::PeriodicitySpec& spec, int64_t h,
                        int64_t w, int64_t batch, Rng& rng) {
  data::Batch b;
  b.closeness = ts::Tensor::RandomUniform(
      ts::Shape({batch, spec.ClosenessChannels(), h, w}), rng, -1.0f, 1.0f);
  b.period = ts::Tensor::RandomUniform(
      ts::Shape({batch, spec.PeriodChannels(), h, w}), rng, -1.0f, 1.0f);
  b.trend = ts::Tensor::RandomUniform(
      ts::Shape({batch, spec.TrendChannels(), h, w}), rng, -1.0f, 1.0f);
  b.target = ts::Tensor::RandomUniform(ts::Shape({batch, 2, h, w}), rng,
                                       -1.0f, 1.0f);
  for (int64_t i = 0; i < batch; ++i) b.target_indices.push_back(i);
  return b;
}

double MeasureForwardMillis(eval::Forecaster& model, const data::Batch& b) {
  // Warm-up then timed runs.
  model.Predict(b);
  util::Stopwatch watch;
  const int runs = 5;
  for (int i = 0; i < runs; ++i) model.Predict(b);
  return watch.ElapsedMillis() / runs;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table I — time and space complexity");

  const data::PeriodicitySpec spec;
  struct MethodSpec {
    const char* name;
    const char* class_name;
    const char* time_complexity;
    const char* space_complexity;
  };
  const std::vector<MethodSpec> methods = {
      {"DeepSTN+", "CNN", "O(LdM + d^2M + dM^2)", "O(Ld + d^2 + dM^2)"},
      {"CONVGCN", "GCN", "O(Ld^2M + LdE)", "O(LdM + d^3 + M^2)"},
      {"STGSP", "Attention", "O(Ld^2M + LdM^2)",
       "O(LdM + L^2M + LM^2 + d^2)"},
      {"MUSE-Net", "CNN", "O(LdM + d^2M + dM^2)", "O(Ld + d^2 + dM^2)"},
  };

  struct GridCase {
    int64_t h;
    int64_t w;
  };
  const std::vector<GridCase> grids = {{4, 4}, {6, 8}, {8, 12}, {10, 16}};

  TablePrinter table({"Method", "Class", "Time complexity",
                      "Space complexity", "M", "Params", "Fwd ms/batch"});
  Rng rng(ctx.scale.seed);

  for (const MethodSpec& method : methods) {
    for (const GridCase& grid : grids) {
      // Build a dataset-shaped dummy context for model construction.
      data::Batch batch = RandomBatch(spec, grid.h, grid.w,
                                      ctx.scale.batch_size, rng);
      std::unique_ptr<eval::Forecaster> model;
      int64_t params = 0;
      if (std::string(method.name) == "MUSE-Net") {
        muse::MuseNetConfig config;
        config.grid_h = grid.h;
        config.grid_w = grid.w;
        config.periodicity = spec;
        config.repr_dim = ctx.scale.repr_dim;
        config.dist_dim = ctx.scale.dist_dim;
        auto muse_model =
            std::make_unique<muse::MuseNet>(config, ctx.scale.seed);
        muse_model->SetTraining(false);
        params = muse_model->NumParameters();
        model = std::move(muse_model);
      } else {
        baselines::BaselineSizing sizing;
        sizing.grid_h = grid.h;
        sizing.grid_w = grid.w;
        sizing.spec = spec;
        sizing.hidden = ctx.scale.repr_dim;
        sizing.seed = ctx.scale.seed;
        auto baseline = baselines::MakeBaseline(method.name, sizing);
        auto* module = dynamic_cast<nn::Module*>(baseline.get());
        module->SetTraining(false);
        params = module->NumParameters();
        model = std::move(baseline);
      }
      const double ms = MeasureForwardMillis(*model, batch);
      table.AddRow({method.name, method.class_name, method.time_complexity,
                    method.space_complexity,
                    std::to_string(grid.h * grid.w), std::to_string(params),
                    bench::F2(ms)});
    }
    table.AddSeparator();
  }

  bench::EmitTable(ctx, "table1_complexity", table);
  std::printf(
      "Shape check vs paper Table I: MUSE-Net's runtime scales with M like\n"
      "DeepSTN+ (same CNN class, constant-factor overhead for the extra\n"
      "encoders); the dM² dense 'plus' term dominates parameters at large M\n"
      "for both CNN models, matching the analytic O(dM²) space term.\n");
  return 0;
}
