// Reproduces Fig. 2: the interaction shift between future traffic flow and
// the closeness/period/trend sub-series.
//
// The paper samples a 16-step window of future flow and plots it against the
// corresponding C/P/T values: at some timeslots the future flow tracks the
// period/trend views, at others the closeness view — and the winner changes
// over time ("interaction shift"). We reproduce this numerically: over a
// sliding window we compute the correlation of the future flow with each
// sub-series view and report how often the best-correlated view changes.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "data/interception.h"

namespace musenet {
namespace {

/// Pearson correlation of two equal-length vectors.
double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom < 1e-12 ? 0.0 : cov / denom;
}

/// City-wide outflow at interval t.
double CityOutflow(const sim::FlowSeries& flows, int64_t t) {
  double total = 0.0;
  for (int64_t h = 0; h < flows.grid().height; ++h) {
    for (int64_t w = 0; w < flows.grid().width; ++w) {
      total += flows.at(t, sim::kOutflow, h, w);
    }
  }
  return total;
}

void RunDataset(sim::DatasetId id, const bench::ExperimentContext& ctx,
                TablePrinter* table) {
  const sim::FlowSeries flows =
      sim::GenerateDatasetFlows(id, ctx.scale, ctx.scale.seed);
  const int f = flows.intervals_per_day();
  const int64_t window = 16;  // Fig. 2 samples a 16-step future window.
  const int64_t first = data::PeriodicitySpec().MinValidIndex(f);

  int windows = 0;
  int closeness_best = 0;
  int period_best = 0;
  int trend_best = 0;
  int switches = 0;
  int previous_winner = -1;

  for (int64_t start = first; start + window < flows.num_intervals();
       start += window) {
    std::vector<double> future, closeness, period, trend;
    for (int64_t s = 0; s < window; ++s) {
      future.push_back(CityOutflow(flows, start + s));
      closeness.push_back(CityOutflow(flows, start + s - 1));
      period.push_back(CityOutflow(flows, start + s - f));
      trend.push_back(CityOutflow(flows, start + s - 7 * f));
    }
    const double rc = Correlation(future, closeness);
    const double rp = Correlation(future, period);
    const double rt = Correlation(future, trend);
    int winner = 0;
    if (rp >= rc && rp >= rt) winner = 1;
    if (rt >= rc && rt >= rp) winner = 2;
    if (winner == 0) ++closeness_best;
    if (winner == 1) ++period_best;
    if (winner == 2) ++trend_best;
    if (previous_winner >= 0 && winner != previous_winner) ++switches;
    previous_winner = winner;
    ++windows;
  }

  table->AddRow({sim::DatasetName(id), std::to_string(windows),
                 bench::Pct(static_cast<double>(closeness_best) / windows),
                 bench::Pct(static_cast<double>(period_best) / windows),
                 bench::Pct(static_cast<double>(trend_best) / windows),
                 bench::Pct(static_cast<double>(switches) / (windows - 1))});
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Fig. 2 — interaction shift");

  TablePrinter table({"Dataset", "Windows", "Closeness best", "Period best",
                      "Trend best", "Winner switches"});
  for (sim::DatasetId id : sim::kAllDatasets) {
    RunDataset(id, ctx, &table);
  }
  bench::EmitTable(ctx, "fig2_interaction_shift", table);

  std::printf(
      "Shape check vs paper Fig. 2: no single sub-series dominates the\n"
      "correlation with future flow, and the best-correlated view switches\n"
      "frequently across windows — the interaction shift that motivates the\n"
      "shared interactive representation Z^S.\n");
  return 0;
}
