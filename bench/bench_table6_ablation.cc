// Reproduces Table VI: the ablation study of MUSE-Net's components —
// w/o-Spatial (no ResPlus network), w/o-MultiDisentangle (pairwise
// cross-variate interactive codes instead of one multivariate Z^S),
// w/o-SemanticPushing (drop Eq. 9) and w/o-SemanticPulling (drop Eq. 16) —
// against the full model, on all three datasets.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table VI — ablation study");

  const std::vector<std::string> variants = {
      "MUSE-Net-w/o-Spatial", "MUSE-Net-w/o-MultiDisentangle",
      "MUSE-Net-w/o-SemanticPushing", "MUSE-Net-w/o-SemanticPulling",
      "MUSE-Net"};

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    std::printf("--- %s ---\n", sim::DatasetName(id).c_str());
    TablePrinter table({"Variant", "Out RMSE", "Out MAE", "In RMSE",
                        "In MAE"});
    for (const std::string& variant : variants) {
      eval::PredictionSeries series =
          bench::GetOrComputePredictions(id, variant, 0, ctx);
      eval::FlowMetrics m = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kAll);
      table.AddRow({variant, bench::F2(m.outflow.rmse),
                    bench::F2(m.outflow.mae), bench::F2(m.inflow.rmse),
                    bench::F2(m.inflow.mae)});
    }
    bench::EmitTable(
        ctx, std::string("table6_ablation_") + sim::DatasetName(id), table);
  }

  std::printf(
      "Shape check vs paper Table VI: the full MUSE-Net is best;\n"
      "w/o-Spatial degrades most, w/o-MultiDisentangle second-most, and the\n"
      "two regularizer ablations cost a smaller but consistent amount.\n");
  return 0;
}
