// Reproduces Table III: multi-step forecasting (horizons 1–3) for ST-GSP,
// DeepSTN+, ST-SSL and MUSE-Net.
//
// As in common practice for the multi-periodic models, each horizon is a
// direct forecasting task: horizon h predicts frame i+h−1 from the ternary
// sub-series intercepted at base index i (paper Eq. 7). Horizon 1 reuses the
// Table II cache.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table III — multi-step forecasting (3 horizons)");

  // Paper roster is {ST-GSP, DeepSTN+, ST-SSL, MUSE-Net}; ST-SSL is dropped
  // here to bound the harness cost (2 extra horizons × 3 datasets of fresh
  // training per method) — add it back to the list below to match exactly.
  const std::vector<std::string> methods = {"STGSP", "DeepSTN+", "MUSE-Net"};

  for (sim::DatasetId id : sim::kAllDatasets) {
    std::printf("--- %s ---\n", sim::DatasetName(id).c_str());
    TablePrinter table({"Horizon", "Method", "Out RMSE", "Out MAE",
                        "Out MAPE", "In RMSE", "In MAE", "In MAPE"});
    for (int horizon = 1; horizon <= 3; ++horizon) {
      const int64_t offset = horizon - 1;
      data::TrafficDataset dataset = bench::LoadDataset(id, ctx, offset);
      for (const std::string& method : methods) {
        eval::PredictionSeries series =
            bench::GetOrComputePredictions(id, method, offset, ctx);
        eval::FlowMetrics m = bench::MetricsFromSeries(
            series, dataset, eval::TimeBucket::kAll);
        table.AddRow({std::to_string(horizon), method,
                      bench::F2(m.outflow.rmse), bench::F2(m.outflow.mae),
                      bench::Pct(m.outflow.mape), bench::F2(m.inflow.rmse),
                      bench::F2(m.inflow.mae), bench::Pct(m.inflow.mape)});
      }
      if (horizon < 3) table.AddSeparator();
    }
    bench::EmitTable(
        ctx, std::string("table3_multistep_") + sim::DatasetName(id), table);
  }

  std::printf(
      "Shape check vs paper Table III: errors grow with the horizon and\n"
      "the third horizon is clearly hardest for every model. The paper\n"
      "additionally has MUSE-Net leading at every horizon; at reduced scale\n"
      "expect the Table II ordering per horizon (see EXPERIMENTS.md).\n");
  return 0;
}
