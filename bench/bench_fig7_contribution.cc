// Reproduces Fig. 7: similarity of the exclusive and interactive
// representations with the future traffic flow (RQ4, TaxiBJ).
//
// The paper's observation: the interactive representation's similarity
// pattern is *opposite* (complementary) to the exclusive representations' —
// together they cover the signal. We compute per-sample cosine similarities
// between each pooled representation and the pooled future flow, and report
// the correlation between the exclusive and interactive similarity profiles
// (negative = complementary).

#include <cmath>
#include <cstdio>
#include <vector>

#include "analysis/similarity.h"
#include "bench/bench_common.h"
#include "tensor/tensor_ops.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;
namespace ag = musenet::autograd;

/// Per-sample cosine similarity between the *spatial patterns* of a
/// representation map and the future flow: channel-averaged maps are
/// mean-centered per sample before the cosine, so a constant offset (all
/// representations positive, all scaled flows near −1) cannot saturate the
/// similarity at ±1. This mirrors the paper's heatmaps, which compare
/// spatial structure.
std::vector<double> SpatialSimilarity(const ts::Tensor& z_map,
                                      const ts::Tensor& future) {
  // z_map: [B, d, H, W]; future: [B, 2, H, W].
  ts::Tensor z = ts::Mean(z_map, 1);    // [B, H, W]
  ts::Tensor y = ts::Mean(future, 1);   // [B, H, W]
  const int64_t b = z.dim(0);
  const int64_t plane = z.dim(1) * z.dim(2);
  std::vector<double> out(static_cast<size_t>(b));
  for (int64_t i = 0; i < b; ++i) {
    double mz = 0.0, my = 0.0;
    for (int64_t k = 0; k < plane; ++k) {
      mz += z.flat(i * plane + k);
      my += y.flat(i * plane + k);
    }
    mz /= plane;
    my /= plane;
    double dot = 0.0, nz = 0.0, ny = 0.0;
    for (int64_t k = 0; k < plane; ++k) {
      const double a = z.flat(i * plane + k) - mz;
      const double c = y.flat(i * plane + k) - my;
      dot += a * c;
      nz += a * a;
      ny += c * c;
    }
    const double denom = std::sqrt(nz * ny);
    out[static_cast<size_t>(i)] = denom < 1e-12 ? 0.0 : dot / denom;
  }
  return out;
}

double Correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom < 1e-12 ? 0.0 : cov / denom;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx = bench::MakeContext(
      "Fig. 7 — representation contribution to future flow (TaxiBJ)");

  const sim::DatasetId id = sim::DatasetId::kTaxiBj;
  data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
  auto model = bench::GetOrTrainMuse(id, dataset, ctx);
  model->SetTraining(false);

  // Per-sample spatial-pattern similarity of each representation map with
  // the future flow map.
  std::vector<double> sim_c, sim_p, sim_t, sim_s;
  const auto& pool = dataset.test_indices();
  const int64_t max_samples = 96;
  for (size_t begin = 0;
       begin < pool.size() && static_cast<int64_t>(begin) < max_samples;
       begin += 8) {
    data::Batch batch = dataset.MakeBatchFromPool(pool, begin, 8);
    auto forward = model->Forward(batch, /*stochastic=*/false);
    for (double v : SpatialSimilarity(
             forward.exclusive[muse::kCloseness].representation.value(),
             batch.target)) {
      sim_c.push_back(v);
    }
    for (double v : SpatialSimilarity(
             forward.exclusive[muse::kPeriod].representation.value(),
             batch.target)) {
      sim_p.push_back(v);
    }
    for (double v : SpatialSimilarity(
             forward.exclusive[muse::kTrend].representation.value(),
             batch.target)) {
      sim_t.push_back(v);
    }
    for (double v : SpatialSimilarity(
             forward.interactive[0].representation.value(), batch.target)) {
      sim_s.push_back(v);
    }
  }

  auto mean = [](const std::vector<double>& v) {
    double total = 0.0;
    for (double x : v) total += x;
    return total / static_cast<double>(v.size());
  };

  TablePrinter table({"Representation", "Mean similarity to future flow",
                      "Corr. with interactive profile"});
  table.AddRow({"Z^C (exclusive)", bench::F2(mean(sim_c)),
                bench::F2(Correlation(sim_c, sim_s))});
  table.AddRow({"Z^P (exclusive)", bench::F2(mean(sim_p)),
                bench::F2(Correlation(sim_p, sim_s))});
  table.AddRow({"Z^T (exclusive)", bench::F2(mean(sim_t)),
                bench::F2(Correlation(sim_t, sim_s))});
  table.AddRow({"Z^S (interactive)", bench::F2(mean(sim_s)), "1.00"});
  bench::EmitTable(ctx, "fig7_contribution", table);

  std::printf(
      "Shape check vs paper Fig. 7: the exclusive profiles should be\n"
      "decorrelated from (paper: opposite to) the interactive profile —\n"
      "low/negative correlation column — i.e. the two kinds of\n"
      "representation carry complementary information about future flow.\n");
  return 0;
}
