// Google-benchmark microbenchmarks of the deep-learning substrate: the
// kernels whose throughput bounds every experiment in this repository
// (conv2d forward/backward, matmul, elementwise, autograd round trips and a
// full MUSE-Net training step).

#include <benchmark/benchmark.h>

#include <vector>

#include "autograd/ops.h"
#include "muse/model.h"
#include "nn/conv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "tensor/conv2d.h"
#include "tensor/im2col.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace musenet {
namespace {

namespace ts = musenet::tensor;
namespace ag = musenet::autograd;

void BM_TensorAdd(benchmark::State& state) {
  Rng rng(1);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::RandomNormal(ts::Shape({n}), rng);
  ts::Tensor b = ts::Tensor::RandomNormal(ts::Shape({n}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TensorAdd)->Arg(1 << 10)->Arg(1 << 16);

void BM_MatMul(benchmark::State& state) {
  Rng rng(2);
  const int64_t n = state.range(0);
  ts::Tensor a = ts::Tensor::RandomNormal(ts::Shape({n, n}), rng);
  ts::Tensor b = ts::Tensor::RandomNormal(ts::Shape({n, n}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

// Rectangular shapes that actually occur in MUSE-Net and the baselines: the
// dense head projecting a flattened feature map (B·HW × hidden → repr), and
// the attention-style token projection.
void BM_MatMulDenseHead(benchmark::State& state) {
  Rng rng(21);
  ts::Tensor a = ts::Tensor::RandomNormal(ts::Shape({8, 1024}), rng);
  ts::Tensor b = ts::Tensor::RandomNormal(ts::Shape({1024, 128}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 1024 * 128);
}
BENCHMARK(BM_MatMulDenseHead);

void BM_MatMulTokenProj(benchmark::State& state) {
  Rng rng(22);
  // 256 grid tokens × 64 dims projected to 64 (GMAN/STGSP-style attention).
  ts::Tensor a = ts::Tensor::RandomNormal(ts::Shape({256, 64}), rng);
  ts::Tensor b = ts::Tensor::RandomNormal(ts::Shape({64, 64}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 256 * 64 * 64);
}
BENCHMARK(BM_MatMulTokenProj);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(3);
  const int64_t hw = state.range(0);
  ts::Tensor input =
      ts::Tensor::RandomNormal(ts::Shape({8, 12, hw, hw}), rng);
  ts::Tensor weight =
      ts::Tensor::RandomNormal(ts::Shape({12, 12, 3, 3}), rng);
  const ts::Conv2dSpec spec{.stride = 1, .pad = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dForward(input, weight, spec));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 12 * 12 * 9 * hw * hw);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16);

// Paper-scale residual block: a 16×16 traffic grid at C=64 (TaxiBJ-like
// width), the shape the ResPlus/DeepSTN+ stacks spend their time on.
void BM_Conv2dForwardC64(benchmark::State& state) {
  Rng rng(23);
  ts::Tensor input = ts::Tensor::RandomNormal(ts::Shape({8, 64, 16, 16}), rng);
  ts::Tensor weight = ts::Tensor::RandomNormal(ts::Shape({64, 64, 3, 3}), rng);
  const ts::Conv2dSpec spec{.stride = 1, .pad = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::Conv2dForward(input, weight, spec));
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64 * 64 * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dForwardC64);

void BM_Im2col(benchmark::State& state) {
  Rng rng(24);
  const int64_t cin = 64, hw = 16, k = 3;
  ts::Tensor input = ts::Tensor::RandomNormal(ts::Shape({cin, hw, hw}), rng);
  std::vector<float> col(static_cast<size_t>(cin * k * k * hw * hw));
  for (auto _ : state) {
    ts::Im2col(input.data(), cin, hw, hw, k, k, /*stride=*/1, /*pad=*/1, hw,
               hw, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(col.size()));
}
BENCHMARK(BM_Im2col);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(4);
  const int64_t hw = state.range(0);
  ts::Tensor input =
      ts::Tensor::RandomNormal(ts::Shape({8, 12, hw, hw}), rng);
  ts::Tensor weight =
      ts::Tensor::RandomNormal(ts::Shape({12, 12, 3, 3}), rng);
  const ts::Conv2dSpec spec{.stride = 1, .pad = 1};
  ts::Tensor grad_out = ts::Tensor::RandomNormal(
      ts::Shape({8, 12, hw, hw}), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ts::Conv2dBackwardInput(grad_out, weight, input.shape(), spec));
    benchmark::DoNotOptimize(
        ts::Conv2dBackwardWeight(grad_out, input, weight.shape(), spec));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16);

void BM_AutogradRoundTrip(benchmark::State& state) {
  Rng rng(5);
  nn::Conv2d conv(12, 12, rng,
                  nn::Conv2d::Options{.activation =
                                          nn::Activation::kLeakyRelu});
  ts::Tensor input =
      ts::Tensor::RandomNormal(ts::Shape({8, 12, 10, 10}), rng);
  for (auto _ : state) {
    ag::Variable x = ag::Constant(input);
    ag::Variable loss = ag::MeanAll(ag::Square(conv.Forward(x)));
    conv.ZeroGrad();
    ag::Backward(loss);
    benchmark::DoNotOptimize(loss.value().scalar());
  }
}
BENCHMARK(BM_AutogradRoundTrip);

void BM_MuseNetTrainStep(benchmark::State& state) {
  muse::MuseNetConfig config;
  config.grid_h = 5;
  config.grid_w = 10;
  config.repr_dim = 12;
  config.dist_dim = 32;
  muse::MuseNet model(config, 7);
  optim::Adam optimizer(model.Parameters(), 1e-3);

  Rng rng(6);
  data::Batch batch;
  batch.closeness = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.ClosenessChannels(), 5, 10}), rng,
      -1.0f, 1.0f);
  batch.period = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.PeriodChannels(), 5, 10}), rng, -1.0f,
      1.0f);
  batch.trend = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.TrendChannels(), 5, 10}), rng, -1.0f,
      1.0f);
  batch.target =
      ts::Tensor::RandomUniform(ts::Shape({8, 2, 5, 10}), rng, -1.0f, 1.0f);
  for (int i = 0; i < 8; ++i) batch.target_indices.push_back(i);

  for (auto _ : state) {
    auto forward = model.Forward(batch, /*stochastic=*/true);
    ag::Variable loss = model.ComputeLoss(forward, batch, nullptr);
    model.ZeroGrad();
    ag::Backward(loss);
    optimizer.Step();
    benchmark::DoNotOptimize(loss.value().scalar());
  }
}
BENCHMARK(BM_MuseNetTrainStep);

void BM_MuseNetInference(benchmark::State& state) {
  muse::MuseNetConfig config;
  config.grid_h = 5;
  config.grid_w = 10;
  config.repr_dim = 12;
  config.dist_dim = 32;
  muse::MuseNet model(config, 7);
  model.SetTraining(false);

  Rng rng(6);
  data::Batch batch;
  batch.closeness = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.ClosenessChannels(), 5, 10}), rng,
      -1.0f, 1.0f);
  batch.period = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.PeriodChannels(), 5, 10}), rng, -1.0f,
      1.0f);
  batch.trend = ts::Tensor::RandomUniform(
      ts::Shape({8, config.periodicity.TrendChannels(), 5, 10}), rng, -1.0f,
      1.0f);
  batch.target =
      ts::Tensor::RandomUniform(ts::Shape({8, 2, 5, 10}), rng, -1.0f, 1.0f);
  for (int i = 0; i < 8; ++i) batch.target_indices.push_back(i);

  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(batch));
  }
}
BENCHMARK(BM_MuseNetInference);

// --- Observability overhead -------------------------------------------------
//
// The obs layer's disabled-mode contract (DESIGN.md "Observability"): a
// ScopedSpan with tracing off must cost a single relaxed atomic load and a
// predictable branch — no clock read, no allocation. These benchmarks pin
// that down; the obs_test allocation assertions cover the no-allocation half.

void BM_DisabledSpanOverhead(benchmark::State& state) {
  // Tracing is off unless MUSENET_TRACE was exported into the bench run.
  for (auto _ : state) {
    obs::ScopedSpan span("bench.disabled_span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpanOverhead);

void BM_DisabledSpanWithArg(benchmark::State& state) {
  int64_t i = 0;
  for (auto _ : state) {
    obs::ScopedSpan span("bench.disabled_span_arg", "i", i++);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpanWithArg);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd)->ThreadRange(1, 4);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& hist =
      obs::GetHistogram("bench.histogram", obs::LatencyBucketsMs());
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v += 0.125;
    if (v > 1000.0) v = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->ThreadRange(1, 4);

}  // namespace
}  // namespace musenet

BENCHMARK_MAIN();
