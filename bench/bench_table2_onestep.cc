// Reproduces Table II: one-step forecasting comparison on NYC-Bike,
// NYC-Taxi and TaxiBJ — RMSE / MAE / MAPE for outflow and inflow, per
// method, plus the paper's "Improvement" row (best baseline vs MUSE-Net).
//
// Baseline roster: representatives of every class in the paper's Table II
// (RNN-based: RNN, Seq2Seq; GNN-based: CONVGCN; attention-based: GMAN,
// STGSP; disentangle-based: ST-Norm; CNN-based: DeepSTN+; self-supervised:
// ST-SSL), plus a HistoricalAverage reference that is not in the paper.
//
// The whole experiment is declared as one incremental-pipeline DAG
// (simulate → dataset → per-model train → eval → table), so a rerun after
// editing one model's budget retrains only that model; everything else is
// served from the content-addressed stage cache. `musenet pipeline` runs
// the same graph with --explain/--jobs control.

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_pipeline.h"
#include "util/check.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table II — one-step forecasting comparison");

  const std::vector<std::string> methods = {
      "HistoricalAverage", "RNN",     "Seq2Seq",  "CONVGCN", "GMAN",
      "ST-Norm",           "STGSP",   "DeepSTN+", "ST-SSL",  "MUSE-Net"};
  const std::vector<sim::DatasetId> datasets(std::begin(sim::kAllDatasets),
                                             std::end(sim::kAllDatasets));

  pipeline::Pipeline graph;
  auto built = bench::BuildOneStepGraph(&graph, ctx, datasets, methods,
                                        /*horizon_offset=*/0,
                                        eval::TimeBucket::kAll,
                                        /*overrides=*/{});
  MUSE_CHECK(built.ok()) << built.status().ToString();

  pipeline::Pipeline::RunOptions options;
  options.cache_dir = bench::PipelineCacheDir(ctx);
  auto run = graph.Run(options);
  MUSE_CHECK(run.ok()) << run.status().ToString();

  for (size_t d = 0; d < datasets.size(); ++d) {
    std::printf("--- %s ---\n", sim::DatasetName(datasets[d]).c_str());
    std::vector<const std::string*> metric_payloads;
    for (const int eval_stage : built->eval_stages[d]) {
      metric_payloads.push_back(&graph.payload(eval_stage));
    }
    auto table = bench::OneStepTableFromPayloads(methods, metric_payloads);
    MUSE_CHECK(table.ok()) << table.status().ToString();
    std::printf("%s\n", table->ToString().c_str());
    // The CSV artifact is the table stage's cached payload itself, so warm
    // reruns rewrite it byte-identically.
    const int table_stage = built->table_stages[d];
    bench::EmitCsv(ctx,
                   std::string("table2_onestep_") +
                       sim::DatasetName(datasets[d]),
                   graph.payload(table_stage));
  }

  std::printf(
      "Shape check vs paper Table II: recurrent models (RNN/Seq2Seq) should\n"
      "trail the spatially aware CNN/attention class, with DeepSTN+ among\n"
      "the strongest baselines. The paper additionally reports MUSE-Net\n"
      "leading everywhere; at reduced scale expect it mid-pack — see\n"
      "EXPERIMENTS.md for the scale discussion.\n");
  return 0;
}
