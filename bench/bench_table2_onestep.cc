// Reproduces Table II: one-step forecasting comparison on NYC-Bike,
// NYC-Taxi and TaxiBJ — RMSE / MAE / MAPE for outflow and inflow, per
// method, plus the paper's "Improvement" row (best baseline vs MUSE-Net).
//
// Baseline roster: representatives of every class in the paper's Table II
// (RNN-based: RNN, Seq2Seq; GNN-based: CONVGCN; attention-based: GMAN,
// STGSP; disentangle-based: ST-Norm; CNN-based: DeepSTN+; self-supervised:
// ST-SSL), plus a HistoricalAverage reference that is not in the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace musenet;
  bench::ExperimentContext ctx =
      bench::MakeContext("Table II — one-step forecasting comparison");

  const std::vector<std::string> methods = {
      "HistoricalAverage", "RNN",     "Seq2Seq",  "CONVGCN", "GMAN",
      "ST-Norm",           "STGSP",   "DeepSTN+", "ST-SSL",  "MUSE-Net"};

  for (sim::DatasetId id : sim::kAllDatasets) {
    data::TrafficDataset dataset = bench::LoadDataset(id, ctx);
    std::printf("--- %s ---\n", sim::DatasetName(id).c_str());

    TablePrinter table({"Method", "Out RMSE", "Out MAE", "Out MAPE",
                        "In RMSE", "In MAE", "In MAPE"});
    double best_baseline_out_rmse = 1e18;
    double best_baseline_in_rmse = 1e18;
    double muse_out_rmse = 0.0;
    double muse_in_rmse = 0.0;

    for (const std::string& method : methods) {
      eval::PredictionSeries series =
          bench::GetOrComputePredictions(id, method, /*horizon=*/0, ctx);
      eval::FlowMetrics m = bench::MetricsFromSeries(
          series, dataset, eval::TimeBucket::kAll);
      table.AddRow({method, bench::F2(m.outflow.rmse),
                    bench::F2(m.outflow.mae), bench::Pct(m.outflow.mape),
                    bench::F2(m.inflow.rmse), bench::F2(m.inflow.mae),
                    bench::Pct(m.inflow.mape)});
      if (method == "MUSE-Net") {
        muse_out_rmse = m.outflow.rmse;
        muse_in_rmse = m.inflow.rmse;
      } else if (method != "HistoricalAverage") {
        // The paper's Improvement row compares against the best *published*
        // baseline.
        best_baseline_out_rmse =
            std::min(best_baseline_out_rmse, m.outflow.rmse);
        best_baseline_in_rmse = std::min(best_baseline_in_rmse,
                                         m.inflow.rmse);
      }
    }
    table.AddSeparator();
    table.AddRow(
        {"Improvement (RMSE)",
         bench::Pct(eval::Improvement(best_baseline_out_rmse, muse_out_rmse)),
         "", "",
         bench::Pct(eval::Improvement(best_baseline_in_rmse, muse_in_rmse)),
         "", ""});
    bench::EmitTable(
        ctx, std::string("table2_onestep_") + sim::DatasetName(id), table);
  }

  std::printf(
      "Shape check vs paper Table II: recurrent models (RNN/Seq2Seq) should\n"
      "trail the spatially aware CNN/attention class, with DeepSTN+ among\n"
      "the strongest baselines. The paper additionally reports MUSE-Net\n"
      "leading everywhere; at reduced scale expect it mid-pack — see\n"
      "EXPERIMENTS.md for the scale discussion.\n");
  return 0;
}
