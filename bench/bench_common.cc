#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>

#include "bench/bench_pipeline.h"
#include "tensor/serialize.h"
#include "util/check.h"
#include "util/io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace musenet::bench {

namespace ts = musenet::tensor;

ExperimentContext MakeContext(const std::string& experiment_name) {
  ExperimentContext ctx;
  ctx.scale = ResolveBenchScale();
  ctx.train.epochs = ctx.scale.epochs;
  ctx.train.batch_size = ctx.scale.batch_size;
  ctx.train.seed = ctx.scale.seed;
  ctx.train.learning_rate = ctx.scale.name == "paper" ? 2e-4 : 1e-3;
  // Early stopping keeps the budget bounded while letting slow-converging
  // models (MUSE-Net trains more parameters than the baselines) reach their
  // plateau; the rule is identical for every model.
  ctx.train.patience = ctx.scale.name == "paper" ? 0 : 15;
  ctx.max_train_samples = ctx.scale.name == "paper"   ? 0
                          : ctx.scale.name == "smoke" ? 120
                                                      : 320;
  ctx.results_dir = GetEnvOr("MUSE_BENCH_RESULTS_DIR", "results");
  std::filesystem::create_directories(ctx.results_dir);
  std::filesystem::create_directories(ctx.results_dir + "/cache");

  std::printf("=== %s ===\n", experiment_name.c_str());
  std::printf(
      "scale=%s seed=%llu epochs=%d lr=%g batch=%d d=%lld k=%lld "
      "max_train_samples=%lld\n\n",
      ctx.scale.name.c_str(),
      static_cast<unsigned long long>(ctx.scale.seed), ctx.train.epochs,
      ctx.train.learning_rate, ctx.train.batch_size,
      static_cast<long long>(ctx.scale.repr_dim),
      static_cast<long long>(ctx.scale.dist_dim),
      static_cast<long long>(ctx.max_train_samples));
  return ctx;
}

data::TrafficDataset LoadDataset(sim::DatasetId id,
                                 const ExperimentContext& ctx,
                                 int64_t horizon_offset) {
  sim::FlowSeries flows =
      sim::GenerateDatasetFlows(id, ctx.scale, ctx.scale.seed);
  data::DatasetOptions options;
  options.horizon_offset = horizon_offset;
  options.max_train_samples = ctx.max_train_samples;
  return data::TrafficDataset(std::move(flows), options);
}

muse::MuseNetConfig MakeMuseConfig(const data::TrafficDataset& dataset,
                                   const ExperimentContext& ctx) {
  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.periodicity = dataset.options().spec;
  config.repr_dim = ctx.scale.repr_dim;
  config.dist_dim = ctx.scale.dist_dim;
  return config;
}

baselines::BaselineSizing MakeSizing(const data::TrafficDataset& dataset,
                                     const ExperimentContext& ctx) {
  baselines::BaselineSizing sizing;
  sizing.grid_h = dataset.grid_height();
  sizing.grid_w = dataset.grid_width();
  sizing.spec = dataset.options().spec;
  sizing.hidden = ctx.scale.repr_dim;
  sizing.seed = ctx.scale.seed;
  return sizing;
}

std::unique_ptr<eval::Forecaster> MakeModel(const std::string& name,
                                            const data::TrafficDataset& ds,
                                            const ExperimentContext& ctx) {
  if (name == "MUSE-Net") {
    return std::make_unique<muse::MuseNet>(MakeMuseConfig(ds, ctx),
                                           ctx.scale.seed);
  }
  for (muse::MuseVariant variant :
       {muse::MuseVariant::kWithoutSpatial,
        muse::MuseVariant::kWithoutMultiDisentangle,
        muse::MuseVariant::kWithoutSemanticPushing,
        muse::MuseVariant::kWithoutSemanticPulling}) {
    if (name == muse::VariantName(variant)) {
      return muse::MakeMuseVariant(MakeMuseConfig(ds, ctx), variant,
                                   ctx.scale.seed);
    }
  }
  auto baseline = baselines::MakeBaseline(name, MakeSizing(ds, ctx));
  MUSE_CHECK(baseline != nullptr) << "unknown model " << name;
  return baseline;
}

namespace {

/// Runs a mini pipeline graph and returns the payload of `want_stage`.
/// Shared by the pipeline-backed bench caches below: the stage cache under
/// `<results_dir>/cache/pipeline` replaces the old flat .tensors files, so
/// the table/figure binaries and the `musenet pipeline` verb now reuse each
/// other's trainings (same content keys → same entries).
const std::string& RunGraphFor(pipeline::Pipeline& graph, int want_stage,
                               const ExperimentContext& ctx,
                               const char* what) {
  pipeline::Pipeline::RunOptions options;
  options.cache_dir = PipelineCacheDir(ctx);
  options.verbose = false;
  util::Stopwatch watch;
  auto run = graph.Run(options);
  MUSE_CHECK(run.ok()) << what << " pipeline failed: "
                       << run.status().ToString();
  const pipeline::StageOutcome& oc = graph.outcome(want_stage);
  if (oc.state == pipeline::StageOutcome::State::kHit) {
    std::printf("  [%s] cached\n", graph.stage_name(want_stage).c_str());
  } else {
    std::printf("  [%s] computed in %.0fs\n",
                graph.stage_name(want_stage).c_str(),
                watch.ElapsedSeconds());
  }
  std::fflush(stdout);
  return graph.payload(want_stage);
}

}  // namespace

eval::PredictionSeries GetOrComputePredictions(sim::DatasetId id,
                                               const std::string& model_name,
                                               int64_t horizon_offset,
                                               const ExperimentContext& ctx) {
  pipeline::Pipeline graph;
  const int sim_stage = AddSimulateStage(&graph, ctx, id);
  const int ds_stage = AddDatasetStage(&graph, ctx, id, horizon_offset,
                                       sim_stage);
  auto train = AddTrainStage(&graph, ctx, id, model_name, horizon_offset,
                             sim_stage, ds_stage);
  MUSE_CHECK(train.ok()) << train.status().ToString();
  const std::string& payload = RunGraphFor(graph, *train, ctx, "train");
  auto series = ParsePredictionSeries(graph.stage_name(*train), payload);
  MUSE_CHECK(series.ok()) << series.status().ToString();
  return std::move(series).value();
}

std::unique_ptr<muse::MuseNet> GetOrTrainMuse(sim::DatasetId id,
                                              const data::TrafficDataset& ds,
                                              const ExperimentContext& ctx) {
  pipeline::Pipeline graph;
  const int sim_stage = AddSimulateStage(&graph, ctx, id);
  const int ds_stage = AddDatasetStage(&graph, ctx, id, /*horizon_offset=*/0,
                                       sim_stage);
  auto train = AddMuseCheckpointStage(&graph, ctx, id, sim_stage, ds_stage);
  MUSE_CHECK(train.ok()) << train.status().ToString();
  const std::string& payload = RunGraphFor(graph, *train, ctx, "train-muse");
  auto state = ts::ParseTensors(graph.stage_name(*train), payload);
  MUSE_CHECK(state.ok()) << state.status().ToString();
  auto model = std::make_unique<muse::MuseNet>(MakeMuseConfig(ds, ctx),
                                               ctx.scale.seed);
  const Status loaded = model->LoadStateDict(*state);
  MUSE_CHECK(loaded.ok()) << loaded.ToString();
  model->SetTraining(false);
  return model;
}

eval::FlowMetrics MetricsFromSeries(const eval::PredictionSeries& series,
                                    const data::TrafficDataset& dataset,
                                    eval::TimeBucket bucket) {
  return MetricsFromFlows(series, dataset.flows(), bucket);
}

eval::FlowMetrics MetricsFromFlows(const eval::PredictionSeries& series,
                                   const sim::FlowSeries& flows,
                                   eval::TimeBucket bucket) {
  eval::MetricAccumulator out_acc;
  eval::MetricAccumulator in_acc;
  const int64_t n = series.predictions.dim(0);
  const int64_t plane =
      series.predictions.dim(2) * series.predictions.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = series.target_indices[static_cast<size_t>(i)];
    if (!eval::InBucket(flows, t, bucket)) continue;
    for (int flow = 0; flow < 2; ++flow) {
      eval::MetricAccumulator& acc =
          flow == sim::kOutflow ? out_acc : in_acc;
      const int64_t base = (i * 2 + flow) * plane;
      for (int64_t k = 0; k < plane; ++k) {
        acc.Add(series.predictions.flat(base + k),
                series.truths.flat(base + k));
      }
    }
  }
  return eval::FlowMetrics{.outflow = eval::ToRow(out_acc),
                           .inflow = eval::ToRow(in_acc)};
}

std::string F2(double v) { return FormatDouble(v, 2); }

std::string Pct(double fraction) { return FormatPercent(fraction); }

void EmitTable(const ExperimentContext& ctx, const std::string& name,
               TablePrinter& table) {
  std::printf("%s\n", table.ToString().c_str());
  const std::string path = ctx.results_dir + "/" + name + ".csv";
  const Status status = table.WriteCsv(path);
  if (status.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
  }
}

void EmitCsv(const ExperimentContext& ctx, const std::string& name,
             const std::string& csv) {
  const std::string path = ctx.results_dir + "/" + name + ".csv";
  const Status status = util::AtomicWriteFile(path, csv);
  if (status.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
  }
}

}  // namespace musenet::bench
