#include "bench/bench_common.h"

#include <cstdio>
#include <filesystem>

#include "infer/engine.h"
#include "tensor/serialize.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace musenet::bench {

namespace ts = musenet::tensor;

ExperimentContext MakeContext(const std::string& experiment_name) {
  ExperimentContext ctx;
  ctx.scale = ResolveBenchScale();
  ctx.train.epochs = ctx.scale.epochs;
  ctx.train.batch_size = ctx.scale.batch_size;
  ctx.train.seed = ctx.scale.seed;
  ctx.train.learning_rate = ctx.scale.name == "paper" ? 2e-4 : 1e-3;
  // Early stopping keeps the budget bounded while letting slow-converging
  // models (MUSE-Net trains more parameters than the baselines) reach their
  // plateau; the rule is identical for every model.
  ctx.train.patience = ctx.scale.name == "paper" ? 0 : 15;
  ctx.max_train_samples = ctx.scale.name == "paper"   ? 0
                          : ctx.scale.name == "smoke" ? 120
                                                      : 320;
  ctx.results_dir = GetEnvOr("MUSE_BENCH_RESULTS_DIR", "results");
  std::filesystem::create_directories(ctx.results_dir);
  std::filesystem::create_directories(ctx.results_dir + "/cache");

  std::printf("=== %s ===\n", experiment_name.c_str());
  std::printf(
      "scale=%s seed=%llu epochs=%d lr=%g batch=%d d=%lld k=%lld "
      "max_train_samples=%lld\n\n",
      ctx.scale.name.c_str(),
      static_cast<unsigned long long>(ctx.scale.seed), ctx.train.epochs,
      ctx.train.learning_rate, ctx.train.batch_size,
      static_cast<long long>(ctx.scale.repr_dim),
      static_cast<long long>(ctx.scale.dist_dim),
      static_cast<long long>(ctx.max_train_samples));
  return ctx;
}

data::TrafficDataset LoadDataset(sim::DatasetId id,
                                 const ExperimentContext& ctx,
                                 int64_t horizon_offset) {
  sim::FlowSeries flows =
      sim::GenerateDatasetFlows(id, ctx.scale, ctx.scale.seed);
  data::DatasetOptions options;
  options.horizon_offset = horizon_offset;
  options.max_train_samples = ctx.max_train_samples;
  return data::TrafficDataset(std::move(flows), options);
}

muse::MuseNetConfig MakeMuseConfig(const data::TrafficDataset& dataset,
                                   const ExperimentContext& ctx) {
  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.periodicity = dataset.options().spec;
  config.repr_dim = ctx.scale.repr_dim;
  config.dist_dim = ctx.scale.dist_dim;
  return config;
}

baselines::BaselineSizing MakeSizing(const data::TrafficDataset& dataset,
                                     const ExperimentContext& ctx) {
  baselines::BaselineSizing sizing;
  sizing.grid_h = dataset.grid_height();
  sizing.grid_w = dataset.grid_width();
  sizing.spec = dataset.options().spec;
  sizing.hidden = ctx.scale.repr_dim;
  sizing.seed = ctx.scale.seed;
  return sizing;
}

std::unique_ptr<eval::Forecaster> MakeModel(const std::string& name,
                                            const data::TrafficDataset& ds,
                                            const ExperimentContext& ctx) {
  if (name == "MUSE-Net") {
    return std::make_unique<muse::MuseNet>(MakeMuseConfig(ds, ctx),
                                           ctx.scale.seed);
  }
  for (muse::MuseVariant variant :
       {muse::MuseVariant::kWithoutSpatial,
        muse::MuseVariant::kWithoutMultiDisentangle,
        muse::MuseVariant::kWithoutSemanticPushing,
        muse::MuseVariant::kWithoutSemanticPulling}) {
    if (name == muse::VariantName(variant)) {
      return muse::MakeMuseVariant(MakeMuseConfig(ds, ctx), variant,
                                   ctx.scale.seed);
    }
  }
  auto baseline = baselines::MakeBaseline(name, MakeSizing(ds, ctx));
  MUSE_CHECK(baseline != nullptr) << "unknown model " << name;
  return baseline;
}

namespace {

std::string CacheKey(sim::DatasetId id, const std::string& model_name,
                     int64_t horizon_offset, const ExperimentContext& ctx) {
  std::string sanitized = model_name;
  for (char& ch : sanitized) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return ctx.results_dir + "/cache/" + ctx.scale.name + "_s" +
         std::to_string(ctx.scale.seed) + "_" + sim::DatasetName(id) + "_h" +
         std::to_string(horizon_offset) + "_" + sanitized + ".tensors";
}

}  // namespace

eval::PredictionSeries GetOrComputePredictions(sim::DatasetId id,
                                               const std::string& model_name,
                                               int64_t horizon_offset,
                                               const ExperimentContext& ctx) {
  const std::string path = CacheKey(id, model_name, horizon_offset, ctx);
  const bool cache_enabled = GetEnvOr("MUSE_BENCH_NO_CACHE", "0") != "1";
  if (cache_enabled) {
    auto loaded = ts::LoadTensors(path);
    if (loaded.ok() && loaded->count("predictions") &&
        loaded->count("truths") && loaded->count("indices")) {
      eval::PredictionSeries series;
      series.predictions = loaded->at("predictions");
      series.truths = loaded->at("truths");
      const ts::Tensor& idx = loaded->at("indices");
      for (int64_t i = 0; i < idx.num_elements(); ++i) {
        series.target_indices.push_back(static_cast<int64_t>(idx.flat(i)));
      }
      std::printf("  [%s @ %s h=%lld] cached\n", model_name.c_str(),
                  sim::DatasetName(id).c_str(),
                  static_cast<long long>(horizon_offset));
      return series;
    }
  }

  data::TrafficDataset dataset = LoadDataset(id, ctx, horizon_offset);
  std::unique_ptr<eval::Forecaster> model =
      MakeModel(model_name, dataset, ctx);
  util::Stopwatch watch;
  model->Train(dataset, ctx.train);
  // Test-set predictions run through the graph-free inference engine (one
  // planning pass, then static replay); unplannable models fall back to
  // their own Predict inside the wrapper.
  infer::EngineForecaster planned(*model);
  eval::PredictionSeries series = eval::CollectPredictions(
      planned, dataset, dataset.test_indices(), ctx.train.batch_size);
  std::printf("  [%s @ %s h=%lld] trained in %.0fs\n", model_name.c_str(),
              sim::DatasetName(id).c_str(),
              static_cast<long long>(horizon_offset),
              watch.ElapsedSeconds());
  std::fflush(stdout);

  if (cache_enabled) {
    ts::Tensor idx(ts::Shape(
        {static_cast<int64_t>(series.target_indices.size())}));
    for (size_t i = 0; i < series.target_indices.size(); ++i) {
      idx.flat(static_cast<int64_t>(i)) =
          static_cast<float>(series.target_indices[i]);
    }
    std::map<std::string, ts::Tensor> blob;
    blob.emplace("predictions", series.predictions);
    blob.emplace("truths", series.truths);
    blob.emplace("indices", std::move(idx));
    const Status status = ts::SaveTensors(path, blob);
    if (!status.ok()) {
      std::fprintf(stderr, "cache write failed: %s\n",
                   status.ToString().c_str());
    }
  }
  return series;
}

std::unique_ptr<muse::MuseNet> GetOrTrainMuse(sim::DatasetId id,
                                              const data::TrafficDataset& ds,
                                              const ExperimentContext& ctx) {
  auto model = std::make_unique<muse::MuseNet>(MakeMuseConfig(ds, ctx),
                                               ctx.scale.seed);
  const std::string path =
      ctx.results_dir + "/cache/" + ctx.scale.name + "_s" +
      std::to_string(ctx.scale.seed) + "_" + sim::DatasetName(id) +
      "_muse.ckpt";
  const bool cache_enabled = GetEnvOr("MUSE_BENCH_NO_CACHE", "0") != "1";
  if (cache_enabled) {
    auto loaded = ts::LoadTensors(path);
    if (loaded.ok() && model->LoadStateDict(*loaded).ok()) {
      model->SetTraining(false);
      std::printf("  [MUSE-Net @ %s] checkpoint loaded\n",
                  sim::DatasetName(id).c_str());
      return model;
    }
  }
  util::Stopwatch watch;
  model->Train(ds, ctx.train);
  std::printf("  [MUSE-Net @ %s] trained in %.0fs\n",
              sim::DatasetName(id).c_str(), watch.ElapsedSeconds());
  std::fflush(stdout);
  if (cache_enabled) {
    const Status status = ts::SaveTensors(path, model->StateDict());
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint write failed: %s\n",
                   status.ToString().c_str());
    }
  }
  return model;
}

eval::FlowMetrics MetricsFromSeries(const eval::PredictionSeries& series,
                                    const data::TrafficDataset& dataset,
                                    eval::TimeBucket bucket) {
  eval::MetricAccumulator out_acc;
  eval::MetricAccumulator in_acc;
  const auto& flows = dataset.flows();
  const int64_t n = series.predictions.dim(0);
  const int64_t plane =
      series.predictions.dim(2) * series.predictions.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = series.target_indices[static_cast<size_t>(i)];
    if (!eval::InBucket(flows, t, bucket)) continue;
    for (int flow = 0; flow < 2; ++flow) {
      eval::MetricAccumulator& acc =
          flow == sim::kOutflow ? out_acc : in_acc;
      const int64_t base = (i * 2 + flow) * plane;
      for (int64_t k = 0; k < plane; ++k) {
        acc.Add(series.predictions.flat(base + k),
                series.truths.flat(base + k));
      }
    }
  }
  return eval::FlowMetrics{.outflow = eval::ToRow(out_acc),
                           .inflow = eval::ToRow(in_acc)};
}

std::string F2(double v) { return FormatDouble(v, 2); }

std::string Pct(double fraction) { return FormatPercent(fraction); }

void EmitTable(const ExperimentContext& ctx, const std::string& name,
               TablePrinter& table) {
  std::printf("%s\n", table.ToString().c_str());
  const std::string path = ctx.results_dir + "/" + name + ".csv";
  const Status status = table.WriteCsv(path);
  if (status.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "CSV write failed: %s\n", status.ToString().c_str());
  }
}

}  // namespace musenet::bench
