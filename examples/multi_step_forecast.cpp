// Example: direct multi-horizon forecasting (paper Eq. 7 / Table III).
//
// Trains one MUSE-Net per horizon (1–3 steps ahead, i.e. up to 1.5 hours at
// 30-minute intervals) and reports how error grows with the horizon.

#include <cstdio>

#include "data/dataset.h"
#include "eval/evaluate.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "util/bench_config.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace musenet;

  BenchScale scale = ResolveBenchScale();
  std::printf("multi-step forecasting on NYC-Taxi, scale=%s\n",
              scale.name.c_str());

  eval::TrainConfig train;
  train.epochs = scale.epochs;
  train.batch_size = scale.batch_size;
  train.seed = scale.seed;
  train.learning_rate = 1e-3;

  TablePrinter table(
      {"Horizon", "Lead time", "Out RMSE", "Out MAE", "In RMSE", "In MAE"});

  for (int horizon = 1; horizon <= 3; ++horizon) {
    // Each horizon is its own dataset view: same inputs, target shifted by
    // horizon − 1 extra steps (direct multi-step strategy).
    sim::FlowSeries flows =
        sim::GenerateDatasetFlows(sim::DatasetId::kNycTaxi, scale, scale.seed);
    data::DatasetOptions options;
    options.horizon_offset = horizon - 1;
    options.max_train_samples = 320;
    data::TrafficDataset dataset(std::move(flows), options);

    muse::MuseNetConfig config;
    config.grid_h = dataset.grid_height();
    config.grid_w = dataset.grid_width();
    config.repr_dim = scale.repr_dim;
    config.dist_dim = scale.dist_dim;
    muse::MuseNet model(config, scale.seed);
    model.Train(dataset, train);

    eval::FlowMetrics m =
        eval::EvaluateOnTest(model, dataset, train.batch_size);
    char lead[32];
    std::snprintf(lead, sizeof(lead), "%d min", horizon * 30);
    table.AddRow({std::to_string(horizon), lead,
                  FormatDouble(m.outflow.rmse, 2),
                  FormatDouble(m.outflow.mae, 2),
                  FormatDouble(m.inflow.rmse, 2),
                  FormatDouble(m.inflow.mae, 2)});
    std::printf("finished horizon %d\n", horizon);
  }

  std::printf("\n%s", table.ToString().c_str());
  std::printf("errors grow with lead time, as in the paper's Table III.\n");
  return 0;
}
