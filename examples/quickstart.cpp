// Quickstart: simulate a small city, train MUSE-Net, evaluate and predict.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the full public API surface end to end:
//   1. simulate traffic with a dataset preset (sim::GenerateDatasetFlows),
//   2. intercept it into closeness/period/trend samples (data::TrafficDataset),
//   3. train MUSE-Net (muse::MuseNet::Train),
//   4. evaluate RMSE/MAE/MAPE on the held-out test span (eval::EvaluateOnTest),
//   5. predict a single frame and print a few region forecasts.

#include <cstdio>

#include "data/dataset.h"
#include "eval/evaluate.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "util/bench_config.h"
#include "util/stopwatch.h"

int main() {
  using namespace musenet;

  // 1. Simulate a small NYC-Bike-like city (use MUSE_BENCH_SCALE=smoke for a
  //    seconds-long run; "default" takes a few minutes).
  BenchScale scale = ResolveBenchScale();
  std::printf("scale=%s  seed=%llu\n", scale.name.c_str(),
              static_cast<unsigned long long>(scale.seed));
  Stopwatch watch;
  sim::FlowSeries flows =
      sim::GenerateDatasetFlows(sim::DatasetId::kNycBike, scale, scale.seed);
  std::printf("simulated %lld intervals on a %lldx%lld grid in %.1fs "
              "(mean flow %.2f, max %.0f)\n",
              static_cast<long long>(flows.num_intervals()),
              static_cast<long long>(flows.grid().height),
              static_cast<long long>(flows.grid().width),
              watch.ElapsedSeconds(), flows.MeanValue(), flows.MaxValue());

  // 2. Build the dataset: Definition 3 interception + Min-Max scaling.
  data::DatasetOptions options;
  data::TrafficDataset dataset(std::move(flows), options);
  std::printf("samples: train=%zu val=%zu test=%zu\n",
              dataset.train_indices().size(), dataset.val_indices().size(),
              dataset.test_indices().size());

  // 3. Configure and train MUSE-Net.
  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = scale.repr_dim;
  config.dist_dim = scale.dist_dim;
  muse::MuseNet model(config, scale.seed);
  std::printf("MUSE-Net has %lld parameters\n",
              static_cast<long long>(model.NumParameters()));

  eval::TrainConfig train;
  train.epochs = scale.epochs;
  train.batch_size = scale.batch_size;
  train.seed = scale.seed;
  train.verbose = true;
  watch.Restart();
  model.Train(dataset, train);
  std::printf("trained in %.1fs\n", watch.ElapsedSeconds());

  // 4. Evaluate on the held-out test span.
  eval::FlowMetrics metrics =
      eval::EvaluateOnTest(model, dataset, train.batch_size);
  std::printf("test outflow: RMSE %.2f  MAE %.2f  MAPE %.2f%%\n",
              metrics.outflow.rmse, metrics.outflow.mae,
              metrics.outflow.mape * 100.0);
  std::printf("test inflow:  RMSE %.2f  MAE %.2f  MAPE %.2f%%\n",
              metrics.inflow.rmse, metrics.inflow.mae,
              metrics.inflow.mape * 100.0);

  // 5. Predict the first test frame and show a few regions.
  data::Batch one = dataset.MakeBatch({dataset.test_indices().front()});
  tensor::Tensor pred = dataset.scaler().Inverse(model.Predict(one));
  tensor::Tensor truth = dataset.scaler().Inverse(one.target);
  std::printf("region (0,0): predicted out/in = %.1f/%.1f, actual %.1f/%.1f\n",
              pred.at({0, 0, 0, 0}), pred.at({0, 1, 0, 0}),
              truth.at({0, 0, 0, 0}), truth.at({0, 1, 0, 0}));
  return 0;
}
