// Example: head-to-head comparison of MUSE-Net against selected baselines
// on one benchmark dataset.
//
//   ./build/examples/compare_models [bike|taxi|bj]
//
// Uses the shared Forecaster interface: every model gets the same data and
// training budget, then RMSE/MAE/MAPE are reported per flow direction —
// a miniature version of the paper's Table II pipeline.

#include <cstdio>
#include <string>

#include "baselines/registry.h"
#include "data/dataset.h"
#include "eval/evaluate.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "util/bench_config.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace musenet;

  const std::string which = argc > 1 ? argv[1] : "taxi";
  sim::DatasetId id = sim::DatasetId::kNycTaxi;
  if (which == "bike") id = sim::DatasetId::kNycBike;
  if (which == "bj") id = sim::DatasetId::kTaxiBj;

  BenchScale scale = ResolveBenchScale();
  std::printf("dataset=%s scale=%s epochs=%d\n",
              sim::DatasetName(id).c_str(), scale.name.c_str(), scale.epochs);

  sim::FlowSeries flows = sim::GenerateDatasetFlows(id, scale, scale.seed);
  data::DatasetOptions options;
  options.max_train_samples = 320;
  data::TrafficDataset dataset(std::move(flows), options);

  eval::TrainConfig train;
  train.epochs = scale.epochs;
  train.batch_size = scale.batch_size;
  train.seed = scale.seed;
  train.learning_rate = 1e-3;

  TablePrinter table({"Method", "Out RMSE", "Out MAE", "Out MAPE", "In RMSE",
                      "In MAE", "In MAPE", "Train s"});

  auto run = [&](eval::Forecaster& model) {
    Stopwatch watch;
    model.Train(dataset, train);
    const double seconds = watch.ElapsedSeconds();
    eval::FlowMetrics m =
        eval::EvaluateOnTest(model, dataset, train.batch_size);
    table.AddRow({model.name(), FormatDouble(m.outflow.rmse, 2),
                  FormatDouble(m.outflow.mae, 2),
                  FormatPercent(m.outflow.mape),
                  FormatDouble(m.inflow.rmse, 2),
                  FormatDouble(m.inflow.mae, 2),
                  FormatPercent(m.inflow.mape), FormatDouble(seconds, 0)});
    std::printf("finished %s\n", model.name().c_str());
  };

  baselines::BaselineSizing sizing;
  sizing.grid_h = dataset.grid_height();
  sizing.grid_w = dataset.grid_width();
  sizing.spec = options.spec;
  sizing.hidden = scale.repr_dim;
  sizing.seed = scale.seed;
  for (const char* name : {"HistoricalAverage", "ST-Norm", "DeepSTN+"}) {
    auto baseline = baselines::MakeBaseline(name, sizing);
    run(*baseline);
  }

  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = scale.repr_dim;
  config.dist_dim = scale.dist_dim;
  muse::MuseNet muse_net(config, scale.seed);
  run(muse_net);

  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
