// Example: drive the traffic simulator directly (no training).
//
// Builds a custom city — grid, demand profile, a rain event and a stadium
// burst — runs the trajectory simulation, rasterizes flows per the paper's
// Definition 2 and prints a day-profile summary plus the event signatures.
// This is the substrate that stands in for the NYC-Bike/NYC-Taxi/TaxiBJ
// trajectory datasets; see DESIGN.md "Substitutions".

#include <cstdio>

#include "sim/city.h"
#include "sim/rasterize.h"

int main() {
  using namespace musenet;

  sim::CityConfig config;
  config.grid = {6, 6};
  config.intervals_per_day = 48;  // 30-minute intervals.
  config.start_weekday = 0;       // Monday.
  config.days = 14;
  config.trips_per_interval = 250.0;
  config.commute_amplitude = 1.8;

  // A rainy Wednesday (day 2): demand drops to 45%.
  config.shifts.push_back(sim::ShiftEvent{
      .kind = sim::ShiftEvent::Kind::kLevel,
      .start_interval = 2 * 48,
      .duration = 48,
      .magnitude = 0.45,
      .region = {},
  });
  // A stadium event emptying out of region (5,5) on Friday evening.
  config.shifts.push_back(sim::ShiftEvent{
      .kind = sim::ShiftEvent::Kind::kPoint,
      .start_interval = 4 * 48 + 44,  // Friday 22:00.
      .duration = 2,
      .magnitude = 1.5,
      .region = {5, 5},
  });

  sim::City city(config, /*seed=*/2024);
  sim::SimulationResult result = city.Simulate();
  const sim::FlowSeries& flows = result.flows;

  std::printf("simulated %lld trips over %d days on a %lldx%lld grid\n",
              static_cast<long long>(result.num_trips), config.days,
              static_cast<long long>(config.grid.height),
              static_cast<long long>(config.grid.width));

  // Day profile: city-wide outflow per 2-hour block on a weekday.
  std::printf("\nTuesday outflow profile (city total per 2h block):\n");
  for (int block = 0; block < 12; ++block) {
    double total = 0.0;
    for (int slot = 0; slot < 4; ++slot) {
      const int64_t t = 1 * 48 + block * 4 + slot;
      for (int64_t h = 0; h < 6; ++h) {
        for (int64_t w = 0; w < 6; ++w) {
          total += flows.at(t, sim::kOutflow, h, w);
        }
      }
    }
    std::printf("  %02d:00-%02d:00 %6.0f  %s\n", block * 2, block * 2 + 2,
                total,
                std::string(static_cast<size_t>(total / 40), '#').c_str());
  }

  // Event signatures.
  auto day_total = [&](int day) {
    double total = 0.0;
    for (int64_t t = day * 48; t < (day + 1) * 48; ++t) {
      for (int64_t h = 0; h < 6; ++h) {
        for (int64_t w = 0; w < 6; ++w) {
          total += flows.at(t, sim::kOutflow, h, w);
        }
      }
    }
    return total;
  };
  std::printf("\nlevel shift: Tue total %.0f vs rainy Wed total %.0f\n",
              day_total(1), day_total(2));

  double burst = 0.0;
  double usual = 0.0;
  for (int64_t k = 0; k < 3; ++k) {
    burst += flows.at(4 * 48 + 44 + k, sim::kOutflow, 5, 5);
    usual += flows.at(3 * 48 + 44 + k, sim::kOutflow, 5, 5);  // Thu same time.
  }
  std::printf("point shift: region (5,5) Friday-22:00 outflow %.0f vs "
              "Thursday %.0f\n",
              burst, usual);
  return 0;
}
