// Example: MUSE-Net beyond traffic — regional energy-demand forecasting.
//
// The paper's conclusion argues the method transfers to other multi-periodic
// forecasting problems (epidemic, air-quality, energy). This example builds
// a synthetic regional electricity-demand series directly (no trajectory
// simulator: demand is not a flow of moving objects), feeds it through the
// same FlowSeries → interception → MUSE-Net pipeline, and compares against
// the historical-average reference. Channel 0 holds consumption and channel
// 1 holds local (solar) generation — the two interact with weather, giving
// the distribution shifts the disentanglement targets.

#include <cmath>
#include <cstdio>

#include "baselines/historical_average.h"
#include "data/dataset.h"
#include "eval/evaluate.h"
#include "muse/model.h"
#include "util/bench_config.h"
#include "util/rng.h"

namespace musenet {
namespace {

/// Builds a [days × 24] hourly series over a grid of utility districts.
sim::FlowSeries SynthesizeEnergyDemand(int64_t grid_h, int64_t grid_w,
                                       int days, uint64_t seed) {
  const int f = 24;  // Hourly resolution.
  sim::FlowSeries series(sim::GridSpec{grid_h, grid_w}, f,
                         /*start_weekday=*/0, days * f);
  Rng rng(seed);

  // District base loads and solar capacity differ across the grid.
  std::vector<double> base_load(static_cast<size_t>(grid_h * grid_w));
  std::vector<double> solar_cap(base_load.size());
  for (auto& v : base_load) v = rng.Uniform(40.0, 120.0);
  for (auto& v : solar_cap) v = rng.Uniform(5.0, 40.0);

  // Weekly weather: cloud cover persists across days (AR(1)).
  double cloud = 0.3;
  for (int day = 0; day < days; ++day) {
    cloud = std::clamp(0.6 * cloud + rng.Normal(0.12, 0.15), 0.0, 1.0);
    const bool weekend = (day % 7) >= 5;
    for (int hour = 0; hour < f; ++hour) {
      // Demand: morning and evening residential peaks, weekday daytime
      // commercial load, overnight trough.
      const double residential =
          std::exp(-0.5 * std::pow((hour - 7.5) / 1.5, 2)) +
          1.4 * std::exp(-0.5 * std::pow((hour - 19.0) / 2.0, 2));
      const double commercial =
          weekend ? 0.2
                  : 0.9 * std::exp(-0.5 * std::pow((hour - 13.0) / 3.5, 2));
      // Solar: midday bell scaled by (1 − cloud).
      const double sun = std::max(
          0.0, std::exp(-0.5 * std::pow((hour - 12.5) / 2.8, 2)) *
                   (1.0 - cloud));
      for (int64_t h = 0; h < grid_h; ++h) {
        for (int64_t w = 0; w < grid_w; ++w) {
          const size_t idx = static_cast<size_t>(h * grid_w + w);
          const double demand =
              base_load[idx] * (0.35 + residential + commercial) *
              std::exp(rng.Normal(0.0, 0.04));
          const double generation =
              solar_cap[idx] * sun * std::exp(rng.Normal(0.0, 0.08));
          const int64_t t = static_cast<int64_t>(day) * f + hour;
          series.at(t, 0, h, w) = static_cast<float>(demand);
          series.at(t, 1, h, w) = static_cast<float>(generation);
        }
      }
    }
  }
  return series;
}

}  // namespace
}  // namespace musenet

int main() {
  using namespace musenet;

  BenchScale scale = ResolveBenchScale();
  std::printf("energy-demand forecasting (paper future-work transfer), "
              "scale=%s\n", scale.name.c_str());

  // 42 days of hourly data over a 4×4 district grid.
  sim::FlowSeries series = SynthesizeEnergyDemand(4, 4, 42, scale.seed);

  data::DatasetOptions options;
  options.max_train_samples = 320;
  data::TrafficDataset dataset(std::move(series), options);
  std::printf("samples: train=%zu test=%zu\n", dataset.train_indices().size(),
              dataset.test_indices().size());

  eval::TrainConfig train;
  train.epochs = scale.epochs;
  train.patience = 15;
  train.batch_size = scale.batch_size;
  train.seed = scale.seed;
  train.learning_rate = 1e-3;

  baselines::HistoricalAverage reference;
  reference.Train(dataset, train);
  eval::FlowMetrics ref = eval::EvaluateOnTest(reference, dataset, 8);

  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = scale.repr_dim;
  config.dist_dim = scale.dist_dim;
  muse::MuseNet model(config, scale.seed);
  model.Train(dataset, train);
  eval::FlowMetrics m = eval::EvaluateOnTest(model, dataset, 8);

  std::printf("\n%-22s demand RMSE %7.2f   solar RMSE %7.2f\n",
              "HistoricalAverage:", ref.outflow.rmse, ref.inflow.rmse);
  std::printf("%-22s demand RMSE %7.2f   solar RMSE %7.2f\n",
              "MUSE-Net:", m.outflow.rmse, m.inflow.rmse);
  std::printf(
      "\nsolar generation depends on persistent cloud cover, which a purely\n"
      "periodic average cannot see but the closeness sub-series can — at\n"
      "full training budget (MUSE_BENCH_SCALE=default) the model exploits\n"
      "it. The point of this example is the transfer itself: the identical\n"
      "pipeline handles a non-traffic domain, as the paper's conclusion\n"
      "anticipates.\n");
  return 0;
}
