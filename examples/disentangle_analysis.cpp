// Example: inspect MUSE-Net's disentangled representations (the paper's
// RQ3–RQ5 workflow as an API walkthrough).
//
// Trains a small MUSE-Net, extracts Z^C/Z^P/Z^T/Z^S for test samples, then:
//   1. checks independence — mutual information between Z^S and each
//      exclusive representation (semantic pushing),
//   2. checks informativeness — cosine similarity between Z^S and the raw
//      sub-series (semantic pulling),
//   3. embeds everything with t-SNE and reports cluster separation.

#include <cstdio>
#include <vector>

#include "analysis/mutual_info.h"
#include "analysis/similarity.h"
#include "analysis/tsne.h"
#include "data/dataset.h"
#include "muse/model.h"
#include "sim/presets.h"
#include "tensor/tensor_ops.h"
#include "util/bench_config.h"

int main() {
  using namespace musenet;
  namespace ts = musenet::tensor;

  BenchScale scale = ResolveBenchScale();
  std::printf("disentanglement analysis on NYC-Bike, scale=%s\n",
              scale.name.c_str());

  sim::FlowSeries flows =
      sim::GenerateDatasetFlows(sim::DatasetId::kNycBike, scale, scale.seed);
  data::DatasetOptions options;
  options.max_train_samples = 320;
  data::TrafficDataset dataset(std::move(flows), options);

  muse::MuseNetConfig config;
  config.grid_h = dataset.grid_height();
  config.grid_w = dataset.grid_width();
  config.repr_dim = scale.repr_dim;
  config.dist_dim = scale.dist_dim;
  muse::MuseNet model(config, scale.seed);

  eval::TrainConfig train;
  train.epochs = scale.epochs;
  train.batch_size = scale.batch_size;
  train.seed = scale.seed;
  train.learning_rate = 1e-3;
  model.Train(dataset, train);
  model.SetTraining(false);
  std::printf("trained (%lld parameters)\n",
              static_cast<long long>(model.NumParameters()));

  // Collect representations over up to 96 test samples.
  std::vector<ts::Tensor> z_c, z_p, z_t, z_s, raw_c;
  const auto& pool = dataset.test_indices();
  for (size_t begin = 0; begin < pool.size() && begin < 96; begin += 8) {
    data::Batch batch = dataset.MakeBatchFromPool(pool, begin, 8);
    auto reps = model.ExtractRepresentations(batch);
    z_c.push_back(reps.z_closeness);
    z_p.push_back(reps.z_period);
    z_t.push_back(reps.z_trend);
    z_s.push_back(reps.z_interactive);
    raw_c.push_back(ts::Mean(ts::Mean(batch.closeness, 3), 2));
  }
  ts::Tensor zc = ts::Concat(z_c, 0);
  ts::Tensor zp = ts::Concat(z_p, 0);
  ts::Tensor zt = ts::Concat(z_t, 0);
  ts::Tensor zs = ts::Concat(z_s, 0);

  // 1. Independence (RQ3).
  std::printf("\nindependence — mutual information with Z^S (lower = more "
              "disentangled):\n");
  std::printf("  I(Z^C; Z^S) = %.3f nats\n",
              analysis::EstimateMutualInformationKsg(zc, zs));
  std::printf("  I(Z^P; Z^S) = %.3f nats\n",
              analysis::EstimateMutualInformationKsg(zp, zs));
  std::printf("  I(Z^T; Z^S) = %.3f nats\n",
              analysis::EstimateMutualInformationKsg(zt, zs));

  // 2. Informativeness (RQ4): similarity of Z^S to the raw closeness view.
  ts::Tensor raw = ts::Concat(raw_c, 0);
  const int64_t dim = std::min<int64_t>(zs.dim(1), raw.dim(1));
  ts::Tensor sims = analysis::CosineSimilarityMatrix(
      ts::Slice(zs, 1, 0, dim), ts::Slice(raw, 1, 0, dim));
  std::printf("\ninformativeness — %.1f%% of Z^S/closeness similarities are "
              "positive\n",
              100.0 * analysis::FractionAbove(sims, 0.0));

  // 3. t-SNE cluster separation (Fig. 5).
  ts::Tensor all = ts::Concat({zc, zp, zt, zs}, 0);
  std::vector<int> labels;
  for (int group = 0; group < 4; ++group) {
    for (int64_t i = 0; i < zc.dim(0); ++i) labels.push_back(group);
  }
  analysis::TsneOptions tsne;
  tsne.iterations = 200;
  tsne.seed = scale.seed;
  ts::Tensor embedded = analysis::RunTsne(all, tsne);
  std::printf("\nt-SNE silhouette of {Z^C, Z^P, Z^T, Z^S} clusters: %.3f "
              "(positive = separated, as in paper Fig. 5)\n",
              analysis::SilhouetteScore(embedded, labels));
  return 0;
}
