# Empty dependencies file for disentangle_analysis.
# This may be replaced when dependencies are built.
