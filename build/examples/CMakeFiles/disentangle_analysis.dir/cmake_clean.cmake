file(REMOVE_RECURSE
  "CMakeFiles/disentangle_analysis.dir/disentangle_analysis.cpp.o"
  "CMakeFiles/disentangle_analysis.dir/disentangle_analysis.cpp.o.d"
  "disentangle_analysis"
  "disentangle_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disentangle_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
