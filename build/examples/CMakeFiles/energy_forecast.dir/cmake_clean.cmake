file(REMOVE_RECURSE
  "CMakeFiles/energy_forecast.dir/energy_forecast.cpp.o"
  "CMakeFiles/energy_forecast.dir/energy_forecast.cpp.o.d"
  "energy_forecast"
  "energy_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
