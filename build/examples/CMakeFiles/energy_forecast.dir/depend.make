# Empty dependencies file for energy_forecast.
# This may be replaced when dependencies are built.
