file(REMOVE_RECURSE
  "CMakeFiles/simulate_city.dir/simulate_city.cpp.o"
  "CMakeFiles/simulate_city.dir/simulate_city.cpp.o.d"
  "simulate_city"
  "simulate_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
