file(REMOVE_RECURSE
  "CMakeFiles/multi_step_forecast.dir/multi_step_forecast.cpp.o"
  "CMakeFiles/multi_step_forecast.dir/multi_step_forecast.cpp.o.d"
  "multi_step_forecast"
  "multi_step_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_step_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
