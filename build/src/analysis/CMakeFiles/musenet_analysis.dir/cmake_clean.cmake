file(REMOVE_RECURSE
  "CMakeFiles/musenet_analysis.dir/mutual_info.cc.o"
  "CMakeFiles/musenet_analysis.dir/mutual_info.cc.o.d"
  "CMakeFiles/musenet_analysis.dir/similarity.cc.o"
  "CMakeFiles/musenet_analysis.dir/similarity.cc.o.d"
  "CMakeFiles/musenet_analysis.dir/tsne.cc.o"
  "CMakeFiles/musenet_analysis.dir/tsne.cc.o.d"
  "libmusenet_analysis.a"
  "libmusenet_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
