file(REMOVE_RECURSE
  "libmusenet_analysis.a"
)
