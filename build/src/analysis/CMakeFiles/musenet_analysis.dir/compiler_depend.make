# Empty compiler generated dependencies file for musenet_analysis.
# This may be replaced when dependencies are built.
