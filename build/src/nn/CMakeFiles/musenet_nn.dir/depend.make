# Empty dependencies file for musenet_nn.
# This may be replaced when dependencies are built.
