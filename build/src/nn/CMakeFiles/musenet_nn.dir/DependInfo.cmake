
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/musenet_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/batch_norm.cc" "src/nn/CMakeFiles/musenet_nn.dir/batch_norm.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/batch_norm.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/musenet_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/musenet_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/musenet_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/gru.cc" "src/nn/CMakeFiles/musenet_nn.dir/gru.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/gru.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/musenet_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/musenet_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/musenet_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/musenet_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/musenet_nn.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autograd/CMakeFiles/musenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
