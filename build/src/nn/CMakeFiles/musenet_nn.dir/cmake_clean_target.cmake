file(REMOVE_RECURSE
  "libmusenet_nn.a"
)
