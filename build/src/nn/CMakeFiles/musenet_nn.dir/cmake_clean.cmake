file(REMOVE_RECURSE
  "CMakeFiles/musenet_nn.dir/activations.cc.o"
  "CMakeFiles/musenet_nn.dir/activations.cc.o.d"
  "CMakeFiles/musenet_nn.dir/batch_norm.cc.o"
  "CMakeFiles/musenet_nn.dir/batch_norm.cc.o.d"
  "CMakeFiles/musenet_nn.dir/conv.cc.o"
  "CMakeFiles/musenet_nn.dir/conv.cc.o.d"
  "CMakeFiles/musenet_nn.dir/dense.cc.o"
  "CMakeFiles/musenet_nn.dir/dense.cc.o.d"
  "CMakeFiles/musenet_nn.dir/dropout.cc.o"
  "CMakeFiles/musenet_nn.dir/dropout.cc.o.d"
  "CMakeFiles/musenet_nn.dir/gru.cc.o"
  "CMakeFiles/musenet_nn.dir/gru.cc.o.d"
  "CMakeFiles/musenet_nn.dir/init.cc.o"
  "CMakeFiles/musenet_nn.dir/init.cc.o.d"
  "CMakeFiles/musenet_nn.dir/layer_norm.cc.o"
  "CMakeFiles/musenet_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/musenet_nn.dir/lstm.cc.o"
  "CMakeFiles/musenet_nn.dir/lstm.cc.o.d"
  "CMakeFiles/musenet_nn.dir/module.cc.o"
  "CMakeFiles/musenet_nn.dir/module.cc.o.d"
  "libmusenet_nn.a"
  "libmusenet_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
