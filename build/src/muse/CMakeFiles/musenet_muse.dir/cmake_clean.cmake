file(REMOVE_RECURSE
  "CMakeFiles/musenet_muse.dir/config.cc.o"
  "CMakeFiles/musenet_muse.dir/config.cc.o.d"
  "CMakeFiles/musenet_muse.dir/decoders.cc.o"
  "CMakeFiles/musenet_muse.dir/decoders.cc.o.d"
  "CMakeFiles/musenet_muse.dir/encoders.cc.o"
  "CMakeFiles/musenet_muse.dir/encoders.cc.o.d"
  "CMakeFiles/musenet_muse.dir/gaussian.cc.o"
  "CMakeFiles/musenet_muse.dir/gaussian.cc.o.d"
  "CMakeFiles/musenet_muse.dir/model.cc.o"
  "CMakeFiles/musenet_muse.dir/model.cc.o.d"
  "CMakeFiles/musenet_muse.dir/resplus.cc.o"
  "CMakeFiles/musenet_muse.dir/resplus.cc.o.d"
  "libmusenet_muse.a"
  "libmusenet_muse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_muse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
