# Empty dependencies file for musenet_muse.
# This may be replaced when dependencies are built.
