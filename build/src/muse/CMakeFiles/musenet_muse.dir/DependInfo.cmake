
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/muse/config.cc" "src/muse/CMakeFiles/musenet_muse.dir/config.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/config.cc.o.d"
  "/root/repo/src/muse/decoders.cc" "src/muse/CMakeFiles/musenet_muse.dir/decoders.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/decoders.cc.o.d"
  "/root/repo/src/muse/encoders.cc" "src/muse/CMakeFiles/musenet_muse.dir/encoders.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/encoders.cc.o.d"
  "/root/repo/src/muse/gaussian.cc" "src/muse/CMakeFiles/musenet_muse.dir/gaussian.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/gaussian.cc.o.d"
  "/root/repo/src/muse/model.cc" "src/muse/CMakeFiles/musenet_muse.dir/model.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/model.cc.o.d"
  "/root/repo/src/muse/resplus.cc" "src/muse/CMakeFiles/musenet_muse.dir/resplus.cc.o" "gcc" "src/muse/CMakeFiles/musenet_muse.dir/resplus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/musenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/musenet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/musenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/musenet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/musenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/musenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
