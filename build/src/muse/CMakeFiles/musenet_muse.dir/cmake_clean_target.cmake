file(REMOVE_RECURSE
  "libmusenet_muse.a"
)
