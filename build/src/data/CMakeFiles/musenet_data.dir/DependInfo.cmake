
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/musenet_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/musenet_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/interception.cc" "src/data/CMakeFiles/musenet_data.dir/interception.cc.o" "gcc" "src/data/CMakeFiles/musenet_data.dir/interception.cc.o.d"
  "/root/repo/src/data/scaler.cc" "src/data/CMakeFiles/musenet_data.dir/scaler.cc.o" "gcc" "src/data/CMakeFiles/musenet_data.dir/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/musenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
