file(REMOVE_RECURSE
  "libmusenet_data.a"
)
