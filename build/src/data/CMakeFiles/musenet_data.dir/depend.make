# Empty dependencies file for musenet_data.
# This may be replaced when dependencies are built.
