file(REMOVE_RECURSE
  "CMakeFiles/musenet_data.dir/dataset.cc.o"
  "CMakeFiles/musenet_data.dir/dataset.cc.o.d"
  "CMakeFiles/musenet_data.dir/interception.cc.o"
  "CMakeFiles/musenet_data.dir/interception.cc.o.d"
  "CMakeFiles/musenet_data.dir/scaler.cc.o"
  "CMakeFiles/musenet_data.dir/scaler.cc.o.d"
  "libmusenet_data.a"
  "libmusenet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
