file(REMOVE_RECURSE
  "CMakeFiles/musenet_baselines.dir/convgcn.cc.o"
  "CMakeFiles/musenet_baselines.dir/convgcn.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/deepstn.cc.o"
  "CMakeFiles/musenet_baselines.dir/deepstn.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/gman.cc.o"
  "CMakeFiles/musenet_baselines.dir/gman.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/historical_average.cc.o"
  "CMakeFiles/musenet_baselines.dir/historical_average.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/neural_forecaster.cc.o"
  "CMakeFiles/musenet_baselines.dir/neural_forecaster.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/registry.cc.o"
  "CMakeFiles/musenet_baselines.dir/registry.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/rnn.cc.o"
  "CMakeFiles/musenet_baselines.dir/rnn.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/seq2seq.cc.o"
  "CMakeFiles/musenet_baselines.dir/seq2seq.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/stgsp.cc.o"
  "CMakeFiles/musenet_baselines.dir/stgsp.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/stnorm.cc.o"
  "CMakeFiles/musenet_baselines.dir/stnorm.cc.o.d"
  "CMakeFiles/musenet_baselines.dir/stssl.cc.o"
  "CMakeFiles/musenet_baselines.dir/stssl.cc.o.d"
  "libmusenet_baselines.a"
  "libmusenet_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
