# Empty compiler generated dependencies file for musenet_baselines.
# This may be replaced when dependencies are built.
