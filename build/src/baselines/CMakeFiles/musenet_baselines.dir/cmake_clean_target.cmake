file(REMOVE_RECURSE
  "libmusenet_baselines.a"
)
