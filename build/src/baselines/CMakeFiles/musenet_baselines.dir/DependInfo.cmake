
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/convgcn.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/convgcn.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/convgcn.cc.o.d"
  "/root/repo/src/baselines/deepstn.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/deepstn.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/deepstn.cc.o.d"
  "/root/repo/src/baselines/gman.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/gman.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/gman.cc.o.d"
  "/root/repo/src/baselines/historical_average.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/historical_average.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/historical_average.cc.o.d"
  "/root/repo/src/baselines/neural_forecaster.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/neural_forecaster.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/neural_forecaster.cc.o.d"
  "/root/repo/src/baselines/registry.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/registry.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/registry.cc.o.d"
  "/root/repo/src/baselines/rnn.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/rnn.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/rnn.cc.o.d"
  "/root/repo/src/baselines/seq2seq.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/seq2seq.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/seq2seq.cc.o.d"
  "/root/repo/src/baselines/stgsp.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/stgsp.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/stgsp.cc.o.d"
  "/root/repo/src/baselines/stnorm.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/stnorm.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/stnorm.cc.o.d"
  "/root/repo/src/baselines/stssl.cc" "src/baselines/CMakeFiles/musenet_baselines.dir/stssl.cc.o" "gcc" "src/baselines/CMakeFiles/musenet_baselines.dir/stssl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/musenet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/muse/CMakeFiles/musenet_muse.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/musenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/musenet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/musenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/musenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/musenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
