file(REMOVE_RECURSE
  "CMakeFiles/musenet_autograd.dir/grad_check.cc.o"
  "CMakeFiles/musenet_autograd.dir/grad_check.cc.o.d"
  "CMakeFiles/musenet_autograd.dir/ops.cc.o"
  "CMakeFiles/musenet_autograd.dir/ops.cc.o.d"
  "CMakeFiles/musenet_autograd.dir/variable.cc.o"
  "CMakeFiles/musenet_autograd.dir/variable.cc.o.d"
  "libmusenet_autograd.a"
  "libmusenet_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
