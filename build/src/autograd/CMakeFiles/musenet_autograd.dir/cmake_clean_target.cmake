file(REMOVE_RECURSE
  "libmusenet_autograd.a"
)
