# Empty compiler generated dependencies file for musenet_autograd.
# This may be replaced when dependencies are built.
