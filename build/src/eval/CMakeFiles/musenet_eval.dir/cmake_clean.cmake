file(REMOVE_RECURSE
  "CMakeFiles/musenet_eval.dir/evaluate.cc.o"
  "CMakeFiles/musenet_eval.dir/evaluate.cc.o.d"
  "CMakeFiles/musenet_eval.dir/metrics.cc.o"
  "CMakeFiles/musenet_eval.dir/metrics.cc.o.d"
  "CMakeFiles/musenet_eval.dir/splits.cc.o"
  "CMakeFiles/musenet_eval.dir/splits.cc.o.d"
  "CMakeFiles/musenet_eval.dir/training.cc.o"
  "CMakeFiles/musenet_eval.dir/training.cc.o.d"
  "libmusenet_eval.a"
  "libmusenet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
