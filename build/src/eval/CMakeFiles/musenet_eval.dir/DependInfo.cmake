
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/evaluate.cc" "src/eval/CMakeFiles/musenet_eval.dir/evaluate.cc.o" "gcc" "src/eval/CMakeFiles/musenet_eval.dir/evaluate.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/musenet_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/musenet_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/splits.cc" "src/eval/CMakeFiles/musenet_eval.dir/splits.cc.o" "gcc" "src/eval/CMakeFiles/musenet_eval.dir/splits.cc.o.d"
  "/root/repo/src/eval/training.cc" "src/eval/CMakeFiles/musenet_eval.dir/training.cc.o" "gcc" "src/eval/CMakeFiles/musenet_eval.dir/training.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/musenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/musenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
