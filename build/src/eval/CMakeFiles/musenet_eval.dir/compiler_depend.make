# Empty compiler generated dependencies file for musenet_eval.
# This may be replaced when dependencies are built.
