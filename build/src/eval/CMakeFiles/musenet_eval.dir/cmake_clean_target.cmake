file(REMOVE_RECURSE
  "libmusenet_eval.a"
)
