file(REMOVE_RECURSE
  "CMakeFiles/musenet_tensor.dir/conv2d.cc.o"
  "CMakeFiles/musenet_tensor.dir/conv2d.cc.o.d"
  "CMakeFiles/musenet_tensor.dir/serialize.cc.o"
  "CMakeFiles/musenet_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/musenet_tensor.dir/shape.cc.o"
  "CMakeFiles/musenet_tensor.dir/shape.cc.o.d"
  "CMakeFiles/musenet_tensor.dir/tensor.cc.o"
  "CMakeFiles/musenet_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/musenet_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/musenet_tensor.dir/tensor_ops.cc.o.d"
  "libmusenet_tensor.a"
  "libmusenet_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
