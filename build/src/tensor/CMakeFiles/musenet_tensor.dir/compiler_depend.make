# Empty compiler generated dependencies file for musenet_tensor.
# This may be replaced when dependencies are built.
