file(REMOVE_RECURSE
  "libmusenet_tensor.a"
)
