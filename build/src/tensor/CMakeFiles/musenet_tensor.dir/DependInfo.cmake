
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/conv2d.cc" "src/tensor/CMakeFiles/musenet_tensor.dir/conv2d.cc.o" "gcc" "src/tensor/CMakeFiles/musenet_tensor.dir/conv2d.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/tensor/CMakeFiles/musenet_tensor.dir/serialize.cc.o" "gcc" "src/tensor/CMakeFiles/musenet_tensor.dir/serialize.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/tensor/CMakeFiles/musenet_tensor.dir/shape.cc.o" "gcc" "src/tensor/CMakeFiles/musenet_tensor.dir/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/musenet_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/musenet_tensor.dir/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/tensor/CMakeFiles/musenet_tensor.dir/tensor_ops.cc.o" "gcc" "src/tensor/CMakeFiles/musenet_tensor.dir/tensor_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
