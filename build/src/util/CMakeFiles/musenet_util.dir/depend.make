# Empty dependencies file for musenet_util.
# This may be replaced when dependencies are built.
