file(REMOVE_RECURSE
  "libmusenet_util.a"
)
