file(REMOVE_RECURSE
  "CMakeFiles/musenet_util.dir/bench_config.cc.o"
  "CMakeFiles/musenet_util.dir/bench_config.cc.o.d"
  "CMakeFiles/musenet_util.dir/rng.cc.o"
  "CMakeFiles/musenet_util.dir/rng.cc.o.d"
  "CMakeFiles/musenet_util.dir/status.cc.o"
  "CMakeFiles/musenet_util.dir/status.cc.o.d"
  "CMakeFiles/musenet_util.dir/string_util.cc.o"
  "CMakeFiles/musenet_util.dir/string_util.cc.o.d"
  "CMakeFiles/musenet_util.dir/table.cc.o"
  "CMakeFiles/musenet_util.dir/table.cc.o.d"
  "libmusenet_util.a"
  "libmusenet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
