# Empty dependencies file for musenet_optim.
# This may be replaced when dependencies are built.
