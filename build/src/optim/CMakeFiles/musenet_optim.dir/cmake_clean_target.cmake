file(REMOVE_RECURSE
  "libmusenet_optim.a"
)
