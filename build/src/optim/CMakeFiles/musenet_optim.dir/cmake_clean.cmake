file(REMOVE_RECURSE
  "CMakeFiles/musenet_optim.dir/adam.cc.o"
  "CMakeFiles/musenet_optim.dir/adam.cc.o.d"
  "CMakeFiles/musenet_optim.dir/optimizer.cc.o"
  "CMakeFiles/musenet_optim.dir/optimizer.cc.o.d"
  "CMakeFiles/musenet_optim.dir/sgd.cc.o"
  "CMakeFiles/musenet_optim.dir/sgd.cc.o.d"
  "libmusenet_optim.a"
  "libmusenet_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
