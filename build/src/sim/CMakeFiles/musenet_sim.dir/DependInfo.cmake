
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/city.cc" "src/sim/CMakeFiles/musenet_sim.dir/city.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/city.cc.o.d"
  "/root/repo/src/sim/flow_series.cc" "src/sim/CMakeFiles/musenet_sim.dir/flow_series.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/flow_series.cc.o.d"
  "/root/repo/src/sim/presets.cc" "src/sim/CMakeFiles/musenet_sim.dir/presets.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/presets.cc.o.d"
  "/root/repo/src/sim/rasterize.cc" "src/sim/CMakeFiles/musenet_sim.dir/rasterize.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/rasterize.cc.o.d"
  "/root/repo/src/sim/serialize.cc" "src/sim/CMakeFiles/musenet_sim.dir/serialize.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/serialize.cc.o.d"
  "/root/repo/src/sim/shifts.cc" "src/sim/CMakeFiles/musenet_sim.dir/shifts.cc.o" "gcc" "src/sim/CMakeFiles/musenet_sim.dir/shifts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
