# Empty compiler generated dependencies file for musenet_sim.
# This may be replaced when dependencies are built.
