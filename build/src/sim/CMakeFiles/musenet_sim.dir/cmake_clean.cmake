file(REMOVE_RECURSE
  "CMakeFiles/musenet_sim.dir/city.cc.o"
  "CMakeFiles/musenet_sim.dir/city.cc.o.d"
  "CMakeFiles/musenet_sim.dir/flow_series.cc.o"
  "CMakeFiles/musenet_sim.dir/flow_series.cc.o.d"
  "CMakeFiles/musenet_sim.dir/presets.cc.o"
  "CMakeFiles/musenet_sim.dir/presets.cc.o.d"
  "CMakeFiles/musenet_sim.dir/rasterize.cc.o"
  "CMakeFiles/musenet_sim.dir/rasterize.cc.o.d"
  "CMakeFiles/musenet_sim.dir/serialize.cc.o"
  "CMakeFiles/musenet_sim.dir/serialize.cc.o.d"
  "CMakeFiles/musenet_sim.dir/shifts.cc.o"
  "CMakeFiles/musenet_sim.dir/shifts.cc.o.d"
  "libmusenet_sim.a"
  "libmusenet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
