file(REMOVE_RECURSE
  "libmusenet_sim.a"
)
