# Empty compiler generated dependencies file for musenet.
# This may be replaced when dependencies are built.
