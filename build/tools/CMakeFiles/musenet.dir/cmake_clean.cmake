file(REMOVE_RECURSE
  "CMakeFiles/musenet.dir/musenet_cli.cc.o"
  "CMakeFiles/musenet.dir/musenet_cli.cc.o.d"
  "musenet"
  "musenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
