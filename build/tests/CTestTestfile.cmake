# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/muse_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/bench_common_test[1]_include.cmake")
include("/root/repo/build/tests/lstm_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/longrange_test[1]_include.cmake")
