file(REMOVE_RECURSE
  "CMakeFiles/longrange_test.dir/longrange_test.cc.o"
  "CMakeFiles/longrange_test.dir/longrange_test.cc.o.d"
  "longrange_test"
  "longrange_test.pdb"
  "longrange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longrange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
