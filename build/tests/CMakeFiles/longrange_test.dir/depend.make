# Empty dependencies file for longrange_test.
# This may be replaced when dependencies are built.
