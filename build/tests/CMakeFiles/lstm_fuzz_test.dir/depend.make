# Empty dependencies file for lstm_fuzz_test.
# This may be replaced when dependencies are built.
