file(REMOVE_RECURSE
  "CMakeFiles/lstm_fuzz_test.dir/lstm_fuzz_test.cc.o"
  "CMakeFiles/lstm_fuzz_test.dir/lstm_fuzz_test.cc.o.d"
  "lstm_fuzz_test"
  "lstm_fuzz_test.pdb"
  "lstm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
