# Empty compiler generated dependencies file for muse_test.
# This may be replaced when dependencies are built.
