file(REMOVE_RECURSE
  "CMakeFiles/muse_test.dir/muse_test.cc.o"
  "CMakeFiles/muse_test.dir/muse_test.cc.o.d"
  "muse_test"
  "muse_test.pdb"
  "muse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
