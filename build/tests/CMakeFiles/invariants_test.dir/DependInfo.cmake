
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/invariants_test.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/invariants_test.dir/invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/musenet_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/musenet_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/muse/CMakeFiles/musenet_muse.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/musenet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/musenet_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/musenet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/musenet_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/musenet_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/autograd/CMakeFiles/musenet_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/musenet_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/musenet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
