# Empty dependencies file for bench_fig7_contribution.
# This may be replaced when dependencies are built.
