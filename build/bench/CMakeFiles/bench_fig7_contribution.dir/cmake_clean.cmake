file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_contribution.dir/bench_fig7_contribution.cc.o"
  "CMakeFiles/bench_fig7_contribution.dir/bench_fig7_contribution.cc.o.d"
  "bench_fig7_contribution"
  "bench_fig7_contribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
