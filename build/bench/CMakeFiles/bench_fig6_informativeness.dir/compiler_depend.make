# Empty compiler generated dependencies file for bench_fig6_informativeness.
# This may be replaced when dependencies are built.
