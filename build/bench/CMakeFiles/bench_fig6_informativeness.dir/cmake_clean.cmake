file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_informativeness.dir/bench_fig6_informativeness.cc.o"
  "CMakeFiles/bench_fig6_informativeness.dir/bench_fig6_informativeness.cc.o.d"
  "bench_fig6_informativeness"
  "bench_fig6_informativeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_informativeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
