file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_weekday.dir/bench_table5_weekday.cc.o"
  "CMakeFiles/bench_table5_weekday.dir/bench_table5_weekday.cc.o.d"
  "bench_table5_weekday"
  "bench_table5_weekday.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_weekday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
