file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_distribution_shift.dir/bench_fig1_distribution_shift.cc.o"
  "CMakeFiles/bench_fig1_distribution_shift.dir/bench_fig1_distribution_shift.cc.o.d"
  "bench_fig1_distribution_shift"
  "bench_fig1_distribution_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_distribution_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
