# Empty dependencies file for bench_table2_onestep.
# This may be replaced when dependencies are built.
