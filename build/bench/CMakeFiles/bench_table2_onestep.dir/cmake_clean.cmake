file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_onestep.dir/bench_table2_onestep.cc.o"
  "CMakeFiles/bench_table2_onestep.dir/bench_table2_onestep.cc.o.d"
  "bench_table2_onestep"
  "bench_table2_onestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_onestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
