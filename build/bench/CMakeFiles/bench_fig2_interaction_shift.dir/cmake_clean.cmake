file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_interaction_shift.dir/bench_fig2_interaction_shift.cc.o"
  "CMakeFiles/bench_fig2_interaction_shift.dir/bench_fig2_interaction_shift.cc.o.d"
  "bench_fig2_interaction_shift"
  "bench_fig2_interaction_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_interaction_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
