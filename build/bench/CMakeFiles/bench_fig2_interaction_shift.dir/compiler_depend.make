# Empty compiler generated dependencies file for bench_fig2_interaction_shift.
# This may be replaced when dependencies are built.
