# Empty compiler generated dependencies file for musenet_bench_common.
# This may be replaced when dependencies are built.
