file(REMOVE_RECURSE
  "../lib/libmusenet_bench_common.a"
  "../lib/libmusenet_bench_common.pdb"
  "CMakeFiles/musenet_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/musenet_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musenet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
