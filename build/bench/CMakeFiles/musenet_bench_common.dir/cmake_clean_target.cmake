file(REMOVE_RECURSE
  "../lib/libmusenet_bench_common.a"
)
