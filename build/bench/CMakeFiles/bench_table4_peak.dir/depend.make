# Empty dependencies file for bench_table4_peak.
# This may be replaced when dependencies are built.
