file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_peak.dir/bench_table4_peak.cc.o"
  "CMakeFiles/bench_table4_peak.dir/bench_table4_peak.cc.o.d"
  "bench_table4_peak"
  "bench_table4_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
