#ifndef MUSENET_AUTOGRAD_OP_KIND_H_
#define MUSENET_AUTOGRAD_OP_KIND_H_

#include <cstdint>

namespace musenet::autograd {

/// Machine-readable identity of the op that produced a graph node.
///
/// `op_name` on a Node is a human label for diagnostics; OpKind is the
/// contract the inference planner (musenet::infer) compiles against: every
/// differentiable op in ops.cc tags the node it creates, and the planner maps
/// each kind to a graph-free kernel. Composite ops record the primitive they
/// lower to (Neg and MeanAll are kMulScalar over their sub-expression,
/// Flatten2d is kReshape), so the planner only ever sees this closed set.
enum class OpKind : int16_t {
  kLeaf = 0,       ///< Parameter, constant or input; no producing op.
  kAdd,            ///< Broadcasting elementwise a + b.
  kSub,            ///< Broadcasting elementwise a − b.
  kMul,            ///< Broadcasting elementwise a · b.
  kDiv,            ///< Broadcasting elementwise a / b.
  kAddScalar,      ///< x + attrs.f0.
  kMulScalar,      ///< x · attrs.f0.
  kBiasAct,        ///< Fused bias + activation; attrs.i0 = Activation, f0 = alpha.
  kMulAddFused,    ///< a + b · c, all same shape.
  kExp,
  kLog,
  kSqrt,
  kTanh,
  kRelu,
  kLeakyRelu,      ///< attrs.f0 = negative-side slope.
  kSigmoid,
  kSoftplus,
  kSquare,
  kAbs,
  kClamp,          ///< attrs.f0 = lo, attrs.f1 = hi.
  kSumAll,         ///< Scalar sum of all elements.
  kSumAxis,        ///< Sum over attrs.i0 (output keeps reduced rank layout).
  kMatMul,         ///< [m,k]·[k,n].
  kMatMulBatched,  ///< [b,m,k]·[b,k,n].
  kTranspose2d,    ///< [m,n] → [n,m].
  kTransposeLast2, ///< Swap the last two axes of a rank-≥2 tensor.
  kSoftmax,        ///< Softmax over the last axis.
  kConv2d,         ///< attrs.i0 = stride, attrs.i1 = pad.
  kReshape,        ///< Same elements, new shape (alias in the planner).
  kConcat,         ///< Concatenate inputs along attrs.i0.
  kSlice,          ///< attrs.i0 = axis, i1 = start, i2 = len.
  kAvgPool,        ///< attrs.i0 = square window.
  kMaxPool,        ///< attrs.i0 = square window.
};

/// Scalar attributes accompanying an OpKind (see the per-kind comments).
/// Plain data so a recorded plan step can hold it by value.
struct OpAttrs {
  float f0 = 0.0f;
  float f1 = 0.0f;
  int64_t i0 = 0;
  int64_t i1 = 0;
  int64_t i2 = 0;
};

}  // namespace musenet::autograd

#endif  // MUSENET_AUTOGRAD_OP_KIND_H_
