#include "autograd/variable.h"

#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace musenet::autograd {

namespace {

thread_local LeafGradSink* t_leaf_sink = nullptr;

/// True when contributions to `node` should divert into the calling
/// thread's sink: parameter-style leaves only (constants lack
/// requires_grad; interior nodes have inputs or a backward fn).
inline bool SinkDiverts(const Node& node) {
  return t_leaf_sink != nullptr && node.requires_grad && !node.backward &&
         node.inputs.empty();
}

}  // namespace

LeafGradSink::LeafGradSink() : previous_(t_leaf_sink) {
  t_leaf_sink = this;
}

LeafGradSink::~LeafGradSink() { t_leaf_sink = previous_; }

LeafGradSink* LeafGradSink::Current() { return t_leaf_sink; }

void LeafGradSink::Accumulate(const Node& node, const tensor::Tensor& g) {
  for (auto& [key, grad] : grads_) {
    if (key == &node) {
      tensor::AddInPlace(grad, g);
      return;
    }
  }
  grads_.emplace_back(&node, g);
}

void LeafGradSink::Accumulate(const Node& node, tensor::Tensor&& g) {
  for (auto& [key, grad] : grads_) {
    if (key == &node) {
      tensor::AddInPlace(grad, g);
      return;
    }
  }
  grads_.emplace_back(&node, std::move(g));
}

bool LeafGradSink::Take(const Node* node, tensor::Tensor* grad) {
  for (auto& [key, buffer] : grads_) {
    if (key == node) {
      *grad = std::move(buffer);
      key = nullptr;  // A taken entry can never match again.
      return true;
    }
  }
  return false;
}

void AccumulateGrad(Node& node, const tensor::Tensor& g) {
  MUSE_CHECK(g.shape() == node.value.shape())
      << "gradient shape " << g.shape().ToString() << " vs value shape "
      << node.value.shape().ToString() << " (op " << node.op_name << ")";
  if (SinkDiverts(node)) {
    t_leaf_sink->Accumulate(node, g);
    return;
  }
  if (!node.grad_initialized) {
    node.grad = g;
    node.grad_initialized = true;
  } else {
    // In place: same element order and rounding as grad = Add(grad, g)
    // without allocating a fresh accumulator per contribution.
    tensor::AddInPlace(node.grad, g);
  }
}

void AccumulateGrad(Node& node, tensor::Tensor&& g) {
  MUSE_CHECK(g.shape() == node.value.shape())
      << "gradient shape " << g.shape().ToString() << " vs value shape "
      << node.value.shape().ToString() << " (op " << node.op_name << ")";
  if (SinkDiverts(node)) {
    t_leaf_sink->Accumulate(node, std::move(g));
    return;
  }
  if (!node.grad_initialized) {
    node.grad = std::move(g);
    node.grad_initialized = true;
  } else {
    tensor::AddInPlace(node.grad, g);
  }
}

namespace {
// Depth counters instead of booleans so scopes nest without bookkeeping.
thread_local int t_no_grad_depth = 0;
thread_local int t_forbid_depth = 0;
thread_local int t_enable_depth = 0;
}  // namespace

NoGradGuard::NoGradGuard(Mode mode) : mode_(mode) {
  switch (mode_) {
    case Mode::kSkip:
      ++t_no_grad_depth;
      break;
    case Mode::kForbid:
      ++t_no_grad_depth;
      ++t_forbid_depth;
      break;
    case Mode::kEnable:
      ++t_enable_depth;
      break;
  }
}

NoGradGuard::~NoGradGuard() {
  switch (mode_) {
    case Mode::kSkip:
      --t_no_grad_depth;
      break;
    case Mode::kForbid:
      --t_no_grad_depth;
      --t_forbid_depth;
      break;
    case Mode::kEnable:
      --t_enable_depth;
      break;
  }
}

bool NoGradGuard::Active() {
  // Forbid always wins; otherwise an enable scope re-arms graph building.
  if (t_forbid_depth > 0) return true;
  return t_no_grad_depth > 0 && t_enable_depth == 0;
}

bool NoGradGuard::ForbidActive() { return t_forbid_depth > 0; }

Variable::Variable(tensor::Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const tensor::Tensor& Variable::value() const {
  MUSE_CHECK(defined()) << "value() on empty Variable";
  return node_->value;
}

tensor::Tensor& Variable::mutable_value() {
  MUSE_CHECK(defined()) << "mutable_value() on empty Variable";
  return node_->value;
}

const tensor::Tensor& Variable::grad() const {
  MUSE_CHECK(defined()) << "grad() on empty Variable";
  MUSE_CHECK(node_->grad_initialized)
      << "grad() before Backward reached this node";
  return node_->grad;
}

bool Variable::has_grad() const {
  return defined() && node_->grad_initialized;
}

bool Variable::requires_grad() const {
  return defined() && node_->requires_grad;
}

void Variable::ZeroGrad() {
  MUSE_CHECK(defined());
  node_->grad_initialized = false;
  node_->grad = tensor::Tensor();
}

namespace {

/// Iterative post-order DFS producing a topological order (inputs first).
std::vector<Node*> TopologicalOrder(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs.size()) {
      Node* child = top.node->inputs[top.next_input++].get();
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

void BackwardWithSeed(const Variable& output, const tensor::Tensor& seed) {
  MUSE_CHECK(output.defined());
  Node* root = output.node().get();
  MUSE_CHECK(seed.shape() == root->value.shape())
      << "seed shape mismatch in BackwardWithSeed";

  std::vector<Node*> order = TopologicalOrder(root);

  obs::ScopedSpan span("autograd.Backward", "nodes",
                       static_cast<int64_t>(order.size()));
  static obs::Counter& backward_calls =
      obs::GetCounter("autograd.backward.calls");
  static obs::Counter& backward_nodes =
      obs::GetCounter("autograd.backward.nodes");
  static obs::Counter& backward_ops =
      obs::GetCounter("autograd.backward.ops");
  backward_calls.Add();
  backward_nodes.Add(static_cast<int64_t>(order.size()));

  AccumulateGrad(*root, seed);
  // Reverse topological order: every node's gradient is complete before its
  // backward fires (all consumers inside this graph appear later in `order`).
  int64_t ops_fired = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->grad_initialized) {
      node->backward(*node);
      ++ops_fired;
    }
  }
  backward_ops.Add(ops_fired);
}

void Backward(const Variable& output) {
  MUSE_CHECK(output.defined());
  MUSE_CHECK_EQ(output.value().num_elements(), 1)
      << "Backward() requires a scalar output; use BackwardWithSeed";
  BackwardWithSeed(output,
                   tensor::Tensor::Ones(output.value().shape()));
}

Variable Detach(const Variable& v) {
  MUSE_CHECK(v.defined());
  return Variable(v.value(), /*requires_grad=*/false);
}

void ReleaseGraph(const Variable& root) {
  MUSE_CHECK(root.defined());
  obs::ScopedSpan span("autograd.ReleaseGraph");
  for (Node* node : TopologicalOrder(root.node().get())) {
    const bool is_leaf = node->inputs.empty() && !node->backward;
    if (is_leaf) continue;  // Parameters and constants stay usable.
    if (node != root.node().get()) node->value = tensor::Tensor();
    node->grad = tensor::Tensor();
    node->grad_initialized = false;
    node->backward = nullptr;
    node->inputs.clear();
  }
}

}  // namespace musenet::autograd
