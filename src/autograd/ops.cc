#include "autograd/ops.h"

#include <algorithm>
#include <utility>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace musenet::autograd {

namespace ts = musenet::tensor;

namespace {

/// Creates the output node for an op. `backward` is dropped when no input
/// requires gradients, which prunes constant sub-graphs from the tape.
/// Every op funnels through here, which is what lets NoGradGuard intercept
/// graph construction globally and the planner trust `kind`/`attrs` on every
/// non-leaf node.
Variable MakeOp(const char* name, OpKind kind, ts::Tensor value,
                std::vector<Variable> inputs,
                std::function<void(Node&)> backward, OpAttrs attrs = {}) {
  MUSE_CHECK(!NoGradGuard::ForbidActive())
      << "autograd op '" << name
      << "' constructed inside a forbid-mode NoGradGuard (the inference "
         "engine must never build graph nodes)";
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->op_name = name;
  node->kind = kind;
  node->attrs = attrs;
  if (NoGradGuard::Active()) {
    // Value-only node: inputs are not retained and no backward is recorded,
    // so the graph above this point is free to die as soon as the caller
    // drops its handles.
    return Variable(std::move(node));
  }
  bool needs_grad = false;
  node->inputs.reserve(inputs.size());
  for (const Variable& v : inputs) {
    MUSE_CHECK(v.defined()) << "undefined input to op " << name;
    needs_grad = needs_grad || v.node()->requires_grad;
    node->inputs.push_back(v.node());
  }
  node->requires_grad = needs_grad;
  if (needs_grad) node->backward = std::move(backward);
  return Variable(std::move(node));
}

/// Accumulates `g` into `target` after summing over broadcast axes. When no
/// reduction is needed the tensor is forwarded as-is (the rvalue overload
/// then moves it straight into a first-contribution accumulator).
void AccumulateBroadcast(Node& target, const ts::Tensor& g) {
  if (!target.requires_grad) return;
  if (g.shape() == target.value.shape()) {
    AccumulateGrad(target, g);
  } else {
    AccumulateGrad(target, ts::ReduceToShape(g, target.value.shape()));
  }
}

void AccumulateBroadcast(Node& target, ts::Tensor&& g) {
  if (!target.requires_grad) return;
  if (g.shape() == target.value.shape()) {
    AccumulateGrad(target, std::move(g));
  } else {
    AccumulateGrad(target, ts::ReduceToShape(g, target.value.shape()));
  }
}

void AccumulateIfNeeded(Node& target, const ts::Tensor& g) {
  if (!target.requires_grad) return;
  AccumulateGrad(target, g);
}

void AccumulateIfNeeded(Node& target, ts::Tensor&& g) {
  if (!target.requires_grad) return;
  AccumulateGrad(target, std::move(g));
}

}  // namespace

Variable Constant(tensor::Tensor value) {
  return Variable(std::move(value), /*requires_grad=*/false);
}

Variable Add(const Variable& a, const Variable& b) {
  return MakeOp("add", OpKind::kAdd, ts::Add(a.value(), b.value()), {a, b},
                [](Node& n) {
    AccumulateBroadcast(*n.inputs[0], n.grad);
    // Last use of this interior node's gradient: steal the buffer. (If both
    // inputs alias, the accumulator was initialized above and the rvalue
    // path adds in place without moving.)
    AccumulateBroadcast(*n.inputs[1], std::move(n.grad));
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOp("sub", OpKind::kSub, ts::Sub(a.value(), b.value()), {a, b},
                [](Node& n) {
    ts::Tensor gb = ts::Neg(n.grad);
    AccumulateBroadcast(*n.inputs[0], std::move(n.grad));
    AccumulateBroadcast(*n.inputs[1], std::move(gb));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOp("mul", OpKind::kMul, ts::Mul(a.value(), b.value()), {a, b},
                [](Node& n) {
    AccumulateBroadcast(*n.inputs[0], ts::Mul(n.grad, n.inputs[1]->value));
    AccumulateBroadcast(*n.inputs[1], ts::Mul(n.grad, n.inputs[0]->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeOp("div", OpKind::kDiv, ts::Div(a.value(), b.value()), {a, b},
                [](Node& n) {
    const ts::Tensor& bv = n.inputs[1]->value;
    AccumulateBroadcast(*n.inputs[0], ts::Div(n.grad, bv));
    // d/db (a/b) = -a / b².
    ts::Tensor gb = ts::Neg(
        ts::Div(ts::Mul(n.grad, n.inputs[0]->value), ts::Square(bv)));
    AccumulateBroadcast(*n.inputs[1], std::move(gb));
  });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOp(
      "add_scalar", OpKind::kAddScalar, ts::AddScalar(a.value(), s), {a},
      [](Node& n) { AccumulateIfNeeded(*n.inputs[0], std::move(n.grad)); },
      {.f0 = s});
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOp(
      "mul_scalar", OpKind::kMulScalar, ts::MulScalar(a.value(), s), {a},
      [s](Node& n) {
        AccumulateIfNeeded(*n.inputs[0], ts::MulScalar(n.grad, s));
      },
      {.f0 = s});
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Exp(const Variable& a) {
  // d exp(x) = exp(x) = the node's own value (valid until ReleaseGraph).
  return MakeOp("exp", OpKind::kExp, ts::Exp(a.value()), {a}, [](Node& n) {
    AccumulateIfNeeded(*n.inputs[0], ts::Mul(n.grad, n.value));
  });
}

Variable Log(const Variable& a) {
  return MakeOp("log", OpKind::kLog, ts::Log(a.value()), {a}, [](Node& n) {
    AccumulateIfNeeded(*n.inputs[0], ts::Div(n.grad, n.inputs[0]->value));
  });
}

Variable Sqrt(const Variable& a) {
  return MakeOp("sqrt", OpKind::kSqrt, ts::Sqrt(a.value()), {a},
                [](Node& n) {
    // d sqrt(x) = 0.5 / sqrt(x); sqrt(x) is the node's own value.
    AccumulateIfNeeded(*n.inputs[0],
                       ts::Div(ts::MulScalar(n.grad, 0.5f), n.value));
  });
}

Variable Tanh(const Variable& a) {
  return MakeOp("tanh", OpKind::kTanh, ts::Tanh(a.value()), {a},
                [](Node& n) {
    // Fused g·(1 − tanh²), one pass instead of the Ones/Square/Sub/Mul
    // chain (bit-identical — see fused_ops.cc).
    AccumulateIfNeeded(*n.inputs[0], ts::ActBackwardFromOutput(
                                         n.grad, n.value, ts::ActKind::kTanh));
  });
}

Variable Relu(const Variable& a) {
  return MakeOp("relu", OpKind::kRelu, ts::Relu(a.value()), {a},
                [](Node& n) {
    // out > 0 ⟺ in > 0, so the mask can read the output.
    AccumulateIfNeeded(*n.inputs[0], ts::ActBackwardFromOutput(
                                         n.grad, n.value, ts::ActKind::kRelu));
  });
}

Variable LeakyRelu(const Variable& a, float alpha) {
  return MakeOp(
      "leaky_relu", OpKind::kLeakyRelu, ts::LeakyRelu(a.value(), alpha), {a},
      [alpha](Node& n) {
        AccumulateIfNeeded(*n.inputs[0],
                           ts::ActBackwardFromOutput(
                               n.grad, n.value, ts::ActKind::kLeakyRelu,
                               alpha));
      },
      {.f0 = alpha});
}

Variable Sigmoid(const Variable& a) {
  return MakeOp("sigmoid", OpKind::kSigmoid, ts::Sigmoid(a.value()), {a},
                [](Node& n) {
    // Fused g·out·(1 − out), one pass (bit-identical to the unfused chain).
    AccumulateIfNeeded(
        *n.inputs[0],
        ts::ActBackwardFromOutput(n.grad, n.value, ts::ActKind::kSigmoid));
  });
}

Variable Softplus(const Variable& a) {
  return MakeOp("softplus", OpKind::kSoftplus, ts::Softplus(a.value()), {a},
                [](Node& n) {
    AccumulateIfNeeded(*n.inputs[0],
                       ts::SoftplusBackward(n.grad, n.inputs[0]->value));
  });
}

Variable Square(const Variable& a) {
  return MakeOp("square", OpKind::kSquare, ts::Square(a.value()), {a},
                [](Node& n) {
    AccumulateIfNeeded(*n.inputs[0],
                       ts::SquareBackward(n.grad, n.inputs[0]->value));
  });
}

Variable Abs(const Variable& a) {
  return MakeOp("abs", OpKind::kAbs, ts::Abs(a.value()), {a}, [](Node& n) {
    const ts::Tensor& in = n.inputs[0]->value;
    ts::Tensor g = ts::Tensor::Uninitialized(in.shape());
    const float* pin = in.data();
    const float* pg = n.grad.data();
    float* po = g.mutable_data();
    const int64_t count = in.num_elements();
    for (int64_t i = 0; i < count; ++i) {
      po[i] = pin[i] > 0.0f ? pg[i] : (pin[i] < 0.0f ? -pg[i] : 0.0f);
    }
    AccumulateIfNeeded(*n.inputs[0], std::move(g));
  });
}

Variable Clamp(const Variable& a, float lo, float hi) {
  return MakeOp(
      "clamp", OpKind::kClamp, ts::Clamp(a.value(), lo, hi), {a},
      [lo, hi](Node& n) {
        const ts::Tensor& in = n.inputs[0]->value;
        ts::Tensor g = ts::Tensor::Uninitialized(in.shape());
        const float* pin = in.data();
        const float* pg = n.grad.data();
        float* po = g.mutable_data();
        const int64_t count = in.num_elements();
        for (int64_t i = 0; i < count; ++i) {
          po[i] = (pin[i] >= lo && pin[i] <= hi) ? pg[i] : 0.0f;
        }
        AccumulateIfNeeded(*n.inputs[0], std::move(g));
      },
      {.f0 = lo, .f1 = hi});
}

Variable BiasActivation(const Variable& x, const Variable& bias,
                        ts::ActKind act, float alpha) {
  return MakeOp(
      "bias_act", OpKind::kBiasAct,
      ts::BiasAct(x.value(), bias.value(), act, alpha), {x, bias},
      [act, alpha](Node& n) {
        // Pre-activation gradient from the output alone, then the
        // usual broadcast-aware Add backward for the bias.
        ts::Tensor g_pre =
            ts::ActBackwardFromOutput(n.grad, n.value, act, alpha);
        AccumulateBroadcast(*n.inputs[1], g_pre);
        AccumulateIfNeeded(*n.inputs[0], std::move(g_pre));
      },
      {.f0 = alpha, .i0 = static_cast<int64_t>(act)});
}

Variable FusedMulAdd(const Variable& a, const Variable& b,
                     const Variable& c) {
  return MakeOp("mul_add", OpKind::kMulAddFused,
                ts::MulAdd(a.value(), b.value(), c.value()),
                {a, b, c}, [](Node& n) {
                  // Products first, then steal the gradient buffer for `a`;
                  // accumulation order (a, b, c) is preserved for aliasing.
                  ts::Tensor gb = ts::Mul(n.grad, n.inputs[2]->value);
                  ts::Tensor gc = ts::Mul(n.grad, n.inputs[1]->value);
                  AccumulateIfNeeded(*n.inputs[0], std::move(n.grad));
                  AccumulateIfNeeded(*n.inputs[1], std::move(gb));
                  AccumulateIfNeeded(*n.inputs[2], std::move(gc));
                });
}

Variable SumAll(const Variable& a) {
  return MakeOp("sum_all", OpKind::kSumAll, ts::SumAll(a.value()), {a},
                [](Node& n) {
    const ts::Shape& in_shape = n.inputs[0]->value.shape();
    AccumulateIfNeeded(
        *n.inputs[0],
        ts::Tensor::Full(in_shape, n.grad.scalar()));
  });
}

Variable MeanAll(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(a.value().num_elements());
  return MulScalar(SumAll(a), inv);
}

Variable Sum(const Variable& a, int axis, bool keepdims) {
  ts::Tensor out = ts::Sum(a.value(), axis, keepdims);
  return MakeOp(
      "sum_axis", OpKind::kSumAxis, std::move(out), {a},
      [axis](Node& n) {
        const ts::Shape& in_shape = n.inputs[0]->value.shape();
        // Re-insert the reduced axis as size 1 (no-op when keepdims was
        // true), then broadcast back to the input shape.
        std::vector<int64_t> keep_dims = in_shape.dims();
        keep_dims[axis] = 1;
        ts::Tensor g = n.grad.Reshape(ts::Shape(std::move(keep_dims)));
        AccumulateIfNeeded(*n.inputs[0], ts::BroadcastTo(g, in_shape));
      },
      {.i0 = axis, .i1 = keepdims ? 1 : 0});
}

Variable Mean(const Variable& a, int axis, bool keepdims) {
  const float inv = 1.0f / static_cast<float>(a.value().dim(axis));
  return MulScalar(Sum(a, axis, keepdims), inv);
}

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOp("matmul", OpKind::kMatMul, ts::MatMul(a.value(), b.value()),
                {a, b}, [](Node& n) {
                  const ts::Tensor& av = n.inputs[0]->value;
                  const ts::Tensor& bv = n.inputs[1]->value;
                  if (n.inputs[0]->requires_grad) {
                    AccumulateGrad(*n.inputs[0],
                                   ts::MatMulTransB(n.grad, bv));
                  }
                  if (n.inputs[1]->requires_grad) {
                    AccumulateGrad(*n.inputs[1],
                                   ts::MatMulTransA(av, n.grad));
                  }
                });
}

Variable MatMulBatched(const Variable& a, const Variable& b) {
  return MakeOp(
      "matmul_batched", OpKind::kMatMulBatched,
      ts::MatMulBatched(a.value(), b.value()), {a, b},
      [](Node& n) {
        const ts::Tensor& av = n.inputs[0]->value;
        const ts::Tensor& bv = n.inputs[1]->value;
        if (n.inputs[0]->requires_grad) {
          AccumulateGrad(*n.inputs[0], ts::MatMulBatchedTransB(n.grad, bv));
        }
        if (n.inputs[1]->requires_grad) {
          AccumulateGrad(*n.inputs[1], ts::MatMulBatchedTransA(av, n.grad));
        }
      });
}

Variable Transpose2d(const Variable& a) {
  return MakeOp("transpose2d", OpKind::kTranspose2d,
                ts::Transpose2d(a.value()), {a}, [](Node& n) {
    AccumulateIfNeeded(*n.inputs[0], ts::Transpose2d(n.grad));
  });
}

Variable TransposeLast2(const Variable& a) {
  return MakeOp("transpose_last2", OpKind::kTransposeLast2,
                ts::TransposeLast2(a.value()), {a},
                [](Node& n) {
                  AccumulateIfNeeded(*n.inputs[0],
                                     ts::TransposeLast2(n.grad));
                });
}

Variable SoftmaxLastAxis(const Variable& a) {
  return MakeOp("softmax", OpKind::kSoftmax, ts::SoftmaxLastAxis(a.value()),
                {a}, [](Node& n) {
    // dx = y ⊙ (g − Σ_j g_j y_j) per row of the last axis; y = n.value.
    const ts::Tensor& out = n.value;
    ts::Tensor gy = ts::Mul(n.grad, out);
    ts::Tensor row_sum = ts::Sum(gy, out.rank() - 1, /*keepdims=*/true);
    AccumulateIfNeeded(*n.inputs[0], ts::Mul(out, ts::Sub(n.grad, row_sum)));
  });
}

Variable Conv2d(const Variable& input, const Variable& weight,
                const tensor::Conv2dSpec& spec, tensor::Conv2dWorkspace* ws) {
  // `ws` is layer-owned scratch (see nn::Conv2d); the layer outlives every
  // graph built from it, so the backward closure may capture the pointer.
  return MakeOp(
      "conv2d", OpKind::kConv2d,
      ts::Conv2dForward(input.value(), weight.value(), spec, ws),
      {input, weight}, [spec, ws](Node& n) {
        const ts::Tensor& in = n.inputs[0]->value;
        const ts::Tensor& w = n.inputs[1]->value;
        if (n.inputs[0]->requires_grad) {
          AccumulateGrad(*n.inputs[0], ts::Conv2dBackwardInput(
                                           n.grad, w, in.shape(), spec, ws));
        }
        if (n.inputs[1]->requires_grad) {
          AccumulateGrad(*n.inputs[1], ts::Conv2dBackwardWeight(
                                           n.grad, in, w.shape(), spec, ws));
        }
      },
      {.i0 = spec.stride, .i1 = spec.pad});
}

Variable Reshape(const Variable& a, tensor::Shape new_shape) {
  ts::Tensor out = a.value().Reshape(new_shape);
  return MakeOp("reshape", OpKind::kReshape, std::move(out), {a},
                [](Node& n) {
                  AccumulateIfNeeded(*n.inputs[0],
                                     n.grad.Reshape(n.inputs[0]->value.shape()));
                });
}

Variable Flatten2d(const Variable& a) {
  MUSE_CHECK_GE(a.value().rank(), 1);
  const int64_t batch = a.value().dim(0);
  const int64_t rest = a.value().num_elements() / batch;
  return Reshape(a, ts::Shape({batch, rest}));
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  MUSE_CHECK(!parts.empty());
  std::vector<ts::Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  ts::Tensor out = ts::Concat(values, axis);
  return MakeOp(
      "concat", OpKind::kConcat, std::move(out), parts,
      [axis](Node& n) {
        int64_t offset = 0;
        for (auto& input : n.inputs) {
          const int64_t len = input->value.dim(axis);
          if (input->requires_grad) {
            AccumulateGrad(*input, ts::Slice(n.grad, axis, offset, len));
          }
          offset += len;
        }
      },
      {.i0 = axis});
}

Variable Slice(const Variable& a, int axis, int64_t start, int64_t len) {
  ts::Tensor out = ts::Slice(a.value(), axis, start, len);
  return MakeOp(
      "slice", OpKind::kSlice, std::move(out), {a},
      [axis, start, len](Node& n) {
        const ts::Shape& in_shape = n.inputs[0]->value.shape();
        if (!n.inputs[0]->requires_grad) return;
        // Scatter the slice gradient back into a zero tensor of the input
        // shape.
        ts::Tensor g(in_shape);
        int64_t outer = 1;
        for (int i = 0; i < axis; ++i) outer *= in_shape.dim(i);
        int64_t inner = 1;
        for (int i = axis + 1; i < in_shape.rank(); ++i) {
          inner *= in_shape.dim(i);
        }
        const int64_t mid = in_shape.dim(axis);
        const float* pg = n.grad.data();
        float* po = g.mutable_data();
        for (int64_t o = 0; o < outer; ++o) {
          std::copy(pg + o * len * inner, pg + (o + 1) * len * inner,
                    po + (o * mid + start) * inner);
        }
        AccumulateGrad(*n.inputs[0], g);
      },
      {.i0 = axis, .i1 = start, .i2 = len});
}

Variable AvgPool2d(const Variable& a, int64_t window) {
  ts::Tensor out = ts::AvgPool2d(a.value(), window);
  return MakeOp("avg_pool2d", OpKind::kAvgPool, std::move(out), {a},
                [window](Node& n) {
    // Each input element receives grad/out · 1/window².
    const ts::Shape& in_shape = n.inputs[0]->value.shape();
    ts::Tensor g = ts::Tensor::Uninitialized(in_shape);
    const int64_t h = in_shape.dim(2);
    const int64_t w = in_shape.dim(3);
    const int64_t ow = w / window;
    const int64_t planes = in_shape.dim(0) * in_shape.dim(1);
    const float inv = 1.0f / static_cast<float>(window * window);
    const float* pg = n.grad.data();
    float* po = g.mutable_data();
    for (int64_t p = 0; p < planes; ++p) {
      for (int64_t y = 0; y < h; ++y) {
        for (int64_t x = 0; x < w; ++x) {
          po[(p * h + y) * w + x] =
              pg[(p * (h / window) + y / window) * ow + x / window] * inv;
        }
      }
    }
    AccumulateIfNeeded(*n.inputs[0], g);
  },
  {.i0 = window});
}

Variable MaxPool2d(const Variable& a, int64_t window) {
  auto argmax = std::make_shared<std::vector<int64_t>>();
  ts::Tensor out = ts::MaxPool2d(a.value(), window, argmax.get());
  return MakeOp(
      "max_pool2d", OpKind::kMaxPool, std::move(out), {a},
      [argmax](Node& n) {
        ts::Tensor g(n.inputs[0]->value.shape());
        float* po = g.mutable_data();
        const float* pg = n.grad.data();
        for (size_t i = 0; i < argmax->size(); ++i) {
          po[(*argmax)[i]] += pg[static_cast<int64_t>(i)];
        }
        AccumulateIfNeeded(*n.inputs[0], g);
      },
      {.i0 = window});
}

}  // namespace musenet::autograd
