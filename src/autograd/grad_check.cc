#include "autograd/grad_check.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace musenet::autograd {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<tensor::Tensor> inputs, double epsilon, double rel_tolerance,
    double abs_tolerance) {
  GradCheckResult result;

  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const auto& t : inputs) vars.emplace_back(t, /*requires_grad=*/true);
  Variable out = fn(vars);
  MUSE_CHECK_EQ(out.value().num_elements(), 1)
      << "CheckGradients requires a scalar function";
  Backward(out);

  auto eval = [&fn](const std::vector<tensor::Tensor>& points) {
    std::vector<Variable> args;
    args.reserve(points.size());
    for (const auto& t : points) args.emplace_back(t, false);
    return static_cast<double>(fn(args).value().scalar());
  };

  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    const tensor::Tensor analytic = vars[vi].has_grad()
                                        ? vars[vi].grad()
                                        : tensor::Tensor::Zeros(
                                              inputs[vi].shape());
    for (int64_t i = 0; i < inputs[vi].num_elements(); ++i) {
      const float original = inputs[vi].flat(i);
      inputs[vi].flat(i) = original + static_cast<float>(epsilon);
      const double up = eval(inputs);
      inputs[vi].flat(i) = original - static_cast<float>(epsilon);
      const double down = eval(inputs);
      inputs[vi].flat(i) = original;

      const double numeric = (up - down) / (2.0 * epsilon);
      const double exact = analytic.flat(i);
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max({std::fabs(numeric), std::fabs(exact),
                                     1e-8});
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > abs_tolerance && rel_err > rel_tolerance &&
          result.passed) {
        result.passed = false;
        std::ostringstream msg;
        msg << "input " << vi << " element " << i << ": analytic " << exact
            << " vs numeric " << numeric;
        result.detail = msg.str();
      }
    }
  }
  return result;
}

}  // namespace musenet::autograd
