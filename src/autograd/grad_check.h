#ifndef MUSENET_AUTOGRAD_GRAD_CHECK_H_
#define MUSENET_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace musenet::autograd {

/// Outcome of a numerical gradient check.
struct GradCheckResult {
  bool passed = true;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  ///< Filled with the first offending coordinate.
};

/// Verifies analytic gradients of `fn` against central finite differences.
///
/// `fn` must map the given inputs to a scalar Variable and must be a pure
/// function of the inputs (re-invoked with perturbed values). All inputs are
/// treated as differentiable. Tolerances are generous because the library is
/// float32 while the finite difference is computed on float32 values too.
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<tensor::Tensor> inputs, double epsilon = 1e-2,
    double rel_tolerance = 5e-2, double abs_tolerance = 1e-3);

}  // namespace musenet::autograd

#endif  // MUSENET_AUTOGRAD_GRAD_CHECK_H_
