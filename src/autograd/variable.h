#ifndef MUSENET_AUTOGRAD_VARIABLE_H_
#define MUSENET_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/op_kind.h"
#include "tensor/tensor.h"

namespace musenet::autograd {

/// One vertex of the dynamically built computation graph.
///
/// Nodes are created by the differentiable ops in `ops.h`; user code interacts
/// with them through the `Variable` handle. `backward` reads this node's
/// accumulated gradient and adds each input's contribution via
/// `AccumulateGrad`.
struct Node {
  tensor::Tensor value;
  tensor::Tensor grad;  ///< Valid only when `grad_initialized`.
  bool requires_grad = false;
  bool grad_initialized = false;
  std::vector<std::shared_ptr<Node>> inputs;
  std::function<void(Node&)> backward;  ///< Null for leaves.
  const char* op_name = "leaf";
  OpKind kind = OpKind::kLeaf;  ///< Machine-readable op identity (op_kind.h).
  OpAttrs attrs;                ///< Scalar attributes for `kind`.
};

/// Adds `g` into `node`'s gradient accumulator. `g` must match the node
/// value's shape. The first contribution initializes the accumulator (the
/// rvalue overload moves it in without a copy); later contributions add in
/// place — no per-accumulation allocation either way.
///
/// While a `LeafGradSink` is installed on the calling thread, contributions
/// to leaf nodes with `requires_grad` are diverted into the sink instead of
/// the node (see LeafGradSink).
void AccumulateGrad(Node& node, const tensor::Tensor& g);
void AccumulateGrad(Node& node, tensor::Tensor&& g);

/// Thread-local redirect of leaf-gradient accumulation, installed by the
/// data-parallel training step around each shard's backward pass.
///
/// Interior nodes of a shard's graph are private to the shard that built
/// it, but the parameter leaves are shared by every shard's graph —
/// concurrent backward passes would race on their `grad` accumulators.
/// While a sink is installed, AccumulateGrad diverts contributions to leaf
/// nodes (`requires_grad`, no inputs, no backward fn) into the sink's
/// private buffers, with exactly the accumulator's semantics: first
/// contribution copies (or moves) in, later ones add in place. The training
/// step drains each shard's sink with `Take` and combines the per-shard
/// buffers with a deterministic tree reduction
/// (optim::ReduceShardGradients), so the final parameter gradients are
/// bit-exact for a given shard count regardless of how shards were
/// scheduled onto threads.
class LeafGradSink {
 public:
  LeafGradSink();
  ~LeafGradSink();

  LeafGradSink(const LeafGradSink&) = delete;
  LeafGradSink& operator=(const LeafGradSink&) = delete;

  /// The sink installed on the calling thread, or nullptr. Sinks nest;
  /// the innermost wins.
  static LeafGradSink* Current();

  /// Accumulates `g` into the buffer for `node` (AccumulateGrad calls this).
  void Accumulate(const Node& node, const tensor::Tensor& g);
  void Accumulate(const Node& node, tensor::Tensor&& g);

  /// Moves the accumulated gradient for `node` into `*grad`; returns false
  /// (leaving `*grad` untouched) when backward never reached the node.
  bool Take(const Node* node, tensor::Tensor* grad);

  size_t size() const { return grads_.size(); }

 private:
  std::vector<std::pair<const Node*, tensor::Tensor>> grads_;
  LeafGradSink* previous_ = nullptr;
};

/// Shared handle to a computation-graph node; the user-facing autograd type.
///
/// Copying a Variable copies the handle, not the data. A default-constructed
/// Variable is empty and must not be used in ops. Typical flow:
///
///   Variable w(Tensor::RandomNormal(...), /*requires_grad=*/true);
///   Variable loss = MeanAll(Square(Sub(MatMul(x, w), y)));
///   Backward(loss);           // w.grad() now holds dloss/dw
class Variable {
 public:
  /// Empty handle.
  Variable() = default;

  /// Leaf variable wrapping `value`. Set `requires_grad` for parameters.
  explicit Variable(tensor::Tensor value, bool requires_grad = false);

  /// Internal: wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }

  const tensor::Tensor& value() const;
  /// Mutable access for in-place parameter updates (optimizers). Must not be
  /// called between building a graph and running Backward on it.
  tensor::Tensor& mutable_value();

  /// Accumulated gradient; requires a prior Backward pass that reached this
  /// node (check `has_grad()` first).
  const tensor::Tensor& grad() const;
  bool has_grad() const;

  bool requires_grad() const;

  /// Clears this node's gradient accumulator (leaves the graph intact).
  void ZeroGrad();

  /// Shape shortcuts.
  const tensor::Shape& shape() const { return value().shape(); }
  int64_t dim(int axis) const { return value().dim(axis); }

  const std::shared_ptr<Node>& node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

/// Scoped suppression (or prohibition) of graph construction, per thread.
///
/// In the default `kSkip` mode, every differentiable op inside the scope
/// produces a value-only node: no inputs, no backward closure,
/// requires_grad=false. Forward math is unchanged; Backward through such a
/// node is simply a no-op past it. Use it around evaluation so offline
/// prediction stops retaining graphs.
///
/// `kForbid` mode turns any op creation inside the scope into a hard error
/// (MUSE_CHECK failure). The inference engine runs under a forbid scope:
/// graph-free execution is a contract there, not an optimization, and a
/// stray autograd op would silently reintroduce allocations.
///
/// `kEnable` mode re-enables graph construction inside an enclosing kSkip
/// scope (the planner's one-time trace needs full graphs even when called
/// from a no-grad evaluation loop). It does not override kForbid.
///
/// Scopes nest arbitrarily; forbid dominates everything while active.
class NoGradGuard {
 public:
  enum class Mode { kSkip, kForbid, kEnable };

  explicit NoGradGuard(Mode mode = Mode::kSkip);
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True when any guard is active on this thread (ops skip graph building).
  static bool Active();
  /// True when a forbid-mode guard is active on this thread.
  static bool ForbidActive();

 private:
  Mode mode_;
};

/// Runs reverse-mode differentiation from `output`, which must be a scalar
/// (rank-0 or single-element). Gradients accumulate into every reachable node
/// with `requires_grad`; leaves keep their gradient for optimizer consumption.
void Backward(const Variable& output);

/// As Backward but with an explicit seed gradient (same shape as `output`).
void BackwardWithSeed(const Variable& output, const tensor::Tensor& seed);

/// Returns a leaf copy of `v` that blocks gradient flow.
Variable Detach(const Variable& v);

/// Tears down the graph below `root` once a training step is done with it:
/// every interior node's value, gradient, inputs and backward closure are
/// dropped (returning their buffers to the storage pool immediately and
/// breaking the ownership DAG). Leaves — parameters and constants — and
/// `root`'s own value stay usable; any other Variable still pointing into
/// the graph must not be read afterwards.
void ReleaseGraph(const Variable& root);

}  // namespace musenet::autograd

#endif  // MUSENET_AUTOGRAD_VARIABLE_H_
