#ifndef MUSENET_AUTOGRAD_OPS_H_
#define MUSENET_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/conv2d.h"
#include "tensor/tensor_ops.h"

namespace musenet::autograd {

// Differentiable ops. Each builds a graph node whose backward distributes the
// output gradient to the inputs using the kernels in tensor/tensor_ops.h.
// Broadcasting in binary ops follows NumPy rules; the backward pass sums the
// gradient over broadcast axes (tensor::ReduceToShape).

/// Wraps a tensor as a non-trainable leaf (e.g. batch inputs).
Variable Constant(tensor::Tensor value);

// --- Elementwise binary ------------------------------------------------------

Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

// --- Fused -------------------------------------------------------------------

/// act(x + bias) as one node/kernel. Bit-identical to
/// ApplyActivation(Add(x, bias)); `bias` must broadcast against `x` with at
/// most one non-unit axis. Softplus is not representable here (its derivative
/// needs the pre-activation, which the fused node never materializes).
Variable BiasActivation(const Variable& x, const Variable& bias,
                        tensor::ActKind act, float alpha = 0.1f);

/// a + b ⊙ c as one node/kernel; shapes must match exactly. Bit-identical to
/// Add(a, Mul(b, c)).
Variable FusedMulAdd(const Variable& a, const Variable& b, const Variable& c);

// --- Elementwise unary -------------------------------------------------------

Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
/// LeakyReLU with negative slope `alpha`.
Variable LeakyRelu(const Variable& a, float alpha = 0.1f);
Variable Sigmoid(const Variable& a);
Variable Softplus(const Variable& a);
Variable Square(const Variable& a);
Variable Abs(const Variable& a);
/// Clamp with straight-through gradient inside [lo, hi], zero outside.
Variable Clamp(const Variable& a, float lo, float hi);

// --- Reductions --------------------------------------------------------------

Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);
Variable Sum(const Variable& a, int axis, bool keepdims = false);
Variable Mean(const Variable& a, int axis, bool keepdims = false);

// --- Linear algebra ----------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b);
Variable MatMulBatched(const Variable& a, const Variable& b);
Variable Transpose2d(const Variable& a);
Variable TransposeLast2(const Variable& a);
Variable SoftmaxLastAxis(const Variable& a);

/// 2-D convolution: input [B,Cin,H,W] ⊛ weight [Cout,Cin,kh,kw]. `ws`
/// (optional, layer-owned, must outlive the graph) reuses im2col scratch
/// across calls instead of borrowing from the storage pool.
Variable Conv2d(const Variable& input, const Variable& weight,
                const tensor::Conv2dSpec& spec,
                tensor::Conv2dWorkspace* ws = nullptr);

// --- Structural ----------------------------------------------------------------

Variable Reshape(const Variable& a, tensor::Shape new_shape);
Variable Flatten2d(const Variable& a);  ///< [B, ...] → [B, rest].
Variable Concat(const std::vector<Variable>& parts, int axis);
Variable Slice(const Variable& a, int axis, int64_t start, int64_t len);

/// Non-overlapping average pooling over the last two axes of [B,C,H,W].
Variable AvgPool2d(const Variable& a, int64_t window);
/// Non-overlapping max pooling; gradient routes to the argmax element.
Variable MaxPool2d(const Variable& a, int64_t window);

// --- Convenience operators (thin wrappers over the functions above) ----------

inline Variable operator+(const Variable& a, const Variable& b) {
  return Add(a, b);
}
inline Variable operator-(const Variable& a, const Variable& b) {
  return Sub(a, b);
}
inline Variable operator*(const Variable& a, const Variable& b) {
  return Mul(a, b);
}
inline Variable operator/(const Variable& a, const Variable& b) {
  return Div(a, b);
}
inline Variable operator-(const Variable& a) { return Neg(a); }

}  // namespace musenet::autograd

#endif  // MUSENET_AUTOGRAD_OPS_H_
