#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>

namespace musenet::obs {

namespace internal {

int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

using internal::kShards;
using internal::Shard;

// --- Counter -----------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge -------------------------------------------------------------------

uint64_t Gauge::Bits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double Gauge::Value() const {
  return FromBits(bits_.load(std::memory_order_relaxed));
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(observed,
                                      Bits(FromBits(observed) + delta),
                                      std::memory_order_relaxed)) {
  }
}

void Gauge::KeepMax(double candidate) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  while (FromBits(observed) < candidate &&
         !bits_.compare_exchange_weak(observed, Bits(candidate),
                                      std::memory_order_relaxed)) {
  }
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(static_cast<size_t>(kShards) * (bounds_.size() + 1)),
      exemplar_ids_(new std::atomic<int64_t>[bounds_.size() + 1]),
      exemplar_value_bits_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    exemplar_ids_[i].store(-1, std::memory_order_relaxed);
    exemplar_value_bits_[i].store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketOf(double value) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::Observe(double value, int64_t exemplar_id) {
  const size_t bucket = BucketOf(value);
  int64_t value_bits;
  std::memcpy(&value_bits, &value, sizeof(value_bits));
  exemplar_value_bits_[bucket].store(value_bits, std::memory_order_relaxed);
  exemplar_ids_[bucket].store(exemplar_id, std::memory_order_relaxed);
  Observe(value);
}

void Histogram::Observe(double value) {
  const size_t bucket = BucketOf(value);
  const size_t stride = bounds_.size() + 1;
  const int shard = internal::ThisThreadShard();
  counts_[static_cast<size_t>(shard) * stride + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  // Sum is a CAS loop over double bits (no atomic<double>::fetch_add until
  // C++20 libstdc++ catches up); contention is spread by the shard index.
  std::atomic<int64_t>& sum = sum_bits_[shard].value;
  int64_t observed = sum.load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    const double updated = current + value;
    int64_t updated_bits;
    std::memcpy(&updated_bits, &updated, sizeof(updated_bits));
    if (sum.compare_exchange_weak(observed, updated_bits,
                                  std::memory_order_relaxed)) {
      break;
    }
  }
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const Shard& shard : counts_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : sum_bits_) {
    const int64_t bits = shard.value.load(std::memory_order_relaxed);
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    total += value;
  }
  return total;
}

std::vector<int64_t> Histogram::BucketCounts() const {
  const size_t stride = bounds_.size() + 1;
  std::vector<int64_t> merged(stride, 0);
  for (int shard = 0; shard < kShards; ++shard) {
    for (size_t bucket = 0; bucket < stride; ++bucket) {
      merged[bucket] +=
          counts_[static_cast<size_t>(shard) * stride + bucket].value.load(
              std::memory_order_relaxed);
    }
  }
  return merged;
}

std::vector<int64_t> Histogram::ExemplarIds() const {
  std::vector<int64_t> ids(bounds_.size() + 1);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = exemplar_ids_[i].load(std::memory_order_relaxed);
  }
  return ids;
}

std::vector<double> Histogram::ExemplarValues() const {
  std::vector<double> values(bounds_.size() + 1);
  for (size_t i = 0; i < values.size(); ++i) {
    const int64_t bits = exemplar_value_bits_[i].load(std::memory_order_relaxed);
    std::memcpy(&values[i], &bits, sizeof(values[i]));
  }
  return values;
}

void Histogram::Reset() {
  for (Shard& shard : counts_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
  for (Shard& shard : sum_bits_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    exemplar_ids_[i].store(-1, std::memory_order_relaxed);
    exemplar_value_bits_[i].store(0, std::memory_order_relaxed);
  }
}

// --- Registry ----------------------------------------------------------------

namespace {

/// Interned instruments, heap-owned so element addresses are stable across
/// registration — which is what lets hot paths cache the references.
struct RegistryState {
  std::mutex mu;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
  std::deque<std::unique_ptr<Counter>> counter_storage;
  std::deque<std::unique_ptr<Gauge>> gauge_storage;
  std::deque<std::unique_ptr<Histogram>> histogram_storage;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // Leaked singleton.
  return *state;
}

}  // namespace

Registry& Registry::Instance() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.counters.find(name);
  if (it != state.counters.end()) return *it->second;
  state.counter_storage.emplace_back(new Counter());
  Counter* fresh = state.counter_storage.back().get();
  state.counters.emplace(name, fresh);
  return *fresh;
}

Gauge& Registry::GetGauge(const std::string& name) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.gauges.find(name);
  if (it != state.gauges.end()) return *it->second;
  state.gauge_storage.emplace_back(new Gauge());
  Gauge* fresh = state.gauge_storage.back().get();
  state.gauges.emplace(name, fresh);
  return *fresh;
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  const std::vector<double>& bounds) {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.histograms.find(name);
  if (it != state.histograms.end()) return *it->second;
  state.histogram_storage.emplace_back(new Histogram(bounds));
  Histogram* fresh = state.histogram_storage.back().get();
  state.histograms.emplace(name, fresh);
  return *fresh;
}

MetricsSnapshot Registry::Snapshot() const {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : state.counters) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : state.gauges) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : state.histograms) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts = histogram->BucketCounts();
    data.total = histogram->TotalCount();
    data.sum = histogram->Sum();
    data.exemplar_ids = histogram->ExemplarIds();
    data.exemplar_values = histogram->ExemplarValues();
    snapshot.histograms.emplace(name, std::move(data));
  }
  return snapshot;
}

void Registry::ResetCountersAndHistograms() {
  RegistryState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& [name, counter] : state.counters) counter->Reset();
  for (const auto& [name, histogram] : state.histograms) histogram->Reset();
}

Counter& GetCounter(const std::string& name) {
  return Registry::Instance().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Instance().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds) {
  return Registry::Instance().GetHistogram(name, bounds);
}

const std::vector<double>& QueueDepthBuckets() {
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    b->push_back(0.0);
    for (double edge = 1.0; edge <= 4096.0; edge *= 2.0) b->push_back(edge);
    return b;
  }();
  return *buckets;
}

double HistogramPercentile(const MetricsSnapshot::HistogramData& histogram,
                           double q) {
  // Empty histogram: "no data" is NaN, not 0 — a 0 here reads as "p99 was
  // instantaneous" in a report, which is a lie. Callers that format
  // human-facing output guard this (loadgen prints 0 for an empty run).
  if (histogram.total <= 0 || histogram.counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(histogram.total);
  double below = 0.0;
  for (size_t i = 0; i < histogram.counts.size(); ++i) {
    const double count = static_cast<double>(histogram.counts[i]);
    if (below + count >= rank || i + 1 == histogram.counts.size()) {
      if (i >= histogram.bounds.size()) {
        // Overflow bucket: no upper edge to interpolate toward, so every
        // rank landing here clamps to the last finite bound (NaN when the
        // histogram has no finite bounds at all — pure-overflow data gives
        // no usable estimate).
        return histogram.bounds.empty()
                   ? std::numeric_limits<double>::quiet_NaN()
                   : histogram.bounds.back();
      }
      const double hi = histogram.bounds[i];
      const double lo = i == 0 ? 0.0 : histogram.bounds[i - 1];
      // Linear interpolation inside the bucket. When all mass sits in this
      // single bucket, below == 0 and count == total, so frac == q and the
      // estimate walks the bucket's width with q instead of pinning to an
      // edge.
      const double frac = count > 0.0 ? (rank - below) / count : 1.0;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    below += count;
  }
  return histogram.bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                                  : histogram.bounds.back();
}

const std::vector<double>& LatencyBucketsMs() {
  // 0.01ms .. ~164s, factor 2: 24 buckets + overflow.
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    double edge = 0.01;
    for (int i = 0; i < 24; ++i) {
      b->push_back(edge);
      edge *= 2.0;
    }
    return b;
  }();
  return *buckets;
}

// --- Export ------------------------------------------------------------------

namespace {

/// Shortest round-trip formatting of a double (%.17g trimmed would jitter;
/// %g at 17 significant digits round-trips and is deterministic for
/// identical bit patterns — which the substrate's determinism contract
/// guarantees across thread counts).
std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + JsonDouble(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"total\": " + std::to_string(data.total) +
           ", \"sum\": " + JsonDouble(data.sum) + ", \"bounds\": [";
    for (size_t i = 0; i < data.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += JsonDouble(data.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < data.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(data.counts[i]);
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
/// convention ("serve.taxi-int8.shed") maps dots and every other outlaw
/// character to '_'. Deterministic, so scrape series names are stable.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  char buf[160];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %lld\n", prom.c_str(),
                  static_cast<long long>(value));
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    std::snprintf(buf, sizeof(buf), "%s %.17g\n", prom.c_str(), value);
    out += buf;
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < data.counts.size(); ++i) {
      cumulative += data.counts[i];
      if (i < data.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.17g\"} %lld",
                      prom.c_str(), data.bounds[i],
                      static_cast<long long>(cumulative));
      } else {
        std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %lld",
                      prom.c_str(), static_cast<long long>(cumulative));
      }
      out += buf;
      // OpenMetrics-style exemplar: the id of the last observation that
      // landed in this bucket, resolvable against the trace file's request
      // spans ("rid" args).
      if (i < data.exemplar_ids.size() && data.exemplar_ids[i] >= 0) {
        std::snprintf(buf, sizeof(buf), " # {request_id=\"%lld\"} %.17g",
                      static_cast<long long>(data.exemplar_ids[i]),
                      i < data.exemplar_values.size() ? data.exemplar_values[i]
                                                      : 0.0);
        out += buf;
      }
      out.push_back('\n');
    }
    std::snprintf(buf, sizeof(buf), "%s_sum %.17g\n%s_count %lld\n",
                  prom.c_str(), data.sum, prom.c_str(),
                  static_cast<long long>(data.total));
    out += buf;
  }
  return out;
}

void DumpMetrics(std::FILE* out) {
  const MetricsSnapshot snapshot = Registry::Instance().Snapshot();
  size_t width = 8;
  for (const auto& [name, value] : snapshot.counters) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : snapshot.gauges) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, data] : snapshot.histograms) {
    width = std::max(width, name.size());
  }
  const int w = static_cast<int>(width);
  std::fprintf(out, "--- metrics ---\n");
  for (const auto& [name, value] : snapshot.counters) {
    std::fprintf(out, "%-*s  %lld\n", w, name.c_str(),
                 static_cast<long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::fprintf(out, "%-*s  %.6g\n", w, name.c_str(), value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    std::fprintf(out, "%-*s  count=%lld sum=%.6g mean=%.6g\n", w,
                 name.c_str(), static_cast<long long>(data.total), data.sum,
                 data.total > 0 ? data.sum / static_cast<double>(data.total)
                                : 0.0);
  }
}

}  // namespace musenet::obs
