#include "obs/run_log.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/io.h"

namespace musenet::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (c < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out->append(hex);
    } else {
      out->push_back(ch);
    }
  }
}

}  // namespace

RunRecord::RunRecord(const std::string& event) {
  line_ = "{\"event\":\"";
  AppendEscaped(&line_, event);
  line_ += "\"";
}

RunRecord& RunRecord::Int(const std::string& key, int64_t value) {
  line_ += ",\"" + key + "\":" + std::to_string(value);
  return *this;
}

RunRecord& RunRecord::Double(const std::string& key, double value) {
  // JSON has no inf/nan literals; null keeps the line parseable (an infinite
  // best_val just means "no validation epoch yet").
  if (!std::isfinite(value)) {
    line_ += ",\"" + key + "\":null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  line_ += ",\"" + key + "\":" + buf;
  return *this;
}

RunRecord& RunRecord::Str(const std::string& key, const std::string& value) {
  line_ += ",\"" + key + "\":\"";
  AppendEscaped(&line_, value);
  line_ += "\"";
  return *this;
}

RunRecord& RunRecord::Bool(const std::string& key, bool value) {
  line_ += ",\"" + key + "\":";
  line_ += value ? "true" : "false";
  return *this;
}

RunLog::RunLog(std::FILE* file, std::string path, bool include_timings)
    : file_(file), path_(std::move(path)), include_timings_(include_timings) {}

RunLog::RunLog(RunLog&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      include_timings_(other.include_timings_) {
  other.file_ = nullptr;
}

RunLog& RunLog::operator=(RunLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    include_timings_ = other.include_timings_;
    other.file_ = nullptr;
  }
  return *this;
}

RunLog::~RunLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<RunLog> RunLog::Open(const std::string& path, bool truncate,
                            bool include_timings) {
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open run log '" + path +
                           "': " + std::strerror(errno));
  }
  return RunLog(file, path, include_timings);
}

Status RunLog::Append(const RunRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("run log '" + path_ +
                                      "' is closed (earlier write error)");
  }
  const std::string line = record.Json() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::IoError("run log write to '" + path_ +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<std::vector<std::pair<std::string, std::string>>>>
ReadRunLog(const std::string& path) {
  MUSE_ASSIGN_OR_RETURN(const std::string contents,
                        util::ReadFileToString(path));
  std::vector<std::vector<std::pair<std::string, std::string>>> records;
  size_t pos = 0;
  int line_no = 0;
  while (pos < contents.size()) {
    size_t end = contents.find('\n', pos);
    if (end == std::string::npos) end = contents.size();
    const std::string line = contents.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line.front() != '{' || line.back() != '}') {
      return Status::InvalidArgument("run log '" + path + "' line " +
                                     std::to_string(line_no) +
                                     " is not a JSON object: " + line);
    }
    // Flat parse of {"k":v,...}: keys are unescaped identifiers in practice;
    // values run to the next top-level comma (no nested objects in RunLog
    // output).
    std::vector<std::pair<std::string, std::string>> fields;
    size_t i = 1;
    while (i < line.size() - 1) {
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] != '"') {
        return Status::InvalidArgument("run log '" + path + "' line " +
                                       std::to_string(line_no) +
                                       ": expected key at offset " +
                                       std::to_string(i));
      }
      const size_t key_end = line.find('"', i + 1);
      if (key_end == std::string::npos || line[key_end + 1] != ':') {
        return Status::InvalidArgument("run log '" + path + "' line " +
                                       std::to_string(line_no) +
                                       ": malformed key");
      }
      const std::string key = line.substr(i + 1, key_end - i - 1);
      size_t value_begin = key_end + 2;
      size_t value_end = value_begin;
      std::string value;
      if (line[value_begin] == '"') {
        // String value: strip the quotes and undo Str()'s escaping, so the
        // parsed field equals the original value (round-trip).
        value_end = value_begin + 1;
        while (value_end < line.size() - 1 && line[value_end] != '"') {
          if (line[value_end] == '\\' && value_end + 1 < line.size() - 1) {
            ++value_end;  // Escaped character: take the next char verbatim.
          }
          value.push_back(line[value_end]);
          ++value_end;
        }
        ++value_end;  // Past the closing quote.
      } else {
        while (value_end < line.size() - 1 && line[value_end] != ',') {
          ++value_end;
        }
        value = line.substr(value_begin, value_end - value_begin);
      }
      fields.emplace_back(key, std::move(value));
      i = value_end;
    }
    records.push_back(std::move(fields));
  }
  return records;
}

Status WriteMetricsSnapshot(const std::string& path) {
  return util::AtomicWriteFile(
      path, MetricsToJson(Registry::Instance().Snapshot()));
}

}  // namespace musenet::obs
