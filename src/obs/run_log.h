#ifndef MUSENET_OBS_RUN_LOG_H_
#define MUSENET_OBS_RUN_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace musenet::obs {

/// One structured run-log record under construction: an ordered list of
/// key/value fields serialized as a single JSON object line. Field order is
/// insertion order, and doubles are formatted with a fixed round-trippable
/// format, so a record built from identical values is byte-identical —
/// the property the cross-thread-count stability test pins down.
class RunRecord {
 public:
  /// Every record starts with {"event": <event>}.
  explicit RunRecord(const std::string& event);

  RunRecord& Int(const std::string& key, int64_t value);
  RunRecord& Double(const std::string& key, double value);
  RunRecord& Str(const std::string& key, const std::string& value);
  RunRecord& Bool(const std::string& key, bool value);

  /// The finished single-line JSON object (no trailing newline).
  std::string Json() const { return line_ + "}"; }

 private:
  std::string line_;
};

/// Append-only JSONL run log (`metrics.jsonl`-style): one JSON object per
/// line, flushed to disk after every Append so a crashed run keeps every
/// completed record. The training loop writes per-step loss/grad-norm/time,
/// per-epoch train/val summaries, checkpoint durations and fault events
/// through this (see eval::RunTraining and DESIGN.md "Observability").
///
/// Timing fields are the caller's responsibility: pass
/// `include_timings() == false` records only (the loop consults the flag) to
/// get byte-stable logs across thread counts for deterministic runs.
class RunLog {
 public:
  /// Opens `path` for appending, truncating first when `truncate` (a fresh
  /// run); append mode preserves records across resume.
  static Result<RunLog> Open(const std::string& path, bool truncate,
                             bool include_timings = true);

  RunLog(RunLog&& other) noexcept;
  RunLog& operator=(RunLog&& other) noexcept;
  ~RunLog();

  RunLog(const RunLog&) = delete;
  RunLog& operator=(const RunLog&) = delete;

  /// Writes the record's line plus '\n' and flushes. Write errors are
  /// reported once as a Status and the log disables itself (telemetry must
  /// never kill a training run).
  Status Append(const RunRecord& record);

  /// When false the producer should omit wall-clock fields (step_ms etc.)
  /// so the log depends only on the deterministic computation.
  bool include_timings() const { return include_timings_; }

  const std::string& path() const { return path_; }

 private:
  RunLog(std::FILE* file, std::string path, bool include_timings);

  std::FILE* file_ = nullptr;
  std::string path_;
  bool include_timings_ = true;
};

/// Parses a JSONL file produced by RunLog into one RunRecord-shaped map per
/// line — flat string→string (numbers unparsed), enough for tests and the
/// CI smoke check to round-trip records without a JSON library.
Result<std::vector<std::vector<std::pair<std::string, std::string>>>>
ReadRunLog(const std::string& path);

/// Snapshot of the process-wide metrics registry as a JSON document written
/// crash-safely via util::AtomicWriteFile (`--metrics-out`).
Status WriteMetricsSnapshot(const std::string& path);

}  // namespace musenet::obs

#endif  // MUSENET_OBS_RUN_LOG_H_
