#include "obs/expo.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace musenet::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Reads until the end of the request head ("\r\n\r\n"), a 4 KB cap, EOF or
/// a short timeout. Scrape requests have no body we care about.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 4096) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      break;
    }
  }
  return head;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

Result<std::unique_ptr<ExpoServer>> ExpoServer::Start(int port) {
  std::unique_ptr<ExpoServer> server(new ExpoServer());

  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return Status::IoError("obs server: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(server->listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError("obs server: bind(127.0.0.1:" +
                           std::to_string(port) +
                           ") failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(server->listen_fd_, 16) != 0) {
    return Status::IoError("obs server: listen() failed: " +
                           std::string(std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(server->listen_fd_,
                    reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) == 0) {
    server->port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  if (::pipe(server->stop_pipe_) != 0) {
    return Status::IoError("obs server: pipe() failed: " +
                           std::string(std::strerror(errno)));
  }

  // Built-in endpoints. /metrics snapshots the registry per scrape;
  // /healthz is bare liveness until the serving layer overrides it with
  // plan readiness.
  server->Handle("/metrics", [](const std::string&) {
    Response response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsToPrometheus(Registry::Instance().Snapshot());
    return response;
  });
  server->Handle("/healthz", [](const std::string&) {
    Response response;
    response.body = "ok\n";
    return response;
  });

  server->server_ = std::thread([raw = server.get()] { raw->ServeLoop(); });
  return server;
}

ExpoServer::~ExpoServer() { Stop(); }

void ExpoServer::Stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 'q';
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
  if (server_.joinable()) server_.join();
  for (int* fd : {&listen_fd_, &stop_pipe_[0], &stop_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void ExpoServer::Handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
}

void ExpoServer::ServeLoop() {
  for (;;) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() woke us.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExpoServer::HandleConnection(int fd) {
  const std::string head = ReadRequestHead(fd);
  Response response;
  // Request line: "GET /path?query HTTP/1.1".
  const size_t sp1 = head.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : head.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || head.substr(0, sp1) != "GET") {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    std::string target = head.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    const size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
      query = target.substr(qmark + 1);
      target = target.substr(0, qmark);
    }
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = handlers_.find(target);
      if (it != handlers_.end()) handler = it->second;
    }
    if (handler) {
      response = handler(query);
    } else {
      response.status = 404;
      response.body = "not found: " + target + "\n";
    }
  }

  std::string reply = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      StatusText(response.status) +
                      "\r\nContent-Type: " + response.content_type +
                      "\r\nContent-Length: " +
                      std::to_string(response.body.size()) +
                      "\r\nConnection: close\r\n\r\n" + response.body;
  WriteAll(fd, reply);
}

}  // namespace musenet::obs
