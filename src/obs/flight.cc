#include "obs/flight.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "util/io.h"
#include "util/stopwatch.h"

namespace musenet::obs {

namespace {

/// Upper bound on a formatted dump: every slot formats to well under 256
/// bytes (fixed-size fields + 48-byte sanitized detail).
constexpr size_t kDumpBufferBytes =
    static_cast<size_t>(kFlightCapacity) * 256 + 1024;

/// Post-mortem path in both forms: a std::string for normal callers and a
/// fixed char array the signal handler can read without touching anything
/// that allocates or can be mid-destruction. Both behind function-local
/// leaked accessors (static-destruction safe).
struct PostmortemState {
  std::mutex mu;
  std::string path;
  char raw_path[512] = {0};
  char raw_tmp[520] = {0};
  char crash_buf[kDumpBufferBytes];
};

PostmortemState& Postmortem() {
  static PostmortemState* state = new PostmortemState();  // Leaked singleton.
  return *state;
}

/// Copies `src` into `dst`, mapping anything JSON-hostile (quotes,
/// backslashes, control bytes, non-ASCII) to '_' so the formatter can emit
/// it verbatim between quotes.
void SanitizeInto(char* dst, size_t cap, const char* src) {
  if (cap == 0) return;
  size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) {
    const unsigned char c = static_cast<unsigned char>(src[i]);
    dst[i] = (c >= 0x20 && c < 0x7f && c != '"' && c != '\\')
                 ? static_cast<char>(c)
                 : '_';
  }
  dst[i] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder() : slots_(new Slot[kFlightCapacity]) {}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // Leaked.
  return *recorder;
}

void FlightRecorder::Record(const char* kind, int64_t a, int64_t b,
                            const char* detail) {
  const int64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[seq & (kFlightCapacity - 1)];
  // Invalidate first so a concurrent dump never reads a half-written
  // payload as valid; the final store re-validates with this seq.
  slot.seq.store(-1, std::memory_order_release);
  slot.ts_ns = util::MonotonicNowNanos();
  slot.kind = kind;
  slot.a = a;
  slot.b = b;
  SanitizeInto(slot.detail, sizeof(slot.detail), detail);
  slot.seq.store(seq, std::memory_order_release);
}

size_t FlightRecorder::FormatJson(char* out, size_t cap,
                                  const char* reason) const {
  if (cap < 64) {
    if (cap > 0) out[0] = '\0';
    return 0;
  }
  char safe_reason[96];
  SanitizeInto(safe_reason, sizeof(safe_reason), reason);
  const int64_t head = head_.load(std::memory_order_acquire);
  const int64_t start = std::max<int64_t>(0, head - kFlightCapacity);

  size_t pos = static_cast<size_t>(
      std::snprintf(out, cap,
                    "{\"reason\": \"%s\", \"recorded\": %lld, \"events\": [",
                    safe_reason, static_cast<long long>(head)));
  int64_t torn = 0;
  bool first = true;
  bool truncated = false;
  for (int64_t seq = start; seq < head; ++seq) {
    const Slot& slot = slots_[seq & (kFlightCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) != seq) {
      ++torn;  // Mid-overwrite (or already lapped) while we read.
      continue;
    }
    char entry[320];
    const int len = std::snprintf(
        entry, sizeof(entry),
        "%s\n{\"ts_ns\": %lld, \"kind\": \"%s\", \"a\": %lld, \"b\": %lld, "
        "\"detail\": \"%s\"}",
        first ? "" : ",", static_cast<long long>(slot.ts_ns), slot.kind,
        static_cast<long long>(slot.a), static_cast<long long>(slot.b),
        slot.detail);
    if (slot.seq.load(std::memory_order_acquire) != seq) {
      ++torn;  // Overwritten between the check and the reads above.
      continue;
    }
    // Keep room for the closing "], ...}" tail; truncate rather than emit
    // invalid JSON.
    if (pos + static_cast<size_t>(len) + 96 >= cap) {
      truncated = true;
      break;
    }
    std::memcpy(out + pos, entry, static_cast<size_t>(len));
    pos += static_cast<size_t>(len);
    first = false;
  }
  pos += static_cast<size_t>(std::snprintf(
      out + pos, cap - pos,
      "\n], \"dropped_torn\": %lld, \"truncated\": %s}\n",
      static_cast<long long>(torn), truncated ? "true" : "false"));
  return pos;
}

std::string FlightRecorder::ToJson(const char* reason) const {
  std::vector<char> buf(kDumpBufferBytes);
  const size_t len = FormatJson(buf.data(), buf.size(), reason);
  return std::string(buf.data(), len);
}

void FlightRecorder::Clear() {
  // Resetting head to 0 would let stale slots alias fresh sequence numbers;
  // instead invalidate every slot and advance head to a capacity boundary
  // so the dump window [head - cap, head) holds only invalidated slots.
  const int64_t head = head_.load(std::memory_order_acquire);
  const int64_t rounded = ((head / kFlightCapacity) + 1) * kFlightCapacity;
  for (int64_t i = 0; i < kFlightCapacity; ++i) {
    slots_[i].seq.store(-1, std::memory_order_release);
  }
  head_.store(rounded, std::memory_order_release);
}

void SetPostmortemPath(const std::string& path) {
  PostmortemState& state = Postmortem();
  std::lock_guard<std::mutex> lock(state.mu);
  state.path = path;
  SanitizeInto(state.raw_path, sizeof(state.raw_path), path.c_str());
  // The sanitizer maps '"'/'\\' to '_' which would corrupt a path that
  // contains them; paths here are plain filenames, and the raw copy is only
  // for the signal handler.
  std::snprintf(state.raw_tmp, sizeof(state.raw_tmp), "%s.crash",
                state.raw_path);
}

std::string PostmortemPath() {
  PostmortemState& state = Postmortem();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.path;
}

Status DumpFlightRecorder(const char* reason) {
  const std::string path = PostmortemPath();
  if (path.empty()) {
    return Status::FailedPrecondition(
        "no post-mortem path configured (SetPostmortemPath / "
        "MUSENET_POSTMORTEM)");
  }
  return util::AtomicWriteFile(path,
                               FlightRecorder::Instance().ToJson(reason));
}

namespace {

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    default: return "signal";
  }
}

/// Fatal-signal path: format into the preallocated buffer, write(2) to a
/// sibling temp file, fsync, rename over the configured path, re-raise.
/// Nothing here allocates; snprintf/write/rename are the riskiest calls and
/// are accepted for a best-effort post-mortem on an already-dying process.
void CrashHandler(int sig) {
  PostmortemState& state = Postmortem();
  if (state.raw_path[0] != '\0') {
    const size_t len = FlightRecorder::Instance().FormatJson(
        state.crash_buf, sizeof(state.crash_buf), SignalName(sig));
    const int fd = ::open(state.raw_tmp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      size_t off = 0;
      while (off < len) {
        const ssize_t n = ::write(fd, state.crash_buf + off, len - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      ::fsync(fd);
      ::close(fd);
      if (off == len) ::rename(state.raw_tmp, state.raw_path);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void InstallCrashHandler() {
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = CrashHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESETHAND;
    for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
      ::sigaction(sig, &action, nullptr);
    }
    return true;
  }();
  (void)installed;
}

void AutoInitPostmortemFromEnv() {
  static const bool initialized = [] {
    const char* path = std::getenv("MUSENET_POSTMORTEM");
    if (path != nullptr && path[0] != '\0') {
      SetPostmortemPath(path);
      InstallCrashHandler();
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace musenet::obs
