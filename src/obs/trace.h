#ifndef MUSENET_OBS_TRACE_H_
#define MUSENET_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace musenet::obs {

// Scoped-span tracing with per-thread ring buffers, flushed to the Chrome /
// Perfetto `trace_event` JSON format (open the file at ui.perfetto.dev or
// chrome://tracing).
//
// Cost model (see DESIGN.md "Observability"): with tracing disabled a
// ScopedSpan is one relaxed atomic load and a predictable branch — no
// allocation, no clock read, no stores beyond `active_ = false`. Enabled
// spans read the steady clock twice and append one fixed-size event to a
// thread-local ring buffer under an uncontended per-thread mutex. Buffers
// are bounded (kMaxEventsPerThread); events beyond the cap are dropped and
// counted, never reallocated, so a traced run cannot OOM.
//
// Span names must be string literals (or otherwise outlive the flush): the
// event record stores the pointer, not a copy.
//
// Correlation: every event carries up to two integer arguments. The serving
// layer uses the second slot for the request id minted at Submit, so one
// Perfetto args search for the id walks request -> batch -> lane -> kernel.

/// Events a single thread can buffer before new events are dropped
/// (~32 MB/thread at sizeof(TraceEvent) == 64).
inline constexpr int64_t kMaxEventsPerThread = int64_t{1} << 19;

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

/// One buffered event. `dur_ns < 0` marks an instant event.
struct TraceEvent {
  const char* name;
  const char* arg_name;  ///< nullptr when the event carries no argument.
  int64_t arg_value;
  const char* arg2_name;  ///< Second argument slot; nullptr when unused.
  int64_t arg2_value;
  int64_t ts_ns;   ///< MonotonicNowNanos() at span open.
  int64_t dur_ns;  ///< Span duration; -1 for instant events.
};

void AppendEvent(const TraceEvent& event);

/// Test hook: points the MUSENET_TRACE atexit flush at `path` and runs the
/// callback as if the process were exiting. Exists so tests can exercise
/// the flush-once semantics without a real process exit.
void RunAtExitFlushForTest(const std::string& path);
}  // namespace internal

/// True while spans are being collected. Single relaxed load; the hot-path
/// guard every instrumentation site starts with.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Starts collecting spans (clears previously buffered events). Idempotent.
void StartTracing();

/// Stops collection, merges every thread's buffer into one strictly
/// ts-ordered `trace_event` JSON document and writes it crash-safely
/// (util::AtomicWriteFile) to `path`. Buffers are cleared on success.
Status StopTracingAndWrite(const std::string& path);

/// The merged trace JSON without writing it anywhere (used by tests).
/// Does not stop collection or clear buffers.
std::string TraceToJson();

/// Events dropped so far because a thread's ring buffer was full.
int64_t DroppedEventCount();

/// Reads MUSENET_TRACE once: when set (to the output path), tracing starts
/// now and the trace is written at process exit. Idempotent and cheap after
/// the first call; RunTraining and the CLI call it so `MUSENET_TRACE=t.json
/// musenet train ...` needs no code changes anywhere else.
///
/// The atexit flush holds all of its state (path + flushed flag) in a
/// function-local leaked accessor, so it is immune to static-destruction
/// order, and it is idempotent: if tracing was already stopped and flushed
/// (an explicit StopTracingAndWrite, or atexit running twice through
/// exit-from-atexit), the second flush is a no-op instead of overwriting the
/// real trace with an empty one.
void AutoInitFromEnv();

/// RAII span. Construct with a string literal:
///   obs::ScopedSpan span("train.step");
/// or, carrying one or two integer arguments (shown under "args" in the
/// viewer):
///   obs::ScopedSpan span("autograd.backward", "nodes", graph_size);
///   obs::ScopedSpan span("serve.batch", "size", n, "rid", request_id);
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) [[unlikely]] {
      Begin(name, nullptr, 0, nullptr, 0);
    }
  }
  ScopedSpan(const char* name, const char* arg_name, int64_t arg_value) {
    if (TracingEnabled()) [[unlikely]] {
      Begin(name, arg_name, arg_value, nullptr, 0);
    }
  }
  ScopedSpan(const char* name, const char* arg_name, int64_t arg_value,
             const char* arg2_name, int64_t arg2_value) {
    if (TracingEnabled()) [[unlikely]] {
      Begin(name, arg_name, arg_value, arg2_name, arg2_value);
    }
  }
  ~ScopedSpan() {
    if (active_) [[unlikely]] {
      End();
    }
  }

  /// Attaches/overwrites the span's first argument after construction (e.g.
  /// a count known only at scope exit). No-op when tracing was off at entry.
  void SetArg(const char* arg_name, int64_t arg_value) {
    if (active_) {
      event_.arg_name = arg_name;
      event_.arg_value = arg_value;
    }
  }

  /// Attaches/overwrites the span's second argument (correlation slot).
  void SetArg2(const char* arg_name, int64_t arg_value) {
    if (active_) {
      event_.arg2_name = arg_name;
      event_.arg2_value = arg_value;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name, const char* arg_name, int64_t arg_value,
             const char* arg2_name, int64_t arg2_value);
  void End();

  internal::TraceEvent event_;  ///< Untouched unless tracing was enabled.
  bool active_ = false;
};

/// Zero-duration marker event (fault activations, rollbacks, resume points).
void TraceInstant(const char* name);
void TraceInstant(const char* name, const char* arg_name, int64_t arg_value);
void TraceInstant(const char* name, const char* arg_name, int64_t arg_value,
                  const char* arg2_name, int64_t arg2_value);

}  // namespace musenet::obs

#endif  // MUSENET_OBS_TRACE_H_
