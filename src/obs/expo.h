#ifndef MUSENET_OBS_EXPO_H_
#define MUSENET_OBS_EXPO_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace musenet::obs {

// Dependency-free HTTP/1.1 exposition server (raw POSIX sockets, one
// serving thread) for live observability of a running process:
//
//   /metrics  — Prometheus text format of the metrics registry (built in;
//               deterministic ordering, histogram exemplars)
//   /healthz  — liveness; "ok" by default, overridable (the serve CLI
//               plugs per-tenant plan readiness in here)
//   /statusz  — not built in; registered by the serving layer (JSON status
//               document, `?dump=1` triggers a flight-recorder dump)
//
// Scrapes are rare (seconds apart) and tiny, so connections are handled
// sequentially on the serving thread: no handler pool, no keep-alive.
// Handlers run on that thread and must be thread-safe against the process
// they observe — the obs registry and the serve status accessors are.
class ExpoServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Called with the raw query string (the part after '?', possibly empty).
  using Handler = std::function<Response(const std::string& query)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts serving.
  static Result<std::unique_ptr<ExpoServer>> Start(int port);

  ~ExpoServer();

  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Stops the serving thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// The bound port (the kernel-assigned one when Start was given 0).
  int port() const { return port_; }

  /// Registers (or replaces) the handler for an exact request path
  /// (e.g. "/statusz"). Unknown paths get 404.
  void Handle(const std::string& path, Handler handler);

 private:
  ExpoServer() = default;

  void ServeLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< Self-pipe to wake the poll() on Stop.
  int port_ = 0;
  std::thread server_;
  std::mutex mu_;  ///< Guards handlers_.
  std::map<std::string, Handler> handlers_;
};

}  // namespace musenet::obs

#endif  // MUSENET_OBS_EXPO_H_
