#ifndef MUSENET_OBS_FLIGHT_H_
#define MUSENET_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace musenet::obs {

// Black-box flight recorder: a bounded in-memory ring of recent serving
// events (sheds, swap stage transitions, deadline expiries, fault
// activations, batch completions) that can be dumped as a post-mortem JSON
// when something goes wrong — a fatal signal, a shadow rejection, or an
// explicit trigger from `/statusz?dump=1`.
//
// Recording is lock-free (one fetch_add + plain stores into a fixed slot)
// and allocation-free, so the hot serve path can record unconditionally.
// The ring holds the last kFlightCapacity events; older ones are
// overwritten. A dump racing a recorder may observe a slot mid-overwrite;
// the per-slot sequence number detects that and the dump skips the torn
// slot — post-mortems are best-effort breadcrumbs, not accounting.

/// Events the ring retains (power of two; ~0.3 MB resident).
inline constexpr int64_t kFlightCapacity = 4096;

class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  /// Records one event. `kind` must be a string literal (the pointer is
  /// stored); `detail` (optional) is copied, sanitized to JSON-safe ASCII
  /// and truncated to the slot's fixed buffer. `a`/`b` are free-form
  /// integer payloads (request id, version, queue depth, ...).
  void Record(const char* kind, int64_t a = 0, int64_t b = 0,
              const char* detail = nullptr);

  /// JSON document of the buffered events, oldest first:
  ///   {"reason": "...", "dropped_torn": N, "events": [
  ///     {"ts_ns":..., "kind":"...", "a":..., "b":..., "detail":"..."}]}
  std::string ToJson(const char* reason) const;

  /// Formats the same JSON into a caller-provided buffer without
  /// allocating — the path the fatal-signal handler uses. Returns the
  /// number of bytes written (the document is truncated-but-valid when the
  /// buffer is too small).
  size_t FormatJson(char* out, size_t cap, const char* reason) const;

  /// Total events ever recorded (monotonic; exceeds kFlightCapacity once
  /// the ring has wrapped).
  int64_t recorded() const { return head_.load(std::memory_order_relaxed); }

  /// Drops all buffered events (tests).
  void Clear();

 private:
  FlightRecorder();

  struct Slot {
    std::atomic<int64_t> seq{-1};  ///< Sequence stamped after the payload.
    int64_t ts_ns = 0;
    const char* kind = "";
    int64_t a = 0;
    int64_t b = 0;
    char detail[48] = {0};
  };

  std::atomic<int64_t> head_{0};
  Slot* slots_;  ///< kFlightCapacity entries, leaked with the singleton.
};

/// Sets the post-mortem dump path (empty disables dumping). The crash
/// handler and DumpFlightRecorder write here.
void SetPostmortemPath(const std::string& path);

/// The configured post-mortem path ("" when unconfigured).
std::string PostmortemPath();

/// Writes the flight-recorder dump to the configured post-mortem path
/// (util::AtomicWriteFile). FailedPrecondition when no path is configured.
Status DumpFlightRecorder(const char* reason);

/// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT)
/// that write the flight-recorder dump to the configured post-mortem path —
/// formatting into a preallocated buffer, then write(2) + fsync + rename(2),
/// no allocation — and then re-raise with the default disposition so the
/// process still dies with the original signal. Idempotent.
void InstallCrashHandler();

/// Reads MUSENET_POSTMORTEM once: when set, configures the post-mortem path
/// and installs the crash handler. Idempotent; the CLI calls it next to
/// AutoInitFromEnv so CI chaos drills opt in with one env var.
void AutoInitPostmortemFromEnv();

}  // namespace musenet::obs

#endif  // MUSENET_OBS_FLIGHT_H_
