#ifndef MUSENET_OBS_METRICS_H_
#define MUSENET_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace musenet::obs {

// Process-wide registry of named counters, gauges and fixed-bucket
// histograms.
//
// Writes are wait-free after the one-time registry lookup: counters and
// histograms are striped across cache-line-padded shards indexed by a
// per-thread slot, so concurrent updates from pool workers never contend on
// one cache line; a snapshot merges the shards. Instruments are interned by
// name — repeated Get*() calls return the same object, whose address is
// stable for the life of the process (hot paths look up once and keep the
// reference).
//
// Naming convention: lowercase dotted paths grouped by subsystem, e.g.
// "tensor.pool.reuses", "train.steps", "autograd.backward.nodes".

namespace internal {
inline constexpr int kShards = 16;

struct alignas(64) Shard {
  std::atomic<int64_t> value{0};
};

/// Small dense per-thread shard index (round-robin assigned), so threads
/// spread across shards without hashing.
int ThisThreadShard();
}  // namespace internal

/// Monotonic event count (resettable for tests and per-run scoping).
class Counter {
 public:
  void Add(int64_t delta = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t Value() const;
  void Reset();

 private:
  friend class Registry;
  Counter() = default;
  internal::Shard shards_[internal::kShards];
};

/// Last-written value (double so byte and loss gauges share one type).
/// Set/Add/KeepMax are individually atomic; concurrent Add and Set race by
/// design (gauges record state, not history).
class Gauge {
 public:
  void Set(double value) { bits_.store(Bits(value), std::memory_order_relaxed); }
  void Add(double delta);
  /// Monotonic high-water mark: value() = max(value(), candidate).
  void KeepMax(double candidate);
  double Value() const;

 private:
  friend class Registry;
  Gauge() = default;
  static uint64_t Bits(double v);
  static double FromBits(uint64_t bits);
  std::atomic<uint64_t> bits_{0};  ///< IEEE-754 bits of the double value.
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i], plus
/// an implicit overflow bucket. Bounds are set at first registration.
///
/// Each bucket additionally keeps one *exemplar*: the id and value of the
/// last observation recorded into it through the two-argument Observe. The
/// serving layer passes its per-request ids here, so a scrape of an outlier
/// latency bucket carries a concrete request id that resolves to that
/// request's span in the trace file. Exemplars are last-write-wins and
/// unsharded (two relaxed stores; a racing pair may momentarily mismatch id
/// and value — they are debugging breadcrumbs, not accounting).
class Histogram {
 public:
  void Observe(double value);
  /// Observe + record (exemplar_id, value) as the bucket's exemplar.
  void Observe(double value, int64_t exemplar_id);
  int64_t TotalCount() const;
  double Sum() const;
  /// Per-bucket counts, length bounds().size() + 1 (last = overflow).
  std::vector<int64_t> BucketCounts() const;
  /// Per-bucket exemplar ids (length bounds().size() + 1; -1 = none yet).
  std::vector<int64_t> ExemplarIds() const;
  /// Per-bucket exemplar observation values (meaningless where id is -1).
  std::vector<double> ExemplarValues() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  size_t BucketOf(double value) const;

  std::vector<double> bounds_;
  /// shard-major: counts_[shard * (bounds+1) + bucket].
  std::vector<internal::Shard> counts_;
  internal::Shard sum_bits_[internal::kShards];  ///< CAS-added doubles.
  /// Per-bucket exemplars (bounds+1 entries each): -1 = none recorded.
  std::unique_ptr<std::atomic<int64_t>[]> exemplar_ids_;
  std::unique_ptr<std::atomic<int64_t>[]> exemplar_value_bits_;
};

/// Merged point-in-time view of every registered instrument.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<int64_t> counts;  ///< bounds.size() + 1 entries.
    int64_t total = 0;
    double sum = 0.0;
    /// Per-bucket exemplars (counts.size() entries; id -1 = none). See
    /// Histogram: the id of the last observation recorded into the bucket
    /// with an id, and the observed value that went with it.
    std::vector<int64_t> exemplar_ids;
    std::vector<double> exemplar_values;
  };
  std::map<std::string, HistogramData> histograms;
};

class Registry {
 public:
  static Registry& Instance();

  /// Interns and returns the instrument named `name`. Never fails; the
  /// returned reference is valid for the process lifetime.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` (ascending upper edges) is consulted only on first
  /// registration of `name`; later calls return the existing histogram.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter and histogram (gauges keep their values: they
  /// describe current state, e.g. pool bytes live). Test/bench scoping.
  void ResetCountersAndHistograms();

 private:
  Registry() = default;
};

/// Convenience wrappers over Registry::Instance().
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds);

/// Exponential millisecond buckets (0.01ms .. ~164s) shared by the latency
/// histograms (step time, checkpoint writes, validation).
const std::vector<double>& LatencyBucketsMs();

/// Power-of-two depth buckets (0, 1, 2, 4 .. 4096) for queue-occupancy
/// histograms (serve.queue_depth).
const std::vector<double>& QueueDepthBuckets();

/// Estimates the q-th percentile (q in [0, 1]) of a snapshot histogram by
/// linear interpolation inside the bucket containing the target rank (a
/// histogram whose mass sits in a single bucket interpolates across that
/// bucket's width, so p50 lands mid-bucket, not on an edge). The overflow
/// bucket has no upper edge, so ranks landing there clamp to the last finite
/// bound — an underestimate the caller should treat as ">= bound". Returns
/// quiet NaN for an empty histogram (total == 0 or no buckets): "no data" is
/// distinguishable from a genuine 0ms percentile, and callers that format
/// reports must guard it (loadgen reports 0 for an empty run). This is what
/// the serve CLI and the serving bench report as SLO p50/p99 without
/// retaining per-request samples.
double HistogramPercentile(const MetricsSnapshot::HistogramData& histogram,
                           double q);

/// Renders a snapshot in the Prometheus text exposition format with
/// deterministic ordering (instruments sorted by name; dots and dashes in
/// names map to underscores). Histograms emit cumulative `_bucket{le=...}`
/// series plus `_sum`/`_count`; buckets with a recorded exemplar append an
/// OpenMetrics-style ` # {request_id="<id>"} <value>` exemplar. This is what
/// the `/metrics` endpoint of the exposition server serves.
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

/// Deterministic JSON document (keys sorted, fixed float formatting) of a
/// snapshot — what `musenet train --metrics-out` writes.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// Aligned human-readable table of the current snapshot, for debugging:
///   DumpMetrics(stderr);
void DumpMetrics(std::FILE* out);

}  // namespace musenet::obs

#endif  // MUSENET_OBS_METRICS_H_
