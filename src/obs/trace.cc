#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "util/io.h"
#include "util/stopwatch.h"

namespace musenet::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

using internal::TraceEvent;

/// Per-thread event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the registry, so events survive thread exit until the
/// next flush. The mutex is only ever contended by a flush racing a live
/// span, both off the disabled fast path.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int64_t dropped = 0;
  int tid = 0;

  void Append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<int64_t>(events.size()) >= kMaxEventsPerThread) {
      ++dropped;
      return;
    }
    events.push_back(event);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // Leaked: see StoragePool.
  return *registry;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    fresh->tid = registry.next_tid++;
    // Events capacity is reserved up front so Append never reallocates
    // mid-trace (predictable cost, and the no-allocation claim of the
    // disabled path extends to "no reallocation storms" when enabled).
    fresh->events.reserve(static_cast<size_t>(kMaxEventsPerThread));
    registry.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

struct MergedEvent {
  TraceEvent event;
  int tid;
};

std::vector<MergedEvent> MergeAndSort() {
  std::vector<MergedEvent> merged;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (const TraceEvent& event : buffer->events) {
      merged.push_back({event, buffer->tid});
    }
  }
  // Strict global order: by timestamp, then longer spans first so an
  // enclosing span precedes children that opened the same nanosecond, then
  // by tid for a total order of identical (ts, dur) pairs.
  std::sort(merged.begin(), merged.end(),
            [](const MergedEvent& a, const MergedEvent& b) {
              if (a.event.ts_ns != b.event.ts_ns) {
                return a.event.ts_ns < b.event.ts_ns;
              }
              if (a.event.dur_ns != b.event.dur_ns) {
                return a.event.dur_ns > b.event.dur_ns;
              }
              return a.tid < b.tid;
            });
  return merged;
}

void ClearBuffers() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

int64_t DroppedLocked() {
  int64_t dropped = 0;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> registry_lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    dropped += buffer->dropped;
  }
  return dropped;
}

/// Escapes `s` for a JSON string value. Span names are plain identifiers in
/// practice; this keeps the output valid even if one ever is not.
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out->append(hex);
    } else {
      out->push_back(static_cast<char>(c));
    }
  }
}

/// One event per line: "ts" / "dur" are microseconds (the unit the
/// trace_event format specifies); three decimals keep full ns resolution.
void AppendEventJson(std::string* out, const MergedEvent& merged) {
  const TraceEvent& event = merged.event;
  char buf[96];
  out->append("{\"name\":\"");
  AppendJsonEscaped(out, event.name);
  if (event.dur_ns >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%lld.%03lld,\"dur\":%lld.%03lld",
                  static_cast<long long>(event.ts_ns / 1000),
                  static_cast<long long>(event.ts_ns % 1000),
                  static_cast<long long>(event.dur_ns / 1000),
                  static_cast<long long>(event.dur_ns % 1000));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%lld.%03lld",
                  static_cast<long long>(event.ts_ns / 1000),
                  static_cast<long long>(event.ts_ns % 1000));
  }
  out->append(buf);
  std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%d", merged.tid);
  out->append(buf);
  if (event.arg_name != nullptr || event.arg2_name != nullptr) {
    out->append(",\"args\":{");
    bool first = true;
    if (event.arg_name != nullptr) {
      out->push_back('"');
      AppendJsonEscaped(out, event.arg_name);
      std::snprintf(buf, sizeof(buf), "\":%lld",
                    static_cast<long long>(event.arg_value));
      out->append(buf);
      first = false;
    }
    if (event.arg2_name != nullptr) {
      if (!first) out->push_back(',');
      out->push_back('"');
      AppendJsonEscaped(out, event.arg2_name);
      std::snprintf(buf, sizeof(buf), "\":%lld",
                    static_cast<long long>(event.arg2_value));
      out->append(buf);
    }
    out->push_back('}');
  }
  out->push_back('}');
}

std::string BuildTraceJson() {
  const std::vector<MergedEvent> merged = MergeAndSort();
  std::string out;
  out.reserve(merged.size() * 112 + 256);
  out.append("{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n");
  for (size_t i = 0; i < merged.size(); ++i) {
    AppendEventJson(&out, merged[i]);
    if (i + 1 < merged.size()) out.push_back(',');
    out.push_back('\n');
  }
  char tail[64];
  std::snprintf(tail, sizeof(tail), "],\n\"droppedEvents\":%lld}\n",
                static_cast<long long>(DroppedLocked()));
  out.append(tail);
  return out;
}

/// All state of the MUSENET_TRACE atexit flush, behind a function-local
/// leaked accessor so the atexit callback never touches a file-scope global
/// that static destruction may already have torn down. `flushed` makes a
/// double flush (atexit running after an explicit StopTracingAndWrite, or a
/// second atexit pass via exit-from-atexit) a no-op.
struct AtExitFlush {
  std::string path;
  std::atomic<bool> armed{false};
  std::atomic<bool> flushed{false};
};

AtExitFlush& AtExitState() {
  static AtExitFlush* state = new AtExitFlush();  // Leaked singleton.
  return *state;
}

void WriteTraceAtExit() {
  AtExitFlush& state = AtExitState();
  bool expected = false;
  if (!state.flushed.compare_exchange_strong(expected, true)) return;
  // An explicit StopTracingAndWrite (e.g. --trace-out) already stopped
  // tracing and cleared the buffers; writing again would clobber a real
  // trace with an empty document.
  if (!TracingEnabled()) return;
  const Status status = StopTracingAndWrite(state.path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: trace write failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

namespace internal {
void AppendEvent(const TraceEvent& event) { LocalBuffer().Append(event); }

void RunAtExitFlushForTest(const std::string& path) {
  AtExitState().path = path;
  WriteTraceAtExit();
}
}  // namespace internal

void ScopedSpan::Begin(const char* name, const char* arg_name,
                       int64_t arg_value, const char* arg2_name,
                       int64_t arg2_value) {
  event_.name = name;
  event_.arg_name = arg_name;
  event_.arg_value = arg_value;
  event_.arg2_name = arg2_name;
  event_.arg2_value = arg2_value;
  event_.ts_ns = util::MonotonicNowNanos();
  active_ = true;
}

void ScopedSpan::End() {
  event_.dur_ns = util::MonotonicNowNanos() - event_.ts_ns;
  internal::AppendEvent(event_);
}

void TraceInstant(const char* name) {
  if (TracingEnabled()) [[unlikely]] {
    TraceInstant(name, nullptr, 0, nullptr, 0);
  }
}

void TraceInstant(const char* name, const char* arg_name, int64_t arg_value) {
  if (TracingEnabled()) [[unlikely]] {
    TraceInstant(name, arg_name, arg_value, nullptr, 0);
  }
}

void TraceInstant(const char* name, const char* arg_name, int64_t arg_value,
                  const char* arg2_name, int64_t arg2_value) {
  if (!TracingEnabled()) return;
  internal::TraceEvent event;
  event.name = name;
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  event.arg2_name = arg2_name;
  event.arg2_value = arg2_value;
  event.ts_ns = util::MonotonicNowNanos();
  event.dur_ns = -1;
  internal::AppendEvent(event);
}

void StartTracing() {
  ClearBuffers();
  // Re-arm the atexit flush: a StartTracing after an explicit stop means
  // there is a fresh trace worth flushing again.
  AtExitState().flushed.store(false, std::memory_order_relaxed);
  internal::g_tracing_enabled.store(true, std::memory_order_relaxed);
}

std::string TraceToJson() { return BuildTraceJson(); }

int64_t DroppedEventCount() { return DroppedLocked(); }

Status StopTracingAndWrite(const std::string& path) {
  internal::g_tracing_enabled.store(false, std::memory_order_relaxed);
  // Spans still open on other threads will append after this point only if
  // they observed the flag as set at construction; the per-buffer mutex in
  // MergeAndSort makes those appends safe, they just miss this flush.
  const std::string json = BuildTraceJson();
  MUSE_RETURN_IF_ERROR(util::AtomicWriteFile(path, json));
  ClearBuffers();
  // An armed atexit flush has nothing left to do after an explicit stop.
  AtExitState().flushed.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void AutoInitFromEnv() {
  static const bool initialized = [] {
    const char* path = std::getenv("MUSENET_TRACE");
    if (path != nullptr && path[0] != '\0') {
      AtExitFlush& state = AtExitState();
      state.path = path;
      state.armed.store(true, std::memory_order_relaxed);
      StartTracing();
      std::atexit(WriteTraceAtExit);
    }
    return true;
  }();
  (void)initialized;
}

}  // namespace musenet::obs
