#ifndef MUSENET_MUSE_RESPLUS_H_
#define MUSENET_MUSE_RESPLUS_H_

#include <memory>
#include <vector>

#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/module.h"
#include "util/rng.h"

namespace musenet::muse {

/// One ResPlus unit (DeepSTN+, Feng et al. 2022): a two-conv residual branch
/// capturing local spatial dependency, plus a fully connected "plus" branch
/// that mixes the entire grid to capture long-range spatial dependency. The
/// plus branch is applied to the first `plus_channels` channels with a shared
/// per-channel H·W → H·W dense map.
class ResPlusBlock : public nn::Module {
 public:
  ResPlusBlock(int64_t channels, int64_t plus_channels, int64_t height,
               int64_t width, Rng& rng);

  /// [B, channels, H, W] → same shape.
  autograd::Variable Forward(const autograd::Variable& x);

 private:
  int64_t channels_;
  int64_t plus_channels_;
  int64_t height_;
  int64_t width_;
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
  nn::Dense plus_dense_;  ///< Shared across the plus channels.
};

/// The spatial head of MUSE-Net: fuses the disentangled representation maps
/// and produces the prediction Y:[B, 2, H, W] in [-1, 1].
class ResPlusNet : public nn::Module {
 public:
  ResPlusNet(int64_t in_channels, int64_t hidden_channels, int64_t num_blocks,
             int64_t plus_channels, int64_t height, int64_t width, Rng& rng);

  autograd::Variable Forward(const autograd::Variable& fused);

 private:
  nn::Conv2d entry_;  ///< 1×1 channel fusion.
  std::vector<std::unique_ptr<ResPlusBlock>> blocks_;
  nn::Conv2d exit_;   ///< 3×3 to 2 flow channels, tanh.
};

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_RESPLUS_H_
