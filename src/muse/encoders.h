#ifndef MUSENET_MUSE_ENCODERS_H_
#define MUSENET_MUSE_ENCODERS_H_

#include "muse/gaussian.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/module.h"
#include "util/rng.h"

namespace musenet::muse {

/// Fully connected head mapping a flattened feature vector to a diagonal
/// Gaussian (μ, logσ²) of the requested dimension, with logvar clamping.
class GaussianHead : public nn::Module {
 public:
  GaussianHead(int64_t in_features, int64_t dist_dim, float logvar_clamp,
               Rng& rng);

  /// x: [B, in_features] → DiagGaussian over dist_dim.
  DiagGaussian Forward(const autograd::Variable& x);

  int64_t dist_dim() const { return dist_dim_; }

 private:
  int64_t dist_dim_;
  float logvar_clamp_;
  nn::Dense dense_;
};

/// Shared convolutional feature extractor of one time sub-series:
/// [B, 2·L, H, W] → F:[B, d, H, W] (Fig. 3 "convolutional features").
class FeatureExtractor : public nn::Module {
 public:
  FeatureExtractor(int64_t in_channels, int64_t repr_dim, Rng& rng);

  autograd::Variable Forward(const autograd::Variable& x);

 private:
  nn::Conv2d conv_;
};

/// Exclusive encoder (paper Section IV-E): a convolutional layer producing
/// the exclusive representation Z^i plus a fully connected layer extracting
/// its distribution r_φ(z^i|i).
class ExclusiveEncoder : public nn::Module {
 public:
  ExclusiveEncoder(int64_t repr_dim, int64_t spatial, int64_t dist_dim,
                   float logvar_clamp, Rng& rng);

  struct Output {
    autograd::Variable representation;  ///< Z^i: [B, d, H, W].
    DiagGaussian distribution;          ///< r_φ(z^i|i): dim k/4.
  };

  /// features: the sub-series' convolutional features [B, d, H, W].
  Output Forward(const autograd::Variable& features);

 private:
  nn::Conv2d conv_;
  GaussianHead head_;
};

/// Interactive encoder: consumes the concatenated convolutional features of
/// all participating sub-series and yields Z^S plus r_φ(z^s|·).
class InteractiveEncoder : public nn::Module {
 public:
  /// `num_inputs` sub-series feed this encoder (3 for the multivariate model,
  /// 2 per pairwise encoder in the w/o-MultiDisentangle ablation).
  InteractiveEncoder(int64_t num_inputs, int64_t repr_dim, int64_t spatial,
                     int64_t dist_dim, float logvar_clamp, Rng& rng);

  struct Output {
    autograd::Variable representation;  ///< Z^S: [B, d, H, W].
    DiagGaussian distribution;          ///< r_φ(z^s|·): dim k.
  };

  /// features: concatenation [B, num_inputs·d, H, W].
  Output Forward(const autograd::Variable& features);

 private:
  nn::Conv2d conv_;
  GaussianHead head_;
};

/// Simplex variational encoder g_τ^i(z^s|i): conv + FC over one sub-series'
/// features, approximating the interactive posterior given i alone.
class SimplexEncoder : public nn::Module {
 public:
  SimplexEncoder(int64_t repr_dim, int64_t spatial, int64_t dist_dim,
                 float logvar_clamp, Rng& rng);

  DiagGaussian Forward(const autograd::Variable& features);

 private:
  nn::Conv2d conv_;
  GaussianHead head_;
};

/// Duplex variational encoder d_ω^{i,j}(z^s|i,j): conv + FC over a pair of
/// sub-series' concatenated features.
class DuplexEncoder : public nn::Module {
 public:
  DuplexEncoder(int64_t repr_dim, int64_t spatial, int64_t dist_dim,
                float logvar_clamp, Rng& rng);

  /// features: [B, 2·d, H, W].
  DiagGaussian Forward(const autograd::Variable& features);

 private:
  nn::Conv2d conv_;
  GaussianHead head_;
};

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_ENCODERS_H_
