#ifndef MUSENET_MUSE_GAUSSIAN_H_
#define MUSENET_MUSE_GAUSSIAN_H_

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "util/rng.h"

namespace musenet::muse {

/// A batch of diagonal Gaussians: μ and log σ², both [B, dim].
///
/// These are the building blocks of every distribution in the paper:
/// exclusive posteriors r_φ(z^i|i), the interactive posterior
/// r_φ(z^s|c,p,t), simplex variational distributions g_τ^i(z^s|i) and
/// duplex variational distributions d_ω^{i,j}(z^s|i,j).
struct DiagGaussian {
  autograd::Variable mu;       ///< [B, dim].
  autograd::Variable logvar;   ///< [B, dim], clamped by the encoder.

  int64_t dim() const { return mu.value().dim(1); }
  int64_t batch() const { return mu.value().dim(0); }
};

/// Reparameterized sample z = μ + σ ⊙ ε with ε ~ N(0, I) drawn from `rng`.
/// When `stochastic` is false returns μ (deterministic evaluation path).
autograd::Variable Reparameterize(const DiagGaussian& dist, Rng& rng,
                                  bool stochastic);

/// KL[ N(μ, σ²) ‖ N(0, I) ], averaged over the batch and normalized by the
/// latent dimension so that losses are comparable across k settings:
/// mean_{b,d} ½(μ² + σ² − 1 − log σ²).
autograd::Variable KlToStandard(const DiagGaussian& dist);

/// KL[ p ‖ q ] between two diagonal Gaussians of equal shape, batch-averaged
/// and dimension-normalized:
/// mean ½(log σq² − log σp² + (σp² + (μp−μq)²)/σq² − 1).
autograd::Variable KlBetween(const DiagGaussian& p, const DiagGaussian& q);

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_GAUSSIAN_H_
