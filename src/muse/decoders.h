#ifndef MUSENET_MUSE_DECODERS_H_
#define MUSENET_MUSE_DECODERS_H_

#include "nn/dense.h"
#include "nn/module.h"
#include "util/rng.h"

namespace musenet::muse {

/// Reconstructed decoder q_θ(i|z^i, z^s) (paper Section IV-E): a fully
/// connected layer mapping the concatenated exclusive and interactive samples
/// back to the (scaled) sub-series. Output is tanh-bounded to match the
/// [-1, 1] input scaling; the Gaussian log-likelihood of Eq. (28) then reduces
/// to a (negated) mean squared error.
class ReconstructionDecoder : public nn::Module {
 public:
  /// z dims: exclusive k/4 + interactive k; output [B, channels, H, W].
  ReconstructionDecoder(int64_t z_exclusive_dim, int64_t z_interactive_dim,
                        int64_t channels, int64_t height, int64_t width,
                        Rng& rng);

  /// z_exclusive: [B, k/4], z_interactive: [B, k].
  autograd::Variable Forward(const autograd::Variable& z_exclusive,
                             const autograd::Variable& z_interactive);

 private:
  int64_t channels_;
  int64_t height_;
  int64_t width_;
  nn::Dense dense_;
};

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_DECODERS_H_
