#include "muse/decoders.h"

#include "autograd/ops.h"

namespace musenet::muse {

namespace ag = musenet::autograd;

ReconstructionDecoder::ReconstructionDecoder(int64_t z_exclusive_dim,
                                             int64_t z_interactive_dim,
                                             int64_t channels, int64_t height,
                                             int64_t width, Rng& rng)
    : channels_(channels),
      height_(height),
      width_(width),
      dense_(z_exclusive_dim + z_interactive_dim, channels * height * width,
             rng, nn::Activation::kTanh) {
  RegisterSubmodule("dense", &dense_);
}

ag::Variable ReconstructionDecoder::Forward(
    const ag::Variable& z_exclusive, const ag::Variable& z_interactive) {
  ag::Variable z = ag::Concat({z_exclusive, z_interactive}, 1);
  ag::Variable flat = dense_.Forward(z);
  const int64_t batch = flat.value().dim(0);
  return ag::Reshape(flat,
                     tensor::Shape({batch, channels_, height_, width_}));
}

}  // namespace musenet::muse
