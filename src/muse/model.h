#ifndef MUSENET_MUSE_MODEL_H_
#define MUSENET_MUSE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/forecaster.h"
#include "eval/train_loop.h"
#include "muse/config.h"
#include "muse/decoders.h"
#include "muse/encoders.h"
#include "muse/gaussian.h"
#include "muse/resplus.h"
#include "nn/conv.h"
#include "nn/module.h"
#include "util/rng.h"

namespace musenet::muse {

/// Sub-series indices used throughout the model.
inline constexpr int kCloseness = 0;
inline constexpr int kPeriod = 1;
inline constexpr int kTrend = 2;
inline constexpr const char* kSubSeriesNames[3] = {"closeness", "period",
                                                   "trend"};

/// Unordered sub-series pairs in canonical order: (c,p), (c,t), (p,t).
inline constexpr int kPairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};
/// Complementary pair of each sub-series i (the pair not containing i):
/// c → (p,t), p → (c,t), t → (c,p) — used by the + KL[r‖d^{i,j}] pull terms.
inline constexpr int kComplementPair[3] = {2, 1, 0};

/// The MUSE-Net model (paper Section IV): multivariate disentanglement of
/// closeness/period/trend into exclusive representations Z^C/Z^P/Z^T and an
/// interactive representation Z^S, regularized by semantic-pushing and
/// semantic-pulling mutual-information bounds (Eqs. 26–30), with a ResPlus
/// spatial head producing the forecast.
class MuseNet : public nn::Module, public eval::Forecaster {
 public:
  MuseNet(MuseNetConfig config, uint64_t seed);

  /// All intermediate products of one forward pass; the loss and the analysis
  /// module both consume this.
  struct ForwardResult {
    autograd::Variable prediction;  ///< [B, 2, H, W] in [-1, 1].
    std::vector<ExclusiveEncoder::Output> exclusive;  ///< c, p, t.
    /// Multivariate mode: the single interactive output. Pairwise ablation:
    /// entry 0 = Z^{CP}, 1 = Z^{CT}, 2 = Z^{PT}.
    std::vector<InteractiveEncoder::Output> interactive;
    std::vector<DiagGaussian> simplex;  ///< g^c, g^p, g^t (multivariate only).
    std::vector<DiagGaussian> duplex;   ///< d^{cp}, d^{ct}, d^{pt}.
    std::vector<autograd::Variable> reconstruction;  ///< ĉ, p̂, t̂.
  };

  /// Runs the full network. `stochastic` enables reparameterization noise
  /// (training); evaluation uses the posterior means.
  ForwardResult Forward(const data::Batch& batch, bool stochastic);

  /// Scalar loss terms of Eq. (26) in minimization form, for logging.
  struct LossBreakdown {
    double total = 0.0;
    double kl_exclusive = 0.0;     ///< Σ_i KL[r(z^i|i)‖N(0,I)].
    double kl_interactive = 0.0;   ///< KL[r(z^s|·)‖N(0,I)].
    double reconstruction = 0.0;   ///< Σ_i MSE(î, i)  (−L̂_Push).
    double pull = 0.0;             ///< −L̂_Pull.
    double regression = 0.0;       ///< ‖X_n − Y_n‖² (mean).
  };

  /// Assembles the total minimization objective from a forward result.
  autograd::Variable ComputeLoss(const ForwardResult& result,
                                 const data::Batch& batch,
                                 LossBreakdown* breakdown);

  // --- eval::Forecaster ------------------------------------------------------

  std::string name() const override { return name_; }
  void Train(const data::TrafficDataset& dataset,
             const eval::TrainConfig& config) override;
  tensor::Tensor Predict(const data::Batch& batch) override;
  autograd::Variable PlanForward(const data::Batch& batch) override;

  /// As Train, but surfaces training faults (numeric blow-ups under
  /// FailurePolicy::kAbort, exhausted rollback budgets) as a Status instead
  /// of aborting, and reports loop counters. Used by tests and tools.
  Status TrainWithReport(const data::TrafficDataset& dataset,
                         const eval::TrainConfig& config,
                         eval::TrainReport* report);

  Status TrainWithStatus(const data::TrafficDataset& dataset,
                         const eval::TrainConfig& config) override {
    return TrainWithReport(dataset, config, nullptr);
  }

  /// Overrides the display name (used for ablation variants).
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Analysis hooks (RQ3–RQ5) ---------------------------------------------

  /// Spatially pooled representation vectors for a batch, without noise.
  struct Representations {
    tensor::Tensor z_closeness;   ///< [B, d] (global average over H·W).
    tensor::Tensor z_period;      ///< [B, d].
    tensor::Tensor z_trend;       ///< [B, d].
    tensor::Tensor z_interactive; ///< [B, d] (multivariate: Z^S; pairwise:
                                  ///  mean of the three pairwise maps).
  };
  Representations ExtractRepresentations(const data::Batch& batch);

  const MuseNetConfig& config() const { return config_; }

 private:
  autograd::Variable FuseAndPredict(const ForwardResult& result);

  MuseNetConfig config_;
  std::string name_ = "MUSE-Net";
  Rng rng_;  ///< Reparameterization noise + dropout-style randomness.

  std::vector<std::unique_ptr<FeatureExtractor>> features_;     // c, p, t.
  std::vector<std::unique_ptr<ExclusiveEncoder>> exclusive_;    // c, p, t.
  std::vector<std::unique_ptr<InteractiveEncoder>> interactive_;  // 1 or 3.
  std::vector<std::unique_ptr<ReconstructionDecoder>> decoders_;  // c, p, t.
  std::vector<std::unique_ptr<SimplexEncoder>> simplex_;   // multivariate.
  std::vector<std::unique_ptr<DuplexEncoder>> duplex_;     // multivariate.
  std::unique_ptr<ResPlusNet> spatial_head_;               // use_spatial.
  std::unique_ptr<nn::Conv2d> pointwise_head_;             // w/o-Spatial.
};

/// Constructs a MUSE-Net ablation variant with the Table VI display name.
std::unique_ptr<MuseNet> MakeMuseVariant(const MuseNetConfig& base,
                                         MuseVariant variant, uint64_t seed);

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_MODEL_H_
