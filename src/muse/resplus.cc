#include "muse/resplus.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace musenet::muse {

namespace ag = musenet::autograd;

ResPlusBlock::ResPlusBlock(int64_t channels, int64_t plus_channels,
                           int64_t height, int64_t width, Rng& rng)
    : channels_(channels),
      plus_channels_(plus_channels),
      height_(height),
      width_(width),
      conv1_(channels, channels, rng,
             nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}),
      conv2_(channels, channels, rng),
      plus_dense_(height * width, height * width, rng,
                  nn::Activation::kLeakyRelu) {
  MUSE_CHECK(plus_channels >= 0 && plus_channels <= channels);
  RegisterSubmodule("conv1", &conv1_);
  RegisterSubmodule("conv2", &conv2_);
  RegisterSubmodule("plus_dense", &plus_dense_);
}

ag::Variable ResPlusBlock::Forward(const ag::Variable& x) {
  MUSE_CHECK_EQ(x.value().dim(1), channels_);
  const int64_t batch = x.value().dim(0);
  ag::Variable residual = conv2_.Forward(conv1_.Forward(x));
  ag::Variable out = ag::Add(x, residual);

  if (plus_channels_ > 0) {
    // Long-range branch: shared dense over the flattened grid, applied to
    // the first plus_channels_ channels.
    ag::Variable plus_in = ag::Slice(x, 1, 0, plus_channels_);
    ag::Variable flat = ag::Reshape(
        plus_in, tensor::Shape({batch * plus_channels_, height_ * width_}));
    ag::Variable mixed = plus_dense_.Forward(flat);
    ag::Variable plus_out = ag::Reshape(
        mixed, tensor::Shape({batch, plus_channels_, height_, width_}));
    if (plus_channels_ < channels_) {
      ag::Variable zeros = ag::Constant(tensor::Tensor::Zeros(tensor::Shape(
          {batch, channels_ - plus_channels_, height_, width_})));
      plus_out = ag::Concat({plus_out, zeros}, 1);
    }
    out = ag::Add(out, plus_out);
  }
  return ag::LeakyRelu(out);
}

ResPlusNet::ResPlusNet(int64_t in_channels, int64_t hidden_channels,
                       int64_t num_blocks, int64_t plus_channels,
                       int64_t height, int64_t width, Rng& rng)
    : entry_(in_channels, hidden_channels, rng,
             nn::Conv2d::Options{.kernel = 1,
                                 .activation = nn::Activation::kLeakyRelu,
                                 .batch_norm = true}),
      exit_(hidden_channels, 2, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kTanh,
                                    .init_scale = 0.1f}) {
  RegisterSubmodule("entry", &entry_);
  for (int64_t b = 0; b < num_blocks; ++b) {
    blocks_.push_back(std::make_unique<ResPlusBlock>(
        hidden_channels, plus_channels, height, width, rng));
    RegisterSubmodule("block" + std::to_string(b), blocks_.back().get());
  }
  RegisterSubmodule("exit", &exit_);
}

ag::Variable ResPlusNet::Forward(const ag::Variable& fused) {
  ag::Variable y = entry_.Forward(fused);
  for (auto& block : blocks_) y = block->Forward(y);
  return exit_.Forward(y);
}

}  // namespace musenet::muse
