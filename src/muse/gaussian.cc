#include "muse/gaussian.h"

#include "util/check.h"

namespace musenet::muse {

namespace ag = musenet::autograd;

ag::Variable Reparameterize(const DiagGaussian& dist, Rng& rng,
                            bool stochastic) {
  if (!stochastic) return dist.mu;
  tensor::Tensor eps =
      tensor::Tensor::RandomNormal(dist.mu.value().shape(), rng);
  ag::Variable sigma = ag::Exp(ag::MulScalar(dist.logvar, 0.5f));
  // μ + σ ⊙ ε in one node/kernel (bit-identical to Add(μ, Mul(σ, ε))).
  return ag::FusedMulAdd(dist.mu, sigma, ag::Constant(std::move(eps)));
}

ag::Variable KlToStandard(const DiagGaussian& dist) {
  // ½(μ² + e^{logvar} − 1 − logvar), averaged over batch and dims.
  ag::Variable var = ag::Exp(dist.logvar);
  ag::Variable one =
      ag::Constant(tensor::Tensor::Ones(dist.mu.value().shape()));
  ag::Variable integrand = ag::Sub(
      ag::Add(ag::Square(dist.mu), var), ag::Add(one, dist.logvar));
  return ag::MulScalar(ag::MeanAll(integrand), 0.5f);
}

ag::Variable KlBetween(const DiagGaussian& p, const DiagGaussian& q) {
  MUSE_CHECK(p.mu.value().shape() == q.mu.value().shape())
      << "KlBetween shape mismatch";
  ag::Variable var_p = ag::Exp(p.logvar);
  ag::Variable var_q = ag::Exp(q.logvar);
  ag::Variable mean_diff_sq = ag::Square(ag::Sub(p.mu, q.mu));
  ag::Variable ratio = ag::Div(ag::Add(var_p, mean_diff_sq), var_q);
  ag::Variable one =
      ag::Constant(tensor::Tensor::Ones(p.mu.value().shape()));
  ag::Variable integrand = ag::Sub(
      ag::Add(ag::Sub(q.logvar, p.logvar), ratio), one);
  return ag::MulScalar(ag::MeanAll(integrand), 0.5f);
}

}  // namespace musenet::muse
