#include "muse/encoders.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace musenet::muse {

namespace ag = musenet::autograd;

GaussianHead::GaussianHead(int64_t in_features, int64_t dist_dim,
                           float logvar_clamp, Rng& rng)
    : dist_dim_(dist_dim),
      logvar_clamp_(logvar_clamp),
      dense_(in_features, 2 * dist_dim, rng) {
  MUSE_CHECK_GT(dist_dim, 0);
  RegisterSubmodule("dense", &dense_);
}

DiagGaussian GaussianHead::Forward(const ag::Variable& x) {
  ag::Variable out = dense_.Forward(x);  // [B, 2k]
  DiagGaussian dist;
  dist.mu = ag::Slice(out, 1, 0, dist_dim_);
  dist.logvar =
      ag::Clamp(ag::Slice(out, 1, dist_dim_, dist_dim_), -logvar_clamp_,
                logvar_clamp_);
  return dist;
}

FeatureExtractor::FeatureExtractor(int64_t in_channels, int64_t repr_dim,
                                   Rng& rng)
    : conv_(in_channels, repr_dim, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}) {
  RegisterSubmodule("conv", &conv_);
}

ag::Variable FeatureExtractor::Forward(const ag::Variable& x) {
  return conv_.Forward(x);
}

ExclusiveEncoder::ExclusiveEncoder(int64_t repr_dim, int64_t spatial,
                                   int64_t dist_dim, float logvar_clamp,
                                   Rng& rng)
    : conv_(repr_dim, repr_dim, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}),
      head_(repr_dim * spatial, dist_dim, logvar_clamp, rng) {
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("head", &head_);
}

ExclusiveEncoder::Output ExclusiveEncoder::Forward(
    const ag::Variable& features) {
  Output out;
  out.representation = conv_.Forward(features);
  out.distribution = head_.Forward(ag::Flatten2d(out.representation));
  return out;
}

InteractiveEncoder::InteractiveEncoder(int64_t num_inputs, int64_t repr_dim,
                                       int64_t spatial, int64_t dist_dim,
                                       float logvar_clamp, Rng& rng)
    : conv_(num_inputs * repr_dim, repr_dim, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}),
      head_(repr_dim * spatial, dist_dim, logvar_clamp, rng) {
  MUSE_CHECK_GE(num_inputs, 2);
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("head", &head_);
}

InteractiveEncoder::Output InteractiveEncoder::Forward(
    const ag::Variable& features) {
  Output out;
  out.representation = conv_.Forward(features);
  out.distribution = head_.Forward(ag::Flatten2d(out.representation));
  return out;
}

SimplexEncoder::SimplexEncoder(int64_t repr_dim, int64_t spatial,
                               int64_t dist_dim, float logvar_clamp, Rng& rng)
    : conv_(repr_dim, repr_dim, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}),
      head_(repr_dim * spatial, dist_dim, logvar_clamp, rng) {
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("head", &head_);
}

DiagGaussian SimplexEncoder::Forward(const ag::Variable& features) {
  return head_.Forward(ag::Flatten2d(conv_.Forward(features)));
}

DuplexEncoder::DuplexEncoder(int64_t repr_dim, int64_t spatial,
                             int64_t dist_dim, float logvar_clamp, Rng& rng)
    : conv_(2 * repr_dim, repr_dim, rng,
            nn::Conv2d::Options{.activation = nn::Activation::kLeakyRelu,
                                .batch_norm = true}),
      head_(repr_dim * spatial, dist_dim, logvar_clamp, rng) {
  RegisterSubmodule("conv", &conv_);
  RegisterSubmodule("head", &head_);
}

DiagGaussian DuplexEncoder::Forward(const ag::Variable& features) {
  return head_.Forward(ag::Flatten2d(conv_.Forward(features)));
}

}  // namespace musenet::muse
