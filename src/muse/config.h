#ifndef MUSENET_MUSE_CONFIG_H_
#define MUSENET_MUSE_CONFIG_H_

#include <cstdint>

#include "data/interception.h"

namespace musenet::muse {

/// Which interactive representation the model learns.
enum class InteractiveMode {
  /// One representation Z^S shared across all three sub-series — the paper's
  /// multivariate disentanglement.
  kMultivariate,
  /// Three pairwise representations Z^{CP}, Z^{CT}, Z^{PT} — the
  /// "w/o-MultiDisentangle" ablation (cross-variate disentanglement).
  kPairwise,
};

/// Hyper-parameters of MUSE-Net (paper Section IV-E defaults in comments).
struct MuseNetConfig {
  int64_t grid_h = 10;
  int64_t grid_w = 20;
  data::PeriodicitySpec periodicity;  ///< (L_c, L_p, L_t) = (3, 4, 4).

  int64_t repr_dim = 64;   ///< d: channels of Z^C/Z^P/Z^T/Z^S maps.
  int64_t dist_dim = 128;  ///< k: interactive μ/σ dimension; exclusive k/4.
  double lambda = 1.0;     ///< λ: push/pull trade-off (paper: 1).

  int64_t resplus_blocks = 2;    ///< Residual conv blocks in the spatial head.
  int64_t plus_channels = 2;     ///< Channels routed through the FC "plus" branch.

  // Ablation switches (Table VI).
  bool use_spatial = true;   ///< false = w/o-Spatial (no ResPlus network).
  bool use_pushing = true;   ///< false = w/o-SemanticPushing (drop Eq. 9).
  bool use_pulling = true;   ///< false = w/o-SemanticPulling (drop Eq. 16).
  InteractiveMode interactive_mode = InteractiveMode::kMultivariate;

  /// Range to which distribution log-variances are clamped for stability.
  float logvar_clamp = 6.0f;

  /// Weight of the disentanglement objective (KL + reconstruction + pull)
  /// relative to the regression loss. 1.0 reproduces Eq. (26) exactly; the
  /// default 0.25 is calibrated for the short single-core training budgets
  /// of this reproduction, where the full-weight auxiliary terms slow the
  /// regression path's convergence (see bench_ablation_design).
  double aux_weight = 0.25;

  /// Uses Eq. (29)'s + KL[r‖d^{ij}] term with the sign as printed in the
  /// paper (maximized ⇒ −KL in the minimized loss). That direction is
  /// unbounded below under joint optimization and diverges in practice; the
  /// default (false) uses the stable IIAE-style pulled direction. Kept as an
  /// option so bench_ablation_design can demonstrate the divergence.
  bool paper_pull_sign = false;

  int64_t exclusive_dist_dim() const { return dist_dim / 4; }
};

/// The five rows of the paper's ablation Table VI.
enum class MuseVariant {
  kFull,
  kWithoutSpatial,
  kWithoutMultiDisentangle,
  kWithoutSemanticPushing,
  kWithoutSemanticPulling,
};

/// Applies a variant's switches to a base configuration.
MuseNetConfig ApplyVariant(MuseNetConfig config, MuseVariant variant);

/// Display name as in Table VI.
const char* VariantName(MuseVariant variant);

}  // namespace musenet::muse

#endif  // MUSENET_MUSE_CONFIG_H_
