#include "muse/config.h"

#include "util/check.h"

namespace musenet::muse {

MuseNetConfig ApplyVariant(MuseNetConfig config, MuseVariant variant) {
  switch (variant) {
    case MuseVariant::kFull:
      break;
    case MuseVariant::kWithoutSpatial:
      config.use_spatial = false;
      break;
    case MuseVariant::kWithoutMultiDisentangle:
      config.interactive_mode = InteractiveMode::kPairwise;
      break;
    case MuseVariant::kWithoutSemanticPushing:
      config.use_pushing = false;
      break;
    case MuseVariant::kWithoutSemanticPulling:
      config.use_pulling = false;
      break;
  }
  return config;
}

const char* VariantName(MuseVariant variant) {
  switch (variant) {
    case MuseVariant::kFull:
      return "MUSE-Net";
    case MuseVariant::kWithoutSpatial:
      return "MUSE-Net-w/o-Spatial";
    case MuseVariant::kWithoutMultiDisentangle:
      return "MUSE-Net-w/o-MultiDisentangle";
    case MuseVariant::kWithoutSemanticPushing:
      return "MUSE-Net-w/o-SemanticPushing";
    case MuseVariant::kWithoutSemanticPulling:
      return "MUSE-Net-w/o-SemanticPulling";
  }
  MUSE_CHECK(false) << "unreachable variant";
  return "";
}

}  // namespace musenet::muse
