#include "muse/model.h"

#include <limits>

#include "autograd/ops.h"
#include "eval/training.h"
#include "optim/adam.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/shard_context.h"

namespace musenet::muse {

namespace ag = musenet::autograd;
namespace ts = musenet::tensor;

namespace {

/// Mean squared error as a differentiable scalar.
ag::Variable MseLoss(const ag::Variable& prediction,
                     const ag::Variable& target) {
  return ag::MeanAll(ag::Square(ag::Sub(prediction, target)));
}

/// For the pairwise ablation: the pair index whose duplex-style code feeds
/// sub-series i's reconstruction decoder (a pair that contains i).
constexpr int kReconPairFor[3] = {0 /*c→(c,p)*/, 2 /*p→(p,t)*/,
                                  1 /*t→(c,t)*/};

}  // namespace

MuseNet::MuseNet(MuseNetConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  // The reparameterization stream advances every stochastic forward pass;
  // registering it puts it in checkpoints, so resumed runs draw the same
  // noise.
  RegisterRng("reparam", &rng_);
  const int64_t spatial = config_.grid_h * config_.grid_w;
  const int64_t d = config_.repr_dim;
  const int64_t k = config_.dist_dim;
  const int64_t k_excl = config_.exclusive_dist_dim();
  MUSE_CHECK_GT(k_excl, 0) << "dist_dim must be >= 4";
  const float clamp = config_.logvar_clamp;

  const int64_t channels[3] = {config_.periodicity.ClosenessChannels(),
                               config_.periodicity.PeriodChannels(),
                               config_.periodicity.TrendChannels()};

  Rng init = rng_.Fork(0xA11CE);
  for (int i = 0; i < 3; ++i) {
    features_.push_back(
        std::make_unique<FeatureExtractor>(channels[i], d, init));
    RegisterSubmodule(std::string("feature_") + kSubSeriesNames[i],
                      features_.back().get());
    exclusive_.push_back(std::make_unique<ExclusiveEncoder>(
        d, spatial, k_excl, clamp, init));
    RegisterSubmodule(std::string("exclusive_") + kSubSeriesNames[i],
                      exclusive_.back().get());
  }

  if (config_.interactive_mode == InteractiveMode::kMultivariate) {
    interactive_.push_back(std::make_unique<InteractiveEncoder>(
        3, d, spatial, k, clamp, init));
    RegisterSubmodule("interactive", interactive_.back().get());
  } else {
    for (int pair = 0; pair < 3; ++pair) {
      interactive_.push_back(std::make_unique<InteractiveEncoder>(
          2, d, spatial, k, clamp, init));
      RegisterSubmodule(
          std::string("interactive_pair") + std::to_string(pair),
          interactive_.back().get());
    }
  }

  for (int i = 0; i < 3; ++i) {
    decoders_.push_back(std::make_unique<ReconstructionDecoder>(
        k_excl, k, channels[i], config_.grid_h, config_.grid_w, init));
    RegisterSubmodule(std::string("decoder_") + kSubSeriesNames[i],
                      decoders_.back().get());
  }

  if (config_.interactive_mode == InteractiveMode::kMultivariate &&
      config_.use_pulling) {
    for (int i = 0; i < 3; ++i) {
      simplex_.push_back(
          std::make_unique<SimplexEncoder>(d, spatial, k, clamp, init));
      RegisterSubmodule(std::string("simplex_") + kSubSeriesNames[i],
                        simplex_.back().get());
    }
    for (int pair = 0; pair < 3; ++pair) {
      duplex_.push_back(
          std::make_unique<DuplexEncoder>(d, spatial, k, clamp, init));
      RegisterSubmodule(std::string("duplex_pair") + std::to_string(pair),
                        duplex_.back().get());
    }
  }

  const int64_t fused_channels =
      config_.interactive_mode == InteractiveMode::kMultivariate ? 4 * d
                                                                 : 6 * d;
  if (config_.use_spatial) {
    spatial_head_ = std::make_unique<ResPlusNet>(
        fused_channels, d, config_.resplus_blocks,
        std::min(config_.plus_channels, d), config_.grid_h, config_.grid_w,
        init);
    RegisterSubmodule("resplus", spatial_head_.get());
  } else {
    pointwise_head_ = std::make_unique<nn::Conv2d>(
        fused_channels, 2, init,
        nn::Conv2d::Options{.kernel = 1,
                            .activation = nn::Activation::kTanh,
                            .init_scale = 0.1f});
    RegisterSubmodule("pointwise_head", pointwise_head_.get());
  }
}

MuseNet::ForwardResult MuseNet::Forward(const data::Batch& batch,
                                        bool stochastic) {
  ForwardResult result;

  const ag::Variable inputs[3] = {ag::Constant(batch.closeness),
                                  ag::Constant(batch.period),
                                  ag::Constant(batch.trend)};
  std::vector<ag::Variable> feats;
  feats.reserve(3);
  for (int i = 0; i < 3; ++i) {
    feats.push_back(features_[static_cast<size_t>(i)]->Forward(inputs[i]));
    result.exclusive.push_back(
        exclusive_[static_cast<size_t>(i)]->Forward(feats.back()));
  }

  if (config_.interactive_mode == InteractiveMode::kMultivariate) {
    result.interactive.push_back(interactive_[0]->Forward(
        ag::Concat({feats[0], feats[1], feats[2]}, 1)));
  } else {
    for (int pair = 0; pair < 3; ++pair) {
      result.interactive.push_back(
          interactive_[static_cast<size_t>(pair)]->Forward(ag::Concat(
              {feats[static_cast<size_t>(kPairs[pair][0])],
               feats[static_cast<size_t>(kPairs[pair][1])]},
              1)));
    }
  }

  // Reparameterized samples feed the reconstruction decoders. The stream
  // resolves through ShardRng: under a data-parallel training shard it is
  // the shard's pre-forked child, everywhere else it is rng_ itself.
  Rng& reparam_rng = util::ShardRng(rng_);
  std::vector<ag::Variable> z_exclusive;
  for (int i = 0; i < 3; ++i) {
    z_exclusive.push_back(Reparameterize(
        result.exclusive[static_cast<size_t>(i)].distribution, reparam_rng,
        stochastic));
  }
  std::vector<ag::Variable> z_interactive;
  for (const auto& inter : result.interactive) {
    z_interactive.push_back(
        Reparameterize(inter.distribution, reparam_rng, stochastic));
  }

  for (int i = 0; i < 3; ++i) {
    const ag::Variable& z_s =
        config_.interactive_mode == InteractiveMode::kMultivariate
            ? z_interactive[0]
            : z_interactive[static_cast<size_t>(kReconPairFor[i])];
    result.reconstruction.push_back(
        decoders_[static_cast<size_t>(i)]->Forward(z_exclusive[static_cast<size_t>(i)], z_s));
  }

  // Simplex/duplex variational distributions (semantic-pulling machinery).
  if (!simplex_.empty()) {
    for (int i = 0; i < 3; ++i) {
      result.simplex.push_back(
          simplex_[static_cast<size_t>(i)]->Forward(feats[static_cast<size_t>(i)]));
    }
    for (int pair = 0; pair < 3; ++pair) {
      result.duplex.push_back(
          duplex_[static_cast<size_t>(pair)]->Forward(ag::Concat(
              {feats[static_cast<size_t>(kPairs[pair][0])],
               feats[static_cast<size_t>(kPairs[pair][1])]},
              1)));
    }
  }

  result.prediction = FuseAndPredict(result);
  return result;
}

ag::Variable MuseNet::FuseAndPredict(const ForwardResult& result) {
  std::vector<ag::Variable> maps;
  for (const auto& excl : result.exclusive) {
    maps.push_back(excl.representation);
  }
  for (const auto& inter : result.interactive) {
    maps.push_back(inter.representation);
  }
  ag::Variable fused = ag::Concat(maps, 1);
  if (config_.use_spatial) return spatial_head_->Forward(fused);
  return pointwise_head_->Forward(fused);
}

ag::Variable MuseNet::ComputeLoss(const ForwardResult& result,
                                  const data::Batch& batch,
                                  LossBreakdown* breakdown) {
  const double lambda = config_.lambda;
  // Dropping the semantic-pushing term (Eq. 9) removes its λ-weighted share
  // of the merged coefficients in Eqs. (27)–(28).
  const float push_coeff =
      static_cast<float>(config_.use_pushing ? 1.0 + lambda : 1.0);

  // Eq. (27): disentanglement KL terms.
  ag::Variable kl_excl = KlToStandard(result.exclusive[0].distribution);
  for (int i = 1; i < 3; ++i) {
    kl_excl = ag::Add(
        kl_excl, KlToStandard(result.exclusive[static_cast<size_t>(i)].distribution));
  }
  ag::Variable kl_inter = KlToStandard(result.interactive[0].distribution);
  for (size_t j = 1; j < result.interactive.size(); ++j) {
    kl_inter =
        ag::Add(kl_inter, KlToStandard(result.interactive[j].distribution));
  }

  // Eq. (28): reconstruction (Gaussian log-likelihood ≡ −MSE).
  const ag::Variable recon_targets[3] = {ag::Constant(batch.closeness),
                                         ag::Constant(batch.period),
                                         ag::Constant(batch.trend)};
  ag::Variable recon = MseLoss(result.reconstruction[0], recon_targets[0]);
  for (int i = 1; i < 3; ++i) {
    recon = ag::Add(recon, MseLoss(result.reconstruction[static_cast<size_t>(i)],
                                   recon_targets[i]));
  }

  // Eq. (29): semantic-pulling — Σ_{i≠j} KL[d^{ij}‖g^i] − Σ KL[r‖d^{ij}].
  ag::Variable pull;
  const bool has_pull = config_.use_pulling && !result.simplex.empty();
  if (has_pull) {
    for (int pair = 0; pair < 3; ++pair) {
      const auto& d = result.duplex[static_cast<size_t>(pair)];
      // KL[d^{ij} ‖ g^i] + KL[d^{ij} ‖ g^j].
      ag::Variable term = ag::Add(
          KlBetween(d, result.simplex[static_cast<size_t>(kPairs[pair][0])]),
          KlBetween(d, result.simplex[static_cast<size_t>(kPairs[pair][1])]));
      pull = pull.defined() ? ag::Add(pull, term) : term;
    }
    for (int i = 0; i < 3; ++i) {
      // KL[r(z^s|c,p,t) ‖ d^{j,k}] where (j,k) is i's complementary pair.
      //
      // Note on the sign: Eq. (29) as printed carries this term with a minus
      // in the minimized loss (the lower bound of +I(C;Z^S|P,T) in Eq. 23),
      // which is unbounded below under joint optimization — d^{ij} can shrink
      // its variance and r can drift to make −KL diverge (we observed exactly
      // this). The derivation follows IIAE/VIIM [50], whose implemented
      // objective *pulls* the joint interactive posterior toward the
      // variational marginals, i.e. minimizes this KL. We implement that
      // stable direction; see DESIGN.md "Substitutions".
      ag::Variable term =
          KlBetween(result.interactive[0].distribution,
                    result.duplex[static_cast<size_t>(kComplementPair[i])]);
      pull = config_.paper_pull_sign ? ag::Sub(pull, term)
                                     : ag::Add(pull, term);
    }
  }

  // Eq. (30): regression.
  ag::Variable reg = MseLoss(result.prediction, ag::Constant(batch.target));

  const float aux = static_cast<float>(config_.aux_weight);
  ag::Variable total =
      ag::Add(ag::MulScalar(ag::Add(ag::MulScalar(kl_excl, push_coeff),
                                    ag::Add(kl_inter,
                                            ag::MulScalar(recon, push_coeff))),
                            aux),
              reg);
  if (has_pull) {
    total = ag::Add(
        total, ag::MulScalar(pull, aux * static_cast<float>(lambda)));
  }

  if (breakdown != nullptr) {
    breakdown->total = total.value().scalar();
    breakdown->kl_exclusive = kl_excl.value().scalar();
    breakdown->kl_interactive = kl_inter.value().scalar();
    breakdown->reconstruction = recon.value().scalar();
    breakdown->pull = has_pull ? pull.value().scalar() : 0.0;
    breakdown->regression = reg.value().scalar();
  }
  return total;
}

Status MuseNet::TrainWithReport(const data::TrafficDataset& dataset,
                                const eval::TrainConfig& config,
                                eval::TrainReport* report) {
  eval::TrainDriver driver;
  driver.module = this;
  driver.forecaster = this;
  driver.shuffle_salt = 0x5EEDF00DULL;  // Historical shuffle stream.
  driver.batch_loss = [this](const data::Batch& batch) {
    ForwardResult forward = Forward(batch, /*stochastic=*/true);
    LossBreakdown parts;
    return ComputeLoss(forward, batch, &parts);
  };
  return eval::RunTraining(driver, dataset, config, report);
}

void MuseNet::Train(const data::TrafficDataset& dataset,
                    const eval::TrainConfig& config) {
  const Status status = TrainWithReport(dataset, config, nullptr);
  MUSE_CHECK(status.ok()) << status.ToString();
}

ts::Tensor MuseNet::Predict(const data::Batch& batch) {
  ForwardResult forward = Forward(batch, /*stochastic=*/false);
  return forward.prediction.value();
}

autograd::Variable MuseNet::PlanForward(const data::Batch& batch) {
  // The planner walks back from `prediction` only, so the reconstruction
  // decoders and regularizer heads — which the prediction does not read —
  // fall out of the plan by reachability.
  return Forward(batch, /*stochastic=*/false).prediction;
}

MuseNet::Representations MuseNet::ExtractRepresentations(
    const data::Batch& batch) {
  ForwardResult forward = Forward(batch, /*stochastic=*/false);
  auto pool = [](const ag::Variable& map) {
    // [B, d, H, W] → [B, d]: global average over space.
    ts::Tensor pooled = ts::Mean(ts::Mean(map.value(), 3), 2);
    return pooled;
  };
  Representations reps;
  reps.z_closeness = pool(forward.exclusive[kCloseness].representation);
  reps.z_period = pool(forward.exclusive[kPeriod].representation);
  reps.z_trend = pool(forward.exclusive[kTrend].representation);
  if (config_.interactive_mode == InteractiveMode::kMultivariate) {
    reps.z_interactive = pool(forward.interactive[0].representation);
  } else {
    ts::Tensor sum = pool(forward.interactive[0].representation);
    for (size_t j = 1; j < forward.interactive.size(); ++j) {
      sum = ts::Add(sum, pool(forward.interactive[j].representation));
    }
    reps.z_interactive = ts::MulScalar(
        sum, 1.0f / static_cast<float>(forward.interactive.size()));
  }
  return reps;
}

std::unique_ptr<MuseNet> MakeMuseVariant(const MuseNetConfig& base,
                                         MuseVariant variant, uint64_t seed) {
  auto model =
      std::make_unique<MuseNet>(ApplyVariant(base, variant), seed);
  model->set_name(VariantName(variant));
  return model;
}

}  // namespace musenet::muse
