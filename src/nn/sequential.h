#ifndef MUSENET_NN_SEQUENTIAL_H_
#define MUSENET_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace musenet::nn {

/// Chain of UnaryModules applied in order.
///
/// Layers are added with `Emplace<T>(ctor args...)`, which constructs the
/// layer in place, registers it for parameter traversal and returns a
/// reference:
///
///   Sequential stack;
///   stack.Emplace<Conv2d>(8, 16, rng);
///   stack.Emplace<Dense>(64, 10, rng);
class Sequential : public UnaryModule {
 public:
  Sequential() = default;

  template <typename T, typename... Args>
  T& Emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    RegisterSubmodule("layer" + std::to_string(layers_.size()), layer.get());
    layers_.push_back(std::move(layer));
    return ref;
  }

  autograd::Variable Forward(const autograd::Variable& x) override {
    autograd::Variable y = x;
    for (auto& layer : layers_) y = layer->Forward(y);
    return y;
  }

  size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }

 private:
  std::vector<std::unique_ptr<UnaryModule>> layers_;
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_SEQUENTIAL_H_
