#include "nn/module.h"

#include <set>

#include "util/check.h"

namespace musenet::nn {

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  CollectNamedParameters("", &out);
  return out;
}

void Module::CollectNamedParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamedParameters(prefix + name + ".", out);
  }
}

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (auto& [name, var] : NamedParameters()) {
    (void)name;
    out.push_back(var);
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& var : Parameters()) var.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& var : Parameters()) total += var.value().num_elements();
  return total;
}

void Module::CollectNamedBuffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, tensor::Tensor*>>* out) const {
  for (const auto& [name, buffer] : buffers_) {
    out->emplace_back(prefix + name, buffer);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamedBuffers(prefix + name + ".", out);
  }
}

std::map<std::string, tensor::Tensor> Module::StateDict() const {
  std::map<std::string, tensor::Tensor> state;
  for (const auto& [name, var] : NamedParameters()) {
    const bool inserted = state.emplace(name, var.value()).second;
    MUSE_CHECK(inserted) << "duplicate parameter name " << name;
  }
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers;
  CollectNamedBuffers("", &buffers);
  for (const auto& [name, buffer] : buffers) {
    const bool inserted = state.emplace(name, *buffer).second;
    MUSE_CHECK(inserted) << "duplicate buffer name " << name;
  }
  return state;
}

namespace {

/// Renders up to `cap` names as "a, b, c (+2 more)" for mismatch messages.
std::string JoinNames(const std::vector<std::string>& names, size_t cap = 8) {
  std::string out;
  for (size_t i = 0; i < names.size() && i < cap; ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  if (names.size() > cap) {
    out += " (+" + std::to_string(names.size() - cap) + " more)";
  }
  return out;
}

}  // namespace

Status Module::LoadStateDict(
    const std::map<std::string, tensor::Tensor>& state) {
  auto named = NamedParameters();
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers;
  CollectNamedBuffers("", &buffers);

  // Validate everything before mutating anything: enumerate every missing,
  // extra and shape-mismatched name so one error message fully explains a
  // checkpoint/model mismatch, and a failed load leaves the model untouched.
  std::vector<std::string> missing, extra, mismatched;
  std::set<std::string> expected;
  auto check_entry = [&](const std::string& name,
                         const tensor::Shape& model_shape) {
    expected.insert(name);
    auto it = state.find(name);
    if (it == state.end()) {
      missing.push_back(name);
    } else if (it->second.shape() != model_shape) {
      mismatched.push_back(name + " (checkpoint " +
                           it->second.shape().ToString() + " vs model " +
                           model_shape.ToString() + ")");
    }
  };
  for (const auto& [name, var] : named) check_entry(name, var.value().shape());
  for (const auto& [name, buffer] : buffers) check_entry(name, buffer->shape());
  for (const auto& [name, tensor] : state) {
    (void)tensor;
    if (expected.find(name) == expected.end()) extra.push_back(name);
  }

  if (!missing.empty() || !extra.empty() || !mismatched.empty()) {
    std::string msg = "state dict does not match model (" +
                      std::to_string(state.size()) + " entries vs " +
                      std::to_string(expected.size()) + " expected):";
    if (!missing.empty()) {
      msg += " missing [" + JoinNames(missing) + "];";
    }
    if (!extra.empty()) {
      msg += " extra [" + JoinNames(extra) + "];";
    }
    if (!mismatched.empty()) {
      msg += " shape mismatch [" + JoinNames(mismatched) + "];";
    }
    msg.pop_back();  // Trailing ';'.
    return Status::InvalidArgument(std::move(msg));
  }

  for (auto& [name, var] : named) {
    var.mutable_value() = state.find(name)->second;
  }
  for (auto& [name, buffer] : buffers) {
    *buffer = state.find(name)->second;
  }
  return Status::OK();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) {
    (void)name;
    child->SetTraining(training);
  }
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable var(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  return var;
}

void Module::RegisterSubmodule(std::string name, Module* child) {
  MUSE_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::RegisterBuffer(std::string name, tensor::Tensor* buffer) {
  MUSE_CHECK(buffer != nullptr);
  buffers_.emplace_back(std::move(name), buffer);
}

void Module::RegisterRng(std::string name, Rng* rng) {
  MUSE_CHECK(rng != nullptr);
  rngs_.emplace_back(std::move(name), rng);
}

void Module::CollectNamedRngs(
    const std::string& prefix,
    std::vector<std::pair<std::string, Rng*>>* out) const {
  for (const auto& [name, rng] : rngs_) {
    out->emplace_back(prefix + name, rng);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamedRngs(prefix + name + ".", out);
  }
}

std::vector<std::pair<std::string, Rng*>> Module::NamedRngs() const {
  std::vector<std::pair<std::string, Rng*>> out;
  CollectNamedRngs("", &out);
  return out;
}

}  // namespace musenet::nn
