#include "nn/module.h"

#include "util/check.h"

namespace musenet::nn {

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  CollectNamedParameters("", &out);
  return out;
}

void Module::CollectNamedParameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, var] : params_) {
    out->emplace_back(prefix + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamedParameters(prefix + name + ".", out);
  }
}

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (auto& [name, var] : NamedParameters()) {
    (void)name;
    out.push_back(var);
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& var : Parameters()) var.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& var : Parameters()) total += var.value().num_elements();
  return total;
}

void Module::CollectNamedBuffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, tensor::Tensor*>>* out) const {
  for (const auto& [name, buffer] : buffers_) {
    out->emplace_back(prefix + name, buffer);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamedBuffers(prefix + name + ".", out);
  }
}

std::map<std::string, tensor::Tensor> Module::StateDict() const {
  std::map<std::string, tensor::Tensor> state;
  for (const auto& [name, var] : NamedParameters()) {
    const bool inserted = state.emplace(name, var.value()).second;
    MUSE_CHECK(inserted) << "duplicate parameter name " << name;
  }
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers;
  CollectNamedBuffers("", &buffers);
  for (const auto& [name, buffer] : buffers) {
    const bool inserted = state.emplace(name, *buffer).second;
    MUSE_CHECK(inserted) << "duplicate buffer name " << name;
  }
  return state;
}

Status Module::LoadStateDict(
    const std::map<std::string, tensor::Tensor>& state) {
  auto named = NamedParameters();
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers;
  CollectNamedBuffers("", &buffers);
  if (state.size() != named.size() + buffers.size()) {
    return Status::InvalidArgument(
        "state dict has " + std::to_string(state.size()) +
        " entries, model has " +
        std::to_string(named.size() + buffers.size()));
  }
  for (auto& [name, var] : named) {
    auto it = state.find(name);
    if (it == state.end()) {
      return Status::NotFound("missing parameter " + name);
    }
    if (it->second.shape() != var.value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          it->second.shape().ToString() + " vs model " +
          var.value().shape().ToString());
    }
    var.mutable_value() = it->second;
  }
  for (auto& [name, buffer] : buffers) {
    auto it = state.find(name);
    if (it == state.end()) {
      return Status::NotFound("missing buffer " + name);
    }
    if (it->second.shape() != buffer->shape()) {
      return Status::InvalidArgument("shape mismatch for buffer " + name);
    }
    *buffer = it->second;
  }
  return Status::OK();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) {
    (void)name;
    child->SetTraining(training);
  }
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable var(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), var);
  return var;
}

void Module::RegisterSubmodule(std::string name, Module* child) {
  MUSE_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::RegisterBuffer(std::string name, tensor::Tensor* buffer) {
  MUSE_CHECK(buffer != nullptr);
  buffers_.emplace_back(std::move(name), buffer);
}

}  // namespace musenet::nn
