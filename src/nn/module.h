#ifndef MUSENET_NN_MODULE_H_
#define MUSENET_NN_MODULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "util/rng.h"
#include "util/status.h"

namespace musenet::nn {

/// Base class for neural-network building blocks.
///
/// A Module owns trainable parameters (registered in the constructor via
/// RegisterParameter) and may contain sub-modules (data members registered
/// via RegisterSubmodule; the parent does not own them — they are ordinary
/// members whose lifetime the parent already controls). Parameter traversal,
/// zero-grad, train/eval mode and state-dict (de)serialization all recurse
/// through the registration lists.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  // Registration stores `this`-relative pointers, so modules are not
  // copyable or movable.
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first, with dotted path names
  /// ("encoder.conv1.weight").
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// All trainable parameters, depth-first.
  std::vector<autograd::Variable> Parameters() const;

  /// Clears gradient accumulators of every parameter.
  void ZeroGrad();

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

  /// Copies every parameter and buffer tensor into a name→tensor map
  /// (checkpointing). Buffers (e.g. BatchNorm running statistics) are
  /// non-trainable state that must travel with the weights.
  std::map<std::string, tensor::Tensor> StateDict() const;

  /// Loads parameter and buffer tensors by name. Every entry must be present
  /// with a matching shape; extra entries in `state` are an error. On
  /// failure the Status message enumerates exactly which names are missing,
  /// extra, or shape-mismatched (with both shapes), so a checkpoint/model
  /// mismatch is diagnosable from the error alone. The model is only
  /// modified when validation passes — a failed load never leaves it half
  /// loaded.
  Status LoadStateDict(const std::map<std::string, tensor::Tensor>& state);

  /// RNG streams that advance while the model trains (reparameterization
  /// noise, augmentation masks), with dotted path names, depth-first. The
  /// training runtime checkpoints these alongside the weights so a resumed
  /// run replays the exact noise sequence of an uninterrupted one.
  std::vector<std::pair<std::string, Rng*>> NamedRngs() const;

  /// Train/eval mode (affects Dropout); recurses into sub-modules.
  void SetTraining(bool training);
  bool training() const { return training_; }

 protected:
  /// Creates and registers a trainable parameter initialized to `init`.
  autograd::Variable RegisterParameter(std::string name, tensor::Tensor init);

  /// Registers a child for recursive traversal. `child` must outlive `this`
  /// (it is normally a data member).
  void RegisterSubmodule(std::string name, Module* child);

  /// Registers non-trainable state included in StateDict (e.g. running
  /// statistics). `buffer` must outlive `this` (normally a data member).
  void RegisterBuffer(std::string name, tensor::Tensor* buffer);

  /// Registers an RNG stream consumed during training (surfaced by
  /// NamedRngs for checkpointing). `rng` must outlive `this` (normally a
  /// data member). Init-only RNGs, fully drained in the constructor, need
  /// not be registered.
  void RegisterRng(std::string name, Rng* rng);

 private:
  void CollectNamedParameters(
      const std::string& prefix,
      std::vector<std::pair<std::string, autograd::Variable>>* out) const;
  void CollectNamedBuffers(
      const std::string& prefix,
      std::vector<std::pair<std::string, tensor::Tensor*>>* out) const;
  void CollectNamedRngs(const std::string& prefix,
                        std::vector<std::pair<std::string, Rng*>>* out) const;

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, tensor::Tensor*>> buffers_;
  std::vector<std::pair<std::string, Rng*>> rngs_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

/// A module with the common one-input / one-output forward signature, so
/// heterogeneous layers can be chained by Sequential.
class UnaryModule : public Module {
 public:
  virtual autograd::Variable Forward(const autograd::Variable& x) = 0;
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_MODULE_H_
