#ifndef MUSENET_NN_INIT_H_
#define MUSENET_NN_INIT_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace musenet::nn {

/// Glorot/Xavier uniform initialization: U(−a, a) with
/// a = sqrt(6 / (fan_in + fan_out)). Suits tanh/sigmoid layers.
tensor::Tensor GlorotUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng& rng);

/// He/Kaiming normal initialization: N(0, 2 / fan_in). Suits ReLU layers.
tensor::Tensor HeNormal(tensor::Shape shape, int64_t fan_in, Rng& rng);

/// Fan-in/out of a dense weight [in, out].
void DenseFans(int64_t in, int64_t out, int64_t* fan_in, int64_t* fan_out);

/// Fan-in/out of a conv weight [cout, cin, kh, kw].
void ConvFans(int64_t cout, int64_t cin, int64_t kh, int64_t kw,
              int64_t* fan_in, int64_t* fan_out);

}  // namespace musenet::nn

#endif  // MUSENET_NN_INIT_H_
