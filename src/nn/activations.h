#ifndef MUSENET_NN_ACTIVATIONS_H_
#define MUSENET_NN_ACTIVATIONS_H_

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace musenet::nn {

/// Pointwise nonlinearity selector for layers with a fused activation.
enum class Activation {
  kNone,
  kRelu,
  kLeakyRelu,  ///< Negative slope 0.1.
  kTanh,
  kSigmoid,
  kSoftplus,
};

/// Applies the selected activation (kNone returns `x` unchanged).
autograd::Variable ApplyActivation(const autograd::Variable& x,
                                   Activation activation);

/// Parses "none"/"relu"/"tanh"/"sigmoid"/"softplus"; aborts on other input.
Activation ActivationFromString(const std::string& name);

}  // namespace musenet::nn

#endif  // MUSENET_NN_ACTIVATIONS_H_
