#ifndef MUSENET_NN_ACTIVATIONS_H_
#define MUSENET_NN_ACTIVATIONS_H_

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace musenet::nn {

/// Pointwise nonlinearity selector for layers with a fused activation.
enum class Activation {
  kNone,
  kRelu,
  kLeakyRelu,  ///< Negative slope 0.1.
  kTanh,
  kSigmoid,
  kSoftplus,
};

/// Applies the selected activation (kNone returns `x` unchanged).
autograd::Variable ApplyActivation(const autograd::Variable& x,
                                   Activation activation);

/// Parses "none"/"relu"/"tanh"/"sigmoid"/"softplus"; aborts on other input.
Activation ActivationFromString(const std::string& name);

/// Maps `activation` onto the fused bias+activation kernel's selector when it
/// has one. Returns false for softplus, whose derivative needs the
/// pre-activation and therefore stays on the unfused path.
bool FusableActKind(Activation activation, tensor::ActKind* kind);

}  // namespace musenet::nn

#endif  // MUSENET_NN_ACTIVATIONS_H_
