#ifndef MUSENET_NN_LSTM_H_
#define MUSENET_NN_LSTM_H_

#include <utility>

#include "nn/module.h"
#include "util/rng.h"

namespace musenet::nn {

/// Long Short-Term Memory cell (Hochreiter & Schmidhuber, 1997) — the other
/// classic recurrent unit of the paper's related-work section (LSTM-based
/// forecasters [8]). Provided alongside GruCell for substrate completeness.
///
/// One step, with x:[B,in], h:[B,H], c:[B,H]:
///   i = σ(x W_i + h U_i + b_i)         (input gate)
///   f = σ(x W_f + h U_f + b_f)         (forget gate)
///   g = tanh(x W_g + h U_g + b_g)      (candidate)
///   o = σ(x W_o + h U_o + b_o)         (output gate)
///   c' = f ⊙ c + i ⊙ g
///   h' = o ⊙ tanh(c')
/// Gate weights are packed as W:[in,4H], U:[H,4H], b:[4H] in order
/// (i, f, g, o). The forget-gate bias is initialized to 1 (standard trick
/// so memories survive early training).
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    autograd::Variable h;  ///< Hidden state [B, H].
    autograd::Variable c;  ///< Cell state [B, H].
  };

  /// Advances the recurrence by one step.
  State Step(const autograd::Variable& x, const State& state);

  /// Zero initial state for a batch.
  State InitialState(int64_t batch) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  autograd::Variable w_;  ///< [in, 4H].
  autograd::Variable u_;  ///< [H, 4H].
  autograd::Variable b_;  ///< [4H].
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_LSTM_H_
