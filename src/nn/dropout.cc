#include "nn/dropout.h"

#include "autograd/ops.h"
#include "util/check.h"
#include "util/shard_context.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

Dropout::Dropout(double rate, Rng* rng) : rate_(rate), rng_(rng) {
  MUSE_CHECK(rate >= 0.0 && rate < 1.0) << "dropout rate " << rate;
  MUSE_CHECK(rng != nullptr);
}

ag::Variable Dropout::Forward(const ag::Variable& x) {
  if (!training() || rate_ == 0.0) return x;
  tensor::Tensor mask(x.value().shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* pm = mask.mutable_data();
  const int64_t n = mask.num_elements();
  Rng& rng = util::ShardRng(*rng_);  // Shard-local under data parallelism.
  for (int64_t i = 0; i < n; ++i) {
    pm[i] = rng.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  return ag::Mul(x, ag::Constant(std::move(mask)));
}

}  // namespace musenet::nn
