#ifndef MUSENET_NN_BATCH_NORM_H_
#define MUSENET_NN_BATCH_NORM_H_

#include "nn/module.h"

namespace musenet::nn {

/// Batch normalization over [B, C, H, W] inputs, per channel (Ioffe &
/// Szegedy 2015). DeepSTN+ — and therefore MUSE-Net's spatial head — relies
/// on BN to keep activations centred; without it the tanh prediction head
/// saturates on the heavily skewed [-1,1]-scaled flow targets.
///
/// Training mode normalizes with batch statistics (differentiable through
/// mean/var) and updates running statistics; eval mode uses the running
/// statistics as constants. Running stats are registered as buffers, so they
/// travel with StateDict checkpoints.
class BatchNorm2d : public UnaryModule {
 public:
  explicit BatchNorm2d(int64_t channels, double momentum = 0.1,
                       float epsilon = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) override;

  int64_t channels() const { return channels_; }
  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

 private:
  int64_t channels_;
  double momentum_;
  float epsilon_;
  autograd::Variable gamma_;     ///< [1, C, 1, 1], ones.
  autograd::Variable beta_;      ///< [1, C, 1, 1], zeros.
  tensor::Tensor running_mean_;  ///< [1, C, 1, 1] buffer.
  tensor::Tensor running_var_;   ///< [1, C, 1, 1] buffer, starts at 1.
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_BATCH_NORM_H_
