#include "nn/lstm.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  MUSE_CHECK_GT(input_size, 0);
  MUSE_CHECK_GT(hidden_size, 0);
  w_ = RegisterParameter(
      "w", GlorotUniform(tensor::Shape({input_size, 4 * hidden_size}),
                         input_size, hidden_size, rng));
  u_ = RegisterParameter(
      "u", GlorotUniform(tensor::Shape({hidden_size, 4 * hidden_size}),
                         hidden_size, hidden_size, rng));
  // Forget-gate bias (block 1) starts at 1 so the cell initially remembers.
  tensor::Tensor bias = tensor::Tensor::Zeros(
      tensor::Shape({4 * hidden_size}));
  for (int64_t j = hidden_size; j < 2 * hidden_size; ++j) {
    bias.flat(j) = 1.0f;
  }
  b_ = RegisterParameter("b", std::move(bias));
}

LstmCell::State LstmCell::Step(const ag::Variable& x, const State& state) {
  MUSE_CHECK_EQ(x.value().dim(1), input_size_);
  MUSE_CHECK_EQ(state.h.value().dim(1), hidden_size_);
  const int64_t hs = hidden_size_;

  ag::Variable gates =
      ag::Add(ag::Add(ag::MatMul(x, w_), ag::MatMul(state.h, u_)), b_);

  ag::Variable i = ag::Sigmoid(ag::Slice(gates, 1, 0, hs));
  ag::Variable f = ag::Sigmoid(ag::Slice(gates, 1, hs, hs));
  ag::Variable g = ag::Tanh(ag::Slice(gates, 1, 2 * hs, hs));
  ag::Variable o = ag::Sigmoid(ag::Slice(gates, 1, 3 * hs, hs));

  State next;
  next.c = ag::Add(ag::Mul(f, state.c), ag::Mul(i, g));
  next.h = ag::Mul(o, ag::Tanh(next.c));
  return next;
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  State state;
  state.h = ag::Constant(
      tensor::Tensor::Zeros(tensor::Shape({batch, hidden_size_})));
  state.c = ag::Constant(
      tensor::Tensor::Zeros(tensor::Shape({batch, hidden_size_})));
  return state;
}

}  // namespace musenet::nn
