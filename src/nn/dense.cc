#include "nn/dense.h"

#include "nn/init.h"
#include "util/check.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

Dense::Dense(int64_t in_features, int64_t out_features, Rng& rng,
             Activation activation, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      activation_(activation),
      use_bias_(use_bias) {
  MUSE_CHECK_GT(in_features, 0);
  MUSE_CHECK_GT(out_features, 0);
  int64_t fan_in = 0;
  int64_t fan_out = 0;
  DenseFans(in_features, out_features, &fan_in, &fan_out);
  weight_ = RegisterParameter(
      "weight",
      GlorotUniform(tensor::Shape({in_features, out_features}), fan_in,
                    fan_out, rng));
  if (use_bias_) {
    bias_ = RegisterParameter(
        "bias", tensor::Tensor::Zeros(tensor::Shape({out_features})));
  }
}

ag::Variable Dense::Forward(const ag::Variable& x) {
  MUSE_CHECK_EQ(x.value().rank(), 2);
  MUSE_CHECK_EQ(x.value().dim(1), in_features_);
  ag::Variable y = ag::MatMul(x, weight_);
  tensor::ActKind kind;
  if (use_bias_ && FusableActKind(activation_, &kind)) {
    // One node/kernel for bias + activation; [B,out] + [out] broadcasts.
    return ag::BiasActivation(y, bias_, kind);
  }
  if (use_bias_) y = ag::Add(y, bias_);
  return ApplyActivation(y, activation_);
}

}  // namespace musenet::nn
