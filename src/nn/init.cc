#include "nn/init.h"

#include <cmath>

namespace musenet::nn {

tensor::Tensor GlorotUniform(tensor::Shape shape, int64_t fan_in,
                             int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::RandomUniform(std::move(shape), rng, -bound, bound);
}

tensor::Tensor HeNormal(tensor::Shape shape, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Tensor::RandomNormal(std::move(shape), rng, 0.0f, stddev);
}

void DenseFans(int64_t in, int64_t out, int64_t* fan_in, int64_t* fan_out) {
  *fan_in = in;
  *fan_out = out;
}

void ConvFans(int64_t cout, int64_t cin, int64_t kh, int64_t kw,
              int64_t* fan_in, int64_t* fan_out) {
  *fan_in = cin * kh * kw;
  *fan_out = cout * kh * kw;
}

}  // namespace musenet::nn
