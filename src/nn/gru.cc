#include "nn/gru.h"

#include "autograd/ops.h"
#include "nn/init.h"
#include "util/check.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  MUSE_CHECK_GT(input_size, 0);
  MUSE_CHECK_GT(hidden_size, 0);
  w_ = RegisterParameter(
      "w", GlorotUniform(tensor::Shape({input_size, 3 * hidden_size}),
                         input_size, hidden_size, rng));
  u_ = RegisterParameter(
      "u", GlorotUniform(tensor::Shape({hidden_size, 3 * hidden_size}),
                         hidden_size, hidden_size, rng));
  b_ = RegisterParameter(
      "b", tensor::Tensor::Zeros(tensor::Shape({3 * hidden_size})));
}

ag::Variable GruCell::Step(const ag::Variable& x, const ag::Variable& h) {
  MUSE_CHECK_EQ(x.value().dim(1), input_size_);
  MUSE_CHECK_EQ(h.value().dim(1), hidden_size_);
  const int64_t hs = hidden_size_;

  ag::Variable gates_x = ag::Add(ag::MatMul(x, w_), b_);  // [B, 3H]
  ag::Variable gates_h = ag::MatMul(h, u_);               // [B, 3H]

  ag::Variable z = ag::Sigmoid(ag::Add(ag::Slice(gates_x, 1, 0, hs),
                                       ag::Slice(gates_h, 1, 0, hs)));
  ag::Variable r = ag::Sigmoid(ag::Add(ag::Slice(gates_x, 1, hs, hs),
                                       ag::Slice(gates_h, 1, hs, hs)));
  // The candidate gate uses the reset-gated state, (r ⊙ h) U_h, so it cannot
  // reuse gates_h; compute that product against U's third column block.
  ag::Variable rh = ag::Mul(r, h);
  ag::Variable candidate_h =
      ag::MatMul(rh, ag::Slice(u_, 1, 2 * hs, hs));  // [B, H]
  ag::Variable h_tilde = ag::Tanh(
      ag::Add(ag::Slice(gates_x, 1, 2 * hs, hs), candidate_h));

  // h' = (1 − z) ⊙ h + z ⊙ h̃.
  ag::Variable one = ag::Constant(tensor::Tensor::Ones(z.value().shape()));
  return ag::Add(ag::Mul(ag::Sub(one, z), h), ag::Mul(z, h_tilde));
}

ag::Variable GruCell::InitialState(int64_t batch) const {
  return ag::Constant(
      tensor::Tensor::Zeros(tensor::Shape({batch, hidden_size_})));
}

}  // namespace musenet::nn
