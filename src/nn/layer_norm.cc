#include "nn/layer_norm.h"

#include "autograd/ops.h"
#include "util/check.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

LayerNorm::LayerNorm(int64_t features, float epsilon)
    : features_(features), epsilon_(epsilon) {
  MUSE_CHECK_GT(features, 0);
  gamma_ = RegisterParameter(
      "gamma", tensor::Tensor::Ones(tensor::Shape({features})));
  beta_ = RegisterParameter(
      "beta", tensor::Tensor::Zeros(tensor::Shape({features})));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) {
  const int last = x.value().rank() - 1;
  MUSE_CHECK_EQ(x.value().dim(last), features_);
  ag::Variable mu = ag::Mean(x, last, /*keepdims=*/true);
  ag::Variable centered = ag::Sub(x, mu);
  ag::Variable variance =
      ag::Mean(ag::Square(centered), last, /*keepdims=*/true);
  ag::Variable denom = ag::Sqrt(ag::AddScalar(variance, epsilon_));
  ag::Variable normalized = ag::Div(centered, denom);
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

}  // namespace musenet::nn
