#include "nn/conv.h"

#include <memory>

#include "nn/init.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/shard_context.h"

namespace musenet::nn {

namespace ag = musenet::autograd;

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, Rng& rng)
    : Conv2d(in_channels, out_channels, rng, Options{}) {}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, Rng& rng,
               Options options)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      options_(options) {
  MUSE_CHECK_GT(in_channels, 0);
  MUSE_CHECK_GT(out_channels, 0);
  MUSE_CHECK_GE(options_.kernel, 1);
  if (options_.pad < 0) {
    MUSE_CHECK_EQ(options_.kernel % 2, 1)
        << "'same' padding requires an odd kernel";
    options_.pad = (options_.kernel - 1) / 2;
  }
  spec_ = tensor::Conv2dSpec{.stride = options_.stride, .pad = options_.pad};

  int64_t fan_in = 0;
  int64_t fan_out = 0;
  ConvFans(out_channels, in_channels, options_.kernel, options_.kernel,
           &fan_in, &fan_out);
  tensor::Tensor init_weight =
      GlorotUniform(tensor::Shape({out_channels, in_channels, options_.kernel,
                                   options_.kernel}),
                    fan_in, fan_out, rng);
  if (options_.init_scale != 1.0f) {
    init_weight = tensor::MulScalar(init_weight, options_.init_scale);
  }
  weight_ = RegisterParameter("weight", std::move(init_weight));
  if (options_.batch_norm) {
    options_.use_bias = false;  // BN's β subsumes the conv bias.
    batch_norm_ = std::make_unique<BatchNorm2d>(out_channels);
    RegisterSubmodule("bn", batch_norm_.get());
  }
  if (options_.use_bias) {
    bias_ = RegisterParameter(
        "bias", tensor::Tensor::Zeros(tensor::Shape({out_channels})));
  }
}

ag::Variable Conv2d::Forward(const ag::Variable& x) {
  MUSE_CHECK_EQ(x.value().rank(), 4);
  MUSE_CHECK_EQ(x.value().dim(1), in_channels_);
  // The member workspace is single-caller scratch; concurrent data-parallel
  // shard forwards each use a per-(shard, layer) workspace owned by the
  // shard context, which outlives the shard's backward pass (whose closures
  // capture the workspace pointer).
  tensor::Conv2dWorkspace* workspace = &workspace_;
  if (util::ShardContext* shard = util::ShardContext::Current()) {
    std::shared_ptr<void>& slot = shard->ScratchSlot(this);
    if (slot == nullptr) slot = std::make_shared<tensor::Conv2dWorkspace>();
    workspace = static_cast<tensor::Conv2dWorkspace*>(slot.get());
  }
  ag::Variable y = ag::Conv2d(x, weight_, spec_, workspace);
  if (options_.use_bias) {
    // [Cout] → [1,Cout,1,1] broadcasts over batch and space. use_bias
    // implies no batch norm (the ctor clears it), so the activation can
    // fuse into the same node when it has a fused kind.
    ag::Variable b =
        ag::Reshape(bias_, tensor::Shape({1, out_channels_, 1, 1}));
    tensor::ActKind kind;
    if (FusableActKind(options_.activation, &kind)) {
      return ag::BiasActivation(y, b, kind);
    }
    y = ag::Add(y, b);
  }
  if (batch_norm_ != nullptr) y = batch_norm_->Forward(y);
  return ApplyActivation(y, options_.activation);
}

}  // namespace musenet::nn
