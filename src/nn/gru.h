#ifndef MUSENET_NN_GRU_H_
#define MUSENET_NN_GRU_H_

#include "nn/module.h"
#include "util/rng.h"

namespace musenet::nn {

/// Gated Recurrent Unit cell (Cho et al., 2014).
///
/// One step: given input x:[B,in] and state h:[B,hidden],
///   z = σ(x W_z + h U_z + b_z)          (update gate)
///   r = σ(x W_r + h U_r + b_r)          (reset gate)
///   h̃ = tanh(x W_h + (r ⊙ h) U_h + b_h)
///   h' = (1 − z) ⊙ h + z ⊙ h̃
/// Gate weights are packed as W:[in,3H], U:[hidden,3H], b:[3H] in order
/// (z, r, h).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// Advances the recurrence by one step; returns the next hidden state.
  autograd::Variable Step(const autograd::Variable& x,
                          const autograd::Variable& h);

  /// Zero initial state for a batch.
  autograd::Variable InitialState(int64_t batch) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  autograd::Variable w_;  ///< [in, 3H].
  autograd::Variable u_;  ///< [H, 3H].
  autograd::Variable b_;  ///< [3H].
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_GRU_H_
