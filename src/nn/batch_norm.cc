#include "nn/batch_norm.h"

#include <utility>

#include "autograd/ops.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/shard_context.h"

namespace musenet::nn {

namespace ag = musenet::autograd;
namespace ts = musenet::tensor;

BatchNorm2d::BatchNorm2d(int64_t channels, double momentum, float epsilon)
    : channels_(channels), momentum_(momentum), epsilon_(epsilon) {
  MUSE_CHECK_GT(channels, 0);
  const ts::Shape stat_shape({1, channels, 1, 1});
  gamma_ = RegisterParameter("gamma", ts::Tensor::Ones(stat_shape));
  beta_ = RegisterParameter("beta", ts::Tensor::Zeros(stat_shape));
  running_mean_ = ts::Tensor::Zeros(stat_shape);
  running_var_ = ts::Tensor::Ones(stat_shape);
  RegisterBuffer("running_mean", &running_mean_);
  RegisterBuffer("running_var", &running_var_);
}

ag::Variable BatchNorm2d::Forward(const ag::Variable& x) {
  MUSE_CHECK_EQ(x.value().rank(), 4);
  MUSE_CHECK_EQ(x.value().dim(1), channels_);

  ag::Variable mean;
  ag::Variable var;
  if (training()) {
    // Batch statistics over batch and spatial axes, kept differentiable so
    // the full BN backward applies.
    ag::Variable m3 = ag::Mean(x, 3, /*keepdims=*/true);
    ag::Variable m2 = ag::Mean(m3, 2, /*keepdims=*/true);
    mean = ag::Mean(m2, 0, /*keepdims=*/true);  // [1, C, 1, 1]
    ag::Variable centered = ag::Sub(x, mean);
    ag::Variable sq = ag::Square(centered);
    var = ag::Mean(ag::Mean(ag::Mean(sq, 3, true), 2, true), 0, true);

    // Update running statistics from the detached batch values. Under a
    // data-parallel shard the assignment would race with the other shards'
    // forwards, so it is deferred: the training loop replays the updates in
    // shard order after the parallel section (each shard folding ITS batch
    // statistics into the then-current running value, so the composition is
    // deterministic at a fixed shard count).
    const float m = static_cast<float>(momentum_);
    if (util::ShardContext* shard = util::ShardContext::Current()) {
      // Deep Tensor copies: the batch-stat node values die with the
      // shard's graph release, the captured buffers do not.
      shard->Defer([this, m, batch_mean = mean.value(),
                    batch_var = var.value()] {
        running_mean_ = ts::Add(ts::MulScalar(running_mean_, 1.0f - m),
                                ts::MulScalar(batch_mean, m));
        running_var_ = ts::Add(ts::MulScalar(running_var_, 1.0f - m),
                               ts::MulScalar(batch_var, m));
      });
    } else {
      running_mean_ = ts::Add(ts::MulScalar(running_mean_, 1.0f - m),
                              ts::MulScalar(mean.value(), m));
      running_var_ = ts::Add(ts::MulScalar(running_var_, 1.0f - m),
                             ts::MulScalar(var.value(), m));
    }
  } else {
    mean = ag::Constant(running_mean_);
    var = ag::Constant(running_var_);
  }

  ag::Variable inv_std = ag::Div(
      ag::Constant(ts::Tensor::Ones(mean.value().shape())),
      ag::Sqrt(ag::AddScalar(var, epsilon_)));
  ag::Variable normalized = ag::Mul(ag::Sub(x, mean), inv_std);
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

}  // namespace musenet::nn
