#include "nn/activations.h"

#include "util/check.h"

namespace musenet::nn {

autograd::Variable ApplyActivation(const autograd::Variable& x,
                                   Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return autograd::Relu(x);
    case Activation::kLeakyRelu:
      return autograd::LeakyRelu(x, 0.1f);
    case Activation::kTanh:
      return autograd::Tanh(x);
    case Activation::kSigmoid:
      return autograd::Sigmoid(x);
    case Activation::kSoftplus:
      return autograd::Softplus(x);
  }
  MUSE_CHECK(false) << "unreachable activation";
  return x;
}

bool FusableActKind(Activation activation, tensor::ActKind* kind) {
  switch (activation) {
    case Activation::kNone:
      *kind = tensor::ActKind::kIdentity;
      return true;
    case Activation::kRelu:
      *kind = tensor::ActKind::kRelu;
      return true;
    case Activation::kLeakyRelu:
      *kind = tensor::ActKind::kLeakyRelu;
      return true;
    case Activation::kTanh:
      *kind = tensor::ActKind::kTanh;
      return true;
    case Activation::kSigmoid:
      *kind = tensor::ActKind::kSigmoid;
      return true;
    case Activation::kSoftplus:
      return false;
  }
  MUSE_CHECK(false) << "unreachable activation";
  return false;
}

Activation ActivationFromString(const std::string& name) {
  if (name == "none") return Activation::kNone;
  if (name == "relu") return Activation::kRelu;
  if (name == "leaky_relu") return Activation::kLeakyRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "softplus") return Activation::kSoftplus;
  MUSE_CHECK(false) << "unknown activation: " << name;
  return Activation::kNone;
}

}  // namespace musenet::nn
