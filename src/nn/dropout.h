#ifndef MUSENET_NN_DROPOUT_H_
#define MUSENET_NN_DROPOUT_H_

#include "nn/module.h"
#include "util/rng.h"

namespace musenet::nn {

/// Inverted dropout: in training mode each element is zeroed with probability
/// `rate` and the survivors are scaled by 1/(1−rate); in eval mode it is the
/// identity. The mask is drawn from the Rng passed at construction, which
/// must outlive the module.
class Dropout : public UnaryModule {
 public:
  Dropout(double rate, Rng* rng);

  autograd::Variable Forward(const autograd::Variable& x) override;

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng* rng_;  ///< Not owned.
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_DROPOUT_H_
