#ifndef MUSENET_NN_CONV_H_
#define MUSENET_NN_CONV_H_

#include <memory>

#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/module.h"
#include "tensor/conv2d.h"
#include "util/rng.h"

namespace musenet::nn {

/// 2-D convolution layer with square kernel, stride 1 and "same" padding by
/// default (the configuration used throughout MUSE-Net / DeepSTN+).
///
/// Input [B, Cin, H, W] → output [B, Cout, H', W'].
class Conv2d : public UnaryModule {
 public:
  struct Options {
    int64_t kernel = 3;
    int64_t stride = 1;
    /// −1 requests "same" padding: (kernel − 1) / 2, valid for odd kernels.
    int64_t pad = -1;
    Activation activation = Activation::kNone;
    bool use_bias = true;
    /// Inserts BatchNorm2d between the convolution and the activation
    /// (conv bias is dropped — BN's β subsumes it).
    bool batch_norm = false;
    /// Multiplier on the Glorot init range. Output layers feeding a
    /// saturating activation (tanh prediction heads) should use a small
    /// scale (e.g. 0.1) so no unit starts near saturation, where the
    /// vanishing gradient would leave it permanently stuck.
    float init_scale = 1.0f;
  };

  Conv2d(int64_t in_channels, int64_t out_channels, Rng& rng,
         Options options);
  /// Defaults: 3×3 kernel, stride 1, "same" padding, no activation, bias.
  Conv2d(int64_t in_channels, int64_t out_channels, Rng& rng);

  autograd::Variable Forward(const autograd::Variable& x) override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }

 private:
  int64_t in_channels_;
  int64_t out_channels_;
  Options options_;
  tensor::Conv2dSpec spec_;
  autograd::Variable weight_;  ///< [Cout, Cin, k, k].
  autograd::Variable bias_;    ///< [Cout] reshaped to [1,Cout,1,1] on use.
  std::unique_ptr<BatchNorm2d> batch_norm_;  ///< When options_.batch_norm.
  /// im2col scratch reused across calls (grows to the largest input shape
  /// seen); the layer outlives every graph built from it.
  tensor::Conv2dWorkspace workspace_;
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_CONV_H_
