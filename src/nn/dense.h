#ifndef MUSENET_NN_DENSE_H_
#define MUSENET_NN_DENSE_H_

#include "nn/activations.h"
#include "nn/module.h"
#include "util/rng.h"

namespace musenet::nn {

/// Fully connected layer: y = act(x W + b), x:[B,in] → y:[B,out].
class Dense : public UnaryModule {
 public:
  /// Weight is Glorot-uniform initialized; bias (optional) starts at zero.
  Dense(int64_t in_features, int64_t out_features, Rng& rng,
        Activation activation = Activation::kNone, bool use_bias = true);

  autograd::Variable Forward(const autograd::Variable& x) override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Activation activation_;
  bool use_bias_;
  autograd::Variable weight_;  ///< [in, out].
  autograd::Variable bias_;    ///< [out] (undefined when !use_bias_).
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_DENSE_H_
