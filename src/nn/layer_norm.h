#ifndef MUSENET_NN_LAYER_NORM_H_
#define MUSENET_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace musenet::nn {

/// Layer normalization over the last axis with learnable affine parameters:
/// y = γ ⊙ (x − μ)/√(σ² + ε) + β, where μ/σ² are per-row statistics.
class LayerNorm : public UnaryModule {
 public:
  explicit LayerNorm(int64_t features, float epsilon = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) override;

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float epsilon_;
  autograd::Variable gamma_;  ///< [features], ones.
  autograd::Variable beta_;   ///< [features], zeros.
};

}  // namespace musenet::nn

#endif  // MUSENET_NN_LAYER_NORM_H_
