#ifndef MUSENET_UTIL_THREAD_POOL_H_
#define MUSENET_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace musenet::util {

/// Fixed-size worker pool for data-parallel kernels.
///
/// The only entry point is `ParallelFor`, which splits an index range into
/// chunks of exactly `grain` indices and executes them across the workers
/// plus the calling thread. Chunk boundaries depend only on (begin, end,
/// grain) — never on the thread count — so a kernel that writes disjoint
/// chunks, or combines per-chunk partials in chunk order, produces
/// bit-identical results at every thread count. See "Performance substrate"
/// in DESIGN.md for the determinism policy built on this property.
///
/// Nested calls (ParallelFor issued from inside a worker) degrade to inline
/// sequential execution, so kernels may parallelize freely without tracking
/// whether a caller already fanned out.
///
/// Dispatch is allocation-free: the body is passed as a plain function
/// pointer + context (the template wrapper adapts any callable without
/// touching std::function), and the pool reuses a single preallocated job
/// slot instead of heap-allocating per call. Steady-state inference
/// (musenet::infer) relies on this for its zero-allocation contract.
class ThreadPool {
 public:
  /// Raw chunk body: `fn(ctx, chunk_begin, chunk_end)`.
  using ChunkFn = void (*)(void* ctx, int64_t begin, int64_t end);

  /// Spawns `num_threads - 1` workers (the caller participates as the last
  /// thread). `num_threads` is clamped to at least 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes `fn(chunk_begin, chunk_end)` for every grain-sized chunk of
  /// [begin, end), in parallel, and blocks until all chunks finished.
  /// `fn` must be safe to call concurrently on disjoint chunks. The chunk
  /// index of a call is `(chunk_begin - begin) / grain` — reduction kernels
  /// use it to address per-chunk partial slots.
  template <typename F>
  void ParallelFor(int64_t begin, int64_t end, int64_t grain, F&& fn) {
    using Body = std::remove_reference_t<F>;
    ParallelForRaw(
        begin, end, grain,
        [](void* ctx, int64_t lo, int64_t hi) {
          (*static_cast<Body*>(ctx))(lo, hi);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Untemplated core of ParallelFor; `fn(ctx, lo, hi)` per chunk.
  void ParallelForRaw(int64_t begin, int64_t end, int64_t grain, ChunkFn fn,
                      void* ctx);

  /// As ParallelFor, but dispatches to this pool's workers even when the
  /// calling thread is already inside another pool's parallel region.
  /// The caller must guarantee the enclosing region runs on a DIFFERENT
  /// pool instance: forcing a nested submit onto the same pool would
  /// deadlock on its single job slot. Used by the data-parallel training
  /// step, whose private shard pool must still fan out when a pipeline
  /// stage worker (itself inside the stage pool's region) drives training.
  template <typename F>
  void ParallelForAcross(int64_t begin, int64_t end, int64_t grain, F&& fn) {
    using Body = std::remove_reference_t<F>;
    ParallelForRawImpl(
        begin, end, grain,
        [](void* ctx, int64_t lo, int64_t hi) {
          (*static_cast<Body*>(ctx))(lo, hi);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        /*force_parallel=*/true);
  }

  /// True while the calling thread is executing chunks of any pool's
  /// parallel region (the state nested ParallelFor calls degrade on).
  static bool InsideParallelRegion();

  /// Process-wide pool. Sized from MUSENET_NUM_THREADS when set (clamped to
  /// [1, 256]), otherwise std::thread::hardware_concurrency(). Constructed
  /// on first use.
  static ThreadPool& Global();

 private:
  /// One parallel-for invocation, reused across calls. Completion is tracked
  /// per chunk plus a count of workers still inside RunChunks, so the caller
  /// can retire the slot only once no worker can still be reading it.
  struct Job {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    ChunkFn fn = nullptr;
    void* ctx = nullptr;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> chunks_done{0};
  };

  void WorkerLoop();
  void RunChunks(Job& job);
  void ParallelForRawImpl(int64_t begin, int64_t end, int64_t grain,
                          ChunkFn fn, void* ctx, bool force_parallel);

  const int num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes top-level submissions: the pool owns one job slot, so a
  /// second concurrent caller waits until the first job retires. Nested
  /// calls never reach this (they run inline) and cannot deadlock on it.
  std::mutex submit_mutex_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job job_;
  bool job_active_ = false;    ///< Guarded by mutex_.
  int active_workers_ = 0;     ///< Workers inside RunChunks; guarded by mutex_.
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;
};

/// Pool used by the tensor/NN kernels: the global pool unless overridden.
ThreadPool& ActivePool();

/// RAII override of `ActivePool()`, for tests that compare thread counts
/// within one process. Not thread-safe against concurrent overrides.
class ScopedActivePool {
 public:
  explicit ScopedActivePool(ThreadPool* pool);
  ~ScopedActivePool();

  ScopedActivePool(const ScopedActivePool&) = delete;
  ScopedActivePool& operator=(const ScopedActivePool&) = delete;

 private:
  ThreadPool* previous_;
};

/// RAII record of the fan-out width an orchestrator is about to run at, so
/// nested data-parallel sections can budget their own width against it (the
/// pipeline claims its `--jobs` stage pool around stage execution). Claims
/// from nested orchestrators multiply. Process-global: the claim describes
/// thread usage, which is a process-wide resource.
class ScopedFanoutClaim {
 public:
  explicit ScopedFanoutClaim(int width);
  ~ScopedFanoutClaim();

  ScopedFanoutClaim(const ScopedFanoutClaim&) = delete;
  ScopedFanoutClaim& operator=(const ScopedFanoutClaim&) = delete;

  /// Product of all active claims; 1 when nothing is claimed.
  static int Claimed();

 private:
  int width_;
};

/// Caps a nested data-parallel section's worker request so the combined
/// fan-out stays within the global pool size: with a claim of C active,
/// at most max(1, pool_size / C) workers are granted, keeping
/// C * granted <= pool size (plus integer-division slack below one worker
/// per claimant). With no claim active the request passes through —
/// an explicit top-level request is the caller's to honor, and the shard
/// workers' own inner kernels already degrade to sequential.
int NestedParallelBudget(int requested);

}  // namespace musenet::util

#endif  // MUSENET_UTIL_THREAD_POOL_H_
