#ifndef MUSENET_UTIL_THREAD_POOL_H_
#define MUSENET_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace musenet::util {

/// Fixed-size worker pool for data-parallel kernels.
///
/// The only entry point is `ParallelFor`, which splits an index range into
/// chunks of exactly `grain` indices and executes them across the workers
/// plus the calling thread. Chunk boundaries depend only on (begin, end,
/// grain) — never on the thread count — so a kernel that writes disjoint
/// chunks, or combines per-chunk partials in chunk order, produces
/// bit-identical results at every thread count. See "Performance substrate"
/// in DESIGN.md for the determinism policy built on this property.
///
/// Nested calls (ParallelFor issued from inside a worker) degrade to inline
/// sequential execution, so kernels may parallelize freely without tracking
/// whether a caller already fanned out.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller participates as the last
  /// thread). `num_threads` is clamped to at least 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes `fn(chunk_begin, chunk_end)` for every grain-sized chunk of
  /// [begin, end), in parallel, and blocks until all chunks finished.
  /// `fn` must be safe to call concurrently on disjoint chunks. The chunk
  /// index of a call is `(chunk_begin - begin) / grain` — reduction kernels
  /// use it to address per-chunk partial slots.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool. Sized from MUSENET_NUM_THREADS when set (clamped to
  /// [1, 256]), otherwise std::thread::hardware_concurrency(). Constructed
  /// on first use.
  static ThreadPool& Global();

 private:
  struct Job;

  void WorkerLoop();
  void RunChunks(Job& job);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> current_job_;
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;
};

/// Pool used by the tensor/NN kernels: the global pool unless overridden.
ThreadPool& ActivePool();

/// RAII override of `ActivePool()`, for tests that compare thread counts
/// within one process. Not thread-safe against concurrent overrides.
class ScopedActivePool {
 public:
  explicit ScopedActivePool(ThreadPool* pool);
  ~ScopedActivePool();

  ScopedActivePool(const ScopedActivePool&) = delete;
  ScopedActivePool& operator=(const ScopedActivePool&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace musenet::util

#endif  // MUSENET_UTIL_THREAD_POOL_H_
