#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace musenet {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace musenet
