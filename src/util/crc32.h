#ifndef MUSENET_UTIL_CRC32_H_
#define MUSENET_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace musenet::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `len` bytes.
/// Pass the previous return value as `seed` to checksum data in pieces:
///   crc = Crc32(a, na); crc = Crc32(b, nb, crc);
/// equals Crc32 of the concatenation. Used by the tensor container (v2) and
/// the dataset cache to detect torn writes and bit rot.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace musenet::util

#endif  // MUSENET_UTIL_CRC32_H_
