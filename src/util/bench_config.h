#ifndef MUSENET_UTIL_BENCH_CONFIG_H_
#define MUSENET_UTIL_BENCH_CONFIG_H_

#include <cstdint>
#include <string>

namespace musenet {

/// Experiment scale shared by all benchmark binaries.
///
/// Training the full paper configuration (32×32 grid, 350 epochs, d=64,
/// k=128) on one CPU core is infeasible within a benchmark run, so every
/// experiment binary reads a scale from the `MUSE_BENCH_SCALE` environment
/// variable:
///   - "smoke": minimal — a seconds-long sanity pass.
///   - "default": the calibrated reproduction scale (minutes per table).
///   - "paper": the paper's hyper-parameters (hours; for offline runs).
/// Each binary prints the resolved scale so results are self-describing.
struct BenchScale {
  std::string name;     ///< "smoke" | "default" | "paper".
  int epochs;           ///< Training epochs per model.
  int grid_h;           ///< Grid height override (0 = dataset preset).
  int grid_w;           ///< Grid width override (0 = dataset preset).
  int days;             ///< Simulated days per dataset (0 = preset).
  int repr_dim;         ///< d — representation channels.
  int dist_dim;         ///< k — interactive distribution dimension.
  int batch_size;       ///< Mini-batch size.
  uint64_t seed;        ///< Base RNG seed.
};

/// Resolves the scale from `MUSE_BENCH_SCALE` (default: "default") and
/// `MUSE_BENCH_SEED` (default: 7).
BenchScale ResolveBenchScale();

/// Returns the environment variable or `fallback` when unset/empty.
std::string GetEnvOr(const char* name, const std::string& fallback);

}  // namespace musenet

#endif  // MUSENET_UTIL_BENCH_CONFIG_H_
