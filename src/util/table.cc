#include "util/table.h"

#include <algorithm>
#include <fstream>

namespace musenet {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

std::string TablePrinter::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());

  std::vector<size_t> widths(columns, 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = std::max(widths[c], header_[c].size());
  }
  for (const Row& row : rows_) {
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };
  auto render_rule = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < columns; ++c) {
      line += std::string(widths[c] + 2, '-') + "+";
    }
    line += "\n";
    return line;
  };

  std::string out = render_rule() + render_line(header_) + render_rule();
  for (const Row& row : rows_) {
    out += row.separator ? render_rule() : render_line(row.cells);
  }
  out += render_rule();
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  write_row(header_);
  for (const Row& row : rows_) {
    if (!row.separator) write_row(row.cells);
  }
  return out;
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << ToCsv();
  if (!file) return Status::IoError("failed while writing " + path);
  return Status::OK();
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace musenet
