#include "util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"

namespace musenet::util {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

/// Writes all of `bytes` to `fd`, retrying on partial writes and EINTR.
Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, p, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write " + path));
    }
    p += written;
    remaining -= static_cast<size_t>(written);
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so a completed rename survives a
/// crash. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open " + path + " for reading"));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("stat " + path));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (FaultInjector::Instance().TakeAllocFailure()) {
    ::close(fd);
    return Status::IoError("injected allocation failure reading " + path +
                           " (" + std::to_string(size) + " bytes)");
  }
  std::string contents;
  try {
    contents.resize(size);
  } catch (const std::bad_alloc&) {
    ::close(fd);
    return Status::IoError("out of memory reading " + path + " (" +
                           std::to_string(size) + " bytes)");
  }
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, contents.data() + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(ErrnoMessage("read " + path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // EOF before st_size: file shrank under us.
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  if (off != size) {
    return Status::IoError("short read on " + path + ": got " +
                           std::to_string(off) + " of " +
                           std::to_string(size) + " bytes");
  }
  return contents;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  obs::ScopedSpan span("io.AtomicWriteFile", "bytes",
                       static_cast<int64_t>(bytes.size()));
  static obs::Counter& writes = obs::GetCounter("io.atomic_writes");
  static obs::Counter& written_bytes = obs::GetCounter("io.atomic_write_bytes");
  writes.Add();
  written_bytes.Add(static_cast<int64_t>(bytes.size()));

  const FaultInjector::WriteFault fault =
      FaultInjector::Instance().TakeWriteFault();

  // Simulated torn / bit-rotted writes bypass the temp-file protocol on
  // purpose: they model the failure the protocol exists to prevent (a
  // pre-atomic writer, a lying disk), so recovery must come from the
  // reader's CRC checks instead.
  std::string corrupted;
  std::string_view payload = bytes;
  if (fault == FaultInjector::WriteFault::kTruncate) {
    payload = bytes.substr(0, bytes.size() / 2);
  } else if (fault == FaultInjector::WriteFault::kBitFlip) {
    corrupted.assign(bytes);
    if (!corrupted.empty()) {
      // Flip a payload bit past any header; deterministic position.
      corrupted[corrupted.size() * 3 / 4] ^= 0x10;
    }
    payload = corrupted;
  }

  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open " + tmp + " for writing"));
  }
  Status status = WriteAll(fd, payload, tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync " + tmp));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError(ErrnoMessage("close " + tmp));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }

  if (fault == FaultInjector::WriteFault::kCrashBeforeRename) {
    // Simulated process death between fsync and rename: the destination is
    // untouched; the orphaned temp file is what a real crash would leave.
    return Status::IoError("injected crash before rename of " + tmp +
                           " onto " + path);
  }

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status rename_status =
        Status::IoError(ErrnoMessage("rename " + tmp + " -> " + path));
    ::unlink(tmp.c_str());
    return rename_status;
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace musenet::util
