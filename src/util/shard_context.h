#ifndef MUSENET_UTIL_SHARD_CONTEXT_H_
#define MUSENET_UTIL_SHARD_CONTEXT_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace musenet::util {

/// Per-shard execution context for the data-parallel training step.
///
/// A sharded step splits one mini-batch across a fixed number of shards and
/// runs each shard's forward+backward concurrently against the SAME module.
/// The module's parameters are read-only during that window, but three kinds
/// of member state would race without mediation, and this context reroutes
/// each of them:
///
///  - RNG streams: model code resolves its member stream through
///    `ShardRng(parent)`, which returns the shard's pre-forked child while a
///    context is installed. Children are derived per step with
///    `parent.Fork(shard)`, so the parent trajectory depends only on the
///    shard count — never on the worker count.
///  - Mutable member updates (BatchNorm running statistics): layers queue
///    them with `Defer`; the training loop replays every shard's deferred
///    updates sequentially in shard order after the parallel section.
///  - Member scratch buffers (conv im2col workspaces): layers swap to a
///    per-(shard, layer) slot from `ScratchSlot`, which the context owns for
///    the whole shard step — including the backward pass, whose closures
///    capture workspace pointers.
///
/// A context is installed per thread with `Scope` and queried with
/// `Current()`; with none installed, every redirect falls through to the
/// member state, keeping single-stream training bit-identical to the
/// pre-sharding behavior.
class ShardContext {
 public:
  ShardContext(int shard_index, int num_shards)
      : shard_index_(shard_index), num_shards_(num_shards) {}

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

  int shard_index() const { return shard_index_; }
  int num_shards() const { return num_shards_; }

  /// Registers `child` as the stream standing in for `parent` while this
  /// context is installed. `child` must outlive the context's scope.
  void MapRng(const Rng* parent, Rng* child) {
    rngs_.emplace_back(parent, child);
  }

  /// The mapped child for `parent`, or nullptr when unmapped.
  Rng* FindRng(const Rng* parent) const {
    for (const auto& [p, child] : rngs_) {
      if (p == parent) return child;
    }
    return nullptr;
  }

  /// Queues a state mutation that is unsafe while other shards run (e.g. a
  /// BatchNorm running-stat update). The training loop replays all shards'
  /// deferred updates in shard order once the parallel section is over.
  void Defer(std::function<void()> update) {
    deferred_.push_back(std::move(update));
  }

  std::vector<std::function<void()>>& deferred() { return deferred_; }

  /// Type-erased scratch slot for (this shard, `owner`), created empty on
  /// first use. Slots live until the context is destroyed — past the
  /// shard's backward pass, so backward closures may capture their
  /// contents. Accessed only from the shard's own thread.
  std::shared_ptr<void>& ScratchSlot(const void* owner) {
    for (auto& [key, slot] : scratch_) {
      if (key == owner) return slot;
    }
    scratch_.emplace_back(owner, nullptr);
    return scratch_.back().second;
  }

  /// The context installed on the calling thread, or nullptr.
  static ShardContext* Current();

  /// RAII installation of a context on the current thread; nests.
  class Scope {
   public:
    explicit Scope(ShardContext* context);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ShardContext* previous_;
  };

 private:
  int shard_index_;
  int num_shards_;
  // Linear scans: a model registers a handful of streams and a few dozen
  // conv layers; vectors beat hashing at this size and keep iteration
  // order deterministic.
  std::vector<std::pair<const Rng*, Rng*>> rngs_;
  std::vector<std::function<void()>> deferred_;
  std::vector<std::pair<const void*, std::shared_ptr<void>>> scratch_;
};

/// The stream model code should actually draw from: the shard's child when a
/// context is installed and `parent` was mapped, otherwise `parent` itself.
Rng& ShardRng(Rng& parent);

}  // namespace musenet::util

#endif  // MUSENET_UTIL_SHARD_CONTEXT_H_
