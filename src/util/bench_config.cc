#include "util/bench_config.h"

#include <cstdlib>

namespace musenet {

std::string GetEnvOr(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

BenchScale ResolveBenchScale() {
  const std::string name = GetEnvOr("MUSE_BENCH_SCALE", "default");
  const uint64_t seed =
      static_cast<uint64_t>(std::strtoull(
          GetEnvOr("MUSE_BENCH_SEED", "7").c_str(), nullptr, 10));

  if (name == "smoke") {
    return BenchScale{.name = "smoke",
                      .epochs = 2,
                      .grid_h = 4,
                      .grid_w = 4,
                      .days = 32,
                      .repr_dim = 8,
                      .dist_dim = 8,
                      .batch_size = 8,
                      .seed = seed};
  }
  if (name == "paper") {
    return BenchScale{.name = "paper",
                      .epochs = 350,
                      .grid_h = 0,  // dataset presets: 10×20 / 10×20 / 32×32
                      .grid_w = 0,
                      .days = 0,    // dataset presets: 60 / 60 / 120 days
                      .repr_dim = 64,
                      .dist_dim = 128,
                      .batch_size = 8,
                      .seed = seed};
  }
  // "default": the calibrated reproduction scale.
  return BenchScale{.name = "default",
                    .epochs = 120,
                    .grid_h = 0,  // dataset presets pick a reduced grid
                    .grid_w = 0,
                    .days = 0,    // dataset presets pick a reduced span
                    .repr_dim = 12,
                    .dist_dim = 32,
                    .batch_size = 8,
                    .seed = seed};
}

}  // namespace musenet
