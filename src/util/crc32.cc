#include "util/crc32.h"

#include <array>

namespace musenet::util {

namespace {

/// Slicing-by-4 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table; tables 1-3 fold in bytes at increasing
/// offsets so the hot loop consumes four bytes per iteration.
const std::array<std::array<uint32_t, 256>, 4>& Crc32Tables() {
  static const auto tables = [] {
    std::array<std::array<uint32_t, 256>, 4> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
    return t;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  const auto& t = Crc32Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^
          t[1][(crc >> 16) & 0xFFu] ^ t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace musenet::util
