#ifndef MUSENET_UTIL_RNG_H_
#define MUSENET_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace musenet {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// All stochastic components of the library (weight init, reparameterization
/// noise, the traffic simulator) draw from explicitly passed `Rng` instances
/// so that every experiment is reproducible from a single seed. The engine is
/// not cryptographically secure and is not thread-safe; use one instance per
/// thread.
class Rng {
 public:
  /// Seeds the stream. Identical seeds yield identical sequences on every
  /// platform (no std::random_device, no libstdc++-specific distributions).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson-distributed count (Knuth for small lambda, normal approximation
  /// for large lambda). Requires lambda >= 0.
  int Poisson(double lambda);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child stream; children with distinct ids are
  /// decorrelated from each other and from the parent.
  Rng Fork(uint64_t stream_id);

  /// Number of words in a serialized state snapshot.
  static constexpr size_t kStateWords = 6;

  /// Full generator snapshot — the four engine lanes plus the Box–Muller
  /// cache (flag and value bit pattern) — as `kStateWords` words. Restoring
  /// the snapshot with LoadState resumes the stream exactly, which is what
  /// lets a resumed training run replay the same noise/shuffle sequence as
  /// an uninterrupted one.
  std::vector<uint64_t> SaveState() const;

  /// Restores a SaveState snapshot. Rejects snapshots of the wrong length.
  bool LoadState(const std::vector<uint64_t>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace musenet

#endif  // MUSENET_UTIL_RNG_H_
