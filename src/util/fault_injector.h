#ifndef MUSENET_UTIL_FAULT_INJECTOR_H_
#define MUSENET_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace musenet::util {

/// Deterministic fault-injection harness for exercising the recovery paths
/// of the training runtime (see DESIGN.md "Fault tolerance & checkpointing").
///
/// Faults are armed either programmatically (tests) or from environment
/// variables (CI smoke jobs); every fault fires exactly once, at an exactly
/// specified trigger point, so failing runs replay bit-identically:
///
///   MUSENET_FAULT_NAN_GRAD=<step>     poison a gradient at global step N
///   MUSENET_FAULT_WRITE=truncate|bitflip|crash
///   MUSENET_FAULT_WRITE_AT=<n>        ...on the n-th atomic file write
///                                     (1-based; default 1)
///   MUSENET_FAULT_ALLOC_AT=<n>        fail the n-th guarded I/O allocation
///   MUSENET_FAULT_SLOW_REPLAY_MS=<ms> one-shot latency spike injected into a
///   MUSENET_FAULT_SLOW_REPLAY_AT=<n>  ...serving batch replay (n-th batch,
///                                     1-based; default 1)
///   MUSENET_FAULT_SWAP_CORRUPT_AT=<n> flip one bit of the n-th model
///                                     container read by the serving registry
///                                     (a hot-swap must reject it)
///   MUSENET_FAULT_LOAD_FAIL_AT=<n>    fail the n-th registry container read
///                                     outright (I/O error mid-swap)
///
/// The injector is a process-wide singleton; the hook points live in
/// `util::AtomicWriteFile` / `util::ReadFileToString` (write and allocation
/// faults), `eval::RunTraining` (gradient faults) and `musenet::serve`
/// (replay latency and model-load faults). All methods are thread-safe. When
/// nothing is armed every hook is a single relaxed load.
class FaultInjector {
 public:
  /// Kinds of checkpoint-write fault.
  enum class WriteFault {
    kNone = 0,
    /// The final file holds only a prefix of the payload (torn write on a
    /// non-atomic filesystem / power loss mid-write).
    kTruncate,
    /// One bit of the payload is flipped in the final file (bit rot, bad
    /// DMA).
    kBitFlip,
    /// The process "dies" after writing the temp file but before the atomic
    /// rename: the write call reports an IoError and the destination path is
    /// left untouched.
    kCrashBeforeRename,
  };

  /// Counts of faults actually fired (for test assertions).
  struct Stats {
    int64_t nan_grads = 0;
    int64_t write_faults = 0;
    int64_t alloc_failures = 0;
    int64_t slow_replays = 0;
    int64_t swap_corrupts = 0;
    int64_t load_failures = 0;
  };

  static FaultInjector& Instance();

  /// Arms faults from the MUSENET_FAULT_* environment variables (unset
  /// variables leave the corresponding fault disarmed). Called once lazily by
  /// Instance(); tests use the Arm* setters directly.
  void ArmFromEnv();

  /// Disarms every fault and clears the stats and trigger counters.
  void Reset();

  // --- Gradient faults -------------------------------------------------------

  /// Arms a NaN-gradient fault at training step `at_step` (0-based global
  /// batch counter). Fires once.
  void ArmNanGradient(int64_t at_step);

  /// True exactly once, when `step` matches the armed trigger. The caller
  /// (the training loop) poisons a gradient in response.
  bool TakeNanGradient(int64_t step);

  // --- Checkpoint-write faults ----------------------------------------------

  /// Arms `fault` to fire on the `at_write`-th call (1-based) to
  /// AtomicWriteFile from now on.
  void ArmWriteFault(WriteFault fault, int64_t at_write = 1);

  /// Called by AtomicWriteFile on every write; returns the fault to apply to
  /// this call (usually kNone) and disarms it once fired.
  WriteFault TakeWriteFault();

  // --- Allocation faults -----------------------------------------------------

  /// Arms a simulated allocation failure on the `at_alloc`-th guarded
  /// allocation (1-based) from now on.
  void ArmAllocFailure(int64_t at_alloc = 1);

  /// Called at guarded allocation sites; true exactly once when the armed
  /// trigger is reached (the site then reports an IoError instead of
  /// allocating).
  bool TakeAllocFailure();

  // --- Serving faults --------------------------------------------------------

  /// Arms a one-shot latency spike of `millis` on the `at_batch`-th serving
  /// batch replay (1-based) from now on. The dispatcher sleeps that long
  /// before running the batch, simulating a stalled replica; admission
  /// control must shed, not collapse.
  void ArmSlowReplay(double millis, int64_t at_batch = 1);

  /// Called by the serving dispatcher per batch; the spike in milliseconds
  /// (exactly once, when the armed trigger is reached) or 0.
  double TakeSlowReplay();

  /// Arms a single-bit corruption of the `at_load`-th model container the
  /// serving registry reads (1-based) from now on — a bad deploy artifact.
  /// Shadow validation must reject the candidate and keep the old plan.
  void ArmSwapCorrupt(int64_t at_load = 1);

  /// Called by the registry after reading container bytes; true exactly once
  /// when armed (the registry then flips one payload bit before parsing).
  bool TakeSwapCorrupt();

  /// Arms an outright read failure of the `at_load`-th registry container
  /// read (1-based) from now on (storage down mid-swap).
  void ArmLoadFailure(int64_t at_load = 1);

  /// Called by the registry before reading; true exactly once when armed
  /// (the registry then reports an IoError instead of reading).
  bool TakeLoadFailure();

  Stats stats() const;

  /// True when any fault is currently armed (cheap pre-check for hot paths).
  bool armed() const { return armed_; }

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};

  int64_t nan_grad_step_ = -1;  ///< -1 = disarmed.

  WriteFault write_fault_ = WriteFault::kNone;
  int64_t write_trigger_ = 0;  ///< Writes remaining before firing; 0 = off.
  int64_t alloc_trigger_ = 0;  ///< Allocations remaining; 0 = off.

  double slow_replay_ms_ = 0.0;
  int64_t slow_replay_trigger_ = 0;  ///< Serving batches remaining; 0 = off.
  int64_t swap_corrupt_trigger_ = 0;  ///< Registry loads remaining; 0 = off.
  int64_t load_fail_trigger_ = 0;     ///< Registry loads remaining; 0 = off.

  Stats stats_;

  void RecomputeArmed();  // Caller holds mu_.
};

/// Parses a WriteFault name ("truncate", "bitflip", "crash"); kNone for
/// anything else.
FaultInjector::WriteFault ParseWriteFault(const std::string& name);

}  // namespace musenet::util

#endif  // MUSENET_UTIL_FAULT_INJECTOR_H_
