#include "util/status.h"

namespace musenet {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace musenet
