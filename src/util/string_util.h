#ifndef MUSENET_UTIL_STRING_UTIL_H_
#define MUSENET_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace musenet {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats `fraction` (e.g. 0.2128) as a percent string "21.28%".
std::string FormatPercent(double fraction, int digits = 2);

}  // namespace musenet

#endif  // MUSENET_UTIL_STRING_UTIL_H_
