#include "util/rng.h"

#include <cmath>
#include <cstring>

#include "util/check.h"

namespace musenet {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  MUSE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double lambda) {
  MUSE_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-lambda);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double sample = Normal(lambda, std::sqrt(lambda));
  return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    MUSE_CHECK_GE(w, 0.0);
    total += w;
  }
  MUSE_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // Numerical edge: land on the last bucket.
}

std::vector<uint64_t> Rng::SaveState() const {
  std::vector<uint64_t> words(kStateWords);
  for (int i = 0; i < 4; ++i) words[static_cast<size_t>(i)] = state_[i];
  words[4] = has_cached_normal_ ? 1 : 0;
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&words[5], &cached_normal_, sizeof(uint64_t));
  return words;
}

bool Rng::LoadState(const std::vector<uint64_t>& words) {
  if (words.size() != kStateWords) return false;
  for (int i = 0; i < 4; ++i) state_[i] = words[static_cast<size_t>(i)];
  has_cached_normal_ = words[4] != 0;
  std::memcpy(&cached_normal_, &words[5], sizeof(uint64_t));
  return true;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the parent's next raw draw with the stream id through SplitMix64 so
  // sibling streams are pairwise decorrelated.
  uint64_t mix = NextUint64() ^ (stream_id * 0xd1342543de82ef95ULL + 1);
  return Rng(SplitMix64(mix));
}

}  // namespace musenet
