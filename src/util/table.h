#ifndef MUSENET_UTIL_TABLE_H_
#define MUSENET_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace musenet {

/// Fixed-width text table used by the benchmark harness to print paper-style
/// result tables, with an optional CSV export for downstream plotting.
///
/// Usage:
///   TablePrinter t({"Method", "RMSE", "MAE"});
///   t.AddRow({"MUSE-Net", "2.89", "1.11"});
///   std::cout << t.ToString();
///   t.WriteCsv("results/table2.csv");
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; short rows are padded with empty cells, long rows widen
  /// the table.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row (rendered as dashes).
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  /// Renders the table with column-aligned cells and a header rule.
  std::string ToString() const;

  /// Header + rows (separators skipped) as RFC-4180-ish CSV text.
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Escapes a CSV field (quotes fields containing comma/quote/newline).
std::string CsvEscape(const std::string& field);

}  // namespace musenet

#endif  // MUSENET_UTIL_TABLE_H_
