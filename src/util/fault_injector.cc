#include "util/fault_injector.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace musenet::util {

namespace {

/// Every fired fault leaves a mark in the telemetry: an instant event in the
/// trace (visible as a pin in Perfetto at the exact step/write it hit) and a
/// monotonic counter, so a recovered-from fault is never invisible.
void NoteActivation(const char* span_name, const char* counter_name) {
  obs::TraceInstant(span_name);
  obs::GetCounter(counter_name).Add();
}

}  // namespace

namespace {

/// Parses a positive integer environment variable; `fallback` when unset or
/// unparsable.
int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<int64_t>(parsed);
}

}  // namespace

FaultInjector::WriteFault ParseWriteFault(const std::string& name) {
  if (name == "truncate") return FaultInjector::WriteFault::kTruncate;
  if (name == "bitflip") return FaultInjector::WriteFault::kBitFlip;
  if (name == "crash") return FaultInjector::WriteFault::kCrashBeforeRename;
  return FaultInjector::WriteFault::kNone;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();  // Leaked: outlives static tensors.
    fi->ArmFromEnv();
    return fi;
  }();
  return *injector;
}

void FaultInjector::ArmFromEnv() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t nan_step = EnvInt64("MUSENET_FAULT_NAN_GRAD", -1);
  if (nan_step >= 0) nan_grad_step_ = nan_step;

  const char* write_kind = std::getenv("MUSENET_FAULT_WRITE");
  if (write_kind != nullptr && *write_kind != '\0') {
    const WriteFault fault = ParseWriteFault(write_kind);
    if (fault != WriteFault::kNone) {
      write_fault_ = fault;
      write_trigger_ = EnvInt64("MUSENET_FAULT_WRITE_AT", 1);
    }
  }

  const int64_t alloc_at = EnvInt64("MUSENET_FAULT_ALLOC_AT", 0);
  if (alloc_at > 0) alloc_trigger_ = alloc_at;

  const char* slow_ms = std::getenv("MUSENET_FAULT_SLOW_REPLAY_MS");
  if (slow_ms != nullptr && *slow_ms != '\0') {
    const double millis = std::atof(slow_ms);
    if (millis > 0.0) {
      slow_replay_ms_ = millis;
      slow_replay_trigger_ = EnvInt64("MUSENET_FAULT_SLOW_REPLAY_AT", 1);
    }
  }

  const int64_t corrupt_at = EnvInt64("MUSENET_FAULT_SWAP_CORRUPT_AT", 0);
  if (corrupt_at > 0) swap_corrupt_trigger_ = corrupt_at;

  const int64_t load_fail_at = EnvInt64("MUSENET_FAULT_LOAD_FAIL_AT", 0);
  if (load_fail_at > 0) load_fail_trigger_ = load_fail_at;
  RecomputeArmed();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  nan_grad_step_ = -1;
  write_fault_ = WriteFault::kNone;
  write_trigger_ = 0;
  alloc_trigger_ = 0;
  slow_replay_ms_ = 0.0;
  slow_replay_trigger_ = 0;
  swap_corrupt_trigger_ = 0;
  load_fail_trigger_ = 0;
  stats_ = Stats{};
  RecomputeArmed();
}

void FaultInjector::ArmNanGradient(int64_t at_step) {
  std::lock_guard<std::mutex> lock(mu_);
  nan_grad_step_ = at_step;
  RecomputeArmed();
}

bool FaultInjector::TakeNanGradient(int64_t step) {
  if (!armed_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (nan_grad_step_ < 0 || step != nan_grad_step_) return false;
  nan_grad_step_ = -1;
  ++stats_.nan_grads;
  RecomputeArmed();
  NoteActivation("fault.nan_grad", "faults.nan_grads");
  return true;
}

void FaultInjector::ArmWriteFault(WriteFault fault, int64_t at_write) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_ = fault;
  write_trigger_ = fault == WriteFault::kNone ? 0 : at_write;
  RecomputeArmed();
}

FaultInjector::WriteFault FaultInjector::TakeWriteFault() {
  if (!armed_) return WriteFault::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  if (write_trigger_ <= 0) return WriteFault::kNone;
  if (--write_trigger_ > 0) return WriteFault::kNone;
  const WriteFault fault = write_fault_;
  write_fault_ = WriteFault::kNone;
  ++stats_.write_faults;
  RecomputeArmed();
  NoteActivation("fault.write", "faults.writes");
  return fault;
}

void FaultInjector::ArmAllocFailure(int64_t at_alloc) {
  std::lock_guard<std::mutex> lock(mu_);
  alloc_trigger_ = at_alloc;
  RecomputeArmed();
}

bool FaultInjector::TakeAllocFailure() {
  if (!armed_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (alloc_trigger_ <= 0) return false;
  if (--alloc_trigger_ > 0) return false;
  ++stats_.alloc_failures;
  RecomputeArmed();
  NoteActivation("fault.alloc", "faults.allocs");
  return true;
}

void FaultInjector::ArmSlowReplay(double millis, int64_t at_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_replay_ms_ = millis;
  slow_replay_trigger_ = millis > 0.0 ? at_batch : 0;
  RecomputeArmed();
}

double FaultInjector::TakeSlowReplay() {
  if (!armed_) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  if (slow_replay_trigger_ <= 0) return 0.0;
  if (--slow_replay_trigger_ > 0) return 0.0;
  const double millis = slow_replay_ms_;
  slow_replay_ms_ = 0.0;
  ++stats_.slow_replays;
  RecomputeArmed();
  NoteActivation("fault.slow_replay", "faults.slow_replays");
  return millis;
}

void FaultInjector::ArmSwapCorrupt(int64_t at_load) {
  std::lock_guard<std::mutex> lock(mu_);
  swap_corrupt_trigger_ = at_load;
  RecomputeArmed();
}

bool FaultInjector::TakeSwapCorrupt() {
  if (!armed_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (swap_corrupt_trigger_ <= 0) return false;
  if (--swap_corrupt_trigger_ > 0) return false;
  ++stats_.swap_corrupts;
  RecomputeArmed();
  NoteActivation("fault.swap_corrupt", "faults.swap_corrupts");
  return true;
}

void FaultInjector::ArmLoadFailure(int64_t at_load) {
  std::lock_guard<std::mutex> lock(mu_);
  load_fail_trigger_ = at_load;
  RecomputeArmed();
}

bool FaultInjector::TakeLoadFailure() {
  if (!armed_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (load_fail_trigger_ <= 0) return false;
  if (--load_fail_trigger_ > 0) return false;
  ++stats_.load_failures;
  RecomputeArmed();
  NoteActivation("fault.load_failure", "faults.load_failures");
  return true;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjector::RecomputeArmed() {
  armed_ = nan_grad_step_ >= 0 || write_trigger_ > 0 || alloc_trigger_ > 0 ||
           slow_replay_trigger_ > 0 || swap_corrupt_trigger_ > 0 ||
           load_fail_trigger_ > 0;
}

}  // namespace musenet::util
