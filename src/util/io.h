#ifndef MUSENET_UTIL_IO_H_
#define MUSENET_UTIL_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace musenet::util {

/// Reads an entire file into a string. Short reads (the file shrinking under
/// us, I/O errors mid-read) are reported as IoError, never returned as a
/// silently truncated buffer. Allocation of the read buffer is a guarded
/// fault-injection site (MUSENET_FAULT_ALLOC_AT).
Result<std::string> ReadFileToString(const std::string& path);

/// Crash-safe whole-file write:
///   1. write `bytes` to `<path>.tmp.<pid>`,
///   2. fsync the temp file (data durable before it becomes visible),
///   3. rename it over `path` (atomic on POSIX),
///   4. fsync the parent directory (the rename itself durable).
/// A crash at any point leaves either the complete old file or the complete
/// new file at `path` — never a prefix. The temp file is unlinked on any
/// failure. This is a fault-injection site (MUSENET_FAULT_WRITE): torn and
/// bit-flipped writes and crash-before-rename can be simulated
/// deterministically to exercise checkpoint-recovery paths.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

}  // namespace musenet::util

#endif  // MUSENET_UTIL_IO_H_
