#ifndef MUSENET_UTIL_STOPWATCH_H_
#define MUSENET_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace musenet::util {

/// Monotonic stopwatch over std::chrono::steady_clock with nanosecond
/// resolution. Used for everything from coarse experiment timing (seconds)
/// to span timestamps in the obs tracing layer (nanoseconds); keeping a
/// single clock source means trace spans, bench timings and run-log
/// durations are directly comparable.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Nanoseconds since an arbitrary process-wide anchor (the first call in the
/// process). All threads share the anchor, so timestamps from different
/// threads are mutually ordered — the property the trace merger relies on.
int64_t MonotonicNowNanos();

}  // namespace musenet::util

namespace musenet {
// Historical spelling: the stopwatch predates the util:: move and is used
// unqualified throughout bench/ and examples/.
using util::Stopwatch;
}  // namespace musenet

#endif  // MUSENET_UTIL_STOPWATCH_H_
