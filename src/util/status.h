#ifndef MUSENET_UTIL_STATUS_H_
#define MUSENET_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace musenet {

/// Machine-readable category of a Status.
///
/// The set is intentionally small: it mirrors the categories that appear in
/// practice in this library (argument validation, shape validation, I/O and
/// missing functionality). Add codes only when callers need to branch on them.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kCancelled = 9,
};

/// Returns the canonical lowercase name of `code` (e.g. "invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style status object for fallible library-boundary APIs.
///
/// Library code never throws; functions that can fail return `Status` (or
/// `Result<T>` when they also produce a value). The OK status carries no
/// allocation and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-Status result type (a lightweight `arrow::Result` analogue).
///
/// Invariant: exactly one of {value, non-OK status} is present. Accessing
/// `value()` on an error result aborts in debug builds and is undefined in
/// release builds; call `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — enables `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (necessarily non-OK) status — enables
  /// `return Status::InvalidArgument(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Moves the value out, or returns `fallback` when in error state.
  T value_or(T fallback) && {
    return ok() ? *std::move(value_) : std::move(fallback);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK status to the caller: `MUSE_RETURN_IF_ERROR(DoIt());`.
#define MUSE_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::musenet::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Unwraps a Result<T> into `lhs` or propagates its error status.
#define MUSE_ASSIGN_OR_RETURN(lhs, expr)       \
  auto MUSE_CONCAT_(_res_, __LINE__) = (expr); \
  if (!MUSE_CONCAT_(_res_, __LINE__).ok())     \
    return MUSE_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(MUSE_CONCAT_(_res_, __LINE__)).value()

#define MUSE_CONCAT_IMPL_(a, b) a##b
#define MUSE_CONCAT_(a, b) MUSE_CONCAT_IMPL_(a, b)

}  // namespace musenet

#endif  // MUSENET_UTIL_STATUS_H_
