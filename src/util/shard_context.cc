#include "util/shard_context.h"

namespace musenet::util {

namespace {
thread_local ShardContext* t_current_shard = nullptr;
}  // namespace

ShardContext* ShardContext::Current() { return t_current_shard; }

ShardContext::Scope::Scope(ShardContext* context)
    : previous_(t_current_shard) {
  t_current_shard = context;
}

ShardContext::Scope::~Scope() { t_current_shard = previous_; }

Rng& ShardRng(Rng& parent) {
  if (ShardContext* shard = ShardContext::Current()) {
    if (Rng* child = shard->FindRng(&parent)) return *child;
  }
  return parent;
}

}  // namespace musenet::util
