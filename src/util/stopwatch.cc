#include "util/stopwatch.h"

namespace musenet::util {

int64_t MonotonicNowNanos() {
  // Anchored at the first call so trace timestamps start near zero (easier
  // to read in Perfetto than nanoseconds since boot).
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

}  // namespace musenet::util
