#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace musenet::util {

namespace {

// Set while a thread is executing chunks; nested ParallelFor calls detect it
// and run inline.
thread_local bool t_inside_parallel_region = false;

int EnvNumThreads() {
  const char* env = std::getenv("MUSENET_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, 256));
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job& job) {
  const bool was_inside = t_inside_parallel_region;
  t_inside_parallel_region = true;
  // One span per task batch: the chunks THIS thread claimed from the job.
  // Worker idle gaps and load imbalance show up directly as staggered
  // "parallel_for.batch" spans across tids in the trace viewer.
  obs::ScopedSpan span("parallel_for.batch");
  int64_t done = 0;
  for (;;) {
    const int64_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    const int64_t lo = job.begin + chunk * job.grain;
    const int64_t hi = std::min(job.end, lo + job.grain);
    job.fn(job.ctx, lo, hi);
    ++done;
  }
  span.SetArg("chunks", done);
  t_inside_parallel_region = was_inside;
  if (done > 0 &&
      job.chunks_done.fetch_add(done, std::memory_order_acq_rel) + done ==
          job.num_chunks) {
    // Last chunk finished: wake the caller. The lock orders the notify
    // against the caller entering its wait.
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    bool take = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      // The job may already have retired (all chunks claimed and the caller
      // cleared the slot) by the time this worker wakes; join only while
      // the slot is live so the caller's retire wait stays exact.
      if (job_active_) {
        ++active_workers_;
        take = true;
      }
    }
    if (!take) continue;
    RunChunks(job_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_workers_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelForRaw(int64_t begin, int64_t end, int64_t grain,
                                ChunkFn fn, void* ctx) {
  ParallelForRawImpl(begin, end, grain, fn, ctx, /*force_parallel=*/false);
}

bool ThreadPool::InsideParallelRegion() { return t_inside_parallel_region; }

void ThreadPool::ParallelForRawImpl(int64_t begin, int64_t end, int64_t grain,
                                    ChunkFn fn, void* ctx,
                                    bool force_parallel) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Registry lookups resolve once; afterwards this is two relaxed
  // fetch_adds on thread-striped shards per call.
  static obs::Counter& calls_counter = obs::GetCounter("parallel_for.calls");
  static obs::Counter& chunks_counter = obs::GetCounter("parallel_for.chunks");
  calls_counter.Add();
  chunks_counter.Add(num_chunks);

  // Sequential path: single-thread pool, a single chunk, or a nested call
  // from inside a parallel region (unless the caller forced a cross-pool
  // dispatch). Chunk boundaries are identical to the parallel path, so
  // reduction kernels see the same partial slots.
  if (num_threads_ == 1 || num_chunks == 1 ||
      (t_inside_parallel_region && !force_parallel)) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      fn(ctx, lo, hi);
    }
    return;
  }

  // One job slot: a concurrent top-level caller queues here until the
  // current job retires. Nothing below allocates.
  std::lock_guard<std::mutex> submit(submit_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.begin = begin;
    job_.end = end;
    job_.grain = grain;
    job_.num_chunks = num_chunks;
    job_.fn = fn;
    job_.ctx = ctx;
    job_.next_chunk.store(0, std::memory_order_relaxed);
    job_.chunks_done.store(0, std::memory_order_relaxed);
    job_active_ = true;
    ++job_generation_;
  }
  work_cv_.notify_all();
  RunChunks(job_);  // The calling thread is one of the pool's threads.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Wait for completion AND for every joined worker to leave RunChunks —
    // only then can the slot be reused without a worker reading stale state.
    done_cv_.wait(lock, [&] {
      return job_.chunks_done.load(std::memory_order_acquire) == num_chunks &&
             active_workers_ == 0;
    });
    job_active_ = false;
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(EnvNumThreads());
  return *pool;
}

namespace {
ThreadPool* g_active_pool = nullptr;
}  // namespace

ThreadPool& ActivePool() {
  return g_active_pool != nullptr ? *g_active_pool : ThreadPool::Global();
}

ScopedActivePool::ScopedActivePool(ThreadPool* pool)
    : previous_(g_active_pool) {
  g_active_pool = pool;
}

ScopedActivePool::~ScopedActivePool() { g_active_pool = previous_; }

namespace {
// Product of active fan-out claims. Claims are rare (one per pipeline run),
// so plain atomic read-modify-writes are plenty.
std::atomic<int> g_claimed_fanout{1};
}  // namespace

ScopedFanoutClaim::ScopedFanoutClaim(int width)
    : width_(std::max(1, width)) {
  int expected = g_claimed_fanout.load(std::memory_order_relaxed);
  while (!g_claimed_fanout.compare_exchange_weak(
      expected, expected * width_, std::memory_order_relaxed)) {
  }
}

ScopedFanoutClaim::~ScopedFanoutClaim() {
  int expected = g_claimed_fanout.load(std::memory_order_relaxed);
  while (!g_claimed_fanout.compare_exchange_weak(
      expected, std::max(1, expected / width_), std::memory_order_relaxed)) {
  }
}

int ScopedFanoutClaim::Claimed() {
  return std::max(1, g_claimed_fanout.load(std::memory_order_relaxed));
}

int NestedParallelBudget(int requested) {
  requested = std::max(1, requested);
  const int claimed = ScopedFanoutClaim::Claimed();
  if (claimed <= 1) return requested;
  const int budget =
      std::max(1, ThreadPool::Global().num_threads() / claimed);
  return std::min(requested, budget);
}

}  // namespace musenet::util
