#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace musenet::util {

namespace {

// Set while a thread is executing chunks; nested ParallelFor calls detect it
// and run inline.
thread_local bool t_inside_parallel_region = false;

int EnvNumThreads() {
  const char* env = std::getenv("MUSENET_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return std::min(parsed, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, 256));
}

}  // namespace

/// One parallel-for invocation. Workers keep a shared_ptr while they touch
/// it, so a late-waking worker can never observe freed memory. Completion is
/// tracked per chunk: the caller returns once every chunk has been executed,
/// regardless of how many workers joined in.
struct ThreadPool::Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job& job) {
  const bool was_inside = t_inside_parallel_region;
  t_inside_parallel_region = true;
  // One span per task batch: the chunks THIS thread claimed from the job.
  // Worker idle gaps and load imbalance show up directly as staggered
  // "parallel_for.batch" spans across tids in the trace viewer.
  obs::ScopedSpan span("parallel_for.batch");
  int64_t done = 0;
  for (;;) {
    const int64_t chunk =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.num_chunks) break;
    const int64_t lo = job.begin + chunk * job.grain;
    const int64_t hi = std::min(job.end, lo + job.grain);
    (*job.fn)(lo, hi);
    ++done;
  }
  span.SetArg("chunks", done);
  t_inside_parallel_region = was_inside;
  if (done > 0 &&
      job.chunks_done.fetch_add(done, std::memory_order_acq_rel) + done ==
          job.num_chunks) {
    // Last chunk finished: wake the caller. The lock orders the notify
    // against the caller entering its wait.
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      job = current_job_;  // May already be null if the job finished.
    }
    if (job != nullptr) RunChunks(*job);
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Registry lookups resolve once; afterwards this is two relaxed
  // fetch_adds on thread-striped shards per call.
  static obs::Counter& calls_counter = obs::GetCounter("parallel_for.calls");
  static obs::Counter& chunks_counter = obs::GetCounter("parallel_for.chunks");
  calls_counter.Add();
  chunks_counter.Add(num_chunks);

  // Sequential path: single-thread pool, a single chunk, or a nested call
  // from inside a parallel region. Chunk boundaries are identical to the
  // parallel path, so reduction kernels see the same partial slots.
  if (num_threads_ == 1 || num_chunks == 1 || t_inside_parallel_region) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      const int64_t lo = begin + chunk * grain;
      const int64_t hi = std::min(end, lo + grain);
      fn(lo, hi);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = job;
    ++job_generation_;
  }
  work_cv_.notify_all();
  RunChunks(*job);  // The calling thread is one of the pool's threads.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->chunks_done.load(std::memory_order_acquire) == num_chunks;
    });
    if (current_job_ == job) current_job_ = nullptr;
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(EnvNumThreads());
  return *pool;
}

namespace {
ThreadPool* g_active_pool = nullptr;
}  // namespace

ThreadPool& ActivePool() {
  return g_active_pool != nullptr ? *g_active_pool : ThreadPool::Global();
}

ScopedActivePool::ScopedActivePool(ThreadPool* pool)
    : previous_(g_active_pool) {
  g_active_pool = pool;
}

ScopedActivePool::~ScopedActivePool() { g_active_pool = previous_; }

}  // namespace musenet::util
