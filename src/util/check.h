#ifndef MUSENET_UTIL_CHECK_H_
#define MUSENET_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace musenet::internal {

/// Prints a fatal check failure and aborts. Used by the MUSE_CHECK macros on
/// hot paths where returning a Status would be impractical (indexing, shape
/// invariants inside kernels). Never returns.
[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "MUSE_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

/// Stream sink for the `MUSE_CHECK(...) << "context"` syntax.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFail(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace musenet::internal

/// Aborts with a diagnostic if `cond` is false. Enabled in all build types:
/// kernel invariants guard memory safety, so they stay on in Release.
#define MUSE_CHECK(cond)                                                  \
  while (!(cond))                                                         \
  ::musenet::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define MUSE_CHECK_EQ(a, b) MUSE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define MUSE_CHECK_NE(a, b) MUSE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define MUSE_CHECK_LT(a, b) MUSE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define MUSE_CHECK_LE(a, b) MUSE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define MUSE_CHECK_GT(a, b) MUSE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define MUSE_CHECK_GE(a, b) MUSE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Cheaper checks compiled out of Release builds (per-element index guards).
#ifdef NDEBUG
#define MUSE_DCHECK(cond) \
  while (false) ::musenet::internal::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define MUSE_DCHECK(cond) MUSE_CHECK(cond)
#endif

#endif  // MUSENET_UTIL_CHECK_H_
