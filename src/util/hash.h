#ifndef MUSENET_UTIL_HASH_H_
#define MUSENET_UTIL_HASH_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace musenet::util {

/// 64-bit FNV-1a offset basis / prime (the reference constants).
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// FNV-1a over `len` bytes. Pass a previous digest as `seed` to hash data in
/// pieces: Fnv1a64(b, nb, Fnv1a64(a, na)) equals the hash of the
/// concatenation. Deterministic across platforms, runs and thread counts —
/// the content-addressed experiment pipeline keys its stage cache with it.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = kFnv1aOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= kFnv1aPrime;
  }
  return hash;
}

inline uint64_t Fnv1a64(std::string_view text,
                        uint64_t seed = kFnv1aOffset) {
  return Fnv1a64(text.data(), text.size(), seed);
}

/// Fixed-width lowercase hex of a 64-bit digest ("0123456789abcdef").
inline std::string HashHex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, 16);
}

/// Canonicalized key=value content fingerprint.
///
/// Fields are appended as "key=value\n" lines in call order (callers use a
/// fixed field order, so equal configurations always canonicalize to equal
/// strings). The digest is FNV-1a over the canonical text, which makes cache
/// keys stable across runs, platforms and thread counts, and lets the
/// pipeline diff two canonical strings line-by-line to explain exactly which
/// field invalidated a cached stage.
class Fingerprint {
 public:
  Fingerprint& Add(std::string_view key, std::string_view value) {
    canonical_.append(key);
    canonical_.push_back('=');
    canonical_.append(value);
    canonical_.push_back('\n');
    return *this;
  }
  Fingerprint& Add(std::string_view key, int64_t value) {
    return Add(key, std::to_string(value));
  }
  Fingerprint& Add(std::string_view key, uint64_t value) {
    return Add(key, std::to_string(value));
  }
  Fingerprint& Add(std::string_view key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  Fingerprint& Add(std::string_view key, bool value) {
    return Add(key, value ? std::string_view("true")
                          : std::string_view("false"));
  }
  /// Doubles canonicalize via shortest round-trip formatting (%.17g keeps
  /// every bit, so 1e-3 and 0.001 collide only when they are the same
  /// double).
  Fingerprint& Add(std::string_view key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return Add(key, std::string_view(buf));
  }

  /// The canonical "key=value\n" text accumulated so far.
  const std::string& canonical() const { return canonical_; }

  uint64_t Digest() const { return Fnv1a64(canonical_); }
  std::string Hex() const { return HashHex(Digest()); }

 private:
  std::string canonical_;
};

}  // namespace musenet::util

#endif  // MUSENET_UTIL_HASH_H_
