#include "optim/sgd.h"

#include "util/check.h"

namespace musenet::optim {

Sgd::Sgd(std::vector<autograd::Variable> params, double learning_rate,
         double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  MUSE_CHECK_GE(momentum, 0.0);
  set_learning_rate(learning_rate);
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(tensor::Tensor::Zeros(p.value().shape()));
  }
}

std::map<std::string, tensor::Tensor> Sgd::StateTensors() const {
  std::map<std::string, tensor::Tensor> state;
  SaveSlotTensors("vel", velocity_, &state);
  return state;
}

Status Sgd::LoadStateTensors(
    const std::map<std::string, tensor::Tensor>& state) {
  std::vector<tensor::Tensor> velocity;
  MUSE_RETURN_IF_ERROR(LoadSlotTensors(state, "vel", params_, &velocity));
  velocity_ = std::move(velocity);
  return Status::OK();
}

void Sgd::Step() {
  const float lr = static_cast<float>(learning_rate());
  const float mu = static_cast<float>(momentum_);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    tensor::Tensor& v = velocity_[i];
    tensor::Tensor& theta = p.mutable_value();
    MUSE_CHECK(v.shape() == theta.shape())
        << "SGD velocity shape " << v.shape().ToString()
        << " does not match parameter shape " << theta.shape().ToString()
        << " (param " << i << ")";
    float* pv = v.mutable_data();
    float* pt = theta.mutable_data();
    const float* pg = g.data();
    const int64_t n = theta.num_elements();
    for (int64_t j = 0; j < n; ++j) {
      pv[j] = mu * pv[j] + pg[j];
      pt[j] -= lr * pv[j];
    }
  }
}

}  // namespace musenet::optim
