#include "optim/adam.h"

#include <cmath>

#include "tensor/kernel_util.h"
#include "tensor/serialize.h"
#include "util/check.h"

namespace musenet::optim {

Adam::Adam(std::vector<autograd::Variable> params, double learning_rate)
    : Adam(std::move(params), learning_rate, Options{}) {}

Adam::Adam(std::vector<autograd::Variable> params, double learning_rate,
           Options options)
    : Optimizer(std::move(params)), options_(options) {
  MUSE_CHECK(options.beta1 >= 0.0 && options.beta1 < 1.0);
  MUSE_CHECK(options.beta2 >= 0.0 && options.beta2 < 1.0);
  set_learning_rate(learning_rate);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(tensor::Tensor::Zeros(p.value().shape()));
    v_.emplace_back(tensor::Tensor::Zeros(p.value().shape()));
  }
}

std::map<std::string, tensor::Tensor> Adam::StateTensors() const {
  std::map<std::string, tensor::Tensor> state;
  SaveSlotTensors("m", m_, &state);
  SaveSlotTensors("v", v_, &state);
  state.emplace("step",
                tensor::PackWords64({static_cast<uint64_t>(step_count_)}));
  return state;
}

Status Adam::LoadStateTensors(
    const std::map<std::string, tensor::Tensor>& state) {
  auto step_it = state.find("step");
  if (step_it == state.end()) {
    return Status::InvalidArgument("adam state missing 'step' record");
  }
  MUSE_ASSIGN_OR_RETURN(const std::vector<uint64_t> step_words,
                        tensor::UnpackWords64(step_it->second));
  if (step_words.size() != 1) {
    return Status::InvalidArgument("adam 'step' record has wrong size");
  }
  std::vector<tensor::Tensor> m, v;
  MUSE_RETURN_IF_ERROR(LoadSlotTensors(state, "m", params_, &m));
  MUSE_RETURN_IF_ERROR(LoadSlotTensors(state, "v", params_, &v));
  m_ = std::move(m);
  v_ = std::move(v);
  step_count_ = static_cast<int64_t>(step_words[0]);
  return Status::OK();
}

void Adam::Step() {
  ++step_count_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(step_count_));
  const double lr = learning_rate();
  const double eps = options_.epsilon;
  const float wd = static_cast<float>(options_.weight_decay);

  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    tensor::Tensor& theta = p.mutable_value();
    MUSE_CHECK(m_[i].shape() == theta.shape() && v_[i].shape() == theta.shape())
        << "Adam state shape " << m_[i].shape().ToString()
        << " does not match parameter shape " << theta.shape().ToString()
        << " (param " << i << ")";
    MUSE_CHECK(g.shape() == theta.shape())
        << "Adam gradient shape " << g.shape().ToString()
        << " does not match parameter shape " << theta.shape().ToString();
    // __restrict lets the compiler vectorize the loop; each element's update
    // is independent and uses only correctly rounded operations
    // (+,*,/,sqrt), so chunked parallel execution is bit-identical to the
    // sequential loop.
    float* __restrict pm = m_[i].mutable_data();
    float* __restrict pv = v_[i].mutable_data();
    float* __restrict pt = theta.mutable_data();
    const float* __restrict pg = g.data();
    tensor::MaybeParallelFor(
        theta.num_elements(), [&](int64_t lo, int64_t hi) {
          for (int64_t j = lo; j < hi; ++j) {
            const double grad = pg[j] + wd * pt[j];
            pm[j] = static_cast<float>(b1 * pm[j] + (1.0 - b1) * grad);
            pv[j] = static_cast<float>(b2 * pv[j] + (1.0 - b2) * grad * grad);
            const double m_hat = pm[j] / bias1;
            const double v_hat = pv[j] / bias2;
            pt[j] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
          }
        });
  }
}

}  // namespace musenet::optim
