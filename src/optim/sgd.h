#ifndef MUSENET_OPTIM_SGD_H_
#define MUSENET_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace musenet::optim {

/// Stochastic gradient descent with optional classical momentum:
///   v ← μ v + g;  θ ← θ − lr · v.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, double learning_rate,
      double momentum = 0.0);

  void Step() override;

  std::string_view kind() const override { return "sgd"; }

  /// Records: "vel/NNNN", one velocity buffer per parameter.
  std::map<std::string, tensor::Tensor> StateTensors() const override;
  Status LoadStateTensors(
      const std::map<std::string, tensor::Tensor>& state) override;

 private:
  double momentum_;
  std::vector<tensor::Tensor> velocity_;  ///< One per parameter.
};

}  // namespace musenet::optim

#endif  // MUSENET_OPTIM_SGD_H_
