#ifndef MUSENET_OPTIM_OPTIMIZER_H_
#define MUSENET_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace musenet::optim {

/// Base class of first-order optimizers.
///
/// An optimizer holds handles to the parameter Variables (shared graph nodes,
/// so updates are visible to the model) and consumes the gradients that a
/// Backward pass accumulated into them. Parameters whose gradient was not
/// reached by the last backward pass are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients (call after Step, before next forward).
  void ZeroGrad();

  /// Current learning rate.
  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
  double learning_rate_ = 1e-3;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm. No-op (returns the norm) when already
/// within bounds or when no parameter has a gradient.
double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm);

}  // namespace musenet::optim

#endif  // MUSENET_OPTIM_OPTIMIZER_H_
