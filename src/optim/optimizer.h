#ifndef MUSENET_OPTIM_OPTIMIZER_H_
#define MUSENET_OPTIM_OPTIMIZER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "autograd/variable.h"
#include "util/status.h"

namespace musenet::optim {

/// Base class of first-order optimizers.
///
/// An optimizer holds handles to the parameter Variables (shared graph nodes,
/// so updates are visible to the model) and consumes the gradients that a
/// Backward pass accumulated into them. Parameters whose gradient was not
/// reached by the last backward pass are skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the currently accumulated gradients.
  virtual void Step() = 0;

  /// Algorithm name ("adam", "sgd"); keys checkpoint records so a resume
  /// with a different optimizer fails loudly instead of silently reusing
  /// foreign moment buffers.
  virtual std::string_view kind() const = 0;

  /// Serializes the optimizer's internal state (moment buffers, step
  /// counters) as named tensors; together with the model StateDict and RNG
  /// snapshots this makes an interrupted run bit-exactly resumable.
  virtual std::map<std::string, tensor::Tensor> StateTensors() const = 0;

  /// Restores state written by StateTensors. Validates record names and
  /// every buffer shape against the current parameter list; on mismatch the
  /// Status names the offending record and nothing is modified.
  virtual Status LoadStateTensors(
      const std::map<std::string, tensor::Tensor>& state) = 0;

  /// Clears all parameter gradients (call after Step, before next forward).
  void ZeroGrad();

  /// Current learning rate.
  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

  const std::vector<autograd::Variable>& params() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
  double learning_rate_ = 1e-3;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm. No-op (returns the norm) when already
/// within bounds or when no parameter has a gradient.
double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm);

/// Scans every parameter gradient for NaN/Inf. Returns OK when all finite;
/// otherwise an Internal status naming the first offending parameter index,
/// its non-finite element count and the flat index of the first bad element
/// — the diagnostics the training loop's FailurePolicy surfaces.
Status CheckGradsFinite(const std::vector<autograd::Variable>& params);

/// One shard's gradient contributions, indexed like the parameter list.
/// `present[i]` is non-zero when the shard's backward pass reached parameter
/// i (a parameter untouched by every shard ends up without a gradient, just
/// as in single-stream training).
struct ShardGradients {
  std::vector<tensor::Tensor> grads;
  std::vector<uint8_t> present;
};

/// Combines per-shard gradients into each parameter's accumulator with a
/// fixed-topology binary tree over the shard index:
///
///   for stride = 1, 2, 4, ...:  grads[i] += grads[i + stride]
///
/// and installs the shard-0 result as the parameter's gradient. The tree
/// shape depends only on the shard count, and each parameter's reduction
/// runs entirely inside one ParallelFor chunk, so the result is bit-exact
/// for a given shard count regardless of thread count. Consumes the shard
/// buffers. Parameter gradient accumulators must be clear on entry
/// (ZeroGrad), as after a fresh backward pass.
void ReduceShardGradients(const std::vector<autograd::Variable>& params,
                          std::vector<ShardGradients>* shards);

/// "m/0007"-style record name for per-parameter optimizer state slots.
std::string SlotRecordName(std::string_view slot, size_t index);

/// Writes one tensor per parameter into `out` under SlotRecordName keys.
void SaveSlotTensors(std::string_view slot,
                     const std::vector<tensor::Tensor>& buffers,
                     std::map<std::string, tensor::Tensor>* out);

/// Reads back a SaveSlotTensors record set, validating that every record is
/// present with the matching parameter shape. `out` is only modified on
/// success.
Status LoadSlotTensors(const std::map<std::string, tensor::Tensor>& state,
                       std::string_view slot,
                       const std::vector<autograd::Variable>& params,
                       std::vector<tensor::Tensor>* out);

}  // namespace musenet::optim

#endif  // MUSENET_OPTIM_OPTIMIZER_H_
