#include "optim/optimizer.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace musenet::optim {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm) {
  double sq_norm = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    const float* pg = g.data();
    const int64_t n = g.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      sq_norm += static_cast<double>(pg[i]) * pg[i];
    }
  }
  const double norm = std::sqrt(sq_norm);
  if (norm <= max_norm || norm == 0.0) return norm;
  const float scale = static_cast<float>(max_norm / norm);
  for (auto& p : params) {
    if (!p.has_grad()) continue;
    // Scale in place through the node: grad is stored on the shared node.
    auto node = p.node();
    float* pg = node->grad.mutable_data();
    const int64_t n = node->grad.num_elements();
    for (int64_t i = 0; i < n; ++i) pg[i] *= scale;
  }
  return norm;
}

Status CheckGradsFinite(const std::vector<autograd::Variable>& params) {
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i].has_grad()) continue;
    const tensor::NonFiniteReport report =
        tensor::CountNonFinite(params[i].grad());
    if (report.count > 0) {
      return Status::Internal(
          "non-finite gradient in parameter " + std::to_string(i) + " (shape " +
          params[i].value().shape().ToString() + "): " +
          std::to_string(report.count) + " of " +
          std::to_string(params[i].grad().num_elements()) +
          " elements NaN/Inf, first at flat index " +
          std::to_string(report.first_index));
    }
  }
  return Status::OK();
}

std::string SlotRecordName(std::string_view slot, size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s/%04zu", std::string(slot).c_str(),
                index);
  return buf;
}

void SaveSlotTensors(std::string_view slot,
                     const std::vector<tensor::Tensor>& buffers,
                     std::map<std::string, tensor::Tensor>* out) {
  for (size_t i = 0; i < buffers.size(); ++i) {
    out->emplace(SlotRecordName(slot, i), buffers[i]);
  }
}

Status LoadSlotTensors(const std::map<std::string, tensor::Tensor>& state,
                       std::string_view slot,
                       const std::vector<autograd::Variable>& params,
                       std::vector<tensor::Tensor>* out) {
  std::vector<tensor::Tensor> loaded;
  loaded.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const std::string key = SlotRecordName(slot, i);
    auto it = state.find(key);
    if (it == state.end()) {
      return Status::InvalidArgument("optimizer state record '" + key +
                                     "' missing (checkpoint has " +
                                     std::to_string(state.size()) +
                                     " records for " +
                                     std::to_string(params.size()) +
                                     " parameters)");
    }
    if (it->second.shape() != params[i].value().shape()) {
      return Status::InvalidArgument(
          "optimizer state record '" + key + "' has shape " +
          it->second.shape().ToString() + " but parameter " +
          std::to_string(i) + " has shape " +
          params[i].value().shape().ToString());
    }
    loaded.push_back(it->second);
  }
  *out = std::move(loaded);
  return Status::OK();
}

void ReduceShardGradients(const std::vector<autograd::Variable>& params,
                          std::vector<ShardGradients>* shards) {
  MUSE_CHECK(shards != nullptr);
  const size_t num_shards = shards->size();
  if (num_shards == 0) return;
  for (const ShardGradients& shard : *shards) {
    MUSE_CHECK_EQ(shard.grads.size(), params.size());
    MUSE_CHECK_EQ(shard.present.size(), params.size());
  }

  // Grain 1: each parameter's full tree runs inside one chunk, so the
  // reduction order is a function of the shard count alone — worker threads
  // only decide WHICH parameter a thread reduces, never the order within.
  util::ActivePool().ParallelFor(
      0, static_cast<int64_t>(params.size()), 1,
      [&](int64_t lo, int64_t hi) {
        for (int64_t p = lo; p < hi; ++p) {
          const size_t idx = static_cast<size_t>(p);
          for (size_t stride = 1; stride < num_shards; stride *= 2) {
            for (size_t i = 0; i + stride < num_shards; i += 2 * stride) {
              ShardGradients& dst = (*shards)[i];
              ShardGradients& src = (*shards)[i + stride];
              if (!src.present[idx]) continue;
              if (dst.present[idx]) {
                tensor::AddInPlace(dst.grads[idx], src.grads[idx]);
              } else {
                dst.grads[idx] = std::move(src.grads[idx]);
                dst.present[idx] = 1;
              }
              src.grads[idx] = tensor::Tensor();
              src.present[idx] = 0;
            }
          }
          if ((*shards)[0].present[idx]) {
            auto node = params[idx].node();
            autograd::AccumulateGrad(*node,
                                     std::move((*shards)[0].grads[idx]));
            (*shards)[0].grads[idx] = tensor::Tensor();
            (*shards)[0].present[idx] = 0;
          }
        }
      });
}

}  // namespace musenet::optim
