#include "optim/optimizer.h"

#include <cmath>

namespace musenet::optim {

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

double ClipGradNorm(const std::vector<autograd::Variable>& params,
                    double max_norm) {
  double sq_norm = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const tensor::Tensor& g = p.grad();
    const float* pg = g.data();
    const int64_t n = g.num_elements();
    for (int64_t i = 0; i < n; ++i) {
      sq_norm += static_cast<double>(pg[i]) * pg[i];
    }
  }
  const double norm = std::sqrt(sq_norm);
  if (norm <= max_norm || norm == 0.0) return norm;
  const float scale = static_cast<float>(max_norm / norm);
  for (auto& p : params) {
    if (!p.has_grad()) continue;
    // Scale in place through the node: grad is stored on the shared node.
    auto node = p.node();
    float* pg = node->grad.mutable_data();
    const int64_t n = node->grad.num_elements();
    for (int64_t i = 0; i < n; ++i) pg[i] *= scale;
  }
  return norm;
}

}  // namespace musenet::optim
