#ifndef MUSENET_OPTIM_LR_SCHEDULE_H_
#define MUSENET_OPTIM_LR_SCHEDULE_H_

#include <cmath>

#include "util/check.h"

namespace musenet::optim {

/// Learning-rate schedules. Each maps an epoch index to a learning rate;
/// trainers call `LearningRateAt` before every epoch and pass the result to
/// `Optimizer::set_learning_rate`.
///
/// Schedules are value types so TrainConfig-style structs can embed them.
struct LrSchedule {
  enum class Kind {
    kConstant,
    /// lr · decay^(epoch / step_size) (staircase).
    kStepDecay,
    /// Cosine annealing from lr to min_lr over total_epochs.
    kCosine,
    /// Linear warmup over warmup_epochs, then constant.
    kWarmup,
  };

  Kind kind = Kind::kConstant;
  double base_lr = 1e-3;
  double decay = 0.5;       ///< kStepDecay factor per step.
  int step_size = 10;       ///< kStepDecay epochs per step.
  double min_lr = 1e-5;     ///< kCosine floor.
  int total_epochs = 100;   ///< kCosine horizon.
  int warmup_epochs = 5;    ///< kWarmup ramp length.

  /// Learning rate for the given (0-based) epoch.
  double LearningRateAt(int epoch) const {
    MUSE_CHECK_GE(epoch, 0);
    switch (kind) {
      case Kind::kConstant:
        return base_lr;
      case Kind::kStepDecay:
        return base_lr * std::pow(decay, epoch / step_size);
      case Kind::kCosine: {
        const double progress =
            std::min(1.0, static_cast<double>(epoch) /
                              std::max(1, total_epochs - 1));
        return min_lr +
               0.5 * (base_lr - min_lr) * (1.0 + std::cos(M_PI * progress));
      }
      case Kind::kWarmup:
        if (epoch >= warmup_epochs) return base_lr;
        return base_lr * (epoch + 1) / std::max(1, warmup_epochs);
    }
    MUSE_CHECK(false) << "unreachable schedule kind";
    return base_lr;
  }

  static LrSchedule Constant(double lr) {
    return LrSchedule{.kind = Kind::kConstant, .base_lr = lr};
  }
  static LrSchedule StepDecay(double lr, double decay, int step_size) {
    return LrSchedule{.kind = Kind::kStepDecay,
                      .base_lr = lr,
                      .decay = decay,
                      .step_size = step_size};
  }
  static LrSchedule Cosine(double lr, double min_lr, int total_epochs) {
    LrSchedule s;
    s.kind = Kind::kCosine;
    s.base_lr = lr;
    s.min_lr = min_lr;
    s.total_epochs = total_epochs;
    return s;
  }
  static LrSchedule Warmup(double lr, int warmup_epochs) {
    LrSchedule s;
    s.kind = Kind::kWarmup;
    s.base_lr = lr;
    s.warmup_epochs = warmup_epochs;
    return s;
  }
};

}  // namespace musenet::optim

#endif  // MUSENET_OPTIM_LR_SCHEDULE_H_
