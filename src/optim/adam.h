#ifndef MUSENET_OPTIM_ADAM_H_
#define MUSENET_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"
#include "tensor/tensor.h"

namespace musenet::optim {

/// Adam (Kingma & Ba, 2015) with bias correction — the optimizer the paper
/// trains MUSE-Net with (lr = 2e-4 in the paper's setup).
class Adam : public Optimizer {
 public:
  struct Options {
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 0.0;  ///< L2 penalty added to the gradient.
  };

  Adam(std::vector<autograd::Variable> params, double learning_rate,
       Options options);
  /// Defaults: β1=0.9, β2=0.999, ε=1e-8, no weight decay.
  Adam(std::vector<autograd::Variable> params, double learning_rate);

  void Step() override;

  std::string_view kind() const override { return "adam"; }

  /// Records: "m/NNNN", "v/NNNN" (one pair per parameter) and "step" (packed
  /// step counter). Restoring them and re-running a step is bit-identical to
  /// never having paused (see train_resume_test).
  std::map<std::string, tensor::Tensor> StateTensors() const override;
  Status LoadStateTensors(
      const std::map<std::string, tensor::Tensor>& state) override;

  int64_t step_count() const { return step_count_; }

 private:
  Options options_;
  int64_t step_count_ = 0;
  std::vector<tensor::Tensor> m_;  ///< First-moment estimates.
  std::vector<tensor::Tensor> v_;  ///< Second-moment estimates.
};

}  // namespace musenet::optim

#endif  // MUSENET_OPTIM_ADAM_H_
