#include "data/dataset.h"

#include <algorithm>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace musenet::data {

TrafficDataset::TrafficDataset(sim::FlowSeries flows, DatasetOptions options)
    : flows_(std::move(flows)), options_(options) {
  const int f = flows_.intervals_per_day();
  const int64_t min_valid = options_.spec.MinValidIndex(f);
  const int64_t max_valid =
      flows_.num_intervals() - 1 - options_.horizon_offset;
  MUSE_CHECK_LT(min_valid, max_valid)
      << "series too short for the periodicity spec: needs more than "
      << min_valid << " intervals, has " << flows_.num_intervals();

  int test_days = options_.test_days;
  if (test_days <= 0) {
    const int64_t usable_days = (max_valid - min_valid + 1) / f;
    test_days = static_cast<int>(std::max<int64_t>(1, usable_days / 3));
  }
  const int64_t test_start =
      std::max(min_valid, max_valid + 1 - static_cast<int64_t>(test_days) * f);

  for (int64_t i = test_start; i <= max_valid; ++i) test_.push_back(i);

  std::vector<int64_t> fit_pool;
  for (int64_t i = min_valid; i < test_start; ++i) fit_pool.push_back(i);
  MUSE_CHECK(!fit_pool.empty()) << "no training samples before test span";

  // Validation = chronological tail of the pre-test span.
  const size_t val_count = static_cast<size_t>(
      options_.validation_fraction * static_cast<double>(fit_pool.size()));
  const size_t train_count = fit_pool.size() - val_count;
  train_.assign(fit_pool.begin(),
                fit_pool.begin() + static_cast<int64_t>(train_count));
  val_.assign(fit_pool.begin() + static_cast<int64_t>(train_count),
              fit_pool.end());

  // Optional stride subsampling to cap training cost (keeps chronological
  // coverage of the whole span).
  if (options_.max_train_samples > 0 &&
      static_cast<int64_t>(train_.size()) > options_.max_train_samples) {
    std::vector<int64_t> reduced;
    reduced.reserve(static_cast<size_t>(options_.max_train_samples));
    const double stride = static_cast<double>(train_.size()) /
                          static_cast<double>(options_.max_train_samples);
    for (int64_t k = 0; k < options_.max_train_samples; ++k) {
      reduced.push_back(train_[static_cast<size_t>(k * stride)]);
    }
    train_ = std::move(reduced);
  }

  // Scaler sees only pre-test frames (everything the model may train on).
  scaler_.Fit(flows_, test_start);
}

Batch TrafficDataset::MakeBatch(std::span<const int64_t> base_indices) const {
  MUSE_CHECK(!base_indices.empty());
  std::vector<tensor::Tensor> closeness;
  std::vector<tensor::Tensor> period;
  std::vector<tensor::Tensor> trend;
  std::vector<tensor::Tensor> target;
  Batch batch;
  for (int64_t i : base_indices) {
    Sample s =
        InterceptSample(flows_, options_.spec, i, options_.horizon_offset);
    const auto& cs = s.closeness.shape();
    closeness.push_back(scaler_.Transform(s.closeness)
                            .Reshape(tensor::Shape(
                                {1, cs.dim(0), cs.dim(1), cs.dim(2)})));
    const auto& ps = s.period.shape();
    period.push_back(scaler_.Transform(s.period).Reshape(
        tensor::Shape({1, ps.dim(0), ps.dim(1), ps.dim(2)})));
    const auto& tshape = s.trend.shape();
    trend.push_back(scaler_.Transform(s.trend).Reshape(tensor::Shape(
        {1, tshape.dim(0), tshape.dim(1), tshape.dim(2)})));
    const auto& ys = s.target.shape();
    target.push_back(scaler_.Transform(s.target).Reshape(
        tensor::Shape({1, ys.dim(0), ys.dim(1), ys.dim(2)})));
    batch.target_indices.push_back(s.target_index);
  }
  batch.closeness = tensor::Concat(closeness, 0);
  batch.period = tensor::Concat(period, 0);
  batch.trend = tensor::Concat(trend, 0);
  batch.target = tensor::Concat(target, 0);
  return batch;
}

Batch TrafficDataset::MakeBatchFromPool(std::span<const int64_t> pool,
                                        size_t begin, size_t count) const {
  MUSE_CHECK_LT(begin, pool.size());
  return MakeBatch(pool.subspan(begin, std::min(count, pool.size() - begin)));
}

}  // namespace musenet::data
