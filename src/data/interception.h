#ifndef MUSENET_DATA_INTERCEPTION_H_
#define MUSENET_DATA_INTERCEPTION_H_

#include <cstdint>

#include "sim/flow_series.h"
#include "tensor/tensor.h"

namespace musenet::data {

/// Lengths of the closeness / period / trend sub-series (paper Definition 3).
/// The paper (following DeepSTN+) uses (3, 4, 4) with hourly/daily/weekly
/// resolutions at f = 48 intervals per day.
struct PeriodicitySpec {
  int64_t len_closeness = 3;  ///< L_c: most recent consecutive intervals.
  int64_t len_period = 4;     ///< L_p: same interval on preceding days.
  int64_t len_trend = 4;      ///< L_t: same interval on preceding weeks.

  /// Earliest index i for which all three sub-series exist:
  /// the trend lookback L_t·f·7 dominates for the paper's settings.
  int64_t MinValidIndex(int intervals_per_day) const;

  /// Total channel count of one sub-series tensor with 2 flows per frame.
  int64_t ClosenessChannels() const { return 2 * len_closeness; }
  int64_t PeriodChannels() const { return 2 * len_period; }
  int64_t TrendChannels() const { return 2 * len_trend; }
};

/// One training/evaluation example: the ternary sub-series observed before
/// index i, and the target frame at i (+ optional extra horizon offset).
struct Sample {
  tensor::Tensor closeness;  ///< [2·L_c, H, W], frames i−L_c … i−1 (Eq. 3).
  tensor::Tensor period;     ///< [2·L_p, H, W], frames i−L_p·f … i−f (Eq. 4).
  tensor::Tensor trend;      ///< [2·L_t, H, W], weekly lags (Eq. 5).
  tensor::Tensor target;     ///< [2, H, W], frame i + horizon_offset.
  int64_t target_index = 0;  ///< Absolute interval of the target frame.
};

/// Builds the sample whose target is frame `i + horizon_offset` of `flows`,
/// intercepting sub-series per Eqs. (3)–(5) relative to base index `i`.
/// `i` must be ≥ spec.MinValidIndex and the target must be in range.
/// Channel layout: frame-major, flow-minor — channel 2·s+q is frame s's
/// flow q (q=0 outflow, q=1 inflow), frames ordered oldest → newest.
Sample InterceptSample(const sim::FlowSeries& flows,
                       const PeriodicitySpec& spec, int64_t i,
                       int64_t horizon_offset = 0);

}  // namespace musenet::data

#endif  // MUSENET_DATA_INTERCEPTION_H_
