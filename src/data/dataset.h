#ifndef MUSENET_DATA_DATASET_H_
#define MUSENET_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/interception.h"
#include "data/scaler.h"
#include "sim/flow_series.h"
#include "tensor/tensor.h"

namespace musenet::data {

/// Dataset construction options.
struct DatasetOptions {
  PeriodicitySpec spec;
  /// Horizon offset of the target: 0 = one-step (predict frame i), h−1 for
  /// direct multi-step horizon h (Table III).
  int64_t horizon_offset = 0;
  /// Days held out at the end for testing. 0 picks a third of the span,
  /// matching the paper's 40/20-day NYC split proportions.
  int test_days = 0;
  /// Fraction of the remaining (training) samples reserved for validation,
  /// taken from the chronological tail of the training span (paper: 10%).
  double validation_fraction = 0.1;
  /// Caps the training set by stride subsampling (0 = no cap). Used by the
  /// bench scale to bound single-core training time.
  int64_t max_train_samples = 0;
};

/// A mini-batch of scaled model inputs.
struct Batch {
  tensor::Tensor closeness;  ///< [B, 2·L_c, H, W], scaled to [-1, 1].
  tensor::Tensor period;     ///< [B, 2·L_p, H, W].
  tensor::Tensor trend;      ///< [B, 2·L_t, H, W].
  tensor::Tensor target;     ///< [B, 2, H, W], scaled.
  std::vector<int64_t> target_indices;  ///< Absolute target intervals.

  int64_t batch_size() const { return closeness.dim(0); }
};

/// Chronologically split, Min-Max scaled view over a FlowSeries that
/// materializes (C, P, T, target) batches on demand.
///
/// The scaler is fit on the training span only. Sample indices refer to the
/// *base* index i of Definition 3 (the target is frame i + horizon_offset).
class TrafficDataset {
 public:
  TrafficDataset(sim::FlowSeries flows, DatasetOptions options);

  const std::vector<int64_t>& train_indices() const { return train_; }
  const std::vector<int64_t>& val_indices() const { return val_; }
  const std::vector<int64_t>& test_indices() const { return test_; }

  /// Materializes a scaled batch for the given base indices. The span
  /// overload lets callers batch a window of an existing index pool without
  /// copying indices into a fresh vector.
  Batch MakeBatch(std::span<const int64_t> base_indices) const;
  Batch MakeBatch(const std::vector<int64_t>& base_indices) const {
    return MakeBatch(std::span<const int64_t>(base_indices));
  }

  /// Convenience: batch `count` indices of `pool` starting at `begin`
  /// (clamped to the pool size).
  Batch MakeBatchFromPool(std::span<const int64_t> pool, size_t begin,
                          size_t count) const;

  const MinMaxScaler& scaler() const { return scaler_; }
  const sim::FlowSeries& flows() const { return flows_; }
  const DatasetOptions& options() const { return options_; }

  int64_t closeness_channels() const {
    return options_.spec.ClosenessChannels();
  }
  int64_t period_channels() const { return options_.spec.PeriodChannels(); }
  int64_t trend_channels() const { return options_.spec.TrendChannels(); }
  int64_t grid_height() const { return flows_.grid().height; }
  int64_t grid_width() const { return flows_.grid().width; }

 private:
  sim::FlowSeries flows_;
  DatasetOptions options_;
  MinMaxScaler scaler_;
  std::vector<int64_t> train_;
  std::vector<int64_t> val_;
  std::vector<int64_t> test_;
};

}  // namespace musenet::data

#endif  // MUSENET_DATA_DATASET_H_
