#ifndef MUSENET_DATA_SCALER_H_
#define MUSENET_DATA_SCALER_H_

#include "sim/flow_series.h"
#include "tensor/tensor.h"

namespace musenet::data {

/// Min-Max scaler mapping flow volumes into [-1, 1] (the range of the models'
/// final tanh), as in the paper's experimental setup. Fit on training data
/// only; predictions are re-scaled back before computing metrics.
class MinMaxScaler {
 public:
  /// Identity scaler (min 0, max 1 ⇒ y = 2x − 1); call Fit before use.
  MinMaxScaler() = default;

  /// Fits on the value range of frames [0, fit_intervals) of `flows`
  /// (pass the training span length to avoid test leakage).
  void Fit(const sim::FlowSeries& flows, int64_t fit_intervals);

  /// x → 2·(x − min)/(max − min) − 1.
  float Transform(float x) const;
  /// Inverse of Transform.
  float Inverse(float y) const;

  tensor::Tensor Transform(const tensor::Tensor& t) const;
  tensor::Tensor Inverse(const tensor::Tensor& t) const;

  float min_value() const { return min_; }
  float max_value() const { return max_; }

 private:
  float min_ = 0.0f;
  float max_ = 1.0f;
};

}  // namespace musenet::data

#endif  // MUSENET_DATA_SCALER_H_
