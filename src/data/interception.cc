#include "data/interception.h"

#include <vector>

#include "util/check.h"

namespace musenet::data {

int64_t PeriodicitySpec::MinValidIndex(int intervals_per_day) const {
  const int64_t f = intervals_per_day;
  int64_t min_index = len_closeness;             // i − L_c ≥ 0.
  min_index = std::max(min_index, len_period * f);      // i − L_p·f ≥ 0.
  min_index = std::max(min_index, len_trend * f * 7);   // i − L_t·f·7 ≥ 0.
  return min_index;
}

namespace {

/// Stacks the frames at the given absolute indices into a
/// [2·indices.size(), H, W] tensor (frame-major, flow-minor channels).
tensor::Tensor StackFrames(const sim::FlowSeries& flows,
                           const std::vector<int64_t>& indices) {
  const int64_t height = flows.grid().height;
  const int64_t width = flows.grid().width;
  tensor::Tensor out(tensor::Shape(
      {static_cast<int64_t>(indices.size()) * 2, height, width}));
  float* po = out.mutable_data();
  const int64_t plane = height * width;
  for (size_t s = 0; s < indices.size(); ++s) {
    const int64_t t = indices[s];
    MUSE_CHECK(t >= 0 && t < flows.num_intervals())
        << "frame index " << t << " out of range";
    for (int flow = 0; flow < 2; ++flow) {
      float* dst = po + (static_cast<int64_t>(s) * 2 + flow) * plane;
      for (int64_t h = 0; h < height; ++h) {
        for (int64_t w = 0; w < width; ++w) {
          dst[h * width + w] = flows.at(t, flow, h, w);
        }
      }
    }
  }
  return out;
}

}  // namespace

Sample InterceptSample(const sim::FlowSeries& flows,
                       const PeriodicitySpec& spec, int64_t i,
                       int64_t horizon_offset) {
  const int64_t f = flows.intervals_per_day();
  MUSE_CHECK_GE(i, spec.MinValidIndex(flows.intervals_per_day()));
  MUSE_CHECK(i + horizon_offset < flows.num_intervals())
      << "target index out of range";

  // Eq. (3): C_i = [X_{i−Lc}, …, X_{i−1}] (most recent first → oldest first
  // in channel order, consistent with Eqs. 4–5 below).
  std::vector<int64_t> closeness_idx;
  for (int64_t s = spec.len_closeness; s >= 1; --s) {
    closeness_idx.push_back(i - s);
  }
  // Eq. (4): P_i = [X_{i−Lp·f}, …, X_{i−f}].
  std::vector<int64_t> period_idx;
  for (int64_t s = spec.len_period; s >= 1; --s) {
    period_idx.push_back(i - s * f);
  }
  // Eq. (5): T_i = [X_{i−Lt·f·7}, …, X_{i−f·7}].
  std::vector<int64_t> trend_idx;
  for (int64_t s = spec.len_trend; s >= 1; --s) {
    trend_idx.push_back(i - s * f * 7);
  }

  Sample sample;
  sample.closeness = StackFrames(flows, closeness_idx);
  sample.period = StackFrames(flows, period_idx);
  sample.trend = StackFrames(flows, trend_idx);
  sample.target = flows.Frame(i + horizon_offset);
  sample.target_index = i + horizon_offset;
  return sample;
}

}  // namespace musenet::data
