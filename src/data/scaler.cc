#include "data/scaler.h"

#include <algorithm>

#include "util/check.h"

namespace musenet::data {

void MinMaxScaler::Fit(const sim::FlowSeries& flows, int64_t fit_intervals) {
  MUSE_CHECK(fit_intervals > 0 && fit_intervals <= flows.num_intervals());
  float lo = flows.at(0, 0, 0, 0);
  float hi = lo;
  for (int64_t t = 0; t < fit_intervals; ++t) {
    for (int flow = 0; flow < 2; ++flow) {
      for (int64_t h = 0; h < flows.grid().height; ++h) {
        for (int64_t w = 0; w < flows.grid().width; ++w) {
          const float v = flows.at(t, flow, h, w);
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
    }
  }
  min_ = lo;
  max_ = hi > lo ? hi : lo + 1.0f;  // Degenerate constant series guard.
}

float MinMaxScaler::Transform(float x) const {
  return 2.0f * (x - min_) / (max_ - min_) - 1.0f;
}

float MinMaxScaler::Inverse(float y) const {
  return (y + 1.0f) * 0.5f * (max_ - min_) + min_;
}

tensor::Tensor MinMaxScaler::Transform(const tensor::Tensor& t) const {
  tensor::Tensor out(t.shape());
  const float* pi = t.data();
  float* po = out.mutable_data();
  const int64_t n = t.num_elements();
  for (int64_t i = 0; i < n; ++i) po[i] = Transform(pi[i]);
  return out;
}

tensor::Tensor MinMaxScaler::Inverse(const tensor::Tensor& t) const {
  tensor::Tensor out(t.shape());
  const float* pi = t.data();
  float* po = out.mutable_data();
  const int64_t n = t.num_elements();
  for (int64_t i = 0; i < n; ++i) po[i] = Inverse(pi[i]);
  return out;
}

}  // namespace musenet::data
