#ifndef MUSENET_EVAL_SPLITS_H_
#define MUSENET_EVAL_SPLITS_H_

#include <cstdint>

#include "sim/flow_series.h"

namespace musenet::eval {

/// Time-slot bucketing used by Tables IV and V of the paper.

/// Peak periods: 7:00–9:00 and 17:00–19:00 (paper Section V-C).
bool IsPeakInterval(const sim::FlowSeries& flows, int64_t t);

/// Weekdays are Monday–Friday.
bool IsWeekdayInterval(const sim::FlowSeries& flows, int64_t t);

/// Evaluation buckets for conditional metric tables.
enum class TimeBucket {
  kAll,
  kPeak,
  kNonPeak,
  kWeekday,
  kWeekend,
};

/// True when interval `t` belongs to `bucket`.
bool InBucket(const sim::FlowSeries& flows, int64_t t, TimeBucket bucket);

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_SPLITS_H_
