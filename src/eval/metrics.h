#ifndef MUSENET_EVAL_METRICS_H_
#define MUSENET_EVAL_METRICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace musenet::eval {

/// Accumulates squared/absolute/percentage errors over (prediction, truth)
/// pairs in original (re-scaled) flow units and reports the paper's three
/// metrics. MAPE skips ground-truth values below `mape_threshold` — the
/// convention of the grid traffic-forecasting literature, since counts of 0
/// make percentage error undefined.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(double mape_threshold = 1.0)
      : mape_threshold_(mape_threshold) {}

  /// Adds one scalar observation.
  void Add(double prediction, double truth);

  /// Adds every element of matching tensors.
  void AddTensor(const tensor::Tensor& prediction,
                 const tensor::Tensor& truth);

  /// Merges another accumulator into this one.
  void Merge(const MetricAccumulator& other);

  double Rmse() const;
  double Mae() const;
  /// Fraction in [0, 1]; multiply by 100 for the paper's percent display.
  double Mape() const;
  int64_t count() const { return count_; }

 private:
  double mape_threshold_;
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  double sum_ape_ = 0.0;
  int64_t count_ = 0;
  int64_t mape_count_ = 0;
};

/// A (RMSE, MAE, MAPE) triple for table assembly.
struct MetricRow {
  double rmse = 0.0;
  double mae = 0.0;
  double mape = 0.0;  ///< Fraction in [0, 1].
};

MetricRow ToRow(const MetricAccumulator& acc);

/// Improvement of `ours` over `best_baseline` as a fraction:
/// (baseline − ours) / baseline (the paper's Table II definition).
double Improvement(double best_baseline, double ours);

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_METRICS_H_
