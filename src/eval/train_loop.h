#ifndef MUSENET_EVAL_TRAIN_LOOP_H_
#define MUSENET_EVAL_TRAIN_LOOP_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "eval/forecaster.h"
#include "nn/module.h"

namespace musenet::eval {

/// Everything a model hands the shared fault-tolerant training loop. The
/// loop owns the epoch/batch schedule, the Adam optimizer, numeric-health
/// guards, checkpoint/resume and best-epoch tracking; the model supplies
/// only its loss.
struct TrainDriver {
  nn::Module* module = nullptr;      ///< Parameters, state dict, RNG streams.
  Forecaster* forecaster = nullptr;  ///< Validation predictions + name.
  /// Builds the differentiable loss for one training batch (the module is in
  /// training mode). May draw from RNG streams registered via RegisterRng —
  /// those are checkpointed, so a resumed run replays the same draws.
  std::function<autograd::Variable(const data::Batch&)> batch_loss;
  /// Per-model salt XOR'd into `config.seed` for the epoch-shuffle stream;
  /// keeps each model's historical shuffle order.
  uint64_t shuffle_salt = 0;
};

/// Counters filled in by RunTraining, for logging and tests.
struct TrainReport {
  int epochs_run = 0;    ///< Epochs completed in THIS call (excl. resumed).
  int64_t steps = 0;     ///< Global optimizer-step counter at exit.
  int resumed_from_epoch = -1;  ///< Epoch loaded from checkpoint; -1 = fresh.
  int skipped_batches = 0;      ///< kSkipBatch activations.
  int rollbacks = 0;            ///< kRollback activations.
  int checkpoint_write_failures = 0;  ///< Failed saves (warned, non-fatal).
  double best_val = std::numeric_limits<double>::infinity();
};

/// Runs the shared training loop: per-epoch shuffle, Adam steps with
/// optional gradient clipping, validation-MSE best-epoch selection with
/// early stopping — plus the fault-tolerance features configured in
/// `TrainConfig` (crash-safe checkpoints, resume, NaN/Inf guards with an
/// abort/skip/rollback policy). On success the module holds the best-epoch
/// weights and is back in eval mode. Training faults and unrecoverable
/// checkpoint problems come back as a descriptive non-OK Status; checkpoint
/// WRITE failures only warn (training is worth more than a checkpoint).
Status RunTraining(const TrainDriver& driver,
                   const data::TrafficDataset& dataset,
                   const TrainConfig& config, TrainReport* report = nullptr);

/// Periodic checkpoint path for a given completed-epoch count:
/// `<dir>/ckpt-NNNNNN.muse`.
std::string CheckpointPath(const std::string& dir, int epoch);

/// Best-validation weights artifact (plain model state dict, loadable with
/// LoadStateDict): `<dir>/best.muse`.
std::string BestCheckpointPath(const std::string& dir);

/// Completed-epoch counts of the periodic checkpoints present in `dir`,
/// sorted ascending. Unparseable filenames are ignored.
std::vector<int> ListCheckpointEpochs(const std::string& dir);

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_TRAIN_LOOP_H_
