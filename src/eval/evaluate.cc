#include "eval/evaluate.h"

#include <algorithm>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace musenet::eval {

FlowMetrics EvaluateOnIndices(Forecaster& model,
                              const data::TrafficDataset& dataset,
                              const std::vector<int64_t>& base_indices,
                              TimeBucket bucket, int batch_size) {
  MUSE_CHECK_GT(batch_size, 0);
  // Evaluation never backpropagates; skip-mode keeps Predict's graphs from
  // retaining inputs/backward closures (planned engines build none at all).
  autograd::NoGradGuard no_grad(autograd::NoGradGuard::Mode::kSkip);
  MetricAccumulator out_acc;
  MetricAccumulator in_acc;
  const auto& flows = dataset.flows();
  const auto& scaler = dataset.scaler();

  for (size_t begin = 0; begin < base_indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(base_indices.size(),
                                begin + static_cast<size_t>(batch_size));
    const std::vector<int64_t> chunk(base_indices.begin() + begin,
                                     base_indices.begin() + end);
    data::Batch batch = dataset.MakeBatch(chunk);
    tensor::Tensor pred = model.Predict(batch);
    MUSE_CHECK(pred.shape() == batch.target.shape())
        << model.name() << " prediction shape " << pred.shape().ToString();

    const int64_t plane =
        batch.target.dim(2) * batch.target.dim(3);
    for (int64_t b = 0; b < batch.batch_size(); ++b) {
      const int64_t target_t = batch.target_indices[static_cast<size_t>(b)];
      if (!InBucket(flows, target_t, bucket)) continue;
      for (int flow = 0; flow < 2; ++flow) {
        MetricAccumulator& acc = flow == sim::kOutflow ? out_acc : in_acc;
        const int64_t base = (b * 2 + flow) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          acc.Add(scaler.Inverse(pred.flat(base + k)),
                  scaler.Inverse(batch.target.flat(base + k)));
        }
      }
    }
  }
  return FlowMetrics{.outflow = ToRow(out_acc), .inflow = ToRow(in_acc)};
}

FlowMetrics EvaluateOnTest(Forecaster& model,
                           const data::TrafficDataset& dataset,
                           int batch_size) {
  return EvaluateOnIndices(model, dataset, dataset.test_indices(),
                           TimeBucket::kAll, batch_size);
}

PredictionSeries CollectPredictions(Forecaster& model,
                                    const data::TrafficDataset& dataset,
                                    const std::vector<int64_t>& base_indices,
                                    int batch_size) {
  MUSE_CHECK_GT(batch_size, 0);
  autograd::NoGradGuard no_grad(autograd::NoGradGuard::Mode::kSkip);
  PredictionSeries series;
  std::vector<tensor::Tensor> preds;
  std::vector<tensor::Tensor> truths;
  const auto& scaler = dataset.scaler();

  for (size_t begin = 0; begin < base_indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(base_indices.size(),
                                begin + static_cast<size_t>(batch_size));
    const std::vector<int64_t> chunk(base_indices.begin() + begin,
                                     base_indices.begin() + end);
    data::Batch batch = dataset.MakeBatch(chunk);
    preds.push_back(scaler.Inverse(model.Predict(batch)));
    truths.push_back(scaler.Inverse(batch.target));
    series.target_indices.insert(series.target_indices.end(),
                                 batch.target_indices.begin(),
                                 batch.target_indices.end());
  }
  series.predictions = tensor::Concat(preds, 0);
  series.truths = tensor::Concat(truths, 0);
  return series;
}

}  // namespace musenet::eval
