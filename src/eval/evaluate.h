#ifndef MUSENET_EVAL_EVALUATE_H_
#define MUSENET_EVAL_EVALUATE_H_

#include <vector>

#include "eval/forecaster.h"
#include "eval/metrics.h"
#include "eval/splits.h"

namespace musenet::eval {

/// Outflow/inflow metric pair — one table cell group of the paper.
struct FlowMetrics {
  MetricRow outflow;
  MetricRow inflow;
};

/// Evaluates `model` on the given base indices of `dataset`, restricted to
/// targets falling in `bucket`. Predictions and truths are re-scaled to
/// original flow units before metric accumulation; channels are split into
/// outflow (0) and inflow (1) as in the paper's tables.
FlowMetrics EvaluateOnIndices(Forecaster& model,
                              const data::TrafficDataset& dataset,
                              const std::vector<int64_t>& base_indices,
                              TimeBucket bucket, int batch_size);

/// Shorthand: full test split, all time slots.
FlowMetrics EvaluateOnTest(Forecaster& model,
                           const data::TrafficDataset& dataset,
                           int batch_size);

/// Re-scaled prediction/truth series over the given indices, for the Fig. 4
/// curve reproduction and the analysis module. Row k of each tensor is the
/// [2,H,W] frame for base_indices[k].
struct PredictionSeries {
  tensor::Tensor predictions;  ///< [N, 2, H, W], original units.
  tensor::Tensor truths;       ///< [N, 2, H, W], original units.
  std::vector<int64_t> target_indices;
};

PredictionSeries CollectPredictions(Forecaster& model,
                                    const data::TrafficDataset& dataset,
                                    const std::vector<int64_t>& base_indices,
                                    int batch_size);

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_EVALUATE_H_
