#include "eval/training.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/thread_pool.h"

namespace musenet::eval {

// Threading model for training/evaluation. Per-sample forward/backward
// within a batch fans out inside the kernels: conv2d and batched matmul
// partition the batch dimension across the pool, and the GEMM row-partitions
// each sample's work (see DESIGN.md "Performance substrate"). The epoch loop
// itself stays sequential — gradient accumulation into shared parameter
// nodes and the per-model dropout RNG stream are ordered state — so this
// file parallelizes only the order-free dense reductions below.

std::vector<int64_t> ShuffleEpochPool(const std::vector<int64_t>& pool,
                                      Rng& rng) {
  std::vector<int64_t> shuffled = pool;
  // Fisher–Yates with the library Rng for cross-platform determinism.
  for (size_t i = shuffled.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.UniformInt(i));
    std::swap(shuffled[i - 1], shuffled[j]);
  }
  return shuffled;
}

std::vector<std::vector<int64_t>> MakeEpochBatches(
    const std::vector<int64_t>& pool, int batch_size, Rng& rng) {
  MUSE_CHECK_GT(batch_size, 0);
  std::vector<int64_t> shuffled = ShuffleEpochPool(pool, rng);
  std::vector<std::vector<int64_t>> batches;
  for (size_t begin = 0; begin < shuffled.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(shuffled.size(), begin + static_cast<size_t>(batch_size));
    batches.emplace_back(shuffled.begin() + begin, shuffled.begin() + end);
  }
  return batches;
}

double MseOf(const tensor::Tensor& prediction, const tensor::Tensor& truth) {
  MUSE_CHECK(prediction.shape() == truth.shape());
  const float* pp = prediction.data();
  const float* pt = truth.data();
  const int64_t n = prediction.num_elements();
  // Fixed-size chunks with per-chunk partials combined in chunk order: the
  // reduction tree depends only on n, so the value is identical at every
  // MUSENET_NUM_THREADS.
  constexpr int64_t kGrain = 1 << 14;
  const int64_t num_chunks = (n + kGrain - 1) / kGrain;
  std::vector<double> partial(static_cast<size_t>(num_chunks), 0.0);
  util::ActivePool().ParallelFor(0, n, kGrain, [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      const double err = static_cast<double>(pp[i]) - pt[i];
      acc += err * err;
    }
    partial[static_cast<size_t>(lo / kGrain)] = acc;
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total / static_cast<double>(n);
}

double ValidationMse(Forecaster& model, const data::TrafficDataset& dataset,
                     int batch_size) {
  const std::vector<int64_t>& val = dataset.val_indices();
  if (val.empty()) return 0.0;
  double total = 0.0;
  int64_t count = 0;
  for (size_t begin = 0; begin < val.size();
       begin += static_cast<size_t>(batch_size)) {
    // Span window into the validation pool — no per-batch index copy.
    data::Batch batch = dataset.MakeBatchFromPool(
        val, begin, static_cast<size_t>(batch_size));
    tensor::Tensor pred = model.Predict(batch);
    const int64_t n = pred.num_elements();
    total += MseOf(pred, batch.target) * static_cast<double>(n);
    count += n;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace musenet::eval
