#include "eval/train_loop.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "eval/training.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/optimizer.h"
#include "tensor/serialize.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/shard_context.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace musenet::eval {

namespace ag = musenet::autograd;
namespace fs = std::filesystem;
namespace ts = musenet::tensor;

namespace {

constexpr uint64_t kTrainStateFormat = 1;

/// Mutable training progress serialized into every checkpoint, alongside the
/// model weights, optimizer slots and RNG streams (which live in their
/// owners and are captured at save time).
struct TrainState {
  int epoch = 0;    ///< Epochs completed; training resumes here.
  int64_t step = 0; ///< Global optimizer-step counter (all epochs).
  double best_val = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::map<std::string, ts::Tensor> best_state;  ///< Empty until a best.
};

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Checkpoint record layout (one tensor container, see tensor/serialize.h):
//   "meta"             packed words: format, epoch, step, best_val bits,
//                      epochs_since_best, has_best
//   "rng/epoch"        epoch-shuffle Rng state
//   "rng/model/<name>" each Module::RegisterRng stream
//   "model/<name>"     current weights (Module::StateDict)
//   "best/<name>"      best-epoch weights, present iff has_best
//   "optim/<kind>/<r>" optimizer slots (Optimizer::StateTensors)
constexpr size_t kMetaWords = 6;

Status SaveTrainState(const std::string& path, const TrainDriver& driver,
                      const optim::Optimizer& optimizer, const Rng& epoch_rng,
                      const TrainState& state) {
  std::map<std::string, ts::Tensor> records;
  records.emplace(
      "meta",
      ts::PackWords64({kTrainStateFormat, static_cast<uint64_t>(state.epoch),
                       static_cast<uint64_t>(state.step),
                       DoubleBits(state.best_val),
                       static_cast<uint64_t>(state.epochs_since_best),
                       state.best_state.empty() ? 0ULL : 1ULL}));
  records.emplace("rng/epoch", ts::PackWords64(epoch_rng.SaveState()));
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    records.emplace("rng/model/" + name, ts::PackWords64(rng->SaveState()));
  }
  for (auto& [name, tensor] : driver.module->StateDict()) {
    records.emplace("model/" + name, std::move(tensor));
  }
  for (const auto& [name, tensor] : state.best_state) {
    records.emplace("best/" + name, tensor);
  }
  const std::string optim_prefix =
      std::string("optim/") + std::string(optimizer.kind()) + "/";
  for (auto& [name, tensor] : optimizer.StateTensors()) {
    records.emplace(optim_prefix + name, std::move(tensor));
  }
  return ts::SaveTensors(path, records);
}

/// Splits `records` into the sub-maps behind each prefix. Returns records
/// that match no known prefix (besides "meta"/"rng/") as leftovers so the
/// caller can reject unrecognized content.
struct SplitRecords {
  std::map<std::string, ts::Tensor> model;
  std::map<std::string, ts::Tensor> best;
  std::map<std::string, ts::Tensor> optim;  ///< Keys without kind prefix.
  std::map<std::string, std::vector<uint64_t>> rngs;  ///< Model streams.
  std::vector<uint64_t> epoch_rng_words;
  std::vector<uint64_t> meta;
  std::string optim_kind;
};

Status SplitCheckpointRecords(std::map<std::string, ts::Tensor> records,
                              SplitRecords* out) {
  for (auto& [name, tensor] : records) {
    if (name == "meta") {
      MUSE_ASSIGN_OR_RETURN(out->meta, ts::UnpackWords64(tensor));
    } else if (name == "rng/epoch") {
      MUSE_ASSIGN_OR_RETURN(out->epoch_rng_words, ts::UnpackWords64(tensor));
    } else if (name.rfind("rng/model/", 0) == 0) {
      MUSE_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                            ts::UnpackWords64(tensor));
      out->rngs.emplace(name.substr(10), std::move(words));
    } else if (name.rfind("model/", 0) == 0) {
      out->model.emplace(name.substr(6), std::move(tensor));
    } else if (name.rfind("best/", 0) == 0) {
      out->best.emplace(name.substr(5), std::move(tensor));
    } else if (name.rfind("optim/", 0) == 0) {
      const size_t slash = name.find('/', 6);
      if (slash == std::string::npos) {
        return Status::InvalidArgument("malformed optimizer record '" + name +
                                       "' in checkpoint");
      }
      const std::string kind = name.substr(6, slash - 6);
      if (out->optim_kind.empty()) {
        out->optim_kind = kind;
      } else if (out->optim_kind != kind) {
        return Status::InvalidArgument(
            "checkpoint mixes optimizer kinds '" + out->optim_kind +
            "' and '" + kind + "'");
      }
      out->optim.emplace(name.substr(slash + 1), std::move(tensor));
    } else {
      return Status::InvalidArgument("unrecognized checkpoint record '" +
                                     name + "'");
    }
  }
  if (out->meta.size() != kMetaWords) {
    return Status::InvalidArgument(
        "checkpoint 'meta' record missing or wrong size");
  }
  if (out->meta[0] != kTrainStateFormat) {
    return Status::InvalidArgument(
        "unsupported checkpoint format " + std::to_string(out->meta[0]) +
        " (this build reads format " + std::to_string(kTrainStateFormat) +
        ")");
  }
  return Status::OK();
}

/// Loads a checkpoint into the module/optimizer/RNG streams. Each component
/// is restored all-or-nothing, and everything cheap to validate is checked
/// before the first mutation; on a non-OK return the caller either falls
/// back to an older checkpoint (which overwrites every component again) or
/// restores the pre-resume snapshot.
Status LoadTrainState(const std::string& path, const TrainDriver& driver,
                      optim::Optimizer* optimizer, Rng* epoch_rng,
                      TrainState* state) {
  using TensorMap = std::map<std::string, ts::Tensor>;
  MUSE_ASSIGN_OR_RETURN(TensorMap records, ts::LoadTensors(path));
  SplitRecords split;
  MUSE_RETURN_IF_ERROR(SplitCheckpointRecords(std::move(records), &split));

  const bool has_best = split.meta[5] != 0;
  if (has_best == split.best.empty()) {
    return Status::InvalidArgument(
        "checkpoint meta/best mismatch: has_best flag is " +
        std::to_string(has_best) + " but " +
        std::to_string(split.best.size()) + " best/ records present");
  }
  if (!split.optim_kind.empty() &&
      split.optim_kind != optimizer->kind()) {
    return Status::InvalidArgument(
        "checkpoint optimizer kind '" + split.optim_kind +
        "' does not match running optimizer '" +
        std::string(optimizer->kind()) + "'");
  }
  // Validate RNG snapshots before touching anything.
  if (split.epoch_rng_words.size() != Rng::kStateWords) {
    return Status::InvalidArgument("checkpoint 'rng/epoch' has wrong size");
  }
  const auto named_rngs = driver.module->NamedRngs();
  for (const auto& [name, rng] : named_rngs) {
    (void)rng;
    auto it = split.rngs.find(name);
    if (it == split.rngs.end()) {
      return Status::InvalidArgument("checkpoint missing RNG stream '" +
                                     name + "'");
    }
    if (it->second.size() != Rng::kStateWords) {
      return Status::InvalidArgument("checkpoint RNG stream '" + name +
                                     "' has wrong size");
    }
  }
  if (split.rngs.size() != named_rngs.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(split.rngs.size()) +
        " model RNG streams, model has " +
        std::to_string(named_rngs.size()));
  }

  // Mutations begin. Each call below replaces its component wholesale.
  MUSE_RETURN_IF_ERROR(driver.module->LoadStateDict(split.model));
  MUSE_RETURN_IF_ERROR(optimizer->LoadStateTensors(split.optim));
  epoch_rng->LoadState(split.epoch_rng_words);
  for (const auto& [name, rng] : named_rngs) {
    rng->LoadState(split.rngs.at(name));
  }
  state->epoch = static_cast<int>(split.meta[1]);
  state->step = static_cast<int64_t>(split.meta[2]);
  state->best_val = DoubleFromBits(split.meta[3]);
  state->epochs_since_best = static_cast<int>(split.meta[4]);
  state->best_state = std::move(split.best);
  return Status::OK();
}

/// Pre-resume snapshot of every component a checkpoint load mutates, so a
/// run whose checkpoints are ALL corrupt can fall back to a genuinely fresh
/// start instead of a half-loaded one.
struct FreshSnapshot {
  std::map<std::string, ts::Tensor> model;
  std::map<std::string, ts::Tensor> optim;
  std::vector<uint64_t> epoch_rng;
  std::map<std::string, std::vector<uint64_t>> rngs;
};

FreshSnapshot TakeSnapshot(const TrainDriver& driver,
                           const optim::Optimizer& optimizer,
                           const Rng& epoch_rng) {
  FreshSnapshot snap;
  snap.model = driver.module->StateDict();
  snap.optim = optimizer.StateTensors();
  snap.epoch_rng = epoch_rng.SaveState();
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    snap.rngs.emplace(name, rng->SaveState());
  }
  return snap;
}

void RestoreSnapshot(const FreshSnapshot& snap, const TrainDriver& driver,
                     optim::Optimizer* optimizer, Rng* epoch_rng) {
  // These loads restore state this process produced moments ago; failure
  // would be a programming error, so surface it loudly.
  Status status = driver.module->LoadStateDict(snap.model);
  MUSE_CHECK(status.ok()) << status.ToString();
  status = optimizer->LoadStateTensors(snap.optim);
  MUSE_CHECK(status.ok()) << status.ToString();
  epoch_rng->LoadState(snap.epoch_rng);
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    rng->LoadState(snap.rngs.at(name));
  }
}

/// Tries checkpoints newest-first; corrupt or unreadable files are skipped
/// with a warning. Returns the epoch resumed from, or NotFound when no file
/// loaded (with the pre-call state restored).
Result<int> ResumeFromNewest(const std::string& dir,
                             const TrainDriver& driver,
                             optim::Optimizer* optimizer, Rng* epoch_rng,
                             TrainState* state) {
  std::vector<int> epochs = ListCheckpointEpochs(dir);
  if (epochs.empty()) return Status::NotFound("no checkpoints in " + dir);
  const FreshSnapshot snap = TakeSnapshot(driver, *optimizer, *epoch_rng);
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::string path = CheckpointPath(dir, *it);
    const Status status =
        LoadTrainState(path, driver, optimizer, epoch_rng, state);
    if (status.ok()) return *it;
    std::fprintf(stderr,
                 "[%s] warning: skipping unusable checkpoint %s: %s\n",
                 driver.forecaster->name().c_str(), path.c_str(),
                 status.ToString().c_str());
  }
  // Every candidate failed; a partial load may have touched the model, so
  // roll everything back to the fresh state.
  RestoreSnapshot(snap, driver, optimizer, epoch_rng);
  return Status::NotFound("no usable checkpoint in " + dir);
}

/// Deletes periodic checkpoints beyond the newest `keep_last`.
void PruneCheckpoints(const std::string& dir, int keep_last) {
  std::vector<int> epochs = ListCheckpointEpochs(dir);
  if (keep_last < 1) keep_last = 1;
  if (epochs.size() <= static_cast<size_t>(keep_last)) return;
  for (size_t i = 0; i + static_cast<size_t>(keep_last) < epochs.size();
       ++i) {
    std::error_code ec;
    fs::remove(CheckpointPath(dir, epochs[i]), ec);  // Best-effort.
  }
}

/// Writes NaN into the first gradient element (deterministic target), for
/// the fault-injection harness.
void PoisonOneGradient(const std::vector<ag::Variable>& params) {
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    auto node = p.node();
    if (node->grad.num_elements() == 0) continue;
    node->grad.mutable_data()[0] = std::numeric_limits<float>::quiet_NaN();
    return;
  }
}

/// Training-loop instruments, interned once per process. Every TrainReport
/// field has a registry twin so long-lived processes (benchmarks, servers)
/// can watch training health without plumbing the report around.
struct TrainMetrics {
  obs::Counter& steps = obs::GetCounter("train.steps");
  obs::Counter& epochs = obs::GetCounter("train.epochs_run");
  obs::Counter& skipped = obs::GetCounter("train.skipped_batches");
  obs::Counter& rollbacks = obs::GetCounter("train.rollbacks");
  obs::Counter& ckpt_failures = obs::GetCounter("train.checkpoint_failures");
  obs::Counter& resumes = obs::GetCounter("train.resumes");
  obs::Gauge& best_val = obs::GetGauge("train.best_val");
  obs::Gauge& last_loss = obs::GetGauge("train.last_loss");
  obs::Gauge& resumed_from = obs::GetGauge("train.resumed_from_epoch");
  obs::Histogram& step_ms =
      obs::GetHistogram("train.step_ms", obs::LatencyBucketsMs());
  obs::Histogram& validate_ms =
      obs::GetHistogram("train.validate_ms", obs::LatencyBucketsMs());
  obs::Histogram& checkpoint_ms =
      obs::GetHistogram("train.checkpoint_ms", obs::LatencyBucketsMs());
  obs::Counter& shard_steps = obs::GetCounter("train.shard_steps");
  obs::Counter& prefetch_hits = obs::GetCounter("train.prefetch_hits");
  obs::Counter& prefetch_misses = obs::GetCounter("train.prefetch_misses");
  obs::Gauge& workers_granted = obs::GetGauge("train.workers_granted");

  static TrainMetrics& Get() {
    static TrainMetrics* metrics = new TrainMetrics();  // Leaked singleton.
    return *metrics;
  }
};

/// Near-equal shard split: the first `total % num_shards` shards take one
/// extra sample. Same rule as the inference engine's lane split, and the
/// contract the determinism tests pin down — results depend on this split,
/// never on which worker ran which shard.
std::vector<size_t> ShardSizes(size_t total, int num_shards) {
  std::vector<size_t> sizes(static_cast<size_t>(num_shards), 0);
  const size_t base = total / static_cast<size_t>(num_shards);
  const size_t extra = total % static_cast<size_t>(num_shards);
  for (size_t s = 0; s < sizes.size(); ++s) {
    sizes[s] = base + (s < extra ? 1 : 0);
  }
  return sizes;
}

/// One data-parallel training step: the mini-batch splits into a FIXED
/// number of shards; each shard runs forward+backward on a private autograd
/// graph (leaf gradients diverted into per-shard buffers by
/// ag::LeafGradSink, module-held RNG streams remapped to per-step child
/// streams, BatchNorm running-stat updates deferred, conv scratch
/// per-shard); the per-shard gradients then combine through a
/// fixed-topology tree reduction (optim::ReduceShardGradients).
///
/// Determinism contract: the result is a function of the shard count only.
/// Workers decide which thread runs a shard, never what the shard computes
/// or the order gradients combine, so workers=1/2/4 at the same shard count
/// produce byte-identical checkpoints. With num_shards == 1 no child
/// streams are forked and the single shard's backward seeds with weight
/// 1.0, matching classic single-stream training bit-for-bit.
class ShardedStep {
 public:
  ShardedStep(const TrainDriver& driver,
              const std::vector<ag::Variable>& params, int num_shards,
              int num_workers)
      : driver_(driver),
        params_(params),
        num_shards_(num_shards),
        named_rngs_(driver.module->NamedRngs()) {
    if (num_workers > 1) {
      // Private pool: shard bodies run module kernels that themselves call
      // ParallelFor on the global pool; dispatching across a DISTINCT pool
      // (ParallelForAcross) keeps that nesting deadlock-free while inner
      // kernels degrade to sequential chunks inside each shard thread.
      pool_ = std::make_unique<util::ThreadPool>(num_workers);
    }
  }

  int num_shards() const { return num_shards_; }

  /// Runs the step for the mini-batch at `begin`. On return the combined
  /// gradients sit in the parameter accumulators exactly as a single
  /// Backward would leave them, every shard graph is released, and deferred
  /// module updates have replayed in shard order. Returns the batch loss
  /// (shard losses combined at fixed weights in shard order).
  ///
  /// `prefetched` optionally supplies pre-assembled shard batches (consumed
  /// by move); `poison_shard` >= 0 writes a NaN into that shard's gradient
  /// buffer before the reduction, for the fault-injection drills.
  float Run(const data::TrafficDataset& dataset,
            std::span<const int64_t> shuffled, size_t begin,
            size_t batch_size, std::vector<data::Batch>* prefetched,
            int poison_shard) {
    const size_t total = std::min(batch_size, shuffled.size() - begin);
    const std::vector<size_t> sizes = ShardSizes(total, num_shards_);

    // Per-step child streams, forked on this thread in a fixed
    // (stream, shard) order. The parent advances once per fork, so its
    // trajectory — and therefore every checkpoint — depends only on the
    // shard count. num_shards == 1 forks nothing: the single shard draws
    // straight from the parent streams, preserving single-stream numerics.
    std::vector<std::vector<Rng>> children(
        static_cast<size_t>(num_shards_));
    if (num_shards_ > 1) {
      for (auto& [name, parent] : named_rngs_) {
        (void)name;
        for (int s = 0; s < num_shards_; ++s) {
          children[static_cast<size_t>(s)].push_back(
              parent->Fork(static_cast<uint64_t>(s)));
        }
      }
    }

    std::vector<optim::ShardGradients> shard_grads(
        static_cast<size_t>(num_shards_));
    std::vector<float> shard_loss(static_cast<size_t>(num_shards_), 0.0f);
    std::vector<std::vector<std::function<void()>>> deferred(
        static_cast<size_t>(num_shards_));

    auto run_shard = [&](int s) {
      const size_t si = static_cast<size_t>(s);
      shard_grads[si].grads.resize(params_.size());
      shard_grads[si].present.assign(params_.size(), 0);
      if (sizes[si] == 0) return;  // batch < shards: idle shard.
      obs::ScopedSpan shard_span("train.shard", "shard", s);
      util::ShardContext context(s, num_shards_);
      if (num_shards_ > 1) {
        for (size_t k = 0; k < named_rngs_.size(); ++k) {
          context.MapRng(named_rngs_[k].second, &children[si][k]);
        }
      }
      util::ShardContext::Scope scope(&context);
      size_t offset = 0;
      for (size_t i = 0; i < si; ++i) offset += sizes[i];
      data::Batch batch =
          prefetched != nullptr
              ? std::move((*prefetched)[si])
              : dataset.MakeBatchFromPool(shuffled, begin + offset,
                                          sizes[si]);
      ag::LeafGradSink sink;
      ag::Variable loss = driver_.batch_loss(batch);
      // Seeding backward with the shard's batch fraction folds the
      // gradient weighting into the seed, so the tree reduction is a plain
      // unweighted sum.
      const float weight = static_cast<float>(sizes[si]) /
                           static_cast<float>(total);
      ag::BackwardWithSeed(loss,
                           ts::Tensor::Full(loss.value().shape(), weight));
      shard_loss[si] = loss.value().scalar();
      for (size_t i = 0; i < params_.size(); ++i) {
        if (sink.Take(params_[i].node().get(), &shard_grads[si].grads[i])) {
          shard_grads[si].present[i] = 1;
        }
      }
      deferred[si] = std::move(context.deferred());
      ag::ReleaseGraph(loss);
    };

    if (pool_ != nullptr) {
      pool_->ParallelForAcross(
          0, num_shards_, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t s = lo; s < hi; ++s) {
              run_shard(static_cast<int>(s));
            }
          });
    } else {
      for (int s = 0; s < num_shards_; ++s) run_shard(s);
    }

    // Module updates the shards deferred (BatchNorm running stats) replay
    // sequentially in shard order, off the hot parallel section.
    for (auto& shard : deferred) {
      for (auto& update : shard) update();
    }

    if (poison_shard >= 0) Poison(&shard_grads, poison_shard);

    {
      obs::ScopedSpan reduce_span("train.reduce", "shards", num_shards_);
      optim::ReduceShardGradients(params_, &shard_grads);
    }

    // Fixed-order weighted combination mirrors the backward seeds; with a
    // single shard this is shard_loss[0] bit-exactly.
    float loss_value = 0.0f;
    for (size_t s = 0; s < sizes.size(); ++s) {
      if (sizes[s] == 0) continue;
      loss_value += static_cast<float>(sizes[s]) /
                    static_cast<float>(total) * shard_loss[s];
    }
    return loss_value;
  }

 private:
  /// Sharded analogue of PoisonOneGradient: NaN into element 0 of the first
  /// present gradient of `start` (scanning forward, wrapping, in case the
  /// last ragged batch left that shard empty).
  void Poison(std::vector<optim::ShardGradients>* shards, int start) const {
    for (int off = 0; off < num_shards_; ++off) {
      optim::ShardGradients& sg =
          (*shards)[static_cast<size_t>((start + off) % num_shards_)];
      for (size_t i = 0; i < sg.grads.size(); ++i) {
        if (sg.present[i] != 0 && sg.grads[i].num_elements() > 0) {
          sg.grads[i].mutable_data()[0] =
              std::numeric_limits<float>::quiet_NaN();
          return;
        }
      }
    }
  }

  const TrainDriver& driver_;
  const std::vector<ag::Variable>& params_;
  const int num_shards_;
  std::vector<std::pair<std::string, Rng*>> named_rngs_;
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Assembles the next step's shard batches on a dedicated thread while the
/// current step computes (double buffering: one step in flight, one being
/// built). Assembly is a pure gather+normalize with no RNG draws, so a
/// speculatively built step is either taken — bit-identical to synchronous
/// assembly — or silently discarded when the schedule moved under it (epoch
/// turnover, rollback, cancellation). The prefetcher copies the index
/// window it needs up front, so it never holds a reference into an epoch's
/// shuffle pool whose lifetime it does not control.
class BatchPrefetcher {
 public:
  BatchPrefetcher(const data::TrafficDataset& dataset, int num_shards)
      : dataset_(dataset),
        num_shards_(num_shards),
        thread_([this] { Loop(); }) {}

  ~BatchPrefetcher() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  BatchPrefetcher(const BatchPrefetcher&) = delete;
  BatchPrefetcher& operator=(const BatchPrefetcher&) = delete;

  /// Queues assembly of the step at (`generation`, `begin`). `generation`
  /// bumps whenever the schedule changes (new shuffle), invalidating any
  /// speculation built against the old order.
  void Schedule(uint64_t generation, std::span<const int64_t> shuffled,
                size_t begin, size_t batch_size) {
    const size_t total = std::min(batch_size, shuffled.size() - begin);
    Request req;
    req.generation = generation;
    req.begin = begin;
    req.window.assign(shuffled.begin() + static_cast<int64_t>(begin),
                      shuffled.begin() + static_cast<int64_t>(begin + total));
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return !busy_ && !has_request_; });
      request_ = std::move(req);
      has_request_ = true;
      has_result_ = false;  // Single slot: a new request evicts old results.
    }
    cv_.notify_all();
  }

  /// Takes the assembled shard batches for (`generation`, `begin`). False
  /// when the speculation does not match — the caller assembles
  /// synchronously, with identical results.
  bool Take(uint64_t generation, size_t begin,
            std::vector<data::Batch>* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !busy_ && !has_request_; });
    if (!has_result_ || result_generation_ != generation ||
        result_begin_ != begin) {
      return false;
    }
    *out = std::move(result_);
    has_result_ = false;
    return true;
  }

 private:
  struct Request {
    uint64_t generation = 0;
    size_t begin = 0;
    std::vector<int64_t> window;  ///< Owned copy of the step's indices.
  };

  void Loop() {
    for (;;) {
      Request req;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || has_request_; });
        if (stop_) return;
        req = std::move(request_);
        has_request_ = false;
        busy_ = true;
      }
      std::vector<data::Batch> batches(static_cast<size_t>(num_shards_));
      const std::vector<size_t> sizes =
          ShardSizes(req.window.size(), num_shards_);
      size_t offset = 0;
      for (size_t s = 0; s < sizes.size(); ++s) {
        if (sizes[s] > 0) {
          batches[s] =
              dataset_.MakeBatchFromPool(req.window, offset, sizes[s]);
        }
        offset += sizes[s];
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        busy_ = false;
        result_ = std::move(batches);
        result_generation_ = req.generation;
        result_begin_ = req.begin;
        has_result_ = true;
      }
      cv_.notify_all();
    }
  }

  const data::TrafficDataset& dataset_;
  const int num_shards_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool busy_ = false;
  bool has_request_ = false;
  bool has_result_ = false;
  Request request_;
  std::vector<data::Batch> result_;
  uint64_t result_generation_ = 0;
  size_t result_begin_ = 0;

  std::thread thread_;  ///< Last member: starts after the state above.
};

}  // namespace

std::string CheckpointPath(const std::string& dir, int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06d.muse", epoch);
  return (fs::path(dir) / name).string();
}

std::string BestCheckpointPath(const std::string& dir) {
  return (fs::path(dir) / "best.muse").string();
}

std::vector<int> ListCheckpointEpochs(const std::string& dir) {
  std::vector<int> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int epoch = 0;
    char trailing = 0;
    if (std::sscanf(name.c_str(), "ckpt-%d.mus%c", &epoch, &trailing) != 2 ||
        trailing != 'e' || epoch < 0) {
      continue;
    }
    // Exact-name check: ignores leftovers like "ckpt-000001.muse.tmp.1234"
    // from a crashed atomic write, which the sscanf prefix match accepts.
    if (fs::path(CheckpointPath(dir, epoch)).filename().string() == name) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status RunTraining(const TrainDriver& driver,
                   const data::TrafficDataset& dataset,
                   const TrainConfig& config, TrainReport* report) {
  if (driver.module == nullptr || driver.forecaster == nullptr ||
      !driver.batch_loss) {
    return Status::InvalidArgument(
        "TrainDriver needs module, forecaster and batch_loss");
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (config.train_workers < 1) {
    return Status::InvalidArgument("train_workers must be >= 1");
  }
  if (config.train_shards < 0) {
    return Status::InvalidArgument("train_shards must be >= 0");
  }
  TrainReport local_report;
  if (report == nullptr) report = &local_report;
  *report = TrainReport{};

  // Idempotent: picks up MUSENET_TRACE for embedded callers that never
  // touch the obs API directly.
  obs::AutoInitFromEnv();
  TrainMetrics& tm = TrainMetrics::Get();
  obs::ScopedSpan run_span("train.RunTraining", "epochs", config.epochs);

  const std::string& model_name = driver.forecaster->name();
  const bool ckpt_on = !config.checkpoint_dir.empty();
  if (ckpt_on) {
    std::error_code ec;
    fs::create_directories(config.checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir '" +
                             config.checkpoint_dir + "': " + ec.message());
    }
    if (config.checkpoint_every <= 0) {
      return Status::InvalidArgument("checkpoint_every must be positive");
    }
  }

  driver.module->SetTraining(true);
  Rng epoch_rng(config.seed ^ driver.shuffle_salt);
  optim::Adam optimizer(driver.module->Parameters(), config.learning_rate);
  TrainState st;

  // Data-parallel setup. The shard count fixes the numerics; the worker
  // count only schedules. Worker requests are capped by the nested-
  // parallelism budget so a pipeline stage running under --jobs composes
  // without oversubscribing the machine (util::ScopedFanoutClaim), and by
  // the shard count (extra workers would idle). The default config
  // (workers=1, shards=0, prefetch off) keeps the classic single-stream
  // step below, byte-identical to earlier releases.
  const int num_shards = config.train_shards > 0 ? config.train_shards
                                                 : config.train_workers;
  const int granted_workers =
      std::min(util::NestedParallelBudget(config.train_workers), num_shards);
  tm.workers_granted.Set(granted_workers);
  std::unique_ptr<ShardedStep> sharded_step;
  if (num_shards > 1 || config.prefetch) {
    sharded_step = std::make_unique<ShardedStep>(
        driver, optimizer.params(), num_shards, granted_workers);
  }
  std::unique_ptr<BatchPrefetcher> prefetcher;
  uint64_t prefetch_generation = 0;
  if (config.prefetch) {
    prefetcher = std::make_unique<BatchPrefetcher>(dataset, num_shards);
  }

  // The run log opens before resume so the resume event itself is recorded.
  // A path that cannot open is a configuration error worth failing on;
  // write errors after this point only disable the log (see RunLog::Append).
  std::optional<obs::RunLog> run_log;
  if (!config.run_log_path.empty()) {
    MUSE_ASSIGN_OR_RETURN(
        obs::RunLog opened,
        obs::RunLog::Open(config.run_log_path, /*truncate=*/!config.resume,
                          config.run_log_timings));
    run_log.emplace(std::move(opened));
  }

  if (ckpt_on && config.resume) {
    Result<int> resumed = ResumeFromNewest(config.checkpoint_dir, driver,
                                           &optimizer, &epoch_rng, &st);
    if (resumed.ok()) {
      report->resumed_from_epoch = *resumed;
      tm.resumes.Add();
      tm.resumed_from.Set(*resumed);
      obs::TraceInstant("train.resume", "epoch", *resumed);
      if (run_log) {
        (void)run_log->Append(obs::RunRecord("resume").Int("epoch", *resumed));
      }
      if (config.verbose) {
        std::fprintf(stderr, "[%s] resumed from checkpoint at epoch %d\n",
                     model_name.c_str(), *resumed);
      }
    }
    // NotFound just means a fresh start; nothing to do.
  }

  util::FaultInjector& faults = util::FaultInjector::Instance();
  int rollbacks_left = config.max_rollbacks;
  int epoch = st.epoch;
  bool stop_early = false;

  // Cooperative cancellation: polled at step and epoch boundaries only, so a
  // cancelled run always stops at a point where no graph is live and every
  // checkpoint already on disk is complete — rerun with resume=true picks up
  // from the last finished epoch.
  const auto cancel_requested = [&config] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  const auto cancelled_status = [&](int at_epoch, int64_t at_step) {
    driver.module->SetTraining(false);
    obs::TraceInstant("train.cancelled", "step", at_step);
    if (run_log) {
      (void)run_log->Append(obs::RunRecord("cancelled")
                                .Int("epoch", at_epoch)
                                .Int("step", at_step));
    }
    std::string msg = "[" + model_name + "] training cancelled at epoch " +
                      std::to_string(at_epoch) + " step " +
                      std::to_string(at_step);
    if (ckpt_on) {
      msg += "; checkpoints in '" + config.checkpoint_dir +
             "' allow resume";
    }
    return Status::Cancelled(std::move(msg));
  };

  while (epoch < config.epochs && !stop_early) {
    if (cancel_requested()) return cancelled_status(epoch, st.step);
    obs::ScopedSpan epoch_span("train.epoch", "epoch", epoch);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    std::string fault_diag;
    const std::vector<int64_t> shuffled =
        ShuffleEpochPool(dataset.train_indices(), epoch_rng);
    // A fresh shuffle invalidates any in-flight speculation; prime the
    // prefetcher with the epoch's first step.
    ++prefetch_generation;
    if (prefetcher != nullptr && !shuffled.empty()) {
      prefetcher->Schedule(prefetch_generation, shuffled, 0,
                           static_cast<size_t>(config.batch_size));
    }
    for (size_t begin = 0;
         begin < shuffled.size() && fault_diag.empty();
         begin += static_cast<size_t>(config.batch_size)) {
      if (cancel_requested()) return cancelled_status(epoch, st.step);
      util::Stopwatch step_watch;
      obs::ScopedSpan step_span("train.step", "step", st.step);
      bool stepped = false;
      double grad_norm = -1.0;  ///< < 0 = not computed this step.
      float loss_value = 0.0f;
      if (sharded_step != nullptr) {
        std::vector<data::Batch> shard_batches;
        bool hit = false;
        if (prefetcher != nullptr) {
          hit = prefetcher->Take(prefetch_generation, begin, &shard_batches);
          (hit ? tm.prefetch_hits : tm.prefetch_misses).Add();
          // Overlap the NEXT step's gather+normalize with this step's
          // compute. Stale speculation (rollback, epoch end) is dropped by
          // the generation check above.
          const size_t next =
              begin + static_cast<size_t>(config.batch_size);
          if (next < shuffled.size()) {
            prefetcher->Schedule(prefetch_generation, shuffled, next,
                                 static_cast<size_t>(config.batch_size));
          }
        }
        driver.module->ZeroGrad();
        const int poison_shard =
            faults.TakeNanGradient(st.step)
                ? static_cast<int>(st.step %
                                   static_cast<int64_t>(num_shards))
                : -1;
        loss_value = sharded_step->Run(
            dataset, shuffled, begin,
            static_cast<size_t>(config.batch_size),
            hit ? &shard_batches : nullptr, poison_shard);
        tm.shard_steps.Add(num_shards);
      } else {
        data::Batch batch = dataset.MakeBatchFromPool(
            shuffled, begin, static_cast<size_t>(config.batch_size));
        ag::Variable loss = driver.batch_loss(batch);
        driver.module->ZeroGrad();
        ag::Backward(loss);
        if (faults.TakeNanGradient(st.step)) {
          PoisonOneGradient(optimizer.params());
        }
        loss_value = loss.value().scalar();
        // The graph is spent once the scalar and the leaf gradients are
        // out; release before the guards so both step flavors share the
        // loss-free tail below. Nothing after this point reads interior
        // gradients.
        ag::ReleaseGraph(loss);
      }

      bool bad = false;
      if (config.guard_numerics) {
        if (!std::isfinite(loss_value)) {
          bad = true;
          fault_diag = "loss is non-finite (" +
                       std::to_string(loss_value) + ")";
        } else {
          const Status grads = optim::CheckGradsFinite(optimizer.params());
          if (!grads.ok()) {
            bad = true;
            fault_diag = grads.message();
          }
        }
      }
      if (bad) {
        fault_diag = "numeric fault at epoch " + std::to_string(epoch) +
                     " step " + std::to_string(st.step) + ": " + fault_diag;
        obs::TraceInstant("train.numeric_fault", "step", st.step);
        if (config.on_non_finite == FailurePolicy::kSkipBatch) {
          std::fprintf(stderr, "[%s] warning: %s; skipping batch\n",
                       model_name.c_str(), fault_diag.c_str());
          ++report->skipped_batches;
          tm.skipped.Add();
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "skip_batch"));
          }
          fault_diag.clear();  // Handled; no optimizer step for this batch.
        } else if (config.on_non_finite == FailurePolicy::kRollback &&
                   ckpt_on &&
                   !ListCheckpointEpochs(config.checkpoint_dir).empty()) {
          // fault_diag stays set: the epoch loop below performs the
          // rollback after the graph is released.
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "rollback"));
          }
        } else {
          const char* why =
              config.on_non_finite == FailurePolicy::kRollback
                  ? " (policy: rollback, but no checkpoint to roll back to)"
                  : " (policy: abort)";
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "abort")
                                      .Str("detail", fault_diag));
          }
          driver.module->SetTraining(false);
          return Status::Internal("[" + model_name + "] " + fault_diag +
                                  why);
        }
      } else {
        if (config.clip_norm > 0.0) {
          grad_norm = optim::ClipGradNorm(optimizer.params(),
                                          config.clip_norm);
        } else if (run_log) {
          // Norm-only pass (an infinite cap never rescales): the log is
          // opt-in, so the extra gradient sweep is paid only when asked for.
          grad_norm = optim::ClipGradNorm(
              optimizer.params(), std::numeric_limits<double>::infinity());
        }
        optimizer.Step();
        epoch_loss += loss_value;
        tm.last_loss.Set(loss_value);
        stepped = true;
      }
      ++num_batches;
      ++st.step;
      tm.steps.Add();
      tm.step_ms.Observe(step_watch.ElapsedMillis());
      if (run_log && stepped) {
        obs::RunRecord rec("step");
        rec.Int("epoch", epoch).Int("step", st.step - 1)
            .Double("loss", loss_value);
        if (grad_norm >= 0.0) rec.Double("grad_norm", grad_norm);
        if (run_log->include_timings()) {
          rec.Double("step_ms", step_watch.ElapsedMillis());
        }
        (void)run_log->Append(rec);
      }
    }

    if (!fault_diag.empty()) {
      // kRollback with at least one checkpoint on disk: reload and retry.
      if (rollbacks_left <= 0) {
        driver.module->SetTraining(false);
        return Status::Internal("[" + model_name + "] " + fault_diag +
                                " (policy: rollback, budget of " +
                                std::to_string(config.max_rollbacks) +
                                " exhausted)");
      }
      --rollbacks_left;
      Result<int> resumed = ResumeFromNewest(config.checkpoint_dir, driver,
                                             &optimizer, &epoch_rng, &st);
      if (!resumed.ok()) {
        driver.module->SetTraining(false);
        return Status::Internal("[" + model_name + "] " + fault_diag +
                                " (policy: rollback, but " +
                                resumed.status().message() + ")");
      }
      ++report->rollbacks;
      tm.rollbacks.Add();
      obs::TraceInstant("train.rollback", "to_epoch", *resumed);
      if (run_log) {
        (void)run_log->Append(
            obs::RunRecord("rollback").Int("to_epoch", *resumed));
      }
      std::fprintf(stderr,
                   "[%s] warning: %s; rolled back to checkpoint at epoch "
                   "%d\n",
                   model_name.c_str(), fault_diag.c_str(), *resumed);
      epoch = st.epoch;
      continue;
    }

    double val_mse = 0.0;
    {
      obs::ScopedSpan val_span("train.validate", "epoch", epoch);
      util::Stopwatch val_watch;
      val_mse = ValidationMse(*driver.forecaster, dataset, config.batch_size);
      tm.validate_ms.Observe(val_watch.ElapsedMillis());
    }
    if (config.verbose) {
      std::fprintf(stderr, "[%s] epoch %d/%d  train loss %.5f  val MSE "
                   "%.5f\n",
                   model_name.c_str(), epoch + 1, config.epochs,
                   epoch_loss / std::max<int64_t>(1, num_batches), val_mse);
    }
    bool improved = false;
    if (val_mse < st.best_val) {
      st.best_val = val_mse;
      st.best_state = driver.module->StateDict();
      st.epochs_since_best = 0;
      improved = true;
    } else if (config.patience > 0 &&
               ++st.epochs_since_best > config.patience) {
      stop_early = true;  // Early stopping: validation plateaued.
    }
    ++epoch;
    st.epoch = epoch;
    ++report->epochs_run;
    tm.epochs.Add();
    tm.best_val.Set(st.best_val);
    if (run_log) {
      (void)run_log->Append(
          obs::RunRecord("epoch")
              .Int("epoch", epoch)
              .Double("train_loss",
                      epoch_loss / std::max<int64_t>(1, num_batches))
              .Double("val_mse", val_mse)
              .Double("best_val", st.best_val)
              .Bool("improved", improved));
    }

    if (ckpt_on) {
      const bool due = epoch % config.checkpoint_every == 0 ||
                       epoch == config.epochs || stop_early;
      if (due) {
        const std::string path =
            CheckpointPath(config.checkpoint_dir, epoch);
        util::Stopwatch ckpt_watch;
        Status saved;
        {
          obs::ScopedSpan ckpt_span("train.checkpoint", "epoch", epoch);
          saved = SaveTrainState(path, driver, optimizer, epoch_rng, st);
        }
        tm.checkpoint_ms.Observe(ckpt_watch.ElapsedMillis());
        if (run_log) {
          obs::RunRecord rec("checkpoint");
          rec.Int("epoch", epoch).Bool("ok", saved.ok());
          if (run_log->include_timings()) {
            rec.Double("checkpoint_ms", ckpt_watch.ElapsedMillis());
          }
          (void)run_log->Append(rec);
        }
        if (saved.ok()) {
          PruneCheckpoints(config.checkpoint_dir, config.keep_last);
        } else {
          ++report->checkpoint_write_failures;
          tm.ckpt_failures.Add();
          std::fprintf(stderr,
                       "[%s] warning: checkpoint write failed (%s); "
                       "continuing without it\n",
                       model_name.c_str(), saved.ToString().c_str());
        }
      }
      if (improved) {
        obs::ScopedSpan best_span("train.checkpoint", "epoch", epoch);
        const Status saved = ts::SaveTensors(
            BestCheckpointPath(config.checkpoint_dir), st.best_state);
        if (!saved.ok()) {
          ++report->checkpoint_write_failures;
          tm.ckpt_failures.Add();
          std::fprintf(stderr,
                       "[%s] warning: best-weights write failed (%s)\n",
                       model_name.c_str(), saved.ToString().c_str());
        }
      }
    }
  }

  if (!st.best_state.empty()) {
    MUSE_RETURN_IF_ERROR(driver.module->LoadStateDict(st.best_state));
  }
  driver.module->SetTraining(false);
  report->steps = st.step;
  report->best_val = st.best_val;
  tm.best_val.Set(st.best_val);
  if (run_log) {
    (void)run_log->Append(
        obs::RunRecord("done")
            .Int("epochs_run", report->epochs_run)
            .Int("steps", report->steps)
            .Double("best_val", report->best_val)
            .Int("skipped_batches", report->skipped_batches)
            .Int("rollbacks", report->rollbacks)
            .Int("checkpoint_failures", report->checkpoint_write_failures));
  }
  return Status::OK();
}

}  // namespace musenet::eval
