#include "eval/train_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "eval/training.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/optimizer.h"
#include "tensor/serialize.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace musenet::eval {

namespace ag = musenet::autograd;
namespace fs = std::filesystem;
namespace ts = musenet::tensor;

namespace {

constexpr uint64_t kTrainStateFormat = 1;

/// Mutable training progress serialized into every checkpoint, alongside the
/// model weights, optimizer slots and RNG streams (which live in their
/// owners and are captured at save time).
struct TrainState {
  int epoch = 0;    ///< Epochs completed; training resumes here.
  int64_t step = 0; ///< Global optimizer-step counter (all epochs).
  double best_val = std::numeric_limits<double>::infinity();
  int epochs_since_best = 0;
  std::map<std::string, ts::Tensor> best_state;  ///< Empty until a best.
};

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Checkpoint record layout (one tensor container, see tensor/serialize.h):
//   "meta"             packed words: format, epoch, step, best_val bits,
//                      epochs_since_best, has_best
//   "rng/epoch"        epoch-shuffle Rng state
//   "rng/model/<name>" each Module::RegisterRng stream
//   "model/<name>"     current weights (Module::StateDict)
//   "best/<name>"      best-epoch weights, present iff has_best
//   "optim/<kind>/<r>" optimizer slots (Optimizer::StateTensors)
constexpr size_t kMetaWords = 6;

Status SaveTrainState(const std::string& path, const TrainDriver& driver,
                      const optim::Optimizer& optimizer, const Rng& epoch_rng,
                      const TrainState& state) {
  std::map<std::string, ts::Tensor> records;
  records.emplace(
      "meta",
      ts::PackWords64({kTrainStateFormat, static_cast<uint64_t>(state.epoch),
                       static_cast<uint64_t>(state.step),
                       DoubleBits(state.best_val),
                       static_cast<uint64_t>(state.epochs_since_best),
                       state.best_state.empty() ? 0ULL : 1ULL}));
  records.emplace("rng/epoch", ts::PackWords64(epoch_rng.SaveState()));
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    records.emplace("rng/model/" + name, ts::PackWords64(rng->SaveState()));
  }
  for (auto& [name, tensor] : driver.module->StateDict()) {
    records.emplace("model/" + name, std::move(tensor));
  }
  for (const auto& [name, tensor] : state.best_state) {
    records.emplace("best/" + name, tensor);
  }
  const std::string optim_prefix =
      std::string("optim/") + std::string(optimizer.kind()) + "/";
  for (auto& [name, tensor] : optimizer.StateTensors()) {
    records.emplace(optim_prefix + name, std::move(tensor));
  }
  return ts::SaveTensors(path, records);
}

/// Splits `records` into the sub-maps behind each prefix. Returns records
/// that match no known prefix (besides "meta"/"rng/") as leftovers so the
/// caller can reject unrecognized content.
struct SplitRecords {
  std::map<std::string, ts::Tensor> model;
  std::map<std::string, ts::Tensor> best;
  std::map<std::string, ts::Tensor> optim;  ///< Keys without kind prefix.
  std::map<std::string, std::vector<uint64_t>> rngs;  ///< Model streams.
  std::vector<uint64_t> epoch_rng_words;
  std::vector<uint64_t> meta;
  std::string optim_kind;
};

Status SplitCheckpointRecords(std::map<std::string, ts::Tensor> records,
                              SplitRecords* out) {
  for (auto& [name, tensor] : records) {
    if (name == "meta") {
      MUSE_ASSIGN_OR_RETURN(out->meta, ts::UnpackWords64(tensor));
    } else if (name == "rng/epoch") {
      MUSE_ASSIGN_OR_RETURN(out->epoch_rng_words, ts::UnpackWords64(tensor));
    } else if (name.rfind("rng/model/", 0) == 0) {
      MUSE_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                            ts::UnpackWords64(tensor));
      out->rngs.emplace(name.substr(10), std::move(words));
    } else if (name.rfind("model/", 0) == 0) {
      out->model.emplace(name.substr(6), std::move(tensor));
    } else if (name.rfind("best/", 0) == 0) {
      out->best.emplace(name.substr(5), std::move(tensor));
    } else if (name.rfind("optim/", 0) == 0) {
      const size_t slash = name.find('/', 6);
      if (slash == std::string::npos) {
        return Status::InvalidArgument("malformed optimizer record '" + name +
                                       "' in checkpoint");
      }
      const std::string kind = name.substr(6, slash - 6);
      if (out->optim_kind.empty()) {
        out->optim_kind = kind;
      } else if (out->optim_kind != kind) {
        return Status::InvalidArgument(
            "checkpoint mixes optimizer kinds '" + out->optim_kind +
            "' and '" + kind + "'");
      }
      out->optim.emplace(name.substr(slash + 1), std::move(tensor));
    } else {
      return Status::InvalidArgument("unrecognized checkpoint record '" +
                                     name + "'");
    }
  }
  if (out->meta.size() != kMetaWords) {
    return Status::InvalidArgument(
        "checkpoint 'meta' record missing or wrong size");
  }
  if (out->meta[0] != kTrainStateFormat) {
    return Status::InvalidArgument(
        "unsupported checkpoint format " + std::to_string(out->meta[0]) +
        " (this build reads format " + std::to_string(kTrainStateFormat) +
        ")");
  }
  return Status::OK();
}

/// Loads a checkpoint into the module/optimizer/RNG streams. Each component
/// is restored all-or-nothing, and everything cheap to validate is checked
/// before the first mutation; on a non-OK return the caller either falls
/// back to an older checkpoint (which overwrites every component again) or
/// restores the pre-resume snapshot.
Status LoadTrainState(const std::string& path, const TrainDriver& driver,
                      optim::Optimizer* optimizer, Rng* epoch_rng,
                      TrainState* state) {
  using TensorMap = std::map<std::string, ts::Tensor>;
  MUSE_ASSIGN_OR_RETURN(TensorMap records, ts::LoadTensors(path));
  SplitRecords split;
  MUSE_RETURN_IF_ERROR(SplitCheckpointRecords(std::move(records), &split));

  const bool has_best = split.meta[5] != 0;
  if (has_best == split.best.empty()) {
    return Status::InvalidArgument(
        "checkpoint meta/best mismatch: has_best flag is " +
        std::to_string(has_best) + " but " +
        std::to_string(split.best.size()) + " best/ records present");
  }
  if (!split.optim_kind.empty() &&
      split.optim_kind != optimizer->kind()) {
    return Status::InvalidArgument(
        "checkpoint optimizer kind '" + split.optim_kind +
        "' does not match running optimizer '" +
        std::string(optimizer->kind()) + "'");
  }
  // Validate RNG snapshots before touching anything.
  if (split.epoch_rng_words.size() != Rng::kStateWords) {
    return Status::InvalidArgument("checkpoint 'rng/epoch' has wrong size");
  }
  const auto named_rngs = driver.module->NamedRngs();
  for (const auto& [name, rng] : named_rngs) {
    (void)rng;
    auto it = split.rngs.find(name);
    if (it == split.rngs.end()) {
      return Status::InvalidArgument("checkpoint missing RNG stream '" +
                                     name + "'");
    }
    if (it->second.size() != Rng::kStateWords) {
      return Status::InvalidArgument("checkpoint RNG stream '" + name +
                                     "' has wrong size");
    }
  }
  if (split.rngs.size() != named_rngs.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(split.rngs.size()) +
        " model RNG streams, model has " +
        std::to_string(named_rngs.size()));
  }

  // Mutations begin. Each call below replaces its component wholesale.
  MUSE_RETURN_IF_ERROR(driver.module->LoadStateDict(split.model));
  MUSE_RETURN_IF_ERROR(optimizer->LoadStateTensors(split.optim));
  epoch_rng->LoadState(split.epoch_rng_words);
  for (const auto& [name, rng] : named_rngs) {
    rng->LoadState(split.rngs.at(name));
  }
  state->epoch = static_cast<int>(split.meta[1]);
  state->step = static_cast<int64_t>(split.meta[2]);
  state->best_val = DoubleFromBits(split.meta[3]);
  state->epochs_since_best = static_cast<int>(split.meta[4]);
  state->best_state = std::move(split.best);
  return Status::OK();
}

/// Pre-resume snapshot of every component a checkpoint load mutates, so a
/// run whose checkpoints are ALL corrupt can fall back to a genuinely fresh
/// start instead of a half-loaded one.
struct FreshSnapshot {
  std::map<std::string, ts::Tensor> model;
  std::map<std::string, ts::Tensor> optim;
  std::vector<uint64_t> epoch_rng;
  std::map<std::string, std::vector<uint64_t>> rngs;
};

FreshSnapshot TakeSnapshot(const TrainDriver& driver,
                           const optim::Optimizer& optimizer,
                           const Rng& epoch_rng) {
  FreshSnapshot snap;
  snap.model = driver.module->StateDict();
  snap.optim = optimizer.StateTensors();
  snap.epoch_rng = epoch_rng.SaveState();
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    snap.rngs.emplace(name, rng->SaveState());
  }
  return snap;
}

void RestoreSnapshot(const FreshSnapshot& snap, const TrainDriver& driver,
                     optim::Optimizer* optimizer, Rng* epoch_rng) {
  // These loads restore state this process produced moments ago; failure
  // would be a programming error, so surface it loudly.
  Status status = driver.module->LoadStateDict(snap.model);
  MUSE_CHECK(status.ok()) << status.ToString();
  status = optimizer->LoadStateTensors(snap.optim);
  MUSE_CHECK(status.ok()) << status.ToString();
  epoch_rng->LoadState(snap.epoch_rng);
  for (const auto& [name, rng] : driver.module->NamedRngs()) {
    rng->LoadState(snap.rngs.at(name));
  }
}

/// Tries checkpoints newest-first; corrupt or unreadable files are skipped
/// with a warning. Returns the epoch resumed from, or NotFound when no file
/// loaded (with the pre-call state restored).
Result<int> ResumeFromNewest(const std::string& dir,
                             const TrainDriver& driver,
                             optim::Optimizer* optimizer, Rng* epoch_rng,
                             TrainState* state) {
  std::vector<int> epochs = ListCheckpointEpochs(dir);
  if (epochs.empty()) return Status::NotFound("no checkpoints in " + dir);
  const FreshSnapshot snap = TakeSnapshot(driver, *optimizer, *epoch_rng);
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    const std::string path = CheckpointPath(dir, *it);
    const Status status =
        LoadTrainState(path, driver, optimizer, epoch_rng, state);
    if (status.ok()) return *it;
    std::fprintf(stderr,
                 "[%s] warning: skipping unusable checkpoint %s: %s\n",
                 driver.forecaster->name().c_str(), path.c_str(),
                 status.ToString().c_str());
  }
  // Every candidate failed; a partial load may have touched the model, so
  // roll everything back to the fresh state.
  RestoreSnapshot(snap, driver, optimizer, epoch_rng);
  return Status::NotFound("no usable checkpoint in " + dir);
}

/// Deletes periodic checkpoints beyond the newest `keep_last`.
void PruneCheckpoints(const std::string& dir, int keep_last) {
  std::vector<int> epochs = ListCheckpointEpochs(dir);
  if (keep_last < 1) keep_last = 1;
  if (epochs.size() <= static_cast<size_t>(keep_last)) return;
  for (size_t i = 0; i + static_cast<size_t>(keep_last) < epochs.size();
       ++i) {
    std::error_code ec;
    fs::remove(CheckpointPath(dir, epochs[i]), ec);  // Best-effort.
  }
}

/// Writes NaN into the first gradient element (deterministic target), for
/// the fault-injection harness.
void PoisonOneGradient(const std::vector<ag::Variable>& params) {
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    auto node = p.node();
    if (node->grad.num_elements() == 0) continue;
    node->grad.mutable_data()[0] = std::numeric_limits<float>::quiet_NaN();
    return;
  }
}

/// Training-loop instruments, interned once per process. Every TrainReport
/// field has a registry twin so long-lived processes (benchmarks, servers)
/// can watch training health without plumbing the report around.
struct TrainMetrics {
  obs::Counter& steps = obs::GetCounter("train.steps");
  obs::Counter& epochs = obs::GetCounter("train.epochs_run");
  obs::Counter& skipped = obs::GetCounter("train.skipped_batches");
  obs::Counter& rollbacks = obs::GetCounter("train.rollbacks");
  obs::Counter& ckpt_failures = obs::GetCounter("train.checkpoint_failures");
  obs::Counter& resumes = obs::GetCounter("train.resumes");
  obs::Gauge& best_val = obs::GetGauge("train.best_val");
  obs::Gauge& last_loss = obs::GetGauge("train.last_loss");
  obs::Gauge& resumed_from = obs::GetGauge("train.resumed_from_epoch");
  obs::Histogram& step_ms =
      obs::GetHistogram("train.step_ms", obs::LatencyBucketsMs());
  obs::Histogram& validate_ms =
      obs::GetHistogram("train.validate_ms", obs::LatencyBucketsMs());
  obs::Histogram& checkpoint_ms =
      obs::GetHistogram("train.checkpoint_ms", obs::LatencyBucketsMs());

  static TrainMetrics& Get() {
    static TrainMetrics* metrics = new TrainMetrics();  // Leaked singleton.
    return *metrics;
  }
};

}  // namespace

std::string CheckpointPath(const std::string& dir, int epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06d.muse", epoch);
  return (fs::path(dir) / name).string();
}

std::string BestCheckpointPath(const std::string& dir) {
  return (fs::path(dir) / "best.muse").string();
}

std::vector<int> ListCheckpointEpochs(const std::string& dir) {
  std::vector<int> epochs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int epoch = 0;
    char trailing = 0;
    if (std::sscanf(name.c_str(), "ckpt-%d.mus%c", &epoch, &trailing) != 2 ||
        trailing != 'e' || epoch < 0) {
      continue;
    }
    // Exact-name check: ignores leftovers like "ckpt-000001.muse.tmp.1234"
    // from a crashed atomic write, which the sscanf prefix match accepts.
    if (fs::path(CheckpointPath(dir, epoch)).filename().string() == name) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Status RunTraining(const TrainDriver& driver,
                   const data::TrafficDataset& dataset,
                   const TrainConfig& config, TrainReport* report) {
  if (driver.module == nullptr || driver.forecaster == nullptr ||
      !driver.batch_loss) {
    return Status::InvalidArgument(
        "TrainDriver needs module, forecaster and batch_loss");
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  TrainReport local_report;
  if (report == nullptr) report = &local_report;
  *report = TrainReport{};

  // Idempotent: picks up MUSENET_TRACE for embedded callers that never
  // touch the obs API directly.
  obs::AutoInitFromEnv();
  TrainMetrics& tm = TrainMetrics::Get();
  obs::ScopedSpan run_span("train.RunTraining", "epochs", config.epochs);

  const std::string& model_name = driver.forecaster->name();
  const bool ckpt_on = !config.checkpoint_dir.empty();
  if (ckpt_on) {
    std::error_code ec;
    fs::create_directories(config.checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir '" +
                             config.checkpoint_dir + "': " + ec.message());
    }
    if (config.checkpoint_every <= 0) {
      return Status::InvalidArgument("checkpoint_every must be positive");
    }
  }

  driver.module->SetTraining(true);
  Rng epoch_rng(config.seed ^ driver.shuffle_salt);
  optim::Adam optimizer(driver.module->Parameters(), config.learning_rate);
  TrainState st;

  // The run log opens before resume so the resume event itself is recorded.
  // A path that cannot open is a configuration error worth failing on;
  // write errors after this point only disable the log (see RunLog::Append).
  std::optional<obs::RunLog> run_log;
  if (!config.run_log_path.empty()) {
    MUSE_ASSIGN_OR_RETURN(
        obs::RunLog opened,
        obs::RunLog::Open(config.run_log_path, /*truncate=*/!config.resume,
                          config.run_log_timings));
    run_log.emplace(std::move(opened));
  }

  if (ckpt_on && config.resume) {
    Result<int> resumed = ResumeFromNewest(config.checkpoint_dir, driver,
                                           &optimizer, &epoch_rng, &st);
    if (resumed.ok()) {
      report->resumed_from_epoch = *resumed;
      tm.resumes.Add();
      tm.resumed_from.Set(*resumed);
      obs::TraceInstant("train.resume", "epoch", *resumed);
      if (run_log) {
        (void)run_log->Append(obs::RunRecord("resume").Int("epoch", *resumed));
      }
      if (config.verbose) {
        std::fprintf(stderr, "[%s] resumed from checkpoint at epoch %d\n",
                     model_name.c_str(), *resumed);
      }
    }
    // NotFound just means a fresh start; nothing to do.
  }

  util::FaultInjector& faults = util::FaultInjector::Instance();
  int rollbacks_left = config.max_rollbacks;
  int epoch = st.epoch;
  bool stop_early = false;

  // Cooperative cancellation: polled at step and epoch boundaries only, so a
  // cancelled run always stops at a point where no graph is live and every
  // checkpoint already on disk is complete — rerun with resume=true picks up
  // from the last finished epoch.
  const auto cancel_requested = [&config] {
    return config.cancel != nullptr &&
           config.cancel->load(std::memory_order_relaxed);
  };
  const auto cancelled_status = [&](int at_epoch, int64_t at_step) {
    driver.module->SetTraining(false);
    obs::TraceInstant("train.cancelled", "step", at_step);
    if (run_log) {
      (void)run_log->Append(obs::RunRecord("cancelled")
                                .Int("epoch", at_epoch)
                                .Int("step", at_step));
    }
    std::string msg = "[" + model_name + "] training cancelled at epoch " +
                      std::to_string(at_epoch) + " step " +
                      std::to_string(at_step);
    if (ckpt_on) {
      msg += "; checkpoints in '" + config.checkpoint_dir +
             "' allow resume";
    }
    return Status::Cancelled(std::move(msg));
  };

  while (epoch < config.epochs && !stop_early) {
    if (cancel_requested()) return cancelled_status(epoch, st.step);
    obs::ScopedSpan epoch_span("train.epoch", "epoch", epoch);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    std::string fault_diag;
    const std::vector<int64_t> shuffled =
        ShuffleEpochPool(dataset.train_indices(), epoch_rng);
    for (size_t begin = 0;
         begin < shuffled.size() && fault_diag.empty();
         begin += static_cast<size_t>(config.batch_size)) {
      if (cancel_requested()) return cancelled_status(epoch, st.step);
      util::Stopwatch step_watch;
      obs::ScopedSpan step_span("train.step", "step", st.step);
      bool stepped = false;
      double grad_norm = -1.0;  ///< < 0 = not computed this step.
      data::Batch batch = dataset.MakeBatchFromPool(
          shuffled, begin, static_cast<size_t>(config.batch_size));
      ag::Variable loss = driver.batch_loss(batch);
      driver.module->ZeroGrad();
      ag::Backward(loss);
      if (faults.TakeNanGradient(st.step)) {
        PoisonOneGradient(optimizer.params());
      }

      bool bad = false;
      const float loss_value = loss.value().scalar();
      if (config.guard_numerics) {
        if (!std::isfinite(loss_value)) {
          bad = true;
          fault_diag = "loss is non-finite (" +
                       std::to_string(loss_value) + ")";
        } else {
          const Status grads = optim::CheckGradsFinite(optimizer.params());
          if (!grads.ok()) {
            bad = true;
            fault_diag = grads.message();
          }
        }
      }
      if (bad) {
        fault_diag = "numeric fault at epoch " + std::to_string(epoch) +
                     " step " + std::to_string(st.step) + ": " + fault_diag;
        obs::TraceInstant("train.numeric_fault", "step", st.step);
        if (config.on_non_finite == FailurePolicy::kSkipBatch) {
          std::fprintf(stderr, "[%s] warning: %s; skipping batch\n",
                       model_name.c_str(), fault_diag.c_str());
          ++report->skipped_batches;
          tm.skipped.Add();
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "skip_batch"));
          }
          fault_diag.clear();  // Handled; no optimizer step for this batch.
        } else if (config.on_non_finite == FailurePolicy::kRollback &&
                   ckpt_on &&
                   !ListCheckpointEpochs(config.checkpoint_dir).empty()) {
          // fault_diag stays set: the epoch loop below performs the
          // rollback after the graph is released.
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "rollback"));
          }
        } else {
          const char* why =
              config.on_non_finite == FailurePolicy::kRollback
                  ? " (policy: rollback, but no checkpoint to roll back to)"
                  : " (policy: abort)";
          if (run_log) {
            (void)run_log->Append(obs::RunRecord("numeric_fault")
                                      .Int("epoch", epoch)
                                      .Int("step", st.step)
                                      .Str("action", "abort")
                                      .Str("detail", fault_diag));
          }
          driver.module->SetTraining(false);
          ag::ReleaseGraph(loss);
          return Status::Internal("[" + model_name + "] " + fault_diag +
                                  why);
        }
      } else {
        if (config.clip_norm > 0.0) {
          grad_norm = optim::ClipGradNorm(optimizer.params(),
                                          config.clip_norm);
        } else if (run_log) {
          // Norm-only pass (an infinite cap never rescales): the log is
          // opt-in, so the extra gradient sweep is paid only when asked for.
          grad_norm = optim::ClipGradNorm(
              optimizer.params(), std::numeric_limits<double>::infinity());
        }
        optimizer.Step();
        epoch_loss += loss_value;
        tm.last_loss.Set(loss_value);
        stepped = true;
      }
      ++num_batches;
      ++st.step;
      tm.steps.Add();
      // Return the step's graph buffers to the storage pool before the next
      // batch allocates (the scalar was already taken above).
      ag::ReleaseGraph(loss);
      tm.step_ms.Observe(step_watch.ElapsedMillis());
      if (run_log && stepped) {
        obs::RunRecord rec("step");
        rec.Int("epoch", epoch).Int("step", st.step - 1)
            .Double("loss", loss_value);
        if (grad_norm >= 0.0) rec.Double("grad_norm", grad_norm);
        if (run_log->include_timings()) {
          rec.Double("step_ms", step_watch.ElapsedMillis());
        }
        (void)run_log->Append(rec);
      }
    }

    if (!fault_diag.empty()) {
      // kRollback with at least one checkpoint on disk: reload and retry.
      if (rollbacks_left <= 0) {
        driver.module->SetTraining(false);
        return Status::Internal("[" + model_name + "] " + fault_diag +
                                " (policy: rollback, budget of " +
                                std::to_string(config.max_rollbacks) +
                                " exhausted)");
      }
      --rollbacks_left;
      Result<int> resumed = ResumeFromNewest(config.checkpoint_dir, driver,
                                             &optimizer, &epoch_rng, &st);
      if (!resumed.ok()) {
        driver.module->SetTraining(false);
        return Status::Internal("[" + model_name + "] " + fault_diag +
                                " (policy: rollback, but " +
                                resumed.status().message() + ")");
      }
      ++report->rollbacks;
      tm.rollbacks.Add();
      obs::TraceInstant("train.rollback", "to_epoch", *resumed);
      if (run_log) {
        (void)run_log->Append(
            obs::RunRecord("rollback").Int("to_epoch", *resumed));
      }
      std::fprintf(stderr,
                   "[%s] warning: %s; rolled back to checkpoint at epoch "
                   "%d\n",
                   model_name.c_str(), fault_diag.c_str(), *resumed);
      epoch = st.epoch;
      continue;
    }

    double val_mse = 0.0;
    {
      obs::ScopedSpan val_span("train.validate", "epoch", epoch);
      util::Stopwatch val_watch;
      val_mse = ValidationMse(*driver.forecaster, dataset, config.batch_size);
      tm.validate_ms.Observe(val_watch.ElapsedMillis());
    }
    if (config.verbose) {
      std::fprintf(stderr, "[%s] epoch %d/%d  train loss %.5f  val MSE "
                   "%.5f\n",
                   model_name.c_str(), epoch + 1, config.epochs,
                   epoch_loss / std::max<int64_t>(1, num_batches), val_mse);
    }
    bool improved = false;
    if (val_mse < st.best_val) {
      st.best_val = val_mse;
      st.best_state = driver.module->StateDict();
      st.epochs_since_best = 0;
      improved = true;
    } else if (config.patience > 0 &&
               ++st.epochs_since_best > config.patience) {
      stop_early = true;  // Early stopping: validation plateaued.
    }
    ++epoch;
    st.epoch = epoch;
    ++report->epochs_run;
    tm.epochs.Add();
    tm.best_val.Set(st.best_val);
    if (run_log) {
      (void)run_log->Append(
          obs::RunRecord("epoch")
              .Int("epoch", epoch)
              .Double("train_loss",
                      epoch_loss / std::max<int64_t>(1, num_batches))
              .Double("val_mse", val_mse)
              .Double("best_val", st.best_val)
              .Bool("improved", improved));
    }

    if (ckpt_on) {
      const bool due = epoch % config.checkpoint_every == 0 ||
                       epoch == config.epochs || stop_early;
      if (due) {
        const std::string path =
            CheckpointPath(config.checkpoint_dir, epoch);
        util::Stopwatch ckpt_watch;
        Status saved;
        {
          obs::ScopedSpan ckpt_span("train.checkpoint", "epoch", epoch);
          saved = SaveTrainState(path, driver, optimizer, epoch_rng, st);
        }
        tm.checkpoint_ms.Observe(ckpt_watch.ElapsedMillis());
        if (run_log) {
          obs::RunRecord rec("checkpoint");
          rec.Int("epoch", epoch).Bool("ok", saved.ok());
          if (run_log->include_timings()) {
            rec.Double("checkpoint_ms", ckpt_watch.ElapsedMillis());
          }
          (void)run_log->Append(rec);
        }
        if (saved.ok()) {
          PruneCheckpoints(config.checkpoint_dir, config.keep_last);
        } else {
          ++report->checkpoint_write_failures;
          tm.ckpt_failures.Add();
          std::fprintf(stderr,
                       "[%s] warning: checkpoint write failed (%s); "
                       "continuing without it\n",
                       model_name.c_str(), saved.ToString().c_str());
        }
      }
      if (improved) {
        obs::ScopedSpan best_span("train.checkpoint", "epoch", epoch);
        const Status saved = ts::SaveTensors(
            BestCheckpointPath(config.checkpoint_dir), st.best_state);
        if (!saved.ok()) {
          ++report->checkpoint_write_failures;
          tm.ckpt_failures.Add();
          std::fprintf(stderr,
                       "[%s] warning: best-weights write failed (%s)\n",
                       model_name.c_str(), saved.ToString().c_str());
        }
      }
    }
  }

  if (!st.best_state.empty()) {
    MUSE_RETURN_IF_ERROR(driver.module->LoadStateDict(st.best_state));
  }
  driver.module->SetTraining(false);
  report->steps = st.step;
  report->best_val = st.best_val;
  tm.best_val.Set(st.best_val);
  if (run_log) {
    (void)run_log->Append(
        obs::RunRecord("done")
            .Int("epochs_run", report->epochs_run)
            .Int("steps", report->steps)
            .Double("best_val", report->best_val)
            .Int("skipped_batches", report->skipped_batches)
            .Int("rollbacks", report->rollbacks)
            .Int("checkpoint_failures", report->checkpoint_write_failures));
  }
  return Status::OK();
}

}  // namespace musenet::eval
