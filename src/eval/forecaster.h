#ifndef MUSENET_EVAL_FORECASTER_H_
#define MUSENET_EVAL_FORECASTER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "autograd/variable.h"
#include "data/dataset.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace musenet::eval {

/// What the training loop does when the numeric-health guards catch a
/// non-finite loss or gradient (see eval/train_loop.h).
enum class FailurePolicy {
  /// Stop training and surface an Internal Status naming the epoch, step
  /// and offending parameter. The default: blow-ups should be loud.
  kAbort,
  /// Drop the poisoned update (no optimizer step) and continue with the
  /// next batch. Right for transient faults (injected or cosmic).
  kSkipBatch,
  /// Reload the newest valid checkpoint and continue from there; gives up
  /// (aborts) after `max_rollbacks` or when no checkpoint exists.
  kRollback,
};

/// Training budget shared by every model in a comparison table, so that the
/// baselines and MUSE-Net see identical data and optimization effort.
struct TrainConfig {
  int epochs = 8;
  int batch_size = 8;
  double learning_rate = 2e-4;  ///< Paper: Adam at 2e-4.
  double clip_norm = 5.0;       ///< Global-norm gradient clipping (0 = off).
  uint64_t seed = 7;
  /// Early stopping: stop when validation MSE has not improved for this many
  /// consecutive epochs (0 disables). `epochs` acts as the hard cap. All
  /// models in a comparison share the same rule, so the protocol stays fair
  /// while slow- and fast-converging models each train to their own plateau.
  int patience = 0;
  bool verbose = false;         ///< Per-epoch loss logging to stderr.

  // --- Fault tolerance (consumed by eval::RunTraining) ----------------------

  /// Directory for crash-safe training checkpoints; empty disables
  /// checkpointing (and resume). Created if absent.
  std::string checkpoint_dir;
  int checkpoint_every = 1;  ///< Epochs between periodic checkpoints.
  int keep_last = 3;         ///< Periodic checkpoints retained (>= 1).
  /// Resume from the newest valid checkpoint in `checkpoint_dir` (corrupt
  /// files are skipped with a warning, falling back to older ones). A
  /// resumed run is bit-identical to one that never stopped.
  bool resume = false;
  /// Per-step NaN/Inf scan over the loss and every gradient. The scan is a
  /// single parallel pass, cheap next to backward.
  bool guard_numerics = true;
  FailurePolicy on_non_finite = FailurePolicy::kAbort;
  int max_rollbacks = 2;  ///< kRollback budget before giving up.

  // --- Data-parallel training (consumed by eval::RunTraining) ---------------

  /// Worker threads for the sharded training step. Each step's mini-batch
  /// splits into `train_shards` shards whose forward+backward run across
  /// these workers; gradients combine via a deterministic tree reduction.
  /// Inside a pipeline stage running under `--jobs`, the request is capped
  /// so stage workers x train workers stay within the global pool size
  /// (util::NestedParallelBudget). 1 = single-stream training.
  int train_workers = 1;
  /// Fixed shard count, the determinism knob: results are bit-exact for a
  /// given shard count regardless of `train_workers`. 0 = follow
  /// train_workers. 1 behaves exactly like (and shares the code path's
  /// numerics with) classic single-stream training.
  int train_shards = 0;
  /// Assemble the next step's shard batches on a dedicated thread while the
  /// current step computes. Assembly is a pure gather+normalize — no RNG —
  /// so prefetching never changes results.
  bool prefetch = false;

  // --- Run telemetry (consumed by eval::RunTraining) ------------------------

  /// JSONL run-log path (per-step loss/grad-norm, per-epoch summaries,
  /// checkpoint and fault events); empty disables. Appended on resume,
  /// truncated on a fresh run.
  std::string run_log_path;
  /// Include wall-clock fields (step_ms, checkpoint_ms) in the run log.
  /// Disable to get byte-identical logs across thread counts for
  /// deterministic runs.
  bool run_log_timings = true;

  // --- Cooperative cancellation (consumed by eval::RunTraining) -------------

  /// Cancellation token, or nullptr (never cancelled). RunTraining polls it
  /// at step and epoch boundaries and returns Status::Cancelled once it
  /// reads true; checkpoints written before the cancellation point stay
  /// valid, so a cancelled run with `checkpoint_dir` + `resume` set picks up
  /// where it stopped. The pipeline scheduler flips one shared token from a
  /// SIGINT handler.
  const std::atomic<bool>* cancel = nullptr;
};

/// Common interface of all traffic-flow forecasting models in this library
/// (MUSE-Net, its ablations, and every baseline).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Display name, as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Fits the model on the dataset's training split.
  virtual void Train(const data::TrafficDataset& dataset,
                     const TrainConfig& config) = 0;

  /// As Train, but surfaces training faults and cooperative cancellation as
  /// a Status instead of aborting the process. Models driven by
  /// eval::RunTraining override this to forward its Status (notably
  /// Status::Cancelled when `config.cancel` fires, which the pipeline
  /// scheduler relies on); the default covers models whose Train cannot
  /// fail.
  virtual Status TrainWithStatus(const data::TrafficDataset& dataset,
                                 const TrainConfig& config) {
    Train(dataset, config);
    return Status::OK();
  }

  /// Predicts the scaled ([-1,1]) target frames for a batch: [B, 2, H, W].
  virtual tensor::Tensor Predict(const data::Batch& batch) = 0;

  /// Planning hook for the graph-free inference engine (musenet::infer).
  ///
  /// Runs the model's deterministic eval-mode forward on `batch` and returns
  /// the prediction Variable with its graph intact, so the planner can walk
  /// the producing ops and compile a static execution plan. The returned
  /// value must equal Predict(batch) on the same inputs. Models without a
  /// traceable forward (e.g. HistoricalAverage) keep the default empty
  /// Variable, which makes the engine fall back to Predict.
  virtual autograd::Variable PlanForward(const data::Batch& batch) {
    (void)batch;
    return autograd::Variable();
  }
};

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_FORECASTER_H_
