#ifndef MUSENET_EVAL_FORECASTER_H_
#define MUSENET_EVAL_FORECASTER_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace musenet::eval {

/// Training budget shared by every model in a comparison table, so that the
/// baselines and MUSE-Net see identical data and optimization effort.
struct TrainConfig {
  int epochs = 8;
  int batch_size = 8;
  double learning_rate = 2e-4;  ///< Paper: Adam at 2e-4.
  double clip_norm = 5.0;       ///< Global-norm gradient clipping (0 = off).
  uint64_t seed = 7;
  /// Early stopping: stop when validation MSE has not improved for this many
  /// consecutive epochs (0 disables). `epochs` acts as the hard cap. All
  /// models in a comparison share the same rule, so the protocol stays fair
  /// while slow- and fast-converging models each train to their own plateau.
  int patience = 0;
  bool verbose = false;         ///< Per-epoch loss logging to stderr.
};

/// Common interface of all traffic-flow forecasting models in this library
/// (MUSE-Net, its ablations, and every baseline).
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Display name, as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Fits the model on the dataset's training split.
  virtual void Train(const data::TrafficDataset& dataset,
                     const TrainConfig& config) = 0;

  /// Predicts the scaled ([-1,1]) target frames for a batch: [B, 2, H, W].
  virtual tensor::Tensor Predict(const data::Batch& batch) = 0;
};

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_FORECASTER_H_
