#ifndef MUSENET_EVAL_TRAINING_H_
#define MUSENET_EVAL_TRAINING_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "eval/forecaster.h"
#include "util/rng.h"

namespace musenet::eval {

/// Returns a shuffled copy of the index pool (Fisher–Yates with the library
/// Rng for cross-platform determinism). One call per epoch; train loops
/// window over the result with MakeBatchFromPool instead of materializing
/// per-batch index vectors.
std::vector<int64_t> ShuffleEpochPool(const std::vector<int64_t>& pool,
                                      Rng& rng);

/// Shuffles the index pool and chunks it into mini-batches of `batch_size`
/// (last batch may be short). Same shuffle order as ShuffleEpochPool; kept
/// for callers that want owned per-batch vectors.
std::vector<std::vector<int64_t>> MakeEpochBatches(
    const std::vector<int64_t>& pool, int batch_size, Rng& rng);

/// Mean squared error of `model` on the dataset's validation split, in
/// scaled units. Used for best-epoch selection during training.
double ValidationMse(Forecaster& model, const data::TrafficDataset& dataset,
                     int batch_size);

/// Mean squared error between two tensors (plain kernel, no autograd).
double MseOf(const tensor::Tensor& prediction, const tensor::Tensor& truth);

}  // namespace musenet::eval

#endif  // MUSENET_EVAL_TRAINING_H_
