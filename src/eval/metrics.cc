#include "eval/metrics.h"

#include <cmath>

#include "util/check.h"

namespace musenet::eval {

void MetricAccumulator::Add(double prediction, double truth) {
  const double err = prediction - truth;
  sum_sq_ += err * err;
  sum_abs_ += std::fabs(err);
  ++count_;
  if (std::fabs(truth) >= mape_threshold_) {
    sum_ape_ += std::fabs(err) / std::fabs(truth);
    ++mape_count_;
  }
}

void MetricAccumulator::AddTensor(const tensor::Tensor& prediction,
                                  const tensor::Tensor& truth) {
  MUSE_CHECK(prediction.shape() == truth.shape());
  const float* pp = prediction.data();
  const float* pt = truth.data();
  const int64_t n = prediction.num_elements();
  for (int64_t i = 0; i < n; ++i) Add(pp[i], pt[i]);
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  sum_sq_ += other.sum_sq_;
  sum_abs_ += other.sum_abs_;
  sum_ape_ += other.sum_ape_;
  count_ += other.count_;
  mape_count_ += other.mape_count_;
}

double MetricAccumulator::Rmse() const {
  return count_ == 0 ? 0.0 : std::sqrt(sum_sq_ / static_cast<double>(count_));
}

double MetricAccumulator::Mae() const {
  return count_ == 0 ? 0.0 : sum_abs_ / static_cast<double>(count_);
}

double MetricAccumulator::Mape() const {
  return mape_count_ == 0 ? 0.0
                          : sum_ape_ / static_cast<double>(mape_count_);
}

MetricRow ToRow(const MetricAccumulator& acc) {
  return MetricRow{.rmse = acc.Rmse(), .mae = acc.Mae(), .mape = acc.Mape()};
}

double Improvement(double best_baseline, double ours) {
  if (best_baseline == 0.0) return 0.0;
  return (best_baseline - ours) / best_baseline;
}

}  // namespace musenet::eval
