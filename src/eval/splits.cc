#include "eval/splits.h"

#include "util/check.h"

namespace musenet::eval {

bool IsPeakInterval(const sim::FlowSeries& flows, int64_t t) {
  const double hour = flows.HourOfDay(t);
  return (hour >= 7.0 && hour < 9.0) || (hour >= 17.0 && hour < 19.0);
}

bool IsWeekdayInterval(const sim::FlowSeries& flows, int64_t t) {
  return !flows.IsWeekend(t);
}

bool InBucket(const sim::FlowSeries& flows, int64_t t, TimeBucket bucket) {
  switch (bucket) {
    case TimeBucket::kAll:
      return true;
    case TimeBucket::kPeak:
      return IsPeakInterval(flows, t);
    case TimeBucket::kNonPeak:
      return !IsPeakInterval(flows, t);
    case TimeBucket::kWeekday:
      return IsWeekdayInterval(flows, t);
    case TimeBucket::kWeekend:
      return !IsWeekdayInterval(flows, t);
  }
  MUSE_CHECK(false) << "unreachable bucket";
  return false;
}

}  // namespace musenet::eval
