#include "analysis/similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace musenet::analysis {

double CosineSimilarity(const float* a, const float* b, int64_t dim) {
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (int64_t k = 0; k < dim; ++k) {
    dot += static_cast<double>(a[k]) * b[k];
    norm_a += static_cast<double>(a[k]) * a[k];
    norm_b += static_cast<double>(b[k]) * b[k];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  return denom < 1e-12 ? 0.0 : dot / denom;
}

tensor::Tensor CosineSimilarityMatrix(const tensor::Tensor& a,
                                      const tensor::Tensor& b) {
  MUSE_CHECK_EQ(a.rank(), 2);
  MUSE_CHECK_EQ(b.rank(), 2);
  MUSE_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t n = a.dim(0);
  const int64_t m = b.dim(0);
  const int64_t d = a.dim(1);
  tensor::Tensor out(tensor::Shape({n, m}));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      out.at({i, j}) = static_cast<float>(
          CosineSimilarity(a.data() + i * d, b.data() + j * d, d));
    }
  }
  return out;
}

std::vector<double> CosineSimilarityDiagonal(const tensor::Tensor& a,
                                             const tensor::Tensor& b) {
  MUSE_CHECK_EQ(a.rank(), 2);
  MUSE_CHECK(a.shape() == b.shape());
  const int64_t n = a.dim(0);
  const int64_t d = a.dim(1);
  std::vector<double> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    out[static_cast<size_t>(i)] =
        CosineSimilarity(a.data() + i * d, b.data() + i * d, d);
  }
  return out;
}

double FractionAbove(const tensor::Tensor& matrix, double threshold) {
  const int64_t n = matrix.num_elements();
  MUSE_CHECK_GT(n, 0);
  int64_t above = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (matrix.flat(i) > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(n);
}

double SilhouetteScore(const tensor::Tensor& points,
                       const std::vector<int>& labels) {
  MUSE_CHECK_EQ(points.rank(), 2);
  const int64_t n = points.dim(0);
  const int64_t d = points.dim(1);
  MUSE_CHECK_EQ(static_cast<int64_t>(labels.size()), n);

  auto distance = [&](int64_t i, int64_t j) {
    double acc = 0.0;
    for (int64_t k = 0; k < d; ++k) {
      const double diff = static_cast<double>(points.flat(i * d + k)) -
                          points.flat(j * d + k);
      acc += diff * diff;
    }
    return std::sqrt(acc);
  };

  int max_label = 0;
  for (int label : labels) max_label = std::max(max_label, label);
  const int num_clusters = max_label + 1;

  double total = 0.0;
  int64_t counted = 0;
  std::vector<double> mean_dist(static_cast<size_t>(num_clusters));
  std::vector<int64_t> cluster_count(static_cast<size_t>(num_clusters));
  for (int64_t i = 0; i < n; ++i) {
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    std::fill(cluster_count.begin(), cluster_count.end(), 0);
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      mean_dist[static_cast<size_t>(labels[static_cast<size_t>(j)])] +=
          distance(i, j);
      ++cluster_count[static_cast<size_t>(labels[static_cast<size_t>(j)])];
    }
    const int own = labels[static_cast<size_t>(i)];
    if (cluster_count[static_cast<size_t>(own)] == 0) continue;
    const double a_i =
        mean_dist[static_cast<size_t>(own)] /
        static_cast<double>(cluster_count[static_cast<size_t>(own)]);
    double b_i = std::numeric_limits<double>::infinity();
    for (int c = 0; c < num_clusters; ++c) {
      if (c == own || cluster_count[static_cast<size_t>(c)] == 0) continue;
      b_i = std::min(b_i, mean_dist[static_cast<size_t>(c)] /
                              static_cast<double>(
                                  cluster_count[static_cast<size_t>(c)]));
    }
    if (!std::isfinite(b_i)) continue;
    total += (b_i - a_i) / std::max(a_i, b_i);
    ++counted;
  }
  MUSE_CHECK_GT(counted, 0) << "SilhouetteScore needs ≥2 non-empty clusters";
  return total / static_cast<double>(counted);
}

}  // namespace musenet::analysis
