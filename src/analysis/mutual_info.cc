#include "analysis/mutual_info.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace musenet::analysis {

namespace {

/// Digamma function for positive integer-ish arguments (series expansion).
double Digamma(double x) {
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

/// Max-norm distance between rows i and j of a [N, D] tensor.
double MaxNorm(const tensor::Tensor& t, int64_t i, int64_t j) {
  const int64_t d = t.dim(1);
  const float* p = t.data();
  double best = 0.0;
  for (int64_t k = 0; k < d; ++k) {
    best = std::max(best, std::fabs(static_cast<double>(p[i * d + k]) -
                                    p[j * d + k]));
  }
  return best;
}

}  // namespace

double EstimateMutualInformationKsg(const tensor::Tensor& x,
                                    const tensor::Tensor& y, int k) {
  MUSE_CHECK_EQ(x.rank(), 2);
  MUSE_CHECK_EQ(y.rank(), 2);
  MUSE_CHECK_EQ(x.dim(0), y.dim(0));
  const int64_t n = x.dim(0);
  MUSE_CHECK_GT(n, k + 1) << "KSG needs more samples than k";

  std::vector<double> dx(static_cast<size_t>(n));
  std::vector<double> dy(static_cast<size_t>(n));
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    // Joint-space distances (max over the two blocks' max-norms).
    for (int64_t j = 0; j < n; ++j) {
      dx[static_cast<size_t>(j)] = MaxNorm(x, i, j);
      dy[static_cast<size_t>(j)] = MaxNorm(y, i, j);
    }
    std::vector<double> joint(static_cast<size_t>(n));
    for (int64_t j = 0; j < n; ++j) {
      joint[static_cast<size_t>(j)] =
          std::max(dx[static_cast<size_t>(j)], dy[static_cast<size_t>(j)]);
    }
    joint[static_cast<size_t>(i)] = std::numeric_limits<double>::infinity();
    // ε_i = distance to the k-th joint-space neighbour.
    std::vector<double> sorted = joint;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1), sorted.end());
    const double epsilon = sorted[static_cast<size_t>(k - 1)];

    // Counts of marginal neighbours strictly inside ε.
    int64_t nx = 0;
    int64_t ny = 0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (dx[static_cast<size_t>(j)] < epsilon) ++nx;
      if (dy[static_cast<size_t>(j)] < epsilon) ++ny;
    }
    acc += Digamma(static_cast<double>(nx) + 1.0) +
           Digamma(static_cast<double>(ny) + 1.0);
  }

  const double mi = Digamma(static_cast<double>(k)) +
                    Digamma(static_cast<double>(n)) -
                    acc / static_cast<double>(n);
  return std::max(0.0, mi);
}

}  // namespace musenet::analysis
