#ifndef MUSENET_ANALYSIS_MUTUAL_INFO_H_
#define MUSENET_ANALYSIS_MUTUAL_INFO_H_

#include "tensor/tensor.h"

namespace musenet::analysis {

/// Kraskov–Stögbauer–Grassberger (KSG, 2004) k-nearest-neighbour estimator
/// of mutual information I(X; Y) in nats for continuous samples.
///
/// x:[N, Dx] and y:[N, Dy] are paired samples. Uses the max-norm variant
/// (KSG algorithm 1) with O(N²) neighbour search — adequate for the ≤2k
/// samples of the independence analysis (RQ3). The estimate is clamped at 0
/// (the estimator can go slightly negative for independent variables).
double EstimateMutualInformationKsg(const tensor::Tensor& x,
                                    const tensor::Tensor& y, int k = 5);

}  // namespace musenet::analysis

#endif  // MUSENET_ANALYSIS_MUTUAL_INFO_H_
