#ifndef MUSENET_ANALYSIS_TSNE_H_
#define MUSENET_ANALYSIS_TSNE_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace musenet::analysis {

/// Exact t-SNE (van der Maaten & Hinton 2008) options.
struct TsneOptions {
  int output_dim = 2;
  double perplexity = 20.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  /// Early-exaggeration factor applied to P for the first
  /// `exaggeration_iterations` steps.
  double early_exaggeration = 4.0;
  int exaggeration_iterations = 80;
  uint64_t seed = 7;
};

/// Embeds `points` [N, D] into [N, output_dim] with exact-gradient t-SNE
/// (O(N²) per iteration; intended for the ≤1k points of the Fig. 5
/// reproduction). Perplexity is clamped to (N−1)/3 when necessary.
tensor::Tensor RunTsne(const tensor::Tensor& points, TsneOptions options);

}  // namespace musenet::analysis

#endif  // MUSENET_ANALYSIS_TSNE_H_
