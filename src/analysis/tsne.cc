#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace musenet::analysis {

namespace {

/// Pairwise squared Euclidean distances of [N, D] rows.
std::vector<double> PairwiseSquaredDistances(const tensor::Tensor& points) {
  const int64_t n = points.dim(0);
  const int64_t d = points.dim(1);
  const float* p = points.data();
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        const double diff =
            static_cast<double>(p[i * d + k]) - p[j * d + k];
        acc += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = acc;
      dist[static_cast<size_t>(j * n + i)] = acc;
    }
  }
  return dist;
}

/// Row-conditional probabilities p_{j|i} whose entropy matches
/// log(perplexity), found by binary search over the Gaussian bandwidth.
std::vector<double> ConditionalP(const std::vector<double>& dist, int64_t n,
                                 double perplexity) {
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  const double target_entropy = std::log(perplexity);
  std::vector<double> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double beta_lo = 0.0;
    double beta_hi = 1e12;
    double beta = 1.0;
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        row[static_cast<size_t>(j)] =
            j == i ? 0.0
                   : std::exp(-beta * dist[static_cast<size_t>(i * n + j)]);
        sum += row[static_cast<size_t>(j)];
      }
      if (sum <= 1e-300) {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
        continue;
      }
      double entropy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        const double pj = row[static_cast<size_t>(j)] / sum;
        if (pj > 1e-300) entropy -= pj * std::log(pj);
      }
      if (std::fabs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi >= 1e12 ? beta * 2.0 : (beta_lo + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
      }
    }
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      row[static_cast<size_t>(j)] =
          j == i ? 0.0
                 : std::exp(-beta * dist[static_cast<size_t>(i * n + j)]);
      sum += row[static_cast<size_t>(j)];
    }
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] =
          sum > 0.0 ? row[static_cast<size_t>(j)] / sum : 0.0;
    }
  }
  return p;
}

}  // namespace

tensor::Tensor RunTsne(const tensor::Tensor& points, TsneOptions options) {
  MUSE_CHECK_EQ(points.rank(), 2);
  const int64_t n = points.dim(0);
  MUSE_CHECK_GE(n, 4) << "t-SNE needs at least 4 points";
  const int64_t out_dim = options.output_dim;
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  // Symmetrized, normalized similarities P.
  const std::vector<double> dist = PairwiseSquaredDistances(points);
  const std::vector<double> cond = ConditionalP(dist, n, perplexity);
  std::vector<double> big_p(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      big_p[static_cast<size_t>(i * n + j)] =
          (cond[static_cast<size_t>(i * n + j)] +
           cond[static_cast<size_t>(j * n + i)]) /
          (2.0 * static_cast<double>(n));
    }
  }
  for (double& v : big_p) v = std::max(v, 1e-12);

  Rng rng(options.seed);
  std::vector<double> y(static_cast<size_t>(n * out_dim));
  for (double& v : y) v = rng.Normal(0.0, 1e-2);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> q(static_cast<size_t>(n * n), 0.0);
  std::vector<double> grad(y.size(), 0.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iterations ? options.early_exaggeration
                                               : 1.0;
    // Student-t similarities Q (unnormalized first).
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double acc = 0.0;
        for (int64_t k = 0; k < out_dim; ++k) {
          const double diff = y[static_cast<size_t>(i * out_dim + k)] -
                              y[static_cast<size_t>(j * out_dim + k)];
          acc += diff * diff;
        }
        const double w = 1.0 / (1.0 + acc);
        q[static_cast<size_t>(i * n + j)] = w;
        q[static_cast<size_t>(j * n + i)] = w;
        q_sum += 2.0 * w;
      }
    }
    q_sum = std::max(q_sum, 1e-300);

    // Gradient: 4 Σ_j (p_ij − q_ij) w_ij (y_i − y_j).
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[static_cast<size_t>(i * n + j)];
        const double coeff =
            4.0 * (exaggeration * big_p[static_cast<size_t>(i * n + j)] -
                   w / q_sum) *
            w;
        for (int64_t k = 0; k < out_dim; ++k) {
          grad[static_cast<size_t>(i * out_dim + k)] +=
              coeff * (y[static_cast<size_t>(i * out_dim + k)] -
                       y[static_cast<size_t>(j * out_dim + k)]);
        }
      }
    }
    for (size_t idx = 0; idx < y.size(); ++idx) {
      velocity[idx] =
          options.momentum * velocity[idx] - options.learning_rate * grad[idx];
      y[idx] += velocity[idx];
    }
  }

  tensor::Tensor out(tensor::Shape({n, out_dim}));
  for (size_t idx = 0; idx < y.size(); ++idx) {
    out.flat(static_cast<int64_t>(idx)) = static_cast<float>(y[idx]);
  }
  return out;
}

}  // namespace musenet::analysis
