#ifndef MUSENET_ANALYSIS_SIMILARITY_H_
#define MUSENET_ANALYSIS_SIMILARITY_H_

#include <vector>

#include "tensor/tensor.h"

namespace musenet::analysis {

/// Cosine similarity of two equal-length vectors (0 when either is ~zero).
double CosineSimilarity(const float* a, const float* b, int64_t dim);

/// Full similarity matrix between the rows of A:[N,D] and B:[M,D] → [N,M].
/// Reproduces the heatmaps of the paper's Figs. 6–7.
tensor::Tensor CosineSimilarityMatrix(const tensor::Tensor& a,
                                      const tensor::Tensor& b);

/// Row-wise (diagonal) similarities of A:[N,D] and B:[N,D] → length-N vector.
/// Reproduces the diagonal traces of the paper's Fig. 8.
std::vector<double> CosineSimilarityDiagonal(const tensor::Tensor& a,
                                             const tensor::Tensor& b);

/// Fraction of matrix entries strictly greater than `threshold` — the
/// paper's "most points in the heatmaps are greater than zero" statistic.
double FractionAbove(const tensor::Tensor& matrix, double threshold);

/// Mean silhouette coefficient of labelled points [N,D] (Euclidean). Used to
/// quantify the cluster separation the paper shows visually in Fig. 5.
/// Labels must contain at least two distinct values.
double SilhouetteScore(const tensor::Tensor& points,
                       const std::vector<int>& labels);

}  // namespace musenet::analysis

#endif  // MUSENET_ANALYSIS_SIMILARITY_H_
