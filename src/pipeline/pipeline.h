#ifndef MUSENET_PIPELINE_PIPELINE_H_
#define MUSENET_PIPELINE_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pipeline/stage_cache.h"
#include "util/hash.h"
#include "util/status.h"

namespace musenet::pipeline {

/// Bumped whenever a change to stage execution semantics should invalidate
/// every existing cache entry (the "code-version salt" of the content keys).
inline constexpr char kDefaultCodeSalt[] = "musenet-pipeline-v1";

/// What happened to one stage during a Run.
struct StageOutcome {
  enum class State {
    kPending,    ///< Not reached (Run not called, or aborted earlier).
    kHit,        ///< Served from the cache.
    kMiss,       ///< Recomputed (and committed when a cache dir is set).
    kCancelled,  ///< Stage observed the cancellation token and stopped.
    kFailed,     ///< Stage function returned an error.
    kSkipped,    ///< An upstream stage did not produce output.
  };
  State state = State::kPending;
  std::string reason;     ///< Hit/miss/invalidation explanation.
  uint64_t key = 0;       ///< Content cache key of this run.
  uint64_t output_hash = 0;  ///< FNV-1a of the payload (0 until produced).
  double wall_ms = 0.0;
  Status error;           ///< Set for kFailed (and kCancelled).
};

/// Execution context handed to a stage function.
struct StageContext {
  /// Payloads of the stage's dependencies, in declaration order. Pointers
  /// stay valid for the duration of the call.
  std::vector<const std::string*> dep_payloads;
  /// Cooperative cancellation token (may be nullptr). Long stages thread it
  /// into their inner loops (eval::TrainConfig::cancel) and return
  /// Status::Cancelled promptly once it reads true.
  const std::atomic<bool>* cancel = nullptr;
  /// Keyed scratch directory for resumable in-progress state (training
  /// checkpoints); empty when caching is disabled. Stable across reruns of
  /// the same content key and removed once the stage commits.
  std::string scratch_dir;
};

/// A stage body: pure function of its config and dependency payloads,
/// returning the serialized output. Purity is what makes content keys
/// sound — everything the payload depends on must be in the stage's config
/// fingerprint or in a dependency payload.
using StageFn = std::function<Result<std::string>(const StageContext&)>;

/// Typed-stage DAG with a content-hashed cache and a parallel, cancellable
/// scheduler — the incremental engine behind the experiment binaries
/// (simulate → dataset → per-model train → eval → table).
///
/// Content keys: key(stage) = FNV-1a over a canonical description listing
/// the stage name, the code salt, every config field ("cfg:k=v") and the
/// output hash of every dependency ("dep:name=hex"). Keys therefore change
/// exactly when an input changes, and *early cutoff* holds: if an upstream
/// stage reran but produced byte-identical output, downstream keys are
/// unchanged and downstream stages hit.
///
/// Scheduling: stages are grouped into dependency levels; within a level,
/// cache probes run first, then the misses execute concurrently on a local
/// thread pool (`jobs` wide). Stage kernels that use the global compute
/// pool degrade to their deterministic sequential path inside stage
/// workers, so results are bit-identical at every `jobs` value.
///
/// Cancellation: the run polls `cancel` between stages and hands the token
/// to every stage body. A cancelled run commits nothing partial — completed
/// stages are already in the cache, the interrupted stage keeps its scratch
/// checkpoints — so a rerun resumes without redoing finished work.
class Pipeline {
 public:
  /// Declares a stage. `deps` are ids returned by earlier AddStage calls
  /// (the DAG is built in topological order by construction). `config`
  /// must fingerprint every input of `fn` that is not a dependency payload.
  /// Names must be unique; they key the cache entries and the explain
  /// output. Returns the stage id.
  int AddStage(std::string name, util::Fingerprint config,
               std::vector<int> deps, StageFn fn);

  struct RunOptions {
    /// Cache directory; empty runs every stage with no persistence.
    std::string cache_dir;
    /// Concurrent stage executions per dependency level (clamped to >= 1).
    int jobs = 1;
    /// Print per-stage HIT/MISS lines with hit/miss/invalidation reasons.
    bool explain = false;
    /// Print stage progress lines and the run summary to stdout.
    bool verbose = true;
    /// Cooperative cancellation token (e.g. flipped by a SIGINT handler).
    const std::atomic<bool>* cancel = nullptr;
    std::string code_salt = kDefaultCodeSalt;
  };

  struct RunReport {
    int stages = 0;
    int hits = 0;
    int misses = 0;
    int cancelled = 0;
    int failed = 0;
    int skipped = 0;
    double wall_ms = 0.0;
  };

  /// Executes the DAG. Returns the report on success; the first stage error
  /// on failure; Status::Cancelled when the token fired. Stages downstream
  /// of a failed/cancelled stage are skipped, independent branches still
  /// run. Re-runnable: outcomes reset at entry.
  Result<RunReport> Run(const RunOptions& options);

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const std::string& stage_name(int id) const { return stages_[id].name; }
  /// Payload produced (or loaded) by the last Run; empty if the stage did
  /// not complete.
  const std::string& payload(int id) const { return stages_[id].payload; }
  const StageOutcome& outcome(int id) const { return stages_[id].outcome; }
  /// Id of the stage named `name`, or -1.
  int FindStage(const std::string& name) const;

 private:
  struct StageNode {
    std::string name;
    util::Fingerprint config;
    std::vector<int> deps;
    StageFn fn;
    int level = 0;
    std::string description;  ///< Canonical text of the last Run.
    std::string payload;
    StageOutcome outcome;
  };

  std::string BuildDescription(const StageNode& stage,
                               const std::string& code_salt) const;

  std::vector<StageNode> stages_;
};

}  // namespace musenet::pipeline

#endif  // MUSENET_PIPELINE_PIPELINE_H_
