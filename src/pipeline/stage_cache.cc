#include "pipeline/stage_cache.h"

#include <cctype>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>
#include <vector>

#include "util/crc32.h"
#include "util/hash.h"
#include "util/io.h"

namespace musenet::pipeline {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'M', 'U', 'S', 'E', 'S', 'T', 'G', '1'};

struct EntryHeader {
  char magic[8];
  uint64_t key;
  uint64_t payload_size;
  uint32_t payload_crc;
};

/// Splits a canonical description into (key, value) lines, preserving order.
std::vector<std::pair<std::string, std::string>> ParseLines(
    const std::string& desc) {
  std::vector<std::pair<std::string, std::string>> lines;
  size_t begin = 0;
  while (begin < desc.size()) {
    size_t end = desc.find('\n', begin);
    if (end == std::string::npos) end = desc.size();
    const std::string line = desc.substr(begin, end - begin);
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      lines.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    begin = end + 1;
  }
  return lines;
}

std::string ClassifyChange(const std::string& key, const std::string* old_value,
                           const std::string* new_value) {
  const auto quote = [](const std::string* v) {
    return v == nullptr ? std::string("<absent>") : "'" + *v + "'";
  };
  if (key.rfind("dep:", 0) == 0) {
    return "upstream '" + key.substr(4) + "' output changed";
  }
  if (key == "code_salt") {
    return "code version changed (" + quote(old_value) + " -> " +
           quote(new_value) + ")";
  }
  std::string field = key.rfind("cfg:", 0) == 0 ? key.substr(4) : key;
  return "config changed: " + field + " " + quote(old_value) + " -> " +
         quote(new_value);
}

}  // namespace

StageCache::StageCache(std::string dir) : dir_(std::move(dir)) {}

std::string StageCache::Sanitize(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '-' &&
        ch != '.') {
      ch = '_';
    }
  }
  return out;
}

std::string StageCache::EntryPath(const std::string& stage_name,
                                  uint64_t key) const {
  return dir_ + "/" + Sanitize(stage_name) + "-" + util::HashHex(key) +
         ".stage";
}

std::string StageCache::ManifestPath(const std::string& stage_name) const {
  return dir_ + "/" + Sanitize(stage_name) + ".manifest";
}

std::string StageCache::ScratchDir(const std::string& stage_name,
                                   uint64_t key) const {
  if (dir_.empty()) return "";
  return dir_ + "/scratch/" + Sanitize(stage_name) + "-" + util::HashHex(key);
}

void StageCache::DropScratch(const std::string& stage_name,
                             uint64_t key) const {
  const std::string scratch = ScratchDir(stage_name, key);
  if (scratch.empty()) return;
  std::error_code ec;
  fs::remove_all(scratch, ec);  // Best-effort cleanup.
}

std::string StageCache::DiffReason(const std::string& old_desc,
                                   const std::string& new_desc) {
  const auto old_lines = ParseLines(old_desc);
  const auto new_lines = ParseLines(new_desc);
  std::map<std::string, std::string> old_map(old_lines.begin(),
                                             old_lines.end());
  std::map<std::string, std::string> new_map(new_lines.begin(),
                                             new_lines.end());
  // New-description order first: report the first field whose value moved or
  // that appeared; then fields that vanished.
  for (const auto& [key, value] : new_lines) {
    auto it = old_map.find(key);
    if (it == old_map.end()) return ClassifyChange(key, nullptr, &value);
    if (it->second != value) return ClassifyChange(key, &it->second, &value);
  }
  for (const auto& [key, value] : old_lines) {
    if (!new_map.count(key)) return ClassifyChange(key, &value, nullptr);
  }
  return "";
}

StageCache::Probe StageCache::Lookup(const std::string& stage_name,
                                     uint64_t key,
                                     const std::string& description) const {
  Probe probe;
  if (!enabled()) {
    probe.miss_reason = "cache disabled";
    return probe;
  }

  // Miss diagnosis against the manifest happens lazily — only when the entry
  // turns out to be unusable.
  const auto miss_with_manifest_reason = [&](const std::string& fallback) {
    auto manifest = util::ReadFileToString(ManifestPath(stage_name));
    if (!manifest.ok()) {
      probe.miss_reason = "first run (no manifest for this stage)";
      return probe;
    }
    const std::string diff = DiffReason(*manifest, description);
    probe.miss_reason = diff.empty() ? fallback : diff;
    return probe;
  };

  auto bytes = util::ReadFileToString(EntryPath(stage_name, key));
  if (!bytes.ok()) {
    return miss_with_manifest_reason("cache entry missing (evicted or never "
                                     "committed)");
  }
  if (bytes->size() < sizeof(EntryHeader)) {
    probe.miss_reason = "corrupt cache entry (truncated header); recomputing";
    return probe;
  }
  EntryHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    probe.miss_reason = "corrupt cache entry (bad magic); recomputing";
    return probe;
  }
  if (header.key != key) {
    probe.miss_reason = "corrupt cache entry (key mismatch); recomputing";
    return probe;
  }
  if (bytes->size() - sizeof(EntryHeader) != header.payload_size) {
    probe.miss_reason = "corrupt cache entry (truncated payload); recomputing";
    return probe;
  }
  const char* payload = bytes->data() + sizeof(EntryHeader);
  if (util::Crc32(payload, header.payload_size) != header.payload_crc) {
    probe.miss_reason = "corrupt cache entry (payload CRC mismatch); "
                        "recomputing";
    return probe;
  }
  probe.hit = true;
  probe.payload.assign(payload, header.payload_size);
  return probe;
}

Status StageCache::Store(const std::string& stage_name, uint64_t key,
                         const std::string& description,
                         const std::string& payload) {
  if (!enabled()) return Status::OK();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create cache dir '" + dir_ +
                           "': " + ec.message());
  }

  std::string bytes;
  bytes.reserve(sizeof(EntryHeader) + payload.size());
  EntryHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.key = key;
  header.payload_size = payload.size();
  header.payload_crc =
      util::Crc32(payload.data(), payload.size());
  bytes.append(reinterpret_cast<const char*>(&header), sizeof(header));
  bytes.append(payload);
  MUSE_RETURN_IF_ERROR(
      util::AtomicWriteFile(EntryPath(stage_name, key), bytes));
  // The manifest commits after the entry: if we crash between the two
  // writes, the next run sees the old manifest (a slightly stale reason)
  // but a valid entry — correctness never depends on the manifest.
  return util::AtomicWriteFile(ManifestPath(stage_name), description);
}

}  // namespace musenet::pipeline
