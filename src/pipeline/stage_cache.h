#ifndef MUSENET_PIPELINE_STAGE_CACHE_H_
#define MUSENET_PIPELINE_STAGE_CACHE_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace musenet::pipeline {

/// Content-addressed on-disk cache of pipeline stage outputs.
///
/// One entry per (stage name, content key): the key is the FNV-1a digest of
/// the stage's canonical description (config fields, code salt, upstream
/// output hashes — see Pipeline), so any input change addresses a different
/// entry. Entries are written with util::AtomicWriteFile and carry a CRC32
/// over the payload; a truncated, bit-flipped or wrong-key entry is treated
/// as a miss (with a reason naming the damage), never as an error — the
/// stage just recomputes and overwrites it.
///
/// Next to the entries, the cache keeps one *manifest* per stage name
/// holding the canonical description of the last committed run. On a miss,
/// diffing the new description against the manifest yields the
/// invalidation reason ("config changed: epochs '8' -> '3'", "upstream
/// 'simulate/NYC-Taxi' output changed"), which `--explain` surfaces.
class StageCache {
 public:
  /// `dir` is created on first Store; empty disables persistence (every
  /// Lookup misses with reason "cache disabled").
  explicit StageCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  struct Probe {
    bool hit = false;
    std::string payload;      ///< Valid when hit.
    std::string miss_reason;  ///< Human-readable; empty when hit.
  };

  /// Probes the entry for (stage_name, key). `description` is the canonical
  /// text `key` was hashed from; it is only used to produce the
  /// invalidation reason on a miss.
  Probe Lookup(const std::string& stage_name, uint64_t key,
               const std::string& description) const;

  /// Atomically commits the entry and the stage's manifest. Failures are
  /// returned (the caller logs and continues — a broken cache write must
  /// not fail the run, the stage output is already in memory).
  Status Store(const std::string& stage_name, uint64_t key,
               const std::string& description, const std::string& payload);

  /// Per-(stage, key) scratch directory for resumable in-progress state
  /// (training checkpoints). Stable across reruns of the same key, so a
  /// cancelled stage resumes from what it left behind. Not created here.
  std::string ScratchDir(const std::string& stage_name, uint64_t key) const;

  /// Removes the scratch directory of a committed stage (best-effort).
  void DropScratch(const std::string& stage_name, uint64_t key) const;

  /// Filesystem-safe form of a stage name ('/' and other non-alphanumerics
  /// become '_'; exposed for tests).
  static std::string Sanitize(const std::string& name);

  /// First human-relevant difference between two canonical descriptions
  /// (old vs new), classified by line prefix: "cfg:" fields report the field
  /// and both values, "dep:" lines report the upstream stage, "code_salt"
  /// reports a code-version change. Empty when the descriptions are equal.
  static std::string DiffReason(const std::string& old_desc,
                                const std::string& new_desc);

 private:
  std::string EntryPath(const std::string& stage_name, uint64_t key) const;
  std::string ManifestPath(const std::string& stage_name) const;

  std::string dir_;
};

}  // namespace musenet::pipeline

#endif  // MUSENET_PIPELINE_STAGE_CACHE_H_
