#include "pipeline/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace musenet::pipeline {

namespace {

const char* StateTag(StageOutcome::State state) {
  switch (state) {
    case StageOutcome::State::kHit:       return "HIT ";
    case StageOutcome::State::kMiss:      return "MISS";
    case StageOutcome::State::kCancelled: return "CANCELLED";
    case StageOutcome::State::kFailed:    return "FAILED";
    case StageOutcome::State::kSkipped:   return "SKIP";
    case StageOutcome::State::kPending:   return "PENDING";
  }
  return "?";
}

}  // namespace

int Pipeline::AddStage(std::string name, util::Fingerprint config,
                       std::vector<int> deps, StageFn fn) {
  const int id = static_cast<int>(stages_.size());
  MUSE_CHECK(FindStage(name) < 0) << "duplicate stage name " << name;
  StageNode node;
  node.name = std::move(name);
  node.config = std::move(config);
  node.fn = std::move(fn);
  node.level = 0;
  for (const int dep : deps) {
    MUSE_CHECK(dep >= 0 && dep < id)
        << "stage " << node.name << ": dependency id " << dep
        << " is not an earlier stage";
    node.level = std::max(node.level, stages_[dep].level + 1);
  }
  node.deps = std::move(deps);
  stages_.push_back(std::move(node));
  return id;
}

int Pipeline::FindStage(const std::string& name) const {
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Pipeline::BuildDescription(const StageNode& stage,
                                       const std::string& code_salt) const {
  std::string desc = "stage=" + stage.name + "\ncode_salt=" + code_salt + "\n";
  // Config fields, prefixed so DiffReason can classify them.
  const std::string& canonical = stage.config.canonical();
  size_t begin = 0;
  while (begin < canonical.size()) {
    size_t end = canonical.find('\n', begin);
    if (end == std::string::npos) end = canonical.size() - 1;
    desc += "cfg:" + canonical.substr(begin, end - begin + 1);
    begin = end + 1;
  }
  for (const int dep : stage.deps) {
    desc += "dep:" + stages_[dep].name + "=" +
            util::HashHex(stages_[dep].outcome.output_hash) + "\n";
  }
  return desc;
}

Result<Pipeline::RunReport> Pipeline::Run(const RunOptions& options) {
  obs::ScopedSpan run_span("pipeline.run", "stages", num_stages());
  util::Stopwatch wall;
  StageCache cache(options.cache_dir);

  obs::Counter& hit_counter = obs::GetCounter("pipeline.stage.hit");
  obs::Counter& miss_counter = obs::GetCounter("pipeline.stage.miss");
  obs::Counter& cancelled_counter =
      obs::GetCounter("pipeline.stage.cancelled");
  obs::Counter& failed_counter = obs::GetCounter("pipeline.stage.failed");
  obs::Histogram& stage_ms =
      obs::GetHistogram("pipeline.stage.ms", obs::LatencyBucketsMs());
  obs::Histogram& hit_ms =
      obs::GetHistogram("pipeline.stage.hit_ms", obs::LatencyBucketsMs());
  obs::Histogram& miss_ms =
      obs::GetHistogram("pipeline.stage.miss_ms", obs::LatencyBucketsMs());

  for (StageNode& stage : stages_) {
    stage.outcome = StageOutcome();
    stage.payload.clear();
    stage.description.clear();
  }

  const auto cancel_requested = [&options] {
    return options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed);
  };

  std::mutex print_mutex;
  const auto print_outcome = [&](const StageNode& stage) {
    if (!options.verbose) return;
    std::lock_guard<std::mutex> lock(print_mutex);
    const StageOutcome& oc = stage.outcome;
    if (options.explain && !oc.reason.empty()) {
      std::printf("[pipeline] %s %s (%s) [%.1f ms]\n", StateTag(oc.state),
                  stage.name.c_str(), oc.reason.c_str(), oc.wall_ms);
    } else {
      std::printf("[pipeline] %s %s [%.1f ms]\n", StateTag(oc.state),
                  stage.name.c_str(), oc.wall_ms);
    }
    std::fflush(stdout);
  };

  int max_level = 0;
  for (const StageNode& stage : stages_) {
    max_level = std::max(max_level, stage.level);
  }

  bool externally_cancelled = false;
  for (int level = 0; level <= max_level && !externally_cancelled; ++level) {
    // --- Probe phase: resolve keys and classify hits/misses ----------------
    std::vector<int> to_run;
    for (int id = 0; id < num_stages(); ++id) {
      StageNode& stage = stages_[static_cast<size_t>(id)];
      if (stage.level != level) continue;

      // A stage whose dependency did not complete cannot run.
      bool deps_ok = true;
      for (const int dep : stage.deps) {
        const StageOutcome::State ds = stages_[dep].outcome.state;
        if (ds != StageOutcome::State::kHit &&
            ds != StageOutcome::State::kMiss) {
          stage.outcome.state = StageOutcome::State::kSkipped;
          stage.outcome.reason =
              "upstream '" + stages_[dep].name + "' did not complete";
          deps_ok = false;
          break;
        }
      }
      if (!deps_ok) {
        print_outcome(stage);
        continue;
      }

      stage.description = BuildDescription(stage, options.code_salt);
      stage.outcome.key = util::Fnv1a64(stage.description);

      util::Stopwatch probe_watch;
      StageCache::Probe probe =
          cache.Lookup(stage.name, stage.outcome.key, stage.description);
      if (probe.hit) {
        stage.payload = std::move(probe.payload);
        stage.outcome.state = StageOutcome::State::kHit;
        stage.outcome.reason = "cached";
        stage.outcome.output_hash = util::Fnv1a64(stage.payload);
        stage.outcome.wall_ms = probe_watch.ElapsedMillis();
        hit_counter.Add();
        stage_ms.Observe(stage.outcome.wall_ms);
        hit_ms.Observe(stage.outcome.wall_ms);
        print_outcome(stage);
      } else {
        stage.outcome.reason = probe.miss_reason;
        to_run.push_back(id);
      }
    }

    if (cancel_requested()) {
      for (const int id : to_run) {
        StageNode& stage = stages_[static_cast<size_t>(id)];
        stage.outcome.state = StageOutcome::State::kCancelled;
        stage.outcome.reason = "cancelled before start";
        print_outcome(stage);
      }
      externally_cancelled = true;
      break;
    }

    // --- Execute phase: run this level's misses concurrently ---------------
    const auto run_stage = [&](int id) {
      StageNode& stage = stages_[static_cast<size_t>(id)];
      obs::ScopedSpan span("pipeline.stage", "level", level);
      util::Stopwatch watch;

      StageContext ctx;
      for (const int dep : stage.deps) {
        ctx.dep_payloads.push_back(&stages_[dep].payload);
      }
      ctx.cancel = options.cancel;
      ctx.scratch_dir = cache.ScratchDir(stage.name, stage.outcome.key);

      if (cancel_requested()) {
        stage.outcome.state = StageOutcome::State::kCancelled;
        stage.outcome.reason = "cancelled before start";
        stage.outcome.wall_ms = watch.ElapsedMillis();
        cancelled_counter.Add();
        print_outcome(stage);
        return;
      }

      Result<std::string> produced = stage.fn(ctx);
      stage.outcome.wall_ms = watch.ElapsedMillis();
      stage_ms.Observe(stage.outcome.wall_ms);
      if (produced.ok()) {
        stage.payload = std::move(produced).value();
        stage.outcome.state = StageOutcome::State::kMiss;
        stage.outcome.output_hash = util::Fnv1a64(stage.payload);
        miss_counter.Add();
        miss_ms.Observe(stage.outcome.wall_ms);
        const Status stored = cache.Store(stage.name, stage.outcome.key,
                                          stage.description, stage.payload);
        if (!stored.ok()) {
          std::fprintf(stderr, "[pipeline] warning: cache write for %s "
                       "failed: %s\n",
                       stage.name.c_str(), stored.ToString().c_str());
        } else {
          cache.DropScratch(stage.name, stage.outcome.key);
        }
      } else if (produced.status().code() == StatusCode::kCancelled) {
        stage.outcome.state = StageOutcome::State::kCancelled;
        stage.outcome.error = produced.status();
        stage.outcome.reason = "cancelled mid-stage (scratch kept for "
                               "resume)";
        cancelled_counter.Add();
      } else {
        stage.outcome.state = StageOutcome::State::kFailed;
        stage.outcome.error = produced.status();
        stage.outcome.reason = produced.status().ToString();
        failed_counter.Add();
      }
      print_outcome(stage);
    };

    const int jobs = std::max(1, options.jobs);
    if (jobs > 1 && to_run.size() > 1) {
      // Local pool: stage bodies fan out here; their inner compute kernels
      // detect the enclosing parallel region and run their deterministic
      // sequential path, so `jobs` never changes results. The global
      // compute pool stays dedicated to single-stage runs (jobs=1), which
      // keep full kernel parallelism.
      util::ThreadPool stage_pool(
          std::min<int>(jobs, static_cast<int>(to_run.size())));
      // Advertise the stage fan-out so nested worker requests (a train
      // stage's train_workers, say) are budgeted against it: total threads
      // stay within the global pool size instead of multiplying.
      util::ScopedFanoutClaim stage_claim(stage_pool.num_threads());
      stage_pool.ParallelFor(
          0, static_cast<int64_t>(to_run.size()), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              run_stage(to_run[static_cast<size_t>(i)]);
            }
          });
    } else {
      for (const int id : to_run) run_stage(id);
    }
  }

  // --- Report -----------------------------------------------------------
  RunReport report;
  report.stages = num_stages();
  Status first_error;
  for (const StageNode& stage : stages_) {
    switch (stage.outcome.state) {
      case StageOutcome::State::kHit: ++report.hits; break;
      case StageOutcome::State::kMiss: ++report.misses; break;
      case StageOutcome::State::kCancelled: ++report.cancelled; break;
      case StageOutcome::State::kFailed:
        ++report.failed;
        if (first_error.ok()) first_error = stage.outcome.error;
        break;
      case StageOutcome::State::kSkipped:
      case StageOutcome::State::kPending:
        ++report.skipped;
        break;
    }
  }
  report.wall_ms = wall.ElapsedMillis();
  if (options.verbose) {
    std::printf(
        "pipeline summary: stages=%d hits=%d misses=%d cancelled=%d "
        "failed=%d skipped=%d wall_ms=%.1f\n",
        report.stages, report.hits, report.misses, report.cancelled,
        report.failed, report.skipped, report.wall_ms);
    std::fflush(stdout);
  }

  if (report.failed > 0) return first_error;
  if (report.cancelled > 0 || externally_cancelled) {
    return Status::Cancelled(
        "pipeline cancelled (" + std::to_string(report.hits + report.misses) +
        " of " + std::to_string(report.stages) +
        " stages completed; rerun resumes from the cache)");
  }
  return report;
}

}  // namespace musenet::pipeline
