#ifndef MUSENET_SIM_SHIFTS_H_
#define MUSENET_SIM_SHIFTS_H_

#include <cstdint>
#include <vector>

#include "sim/grid.h"

namespace musenet::sim {

/// External-factor events that perturb travel demand, producing the two
/// distribution-shift phenomena of the paper's Fig. 1:
///   - kLevel: a sustained multiplicative change of city-wide demand
///     (weather, holidays) → "level shift" between sub-series.
///   - kPoint: a short, localized burst of trips from one region
///     (incidents, stadium events) → outliers, the "point shift".
struct ShiftEvent {
  enum class Kind { kLevel, kPoint };

  Kind kind = Kind::kLevel;
  int64_t start_interval = 0;
  int64_t duration = 1;  ///< In intervals.
  /// kLevel: demand multiplier (0.4 = heavy rain). kPoint: burst size as a
  /// multiple of the per-interval base trip rate, emitted from `region`.
  double magnitude = 1.0;
  Region region;  ///< kPoint only.

  bool Covers(int64_t interval) const {
    return interval >= start_interval &&
           interval < start_interval + duration;
  }
};

/// Product of all level-event multipliers covering `interval`.
double LevelMultiplierAt(const std::vector<ShiftEvent>& events,
                         int64_t interval);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_SHIFTS_H_
