#include "sim/rasterize.h"

#include "util/check.h"

namespace musenet::sim {

void RasterizeTrajectory(const Trajectory& trajectory, FlowSeries* flows) {
  MUSE_CHECK(flows != nullptr);
  [[maybe_unused]] const GridSpec& grid = flows->grid();  // DCHECK-only use.
  for (size_t i = 1; i < trajectory.points.size(); ++i) {
    const TrajectoryPoint& prev = trajectory.points[i - 1];
    const TrajectoryPoint& curr = trajectory.points[i];
    MUSE_DCHECK(curr.interval == prev.interval + 1);
    if (curr.interval < 0 || curr.interval >= flows->num_intervals()) continue;
    if (prev.region == curr.region) continue;
    MUSE_DCHECK(grid.Contains(prev.region.h, prev.region.w));
    MUSE_DCHECK(grid.Contains(curr.region.h, curr.region.w));
    // Left prev.region: its outflow at interval i increments (Eq. 1).
    flows->at(curr.interval, kOutflow, prev.region.h, prev.region.w) += 1.0f;
    // Entered curr.region: its inflow at interval i increments (Eq. 2).
    flows->at(curr.interval, kInflow, curr.region.h, curr.region.w) += 1.0f;
  }
}

FlowSeries RasterizeTrajectories(const std::vector<Trajectory>& trajectories,
                                 GridSpec grid, int intervals_per_day,
                                 int start_weekday, int64_t num_intervals) {
  FlowSeries flows(grid, intervals_per_day, start_weekday, num_intervals);
  for (const Trajectory& t : trajectories) RasterizeTrajectory(t, &flows);
  return flows;
}

}  // namespace musenet::sim
