#include "sim/flow_series.h"

#include <algorithm>

#include "util/check.h"

namespace musenet::sim {

FlowSeries::FlowSeries(GridSpec grid, int intervals_per_day,
                       int start_weekday, int64_t num_intervals)
    : grid_(grid),
      intervals_per_day_(intervals_per_day),
      start_weekday_(start_weekday),
      num_intervals_(num_intervals),
      data_(static_cast<size_t>(num_intervals * 2 * grid.num_regions()),
            0.0f) {
  MUSE_CHECK_GT(grid.height, 0);
  MUSE_CHECK_GT(grid.width, 0);
  MUSE_CHECK_GT(intervals_per_day, 0);
  MUSE_CHECK(start_weekday >= 0 && start_weekday < 7);
  MUSE_CHECK_GT(num_intervals, 0);
}

int64_t FlowSeries::Offset(int64_t t, int flow, int64_t h, int64_t w) const {
  MUSE_DCHECK(t >= 0 && t < num_intervals_);
  MUSE_DCHECK(flow == kOutflow || flow == kInflow);
  return ((t * 2 + flow) * grid_.height + h) * grid_.width + w;
}

float FlowSeries::at(int64_t t, int flow, int64_t h, int64_t w) const {
  return data_[static_cast<size_t>(Offset(t, flow, h, w))];
}

float& FlowSeries::at(int64_t t, int flow, int64_t h, int64_t w) {
  return data_[static_cast<size_t>(Offset(t, flow, h, w))];
}

tensor::Tensor FlowSeries::Frame(int64_t t) const {
  MUSE_CHECK(t >= 0 && t < num_intervals_);
  const int64_t frame_size = 2 * grid_.num_regions();
  std::vector<float> frame(
      data_.begin() + static_cast<int64_t>(t * frame_size),
      data_.begin() + static_cast<int64_t>((t + 1) * frame_size));
  return tensor::Tensor(tensor::Shape({2, grid_.height, grid_.width}),
                        std::move(frame));
}

int FlowSeries::IntervalOfDay(int64_t t) const {
  return static_cast<int>(t % intervals_per_day_);
}

int FlowSeries::WeekdayOf(int64_t t) const {
  const int64_t day = t / intervals_per_day_;
  return static_cast<int>((start_weekday_ + day) % 7);
}

bool FlowSeries::IsWeekend(int64_t t) const { return WeekdayOf(t) >= 5; }

double FlowSeries::HourOfDay(int64_t t) const {
  return 24.0 * IntervalOfDay(t) / intervals_per_day_;
}

float FlowSeries::MaxValue() const {
  return *std::max_element(data_.begin(), data_.end());
}

float FlowSeries::MinValue() const {
  return *std::min_element(data_.begin(), data_.end());
}

double FlowSeries::MeanValue() const {
  double total = 0.0;
  for (float v : data_) total += v;
  return data_.empty() ? 0.0 : total / static_cast<double>(data_.size());
}

FlowSeries FlowSeries::Subrange(int64_t start, int64_t len) const {
  MUSE_CHECK(start >= 0 && len > 0 && start + len <= num_intervals_);
  const int start_day = static_cast<int>(start / intervals_per_day_);
  // Subranges must start on a day boundary to keep interval-of-day intact.
  MUSE_CHECK_EQ(start % intervals_per_day_, 0)
      << "Subrange must start on a day boundary";
  FlowSeries out(grid_, intervals_per_day_,
                 (start_weekday_ + start_day) % 7, len);
  const int64_t frame_size = 2 * grid_.num_regions();
  std::copy(data_.begin() + start * frame_size,
            data_.begin() + (start + len) * frame_size, out.data_.begin());
  return out;
}

}  // namespace musenet::sim
