#include "sim/serialize.h"

#include <map>
#include <utility>

#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "util/hash.h"

namespace musenet::sim {

namespace ts = musenet::tensor;

namespace {

/// Builds the container records for a series. The provenance record is
/// optional and separate from "flows"/"meta" so files stamped by this build
/// still load in builds that only know the two original records.
std::map<std::string, ts::Tensor> BuildBlob(const FlowSeries& flows,
                                            uint64_t provenance_hash) {
  const GridSpec& grid = flows.grid();
  ts::Tensor data(
      ts::Shape({flows.num_intervals(), 2, grid.height, grid.width}),
      flows.storage());
  ts::Tensor meta = ts::Tensor::FromVector(
      {static_cast<float>(flows.intervals_per_day()),
       static_cast<float>(flows.start_weekday())});
  std::map<std::string, ts::Tensor> blob;
  blob.emplace("flows", std::move(data));
  blob.emplace("meta", std::move(meta));
  if (provenance_hash != 0) {
    blob.emplace("provenance", ts::PackWords64({provenance_hash}));
  }
  return blob;
}

Result<uint64_t> ProvenanceFromBlob(
    const std::string& label, const std::map<std::string, ts::Tensor>& blob) {
  auto it = blob.find("provenance");
  if (it == blob.end()) return uint64_t{0};  // Legacy unstamped file.
  MUSE_ASSIGN_OR_RETURN(const std::vector<uint64_t> words,
                        ts::UnpackWords64(it->second));
  if (words.size() != 1) {
    return Status::IoError(label + ": malformed provenance record");
  }
  return words[0];
}

Result<FlowSeries> FlowsFromBlob(const std::string& label,
                                 const std::map<std::string, ts::Tensor>& blob) {
  auto flows_it = blob.find("flows");
  auto meta_it = blob.find("meta");
  if (flows_it == blob.end() || meta_it == blob.end()) {
    return Status::IoError(label + ": missing flows/meta records");
  }
  const ts::Tensor& data = flows_it->second;
  if (data.rank() != 4 || data.dim(1) != 2) {
    return Status::IoError(label + ": flows record has wrong shape " +
                           data.shape().ToString());
  }
  const ts::Tensor& meta = meta_it->second;
  if (meta.num_elements() != 2) {
    return Status::IoError(label + ": bad metadata record");
  }
  const int intervals_per_day = static_cast<int>(meta.flat(0));
  const int start_weekday = static_cast<int>(meta.flat(1));
  if (intervals_per_day <= 0 || start_weekday < 0 || start_weekday > 6) {
    return Status::IoError(label + ": metadata out of range");
  }

  FlowSeries flows(GridSpec{data.dim(2), data.dim(3)}, intervals_per_day,
                   start_weekday, data.dim(0));
  for (int64_t t = 0; t < data.dim(0); ++t) {
    for (int flow = 0; flow < 2; ++flow) {
      for (int64_t h = 0; h < data.dim(2); ++h) {
        for (int64_t w = 0; w < data.dim(3); ++w) {
          flows.at(t, flow, h, w) = data.at({t, flow, h, w});
        }
      }
    }
  }
  return flows;
}

}  // namespace

Status SaveFlowSeries(const std::string& path, const FlowSeries& flows,
                      uint64_t provenance_hash) {
  return ts::SaveTensors(path, BuildBlob(flows, provenance_hash));
}

Result<FlowSeries> LoadFlowSeries(const std::string& path) {
  MUSE_ASSIGN_OR_RETURN(auto blob, ts::LoadTensors(path));
  return FlowsFromBlob(path, blob);
}

Result<FlowSeries> LoadFlowSeriesChecked(const std::string& path,
                                         uint64_t expected_hash) {
  MUSE_ASSIGN_OR_RETURN(auto blob, ts::LoadTensors(path));
  if (expected_hash != 0) {
    MUSE_ASSIGN_OR_RETURN(const uint64_t stored,
                          ProvenanceFromBlob(path, blob));
    if (stored != expected_hash) {
      const std::string stored_desc =
          stored == 0 ? "no provenance stamp (written by an older build "
                        "or an unstamped save)"
                      : "sim config hash 0x" + util::HashHex(stored);
      return Status::FailedPrecondition(
          path + ": flow cache is stale: file has " + stored_desc +
          " but the requested configuration hashes to 0x" +
          util::HashHex(expected_hash) +
          "; regenerate it (musenet simulate) or pass the matching "
          "scale/seed");
    }
  }
  return FlowsFromBlob(path, blob);
}

Result<uint64_t> ReadFlowSeriesProvenance(const std::string& path) {
  MUSE_ASSIGN_OR_RETURN(auto blob, ts::LoadTensors(path));
  return ProvenanceFromBlob(path, blob);
}

Result<std::string> SerializeFlowSeries(const FlowSeries& flows,
                                        uint64_t provenance_hash) {
  return ts::SerializeTensors(BuildBlob(flows, provenance_hash));
}

Result<FlowSeries> ParseFlowSeries(const std::string& label,
                                   const std::string& bytes) {
  MUSE_ASSIGN_OR_RETURN(auto blob, ts::ParseTensors(label, bytes));
  return FlowsFromBlob(label, blob);
}

}  // namespace musenet::sim
