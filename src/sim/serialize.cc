#include "sim/serialize.h"

#include <map>

#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace musenet::sim {

namespace ts = musenet::tensor;

Status SaveFlowSeries(const std::string& path, const FlowSeries& flows) {
  const GridSpec& grid = flows.grid();
  ts::Tensor data(
      ts::Shape({flows.num_intervals(), 2, grid.height, grid.width}),
      flows.storage());
  ts::Tensor meta = ts::Tensor::FromVector(
      {static_cast<float>(flows.intervals_per_day()),
       static_cast<float>(flows.start_weekday())});
  std::map<std::string, ts::Tensor> blob;
  blob.emplace("flows", std::move(data));
  blob.emplace("meta", std::move(meta));
  return ts::SaveTensors(path, blob);
}

Result<FlowSeries> LoadFlowSeries(const std::string& path) {
  MUSE_ASSIGN_OR_RETURN(auto blob, ts::LoadTensors(path));
  auto flows_it = blob.find("flows");
  auto meta_it = blob.find("meta");
  if (flows_it == blob.end() || meta_it == blob.end()) {
    return Status::IoError(path + ": missing flows/meta records");
  }
  const ts::Tensor& data = flows_it->second;
  if (data.rank() != 4 || data.dim(1) != 2) {
    return Status::IoError(path + ": flows record has wrong shape " +
                           data.shape().ToString());
  }
  const ts::Tensor& meta = meta_it->second;
  if (meta.num_elements() != 2) {
    return Status::IoError(path + ": bad metadata record");
  }
  const int intervals_per_day = static_cast<int>(meta.flat(0));
  const int start_weekday = static_cast<int>(meta.flat(1));
  if (intervals_per_day <= 0 || start_weekday < 0 || start_weekday > 6) {
    return Status::IoError(path + ": metadata out of range");
  }

  FlowSeries flows(GridSpec{data.dim(2), data.dim(3)}, intervals_per_day,
                   start_weekday, data.dim(0));
  for (int64_t t = 0; t < data.dim(0); ++t) {
    for (int flow = 0; flow < 2; ++flow) {
      for (int64_t h = 0; h < data.dim(2); ++h) {
        for (int64_t w = 0; w < data.dim(3); ++w) {
          flows.at(t, flow, h, w) = data.at({t, flow, h, w});
        }
      }
    }
  }
  return flows;
}

}  // namespace musenet::sim
