#ifndef MUSENET_SIM_FLOW_SERIES_H_
#define MUSENET_SIM_FLOW_SERIES_H_

#include <cstdint>
#include <vector>

#include "sim/grid.h"
#include "tensor/tensor.h"

namespace musenet::sim {

/// Flow channel indices within a frame (paper Definition 2).
inline constexpr int kOutflow = 0;
inline constexpr int kInflow = 1;

/// City-wide inflow/outflow volumes over time: a dense [T, 2, H, W] series
/// with calendar metadata (sampling frequency, weekday of the first frame).
///
/// This is the interchange type between the simulator (which writes it), the
/// data pipeline (which intercepts it into closeness/period/trend samples)
/// and the evaluation splitters (which need interval-of-day / weekday).
class FlowSeries {
 public:
  /// Zero-initialized series of `num_intervals` frames.
  FlowSeries(GridSpec grid, int intervals_per_day, int start_weekday,
             int64_t num_intervals);

  const GridSpec& grid() const { return grid_; }
  /// Sampling frequency f: frames per day.
  int intervals_per_day() const { return intervals_per_day_; }
  /// Weekday of frame 0 (0 = Monday … 6 = Sunday).
  int start_weekday() const { return start_weekday_; }
  int64_t num_intervals() const { return num_intervals_; }

  /// Element access; `flow` is kOutflow or kInflow.
  float at(int64_t t, int flow, int64_t h, int64_t w) const;
  float& at(int64_t t, int flow, int64_t h, int64_t w);

  /// One frame as a [2, H, W] tensor (copy).
  tensor::Tensor Frame(int64_t t) const;

  /// Calendar helpers.
  int IntervalOfDay(int64_t t) const;
  int WeekdayOf(int64_t t) const;  ///< 0 = Monday … 6 = Sunday.
  bool IsWeekend(int64_t t) const;
  /// Hour-of-day in [0, 24) of the start of interval t.
  double HourOfDay(int64_t t) const;

  /// Largest value in the series (used by Min-Max scaling).
  float MaxValue() const;
  float MinValue() const;

  /// Mean of all values (diagnostics).
  double MeanValue() const;

  /// Copies frames [start, start+len) into a new series whose frame 0
  /// keeps the correct weekday alignment.
  FlowSeries Subrange(int64_t start, int64_t len) const;

  /// Raw storage, laid out [t][flow][h][w].
  const std::vector<float>& storage() const { return data_; }

 private:
  int64_t Offset(int64_t t, int flow, int64_t h, int64_t w) const;

  GridSpec grid_;
  int intervals_per_day_;
  int start_weekday_;
  int64_t num_intervals_;
  std::vector<float> data_;
};

}  // namespace musenet::sim

#endif  // MUSENET_SIM_FLOW_SERIES_H_
