#ifndef MUSENET_SIM_GRID_H_
#define MUSENET_SIM_GRID_H_

#include <cstdint>

#include "util/check.h"

namespace musenet::sim {

/// Grid partition of a city (paper Definition 1): H×W equally sized regions
/// indexed (h, w) with h ∈ [0, H), w ∈ [0, W).
struct GridSpec {
  int64_t height = 0;
  int64_t width = 0;

  int64_t num_regions() const { return height * width; }

  int64_t RegionIndex(int64_t h, int64_t w) const {
    MUSE_DCHECK(h >= 0 && h < height);
    MUSE_DCHECK(w >= 0 && w < width);
    return h * width + w;
  }

  bool Contains(int64_t h, int64_t w) const {
    return h >= 0 && h < height && w >= 0 && w < width;
  }

  bool operator==(const GridSpec& other) const {
    return height == other.height && width == other.width;
  }
};

/// A region coordinate.
struct Region {
  int64_t h = 0;
  int64_t w = 0;

  bool operator==(const Region& other) const {
    return h == other.h && w == other.w;
  }
};

}  // namespace musenet::sim

#endif  // MUSENET_SIM_GRID_H_
