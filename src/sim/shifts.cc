#include "sim/shifts.h"

namespace musenet::sim {

double LevelMultiplierAt(const std::vector<ShiftEvent>& events,
                         int64_t interval) {
  double multiplier = 1.0;
  for (const ShiftEvent& event : events) {
    if (event.kind == ShiftEvent::Kind::kLevel && event.Covers(interval)) {
      multiplier *= event.magnitude;
    }
  }
  return multiplier;
}

}  // namespace musenet::sim
