#ifndef MUSENET_SIM_RASTERIZE_H_
#define MUSENET_SIM_RASTERIZE_H_

#include <vector>

#include "sim/flow_series.h"
#include "sim/trajectory.h"

namespace musenet::sim {

/// Accumulates one trajectory into `flows` following exactly the paper's
/// Eqs. (1)–(2): for every pair of consecutive points (u_{i−1}, u_i) with
/// u_{i−1} in region r and u_i outside it, region r's *outflow* at interval i
/// increments; symmetrically the entered region's *inflow* increments.
/// Points outside [0, flows->num_intervals()) are ignored.
void RasterizeTrajectory(const Trajectory& trajectory, FlowSeries* flows);

/// Rasterizes a batch of trajectories into a fresh series.
FlowSeries RasterizeTrajectories(const std::vector<Trajectory>& trajectories,
                                 GridSpec grid, int intervals_per_day,
                                 int start_weekday, int64_t num_intervals);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_RASTERIZE_H_
