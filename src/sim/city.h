#ifndef MUSENET_SIM_CITY_H_
#define MUSENET_SIM_CITY_H_

#include <cstdint>
#include <vector>

#include "sim/flow_series.h"
#include "sim/grid.h"
#include "sim/shifts.h"
#include "sim/trajectory.h"
#include "util/rng.h"

namespace musenet::sim {

/// Demand configuration of a simulated city.
///
/// Trips are generated per interval from a Poisson process whose rate follows
/// a daily commute/leisure profile modulated by weekday/weekend factors,
/// multiplicative noise, and the shift events. Origins/destinations are drawn
/// from residential/business attraction maps whose mixing varies with the
/// time of day (morning: residential → business; evening: reverse), which
/// creates the multi-periodic structure the paper's datasets exhibit.
struct CityConfig {
  GridSpec grid{.height = 10, .width = 20};
  int intervals_per_day = 48;   ///< f; 48 = 30-minute intervals.
  int start_weekday = 4;        ///< 0 = Monday; 4 matches NYC-Bike 07/01/2016.
  int days = 60;

  /// Mean trips per interval when the daily profile is at 1.0.
  double trips_per_interval = 400.0;
  /// Weekend demand relative to weekdays.
  double weekend_factor = 0.8;
  /// Relative amplitude of the two commute peaks (weekdays).
  double commute_amplitude = 1.6;
  /// Relative amplitude of the broad daytime leisure component.
  double leisure_amplitude = 0.7;
  /// Overnight base demand level.
  double night_level = 0.08;
  /// Lognormal demand noise sigma per interval (0 disables).
  double demand_noise_sigma = 0.12;
  /// Lognormal day-level demand multiplier sigma (0 disables). Models
  /// weather-like conditions that persist through a day: they make every day
  /// deviate from the periodic mean, so purely periodic predictors carry a
  /// systematic error that closeness-aware models can correct — a mild,
  /// pervasive form of the paper's Fig. 1 "distribution shift".
  double daily_wobble_sigma = 0.15;
  /// Number of business centers (Gaussian attraction blobs).
  int num_business_centers = 2;
  /// Maximum trip speed in cells per interval (bounds trip duration).
  double cells_per_interval = 4.0;
  int max_trip_intervals = 4;

  /// External-factor perturbations (level / point shifts).
  std::vector<ShiftEvent> shifts;

  int64_t num_intervals() const {
    return static_cast<int64_t>(days) * intervals_per_day;
  }
};

/// Aggregate output of a simulation run.
struct SimulationResult {
  FlowSeries flows;
  int64_t num_trips = 0;
};

/// Grid-city trip simulator: the substrate standing in for the paper's
/// NYC-Bike / NYC-Taxi / TaxiBJ trajectory datasets.
class City {
 public:
  City(CityConfig config, uint64_t seed);

  /// Daily demand profile at interval t (deterministic part, before noise
  /// and shift events). Exposed for tests and the Fig. 1/2 illustrations.
  double ProfileAt(int64_t t) const;

  /// Generates the trips that depart in interval t. Each trip is a full
  /// trajectory (one point per interval from departure to arrival).
  std::vector<Trajectory> GenerateTripsForInterval(int64_t t);

  /// Runs the simulation over the configured span and rasterizes all
  /// trajectories into a FlowSeries per Definition 2.
  SimulationResult Simulate();

  const CityConfig& config() const { return config_; }

  /// Attraction maps (normalized to sum 1), exposed for inspection.
  const std::vector<double>& residential_weights() const {
    return residential_;
  }
  const std::vector<double>& business_weights() const { return business_; }

 private:
  /// Samples a region index from a precomputed CDF.
  int64_t SampleFromCdf(const std::vector<double>& cdf);

  /// Mixture weights of (residential, business, uniform) for origins and
  /// destinations as a function of the interval-of-day.
  void MixtureAt(int64_t t, double* origin_res, double* origin_bus,
                 double* dest_res, double* dest_bus) const;

  /// Builds one trip trajectory departing at interval t.
  Trajectory MakeTrip(int64_t t, Region origin, Region destination) const;

  CityConfig config_;
  Rng rng_;
  std::vector<double> day_multiplier_;   ///< Per-day demand wobble.
  std::vector<double> residential_;      ///< Per-region weight, sums to 1.
  std::vector<double> business_;         ///< Per-region weight, sums to 1.
  std::vector<double> residential_cdf_;  ///< Prefix sums for sampling.
  std::vector<double> business_cdf_;
};

}  // namespace musenet::sim

#endif  // MUSENET_SIM_CITY_H_
