#ifndef MUSENET_SIM_TRAJECTORY_H_
#define MUSENET_SIM_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "sim/grid.h"

namespace musenet::sim {

/// One sampled position of a moving object: where it is at the start of a
/// time interval.
struct TrajectoryPoint {
  int64_t interval = 0;
  Region region;
};

/// A trajectory M_r : u_1 → u_2 → … (paper Definition 2): consecutive
/// region-resolution positions, one per time interval.
struct Trajectory {
  std::vector<TrajectoryPoint> points;
};

}  // namespace musenet::sim

#endif  // MUSENET_SIM_TRAJECTORY_H_
