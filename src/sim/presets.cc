#include "sim/presets.h"

#include "util/check.h"
#include "util/hash.h"
#include "util/rng.h"

namespace musenet::sim {

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kNycBike:
      return "NYC-Bike";
    case DatasetId::kNycTaxi:
      return "NYC-Taxi";
    case DatasetId::kTaxiBj:
      return "TaxiBJ";
  }
  return "unknown";
}

namespace {

/// Per-dataset paper-scale parameters.
struct PresetParams {
  GridSpec paper_grid;
  GridSpec default_grid;
  int paper_days;
  int default_days;
  int start_weekday;
  double trips_per_region;  ///< Demand density (trips/interval/region).
  double commute_amplitude;
  double leisure_amplitude;
  double night_level;
  int num_business_centers;
  double level_event_rate;  ///< Expected level events per 10 days.
  double point_event_rate;  ///< Expected point events per day.
  double daily_wobble;      ///< Day-level demand wobble sigma (weather).
};

PresetParams ParamsFor(DatasetId id) {
  switch (id) {
    case DatasetId::kNycBike:
      // Low-volume bike sharing: soft commute peaks, leisure heavy, weather
      // sensitive (frequent level shifts).
      return PresetParams{.paper_grid = {10, 20},
                          .default_grid = {4, 6},
                          .paper_days = 60,
                          .default_days = 42,
                          .start_weekday = 4,  // Fri 07/01/2016.
                          .trips_per_region = 6.0,
                          .commute_amplitude = 1.2,
                          .leisure_amplitude = 0.9,
                          .night_level = 0.04,
                          .num_business_centers = 2,
                          .level_event_rate = 2.0,
                          .point_event_rate = 0.10,
                          .daily_wobble = 0.28};  // Bikes are weather-bound.
    case DatasetId::kNycTaxi:
      // High-volume taxi: sharp commute peaks, active nightlife, localized
      // incidents (point shifts).
      return PresetParams{.paper_grid = {10, 20},
                          .default_grid = {4, 6},
                          .paper_days = 60,
                          .default_days = 42,
                          .start_weekday = 3,  // Thu 01/01/2015.
                          .trips_per_region = 15.0,
                          .commute_amplitude = 1.8,
                          .leisure_amplitude = 0.8,
                          .night_level = 0.20,
                          .num_business_centers = 2,
                          .level_event_rate = 1.0,
                          .point_event_rate = 0.35,
                          .daily_wobble = 0.15};
    case DatasetId::kTaxiBj:
      // Beijing taxi: large grid, several business districts, very strong
      // commute structure.
      return PresetParams{.paper_grid = {32, 32},
                          .default_grid = {6, 6},
                          .paper_days = 120,
                          .default_days = 42,
                          .start_weekday = 1,  // Tue 01/01/2013.
                          .trips_per_region = 12.0,
                          .commute_amplitude = 2.0,
                          .leisure_amplitude = 0.7,
                          .night_level = 0.10,
                          .num_business_centers = 4,
                          .level_event_rate = 1.5,
                          .point_event_rate = 0.20,
                          .daily_wobble = 0.18};
  }
  MUSE_CHECK(false) << "unreachable dataset id";
  return PresetParams{};
}

/// Draws the level/point event schedule for the whole span.
std::vector<ShiftEvent> MakeShiftSchedule(const PresetParams& params,
                                          const CityConfig& config,
                                          Rng& rng) {
  std::vector<ShiftEvent> events;
  const int f = config.intervals_per_day;

  // Level shifts: weather/holiday windows of 0.5–2 days.
  const double expected_level =
      params.level_event_rate * config.days / 10.0;
  const int num_level = rng.Poisson(expected_level);
  for (int i = 0; i < num_level; ++i) {
    ShiftEvent event;
    event.kind = ShiftEvent::Kind::kLevel;
    event.start_interval =
        static_cast<int64_t>(rng.UniformInt(
            static_cast<uint64_t>(config.num_intervals())));
    event.duration = static_cast<int64_t>(f * rng.Uniform(0.5, 2.0));
    // 75% suppressions (rain: ×0.35–0.65), 25% boosts (events: ×1.3–1.6).
    event.magnitude = rng.Bernoulli(0.75) ? rng.Uniform(0.35, 0.65)
                                          : rng.Uniform(1.3, 1.6);
    events.push_back(event);
  }

  // Point shifts: short localized bursts (1–3 intervals).
  const double expected_point = params.point_event_rate * config.days;
  const int num_point = rng.Poisson(expected_point);
  for (int i = 0; i < num_point; ++i) {
    ShiftEvent event;
    event.kind = ShiftEvent::Kind::kPoint;
    event.start_interval =
        static_cast<int64_t>(rng.UniformInt(
            static_cast<uint64_t>(config.num_intervals())));
    event.duration = 1 + static_cast<int64_t>(rng.UniformInt(3));
    event.magnitude = rng.Uniform(0.4, 1.2);
    event.region =
        Region{.h = static_cast<int64_t>(rng.UniformInt(
                   static_cast<uint64_t>(config.grid.height))),
               .w = static_cast<int64_t>(rng.UniformInt(
                   static_cast<uint64_t>(config.grid.width)))};
    events.push_back(event);
  }
  return events;
}

}  // namespace

CityConfig MakeCityConfig(DatasetId id, const BenchScale& scale,
                          uint64_t seed) {
  const PresetParams params = ParamsFor(id);
  CityConfig config;
  config.intervals_per_day = 48;
  config.start_weekday = params.start_weekday;

  if (scale.name == "paper") {
    config.grid = params.paper_grid;
    config.days = params.paper_days;
  } else {
    config.grid = params.default_grid;
    config.days = params.default_days;
  }
  // Explicit overrides win (the smoke scale sets 4×4 × 32 days).
  if (scale.grid_h > 0 && scale.grid_w > 0) {
    config.grid = GridSpec{.height = scale.grid_h, .width = scale.grid_w};
  }
  if (scale.days > 0) config.days = scale.days;

  config.trips_per_interval =
      params.trips_per_region * static_cast<double>(config.grid.num_regions());
  config.commute_amplitude = params.commute_amplitude;
  config.leisure_amplitude = params.leisure_amplitude;
  config.night_level = params.night_level;
  config.num_business_centers = params.num_business_centers;
  config.daily_wobble_sigma = params.daily_wobble;

  // Mix the dataset id into the seed so the three cities differ even under
  // one bench seed.
  Rng schedule_rng(seed * 1000003ULL + static_cast<uint64_t>(id) * 97ULL + 13);
  config.shifts = MakeShiftSchedule(params, config, schedule_rng);
  return config;
}

FlowSeries GenerateDatasetFlows(DatasetId id, const BenchScale& scale,
                                uint64_t seed) {
  const CityConfig config = MakeCityConfig(id, scale, seed);
  City city(config, seed * 7919ULL + static_cast<uint64_t>(id) + 1);
  return city.Simulate().flows;
}

uint64_t SimConfigHash(DatasetId id, const BenchScale& scale, uint64_t seed) {
  // Hash the *resolved* CityConfig rather than the scale knobs: two scales
  // that resolve to the same simulation (e.g. an override equal to the
  // preset) hash equal, and a preset-table edit changes the hash even though
  // no caller-visible knob moved. The shift schedule is drawn from
  // (id, seed, days), all of which are covered below.
  const CityConfig c = MakeCityConfig(id, scale, seed);
  util::Fingerprint fp;
  fp.Add("sim_code_version", 1)
      .Add("dataset", DatasetName(id))
      .Add("seed", seed)
      .Add("grid_h", c.grid.height)
      .Add("grid_w", c.grid.width)
      .Add("intervals_per_day", c.intervals_per_day)
      .Add("start_weekday", c.start_weekday)
      .Add("days", c.days)
      .Add("trips_per_interval", c.trips_per_interval)
      .Add("weekend_factor", c.weekend_factor)
      .Add("commute_amplitude", c.commute_amplitude)
      .Add("leisure_amplitude", c.leisure_amplitude)
      .Add("night_level", c.night_level)
      .Add("demand_noise_sigma", c.demand_noise_sigma)
      .Add("daily_wobble_sigma", c.daily_wobble_sigma)
      .Add("num_business_centers", c.num_business_centers)
      .Add("cells_per_interval", c.cells_per_interval)
      .Add("max_trip_intervals", c.max_trip_intervals)
      .Add("num_shift_events", static_cast<int64_t>(c.shifts.size()));
  return fp.Digest();
}

}  // namespace musenet::sim
