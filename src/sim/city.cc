#include "sim/city.h"

#include <algorithm>
#include <cmath>

#include "sim/rasterize.h"
#include "util/check.h"

namespace musenet::sim {

namespace {

/// Unnormalized Gaussian bump centred at (ch, cw) with radius `sigma`.
double Blob(double h, double w, double ch, double cw, double sigma) {
  const double dh = h - ch;
  const double dw = w - cw;
  return std::exp(-(dh * dh + dw * dw) / (2.0 * sigma * sigma));
}

void Normalize(std::vector<double>* weights) {
  double total = 0.0;
  for (double v : *weights) total += v;
  MUSE_CHECK_GT(total, 0.0);
  for (double& v : *weights) v /= total;
}

std::vector<double> PrefixSums(const std::vector<double>& weights) {
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    cdf[i] = acc;
  }
  return cdf;
}

}  // namespace

City::City(CityConfig config, uint64_t seed)
    : config_(std::move(config)), rng_(seed) {
  const GridSpec& grid = config_.grid;
  MUSE_CHECK_GT(grid.num_regions(), 0);
  MUSE_CHECK_GE(config_.num_business_centers, 1);
  const int64_t regions = grid.num_regions();
  residential_.assign(static_cast<size_t>(regions), 0.0);
  business_.assign(static_cast<size_t>(regions), 0.0);

  // Business blobs cluster near the centre; residential mass spreads across
  // the periphery with a few of its own blobs. Layout is seeded so each
  // dataset preset gets a distinct but reproducible city.
  Rng layout = rng_.Fork(1);
  const double ch = (grid.height - 1) / 2.0;
  const double cw = (grid.width - 1) / 2.0;
  std::vector<std::pair<double, double>> business_centers;
  for (int c = 0; c < config_.num_business_centers; ++c) {
    business_centers.emplace_back(
        ch + layout.Normal(0.0, grid.height / 8.0),
        cw + layout.Normal(0.0, grid.width / 8.0));
  }
  const int num_residential_blobs = 3 + config_.num_business_centers;
  std::vector<std::pair<double, double>> residential_centers;
  for (int c = 0; c < num_residential_blobs; ++c) {
    residential_centers.emplace_back(layout.Uniform(0.0, grid.height - 1.0),
                                     layout.Uniform(0.0, grid.width - 1.0));
  }

  const double bus_sigma = std::max(1.0, std::min(grid.height, grid.width) /
                                             5.0);
  const double res_sigma = std::max(1.5, std::min(grid.height, grid.width) /
                                             3.0);
  for (int64_t h = 0; h < grid.height; ++h) {
    for (int64_t w = 0; w < grid.width; ++w) {
      const size_t idx = static_cast<size_t>(grid.RegionIndex(h, w));
      for (const auto& [bh, bw] : business_centers) {
        business_[idx] += Blob(static_cast<double>(h),
                               static_cast<double>(w), bh, bw, bus_sigma);
      }
      for (const auto& [rh, rw] : residential_centers) {
        residential_[idx] += Blob(static_cast<double>(h),
                                  static_cast<double>(w), rh, rw, res_sigma);
      }
      // Floor keeps every region reachable.
      business_[idx] += 0.02;
      residential_[idx] += 0.05;
    }
  }
  Normalize(&business_);
  Normalize(&residential_);
  business_cdf_ = PrefixSums(business_);
  residential_cdf_ = PrefixSums(residential_);

  // Day-level demand wobble: an AR(1)-correlated lognormal multiplier, so
  // consecutive days are mildly similar (weather fronts span days).
  Rng wobble = rng_.Fork(2);
  day_multiplier_.resize(static_cast<size_t>(config_.days), 1.0);
  double state = 0.0;
  for (int day = 0; day < config_.days; ++day) {
    state = 0.5 * state + wobble.Normal(0.0, config_.daily_wobble_sigma);
    day_multiplier_[static_cast<size_t>(day)] = std::exp(state);
  }
}

double City::ProfileAt(int64_t t) const {
  const double hour = 24.0 *
                      static_cast<double>(t % config_.intervals_per_day) /
                      config_.intervals_per_day;
  const int64_t day = t / config_.intervals_per_day;
  const int weekday = static_cast<int>((config_.start_weekday + day) % 7);
  const bool weekend = weekday >= 5;

  // Two commute peaks on weekdays (8am / 6pm), suppressed on weekends.
  const double commute =
      config_.commute_amplitude *
      (Blob(hour, 0.0, 8.0, 0.0, 1.1) + Blob(hour, 0.0, 18.0, 0.0, 1.3)) *
      (weekend ? 0.25 : 1.0);
  // Broad daytime leisure bump (peaks mid-afternoon), stronger on weekends.
  const double leisure = config_.leisure_amplitude *
                         Blob(hour, 0.0, 14.5, 0.0, 4.5) *
                         (weekend ? 1.4 : 1.0);
  double profile = config_.night_level + commute + leisure;
  if (weekend) profile *= config_.weekend_factor;
  return profile;
}

void City::MixtureAt(int64_t t, double* origin_res, double* origin_bus,
                     double* dest_res, double* dest_bus) const {
  const double hour = 24.0 *
                      static_cast<double>(t % config_.intervals_per_day) /
                      config_.intervals_per_day;
  // Morning bias: residential → business; evening bias: business →
  // residential; otherwise a balanced mixture.
  const double morning = Blob(hour, 0.0, 8.0, 0.0, 1.5);
  const double evening = Blob(hour, 0.0, 18.0, 0.0, 1.8);
  *origin_res = 0.4 + 0.55 * morning - 0.3 * evening;
  *origin_bus = 1.0 - *origin_res;
  *dest_bus = 0.4 + 0.55 * morning - 0.3 * evening;
  *dest_res = 1.0 - *dest_bus;
  *origin_res = std::clamp(*origin_res, 0.05, 0.95);
  *origin_bus = std::clamp(*origin_bus, 0.05, 0.95);
  *dest_res = std::clamp(*dest_res, 0.05, 0.95);
  *dest_bus = std::clamp(*dest_bus, 0.05, 0.95);
}

int64_t City::SampleFromCdf(const std::vector<double>& cdf) {
  const double target = rng_.Uniform() * cdf.back();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), target);
  return static_cast<int64_t>(std::distance(cdf.begin(), it));
}

Trajectory City::MakeTrip(int64_t t, Region origin,
                          Region destination) const {
  const double dist = std::max(std::fabs(static_cast<double>(origin.h) -
                                         destination.h),
                               std::fabs(static_cast<double>(origin.w) -
                                         destination.w));
  int64_t duration = static_cast<int64_t>(
      std::ceil(dist / std::max(config_.cells_per_interval, 1e-9)));
  duration = std::clamp<int64_t>(duration, 1, config_.max_trip_intervals);

  Trajectory trip;
  trip.points.reserve(static_cast<size_t>(duration) + 1);
  for (int64_t step = 0; step <= duration; ++step) {
    const double frac = static_cast<double>(step) / duration;
    Region pos{
        .h = static_cast<int64_t>(std::lround(
            origin.h + frac * (destination.h - origin.h))),
        .w = static_cast<int64_t>(std::lround(
            origin.w + frac * (destination.w - origin.w)))};
    trip.points.push_back(TrajectoryPoint{.interval = t + step, .region = pos});
  }
  return trip;
}

std::vector<Trajectory> City::GenerateTripsForInterval(int64_t t) {
  const GridSpec& grid = config_.grid;
  double lambda = config_.trips_per_interval * ProfileAt(t) *
                  LevelMultiplierAt(config_.shifts, t);
  const int64_t day = t / config_.intervals_per_day;
  if (day >= 0 && day < static_cast<int64_t>(day_multiplier_.size())) {
    lambda *= day_multiplier_[static_cast<size_t>(day)];
  }
  if (config_.demand_noise_sigma > 0.0) {
    lambda *= std::exp(rng_.Normal(0.0, config_.demand_noise_sigma));
  }

  std::vector<Trajectory> trips;
  const int n = rng_.Poisson(lambda);
  trips.reserve(static_cast<size_t>(n));

  double origin_res = 0.0, origin_bus = 0.0, dest_res = 0.0, dest_bus = 0.0;
  MixtureAt(t, &origin_res, &origin_bus, &dest_res, &dest_bus);

  auto sample_region = [&](double res_weight) {
    const std::vector<double>& cdf = rng_.Uniform() < res_weight
                                         ? residential_cdf_
                                         : business_cdf_;
    const int64_t idx = SampleFromCdf(cdf);
    return Region{.h = idx / grid.width, .w = idx % grid.width};
  };

  for (int i = 0; i < n; ++i) {
    const Region origin = sample_region(origin_res);
    Region destination = sample_region(dest_res);
    if (origin == destination) {
      // Nudge to a neighbour so the trip crosses at least one boundary.
      destination.w = destination.w + 1 < grid.width ? destination.w + 1
                                                     : destination.w - 1;
    }
    trips.push_back(MakeTrip(t, origin, destination));
  }

  // Point-shift events: localized bursts departing from the event region.
  for (const ShiftEvent& event : config_.shifts) {
    if (event.kind != ShiftEvent::Kind::kPoint || !event.Covers(t)) continue;
    const int burst =
        rng_.Poisson(event.magnitude * config_.trips_per_interval);
    for (int i = 0; i < burst; ++i) {
      const Region destination = sample_region(dest_res);
      if (destination == event.region) continue;
      trips.push_back(MakeTrip(t, event.region, destination));
    }
  }
  return trips;
}

SimulationResult City::Simulate() {
  FlowSeries flows(config_.grid, config_.intervals_per_day,
                   config_.start_weekday, config_.num_intervals());
  int64_t num_trips = 0;
  for (int64_t t = 0; t < config_.num_intervals(); ++t) {
    const std::vector<Trajectory> trips = GenerateTripsForInterval(t);
    num_trips += static_cast<int64_t>(trips.size());
    for (const Trajectory& trip : trips) RasterizeTrajectory(trip, &flows);
  }
  return SimulationResult{.flows = std::move(flows), .num_trips = num_trips};
}

}  // namespace musenet::sim
