#ifndef MUSENET_SIM_SERIALIZE_H_
#define MUSENET_SIM_SERIALIZE_H_

#include <string>

#include "sim/flow_series.h"
#include "util/status.h"

namespace musenet::sim {

/// Persists a FlowSeries to disk (tensor-container format: the [T,2,H,W]
/// data plus a metadata record), so simulated datasets can be generated
/// once and shared between tools.
Status SaveFlowSeries(const std::string& path, const FlowSeries& flows);

/// Loads a FlowSeries written by SaveFlowSeries.
Result<FlowSeries> LoadFlowSeries(const std::string& path);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_SERIALIZE_H_
