#ifndef MUSENET_SIM_SERIALIZE_H_
#define MUSENET_SIM_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "sim/flow_series.h"
#include "util/status.h"

namespace musenet::sim {

/// Persists a FlowSeries to disk (tensor-container format v2: the [T,2,H,W]
/// data plus a metadata record), so simulated datasets can be generated
/// once and shared between tools. The container layer gives the dataset
/// cache the same integrity guarantees as model checkpoints: per-record
/// CRC32 and an atomic temp-file + fsync + rename write.
///
/// `provenance_hash` (see sim::SimConfigHash) is stamped into a separate
/// "provenance" record; pass 0 to write an unstamped file. Loaders that
/// predate the record ignore it, so stamped files stay readable everywhere.
Status SaveFlowSeries(const std::string& path, const FlowSeries& flows,
                      uint64_t provenance_hash = 0);

/// Loads a FlowSeries written by SaveFlowSeries without checking provenance.
/// Truncated, short-read or bit-flipped cache files surface as a descriptive
/// IoError (never a crash or a silently corrupted dataset); stale caches
/// from older builds (v1, no CRC) still load.
Result<FlowSeries> LoadFlowSeries(const std::string& path);

/// Loads a FlowSeries and validates its provenance stamp against
/// `expected_hash` (a SimConfigHash of the configuration the caller is about
/// to train on). A mismatch — including a legacy file with no stamp — fails
/// with a FailedPrecondition naming both hashes, so a flows file generated
/// under a different sim config/seed can never be silently consumed.
/// `expected_hash` 0 disables the check (same as LoadFlowSeries).
Result<FlowSeries> LoadFlowSeriesChecked(const std::string& path,
                                         uint64_t expected_hash);

/// Reads only the provenance stamp of a saved flow file (0 when the file
/// predates stamping).
Result<uint64_t> ReadFlowSeriesProvenance(const std::string& path);

/// In-memory variants of Save/LoadFlowSeries over container bytes, for
/// callers (the pipeline stage cache) that store the serialized series
/// inside their own checked payloads. `label` stands in for the file path
/// in error messages.
Result<std::string> SerializeFlowSeries(const FlowSeries& flows,
                                        uint64_t provenance_hash);
Result<FlowSeries> ParseFlowSeries(const std::string& label,
                                   const std::string& bytes);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_SERIALIZE_H_
