#ifndef MUSENET_SIM_SERIALIZE_H_
#define MUSENET_SIM_SERIALIZE_H_

#include <string>

#include "sim/flow_series.h"
#include "util/status.h"

namespace musenet::sim {

/// Persists a FlowSeries to disk (tensor-container format v2: the [T,2,H,W]
/// data plus a metadata record), so simulated datasets can be generated
/// once and shared between tools. The container layer gives the dataset
/// cache the same integrity guarantees as model checkpoints: per-record
/// CRC32 and an atomic temp-file + fsync + rename write.
Status SaveFlowSeries(const std::string& path, const FlowSeries& flows);

/// Loads a FlowSeries written by SaveFlowSeries. Truncated, short-read or
/// bit-flipped cache files surface as a descriptive IoError (never a crash
/// or a silently corrupted dataset); stale caches from older builds (v1, no
/// CRC) still load.
Result<FlowSeries> LoadFlowSeries(const std::string& path);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_SERIALIZE_H_
