#ifndef MUSENET_SIM_PRESETS_H_
#define MUSENET_SIM_PRESETS_H_

#include <string>

#include "sim/city.h"
#include "util/bench_config.h"

namespace musenet::sim {

/// The three benchmark datasets of the paper's evaluation, reproduced as
/// simulator presets with matching grid geometry, calendar and qualitative
/// demand structure (volumes, commute strength, shift frequency).
enum class DatasetId {
  kNycBike,  ///< 10×20 grid, 60 days from Fri 07/01/2016, low volume.
  kNycTaxi,  ///< 10×20 grid, 60 days from Thu 01/01/2015, high volume.
  kTaxiBj,   ///< 32×32 grid, long span, very high volume.
};

/// "NYC-Bike" / "NYC-Taxi" / "TaxiBJ".
std::string DatasetName(DatasetId id);

/// All three datasets, in the paper's column order.
inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kNycBike, DatasetId::kNycTaxi, DatasetId::kTaxiBj};

/// Builds the city configuration for a dataset at the requested bench scale:
/// "paper" keeps the paper geometry, "default" shrinks the grid/span to the
/// calibrated single-core reproduction size, "smoke" is minimal. Explicit
/// grid/day overrides in `scale` win over the preset.
///
/// The returned config includes a seeded schedule of level- and point-shift
/// events (distribution-shift phenomena, paper Fig. 1).
CityConfig MakeCityConfig(DatasetId id, const BenchScale& scale,
                          uint64_t seed);

/// Simulates the dataset and returns its flow series.
FlowSeries GenerateDatasetFlows(DatasetId id, const BenchScale& scale,
                                uint64_t seed);

/// Content hash of everything that determines GenerateDatasetFlows output:
/// the resolved CityConfig (grid, span, calendar, demand parameters — so both
/// preset edits and scale/grid overrides change it), the seed, and a
/// simulator code-version salt. Stamped into saved flow files as a
/// provenance record and used as the simulate-stage cache key, so a cached
/// flows.bin can never be silently reused for a different configuration.
uint64_t SimConfigHash(DatasetId id, const BenchScale& scale, uint64_t seed);

}  // namespace musenet::sim

#endif  // MUSENET_SIM_PRESETS_H_
