#include "serve/registry.h"

#include <cmath>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/serialize.h"
#include "util/fault_injector.h"
#include "util/hash.h"
#include "util/io.h"

namespace musenet::serve {

namespace ts = musenet::tensor;

namespace {

const char* StageName(int stage) {
  switch (stage) {
    case 1: return "load";
    case 2: return "build";
    case 3: return "shadow";
    case 4: return "commit";
    default: return "idle";
  }
}

int StageIndex(const char* stage) {
  if (std::string("load") == stage) return 1;
  if (std::string("build") == stage) return 2;
  if (std::string("shadow") == stage) return 3;
  if (std::string("commit") == stage) return 4;
  return 0;
}

/// Weight precision the tenant's plans serve at, for /statusz.
const char* PrecisionName(const infer::EngineOptions& engine) {
  if (!engine.specialize) return "fp32";
  switch (engine.precision) {
    case infer::PrecisionMode::kBf16: return "bf16";
    case infer::PrecisionMode::kInt8: return "int8";
    default: return "fp32";
  }
}

}  // namespace

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

ModelRegistry::Tenant* ModelRegistry::FindTenant(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Result<std::shared_ptr<const ServingPlan>> ModelRegistry::BuildCandidate(
    const ModelSpec& spec, const std::string& path, int64_t version,
    const std::function<void(const char*)>& on_stage) const {
  auto& rejected = obs::GetCounter("serve.shadow_rejected");
  auto reject = [&rejected, &spec, version](Status status) -> Status {
    rejected.Add();
    obs::TraceInstant("serve.swap.rejected", "version", version);
    obs::FlightRecorder::Instance().Record("serve.swap.rejected", version, 0,
                                          spec.name.c_str());
    // A rejected candidate is exactly the 3am incident the flight recorder
    // exists for: dump the ring (when a post-mortem path is configured) so
    // the shed/stage/fault breadcrumbs around the rejection are preserved.
    if (!obs::PostmortemPath().empty()) {
      (void)obs::DumpFlightRecorder("shadow_rejection");
    }
    return status;
  };
  auto stage = [&on_stage, &spec, version](const char* name) {
    obs::FlightRecorder::Instance().Record("serve.swap.stage", version,
                                          StageIndex(name),
                                          spec.name.c_str());
    if (on_stage) on_stage(name);
  };

  // --- 1. LOAD: container bytes -> named tensors (CRC-checked) --------------
  stage("load");
  obs::ScopedSpan load_span("serve.swap.load");
  util::FaultInjector& faults = util::FaultInjector::Instance();
  if (faults.TakeLoadFailure()) {
    return reject(Status::IoError("injected load failure reading '" + path +
                                  "' for tenant '" + spec.name + "'"));
  }
  auto bytes = util::ReadFileToString(path);
  if (!bytes.ok()) return reject(bytes.status());
  if (faults.TakeSwapCorrupt() && !bytes.value().empty()) {
    // A flipped bit in the middle of the container — the CRC-checked parse
    // below must refuse it; this fault never reaches a served prediction.
    bytes.value()[bytes.value().size() / 2] ^= 0x10;
  }
  const uint64_t content_hash = util::Fnv1a64(bytes.value());
  auto tensors = ts::ParseTensors(path, bytes.value());
  if (!tensors.ok()) return reject(tensors.status());

  // --- 2. BUILD: model from spec, weights from container, engine plan -------
  stage("build");
  obs::ScopedSpan build_span("serve.swap.build");
  auto plan = std::make_shared<ServingPlan>();
  plan->version = version;
  plan->source_path = path;
  plan->content_hash = content_hash;
  plan->model = std::make_unique<muse::MuseNet>(spec.config, spec.seed);
  const Status loaded = plan->model->LoadStateDict(tensors.value());
  if (!loaded.ok()) return reject(loaded);
  plan->model->SetTraining(false);
  plan->engine = std::make_unique<infer::Engine>(*plan->model, spec.engine);

  // --- 3. SHADOW: replay held-out probes on the candidate only --------------
  stage("shadow");
  obs::ScopedSpan shadow_span("serve.swap.shadow");
  float gate = options_.max_abs_delta;
  if (gate < 0.0f) {
    gate = spec.engine.specialize
               ? (spec.engine.max_abs_delta >= 0.0f
                      ? spec.engine.max_abs_delta
                      : infer::DefaultDeltaGate(spec.engine.precision))
               : infer::DefaultDeltaGate(infer::PrecisionMode::kFp32);
  }
  int64_t probed = 0;
  for (const data::Batch& probe : options_.probes) {
    // Registry-level probes are shared across tenants; only those matching
    // this tenant's grid exercise its candidate (A/B tenants on different
    // cities validate against their own geometry).
    if (probe.closeness.dim(2) != spec.config.grid_h ||
        probe.closeness.dim(3) != spec.config.grid_w) {
      continue;
    }
    ++probed;
    const ts::Tensor ref = plan->model->Predict(probe);
    const ts::Tensor got = plan->engine->Predict(probe);
    for (int64_t i = 0; i < got.num_elements(); ++i) {
      const float g = got.flat(i);
      if (!std::isfinite(g)) {
        return reject(Status::Internal(
            "shadow validation: candidate '" + spec.name + "' v" +
            std::to_string(version) + " produced a non-finite prediction"));
      }
      const float delta = std::abs(g - ref.flat(i));
      if (delta > gate) {
        return reject(Status::Internal(
            "shadow validation: candidate '" + spec.name + "' v" +
            std::to_string(version) + " engine/model delta " +
            std::to_string(delta) + " exceeds gate " + std::to_string(gate)));
      }
    }
  }
  if (!options_.probes.empty() && probed == 0) {
    obs::TraceInstant("serve.swap.no_matching_probes");
  }
  return std::shared_ptr<const ServingPlan>(std::move(plan));
}

Status ModelRegistry::Load(const ModelSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(spec.name) != 0) {
      return Status::AlreadyExists("tenant '" + spec.name +
                                   "' is already registered");
    }
  }
  auto on_stage = [this, &spec](const char* stage) {
    if (options_.stage_hook) options_.stage_hook(spec.name, stage);
  };
  auto candidate = BuildCandidate(spec, spec.path, /*version=*/1, on_stage);
  if (!candidate.ok()) return candidate.status();

  auto tenant = std::make_unique<Tenant>();
  tenant->spec = spec;
  tenant->next_version = 2;
  tenant->active.store(std::move(candidate).value(),
                       std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (!tenants_.emplace(spec.name, std::move(tenant)).second) {
    return Status::AlreadyExists("tenant '" + spec.name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status ModelRegistry::Swap(const std::string& name, const std::string& path) {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  // Swaps of one tenant serialize; readers and other tenants' swaps proceed.
  std::lock_guard<std::mutex> swap_lock(tenant->swap_mu);
  obs::ScopedSpan span("serve.swap", "version", tenant->next_version);
  const std::string source = path.empty() ? tenant->spec.path : path;
  tenant->candidate_version.store(tenant->next_version,
                                  std::memory_order_release);
  auto on_stage = [this, tenant, &name](const char* stage) {
    tenant->swap_stage.store(StageIndex(stage), std::memory_order_release);
    if (options_.stage_hook) options_.stage_hook(name, stage);
  };
  auto candidate =
      BuildCandidate(tenant->spec, source, tenant->next_version, on_stage);
  if (!candidate.ok()) {
    tenant->swap_stage.store(0, std::memory_order_release);
    tenant->candidate_version.store(0, std::memory_order_release);
    if (options_.stage_hook) options_.stage_hook(name, "idle");
    return candidate.status();
  }

  // --- 4. COMMIT: CAS the active-plan pointer --------------------------------
  // The CAS cannot lose (swap_mu serializes writers); the loop documents the
  // lock-free publish contract with Acquire. The superseded plan retires
  // when its last in-flight snapshot releases (shared_ptr refcount).
  on_stage("commit");
  obs::FlightRecorder::Instance().Record("serve.swap.commit",
                                        tenant->next_version, 0,
                                        name.c_str());
  std::shared_ptr<const ServingPlan> expected =
      tenant->active.load(std::memory_order_acquire);
  while (!tenant->active.compare_exchange_weak(
      expected, candidate.value(), std::memory_order_acq_rel,
      std::memory_order_acquire)) {
  }
  tenant->next_version++;
  tenant->spec.path = source;
  obs::GetCounter("serve.swapped").Add();
  tenant->swap_stage.store(0, std::memory_order_release);
  tenant->candidate_version.store(0, std::memory_order_release);
  if (options_.stage_hook) options_.stage_hook(name, "idle");
  return Status::OK();
}

std::shared_ptr<const ServingPlan> ModelRegistry::Acquire(
    const std::string& name) const {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) return nullptr;
  return tenant->active.load(std::memory_order_acquire);
}

int64_t ModelRegistry::version(const std::string& name) const {
  auto plan = Acquire(name);
  return plan == nullptr ? 0 : plan->version;
}

std::vector<std::string> ModelRegistry::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

std::vector<ModelRegistry::TenantStatus> ModelRegistry::TenantStatuses()
    const {
  std::vector<TenantStatus> statuses;
  std::lock_guard<std::mutex> lock(mu_);
  statuses.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStatus status;
    status.name = name;
    // One atomic plan snapshot: every active-plan field below comes from the
    // same ServingPlan, so a concurrent commit flips them together or not
    // at all (never torn).
    const std::shared_ptr<const ServingPlan> plan =
        tenant->active.load(std::memory_order_acquire);
    if (plan != nullptr) {
      status.version = plan->version;
      status.source_path = plan->source_path;
      status.content_hash = plan->content_hash;
    }
    status.precision = PrecisionName(tenant->spec.engine);
    status.swap_state =
        StageName(tenant->swap_stage.load(std::memory_order_acquire));
    status.candidate_version =
        tenant->candidate_version.load(std::memory_order_acquire);
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace musenet::serve
