#include "serve/registry.h"

#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/serialize.h"
#include "util/fault_injector.h"
#include "util/hash.h"
#include "util/io.h"

namespace musenet::serve {

namespace ts = musenet::tensor;

ModelRegistry::ModelRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

ModelRegistry::Tenant* ModelRegistry::FindTenant(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Result<std::shared_ptr<const ServingPlan>> ModelRegistry::BuildCandidate(
    const ModelSpec& spec, const std::string& path, int64_t version) const {
  auto& rejected = obs::GetCounter("serve.shadow_rejected");
  auto reject = [&rejected](Status status) -> Status {
    rejected.Add();
    obs::TraceInstant("serve.swap.rejected");
    return status;
  };

  // --- 1. LOAD: container bytes -> named tensors (CRC-checked) --------------
  obs::ScopedSpan load_span("serve.swap.load");
  util::FaultInjector& faults = util::FaultInjector::Instance();
  if (faults.TakeLoadFailure()) {
    return reject(Status::IoError("injected load failure reading '" + path +
                                  "' for tenant '" + spec.name + "'"));
  }
  auto bytes = util::ReadFileToString(path);
  if (!bytes.ok()) return reject(bytes.status());
  if (faults.TakeSwapCorrupt() && !bytes.value().empty()) {
    // A flipped bit in the middle of the container — the CRC-checked parse
    // below must refuse it; this fault never reaches a served prediction.
    bytes.value()[bytes.value().size() / 2] ^= 0x10;
  }
  const uint64_t content_hash = util::Fnv1a64(bytes.value());
  auto tensors = ts::ParseTensors(path, bytes.value());
  if (!tensors.ok()) return reject(tensors.status());

  // --- 2. BUILD: model from spec, weights from container, engine plan -------
  obs::ScopedSpan build_span("serve.swap.build");
  auto plan = std::make_shared<ServingPlan>();
  plan->version = version;
  plan->source_path = path;
  plan->content_hash = content_hash;
  plan->model = std::make_unique<muse::MuseNet>(spec.config, spec.seed);
  const Status loaded = plan->model->LoadStateDict(tensors.value());
  if (!loaded.ok()) return reject(loaded);
  plan->model->SetTraining(false);
  plan->engine = std::make_unique<infer::Engine>(*plan->model, spec.engine);

  // --- 3. SHADOW: replay held-out probes on the candidate only --------------
  obs::ScopedSpan shadow_span("serve.swap.shadow");
  float gate = options_.max_abs_delta;
  if (gate < 0.0f) {
    gate = spec.engine.specialize
               ? (spec.engine.max_abs_delta >= 0.0f
                      ? spec.engine.max_abs_delta
                      : infer::DefaultDeltaGate(spec.engine.precision))
               : infer::DefaultDeltaGate(infer::PrecisionMode::kFp32);
  }
  int64_t probed = 0;
  for (const data::Batch& probe : options_.probes) {
    // Registry-level probes are shared across tenants; only those matching
    // this tenant's grid exercise its candidate (A/B tenants on different
    // cities validate against their own geometry).
    if (probe.closeness.dim(2) != spec.config.grid_h ||
        probe.closeness.dim(3) != spec.config.grid_w) {
      continue;
    }
    ++probed;
    const ts::Tensor ref = plan->model->Predict(probe);
    const ts::Tensor got = plan->engine->Predict(probe);
    for (int64_t i = 0; i < got.num_elements(); ++i) {
      const float g = got.flat(i);
      if (!std::isfinite(g)) {
        return reject(Status::Internal(
            "shadow validation: candidate '" + spec.name + "' v" +
            std::to_string(version) + " produced a non-finite prediction"));
      }
      const float delta = std::abs(g - ref.flat(i));
      if (delta > gate) {
        return reject(Status::Internal(
            "shadow validation: candidate '" + spec.name + "' v" +
            std::to_string(version) + " engine/model delta " +
            std::to_string(delta) + " exceeds gate " + std::to_string(gate)));
      }
    }
  }
  if (!options_.probes.empty() && probed == 0) {
    obs::TraceInstant("serve.swap.no_matching_probes");
  }
  return std::shared_ptr<const ServingPlan>(std::move(plan));
}

Status ModelRegistry::Load(const ModelSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(spec.name) != 0) {
      return Status::AlreadyExists("tenant '" + spec.name +
                                   "' is already registered");
    }
  }
  auto candidate = BuildCandidate(spec, spec.path, /*version=*/1);
  if (!candidate.ok()) return candidate.status();

  auto tenant = std::make_unique<Tenant>();
  tenant->spec = spec;
  tenant->next_version = 2;
  tenant->active.store(std::move(candidate).value(),
                       std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  if (!tenants_.emplace(spec.name, std::move(tenant)).second) {
    return Status::AlreadyExists("tenant '" + spec.name +
                                 "' is already registered");
  }
  return Status::OK();
}

Status ModelRegistry::Swap(const std::string& name, const std::string& path) {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) {
    return Status::NotFound("unknown tenant '" + name + "'");
  }
  // Swaps of one tenant serialize; readers and other tenants' swaps proceed.
  std::lock_guard<std::mutex> swap_lock(tenant->swap_mu);
  obs::ScopedSpan span("serve.swap");
  const std::string source = path.empty() ? tenant->spec.path : path;
  auto candidate =
      BuildCandidate(tenant->spec, source, tenant->next_version);
  if (!candidate.ok()) return candidate.status();

  // --- 4. COMMIT: CAS the active-plan pointer --------------------------------
  // The CAS cannot lose (swap_mu serializes writers); the loop documents the
  // lock-free publish contract with Acquire. The superseded plan retires
  // when its last in-flight snapshot releases (shared_ptr refcount).
  std::shared_ptr<const ServingPlan> expected =
      tenant->active.load(std::memory_order_acquire);
  while (!tenant->active.compare_exchange_weak(
      expected, candidate.value(), std::memory_order_acq_rel,
      std::memory_order_acquire)) {
  }
  tenant->next_version++;
  tenant->spec.path = source;
  obs::GetCounter("serve.swapped").Add();
  return Status::OK();
}

std::shared_ptr<const ServingPlan> ModelRegistry::Acquire(
    const std::string& name) const {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) return nullptr;
  return tenant->active.load(std::memory_order_acquire);
}

int64_t ModelRegistry::version(const std::string& name) const {
  auto plan = Acquire(name);
  return plan == nullptr ? 0 : plan->version;
}

std::vector<std::string> ModelRegistry::TenantNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

}  // namespace musenet::serve
