#ifndef MUSENET_SERVE_QUALITY_H_
#define MUSENET_SERVE_QUALITY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace musenet::obs {
class Gauge;
}  // namespace musenet::obs

namespace musenet::serve {

/// Tuning of the online forecast-quality monitors.
struct QualityOptions {
  /// EWMA weight of the rolling per-cell MAE / bias (the "current error"
  /// estimate the gauges publish).
  double fast_alpha = 0.1;
  /// EWMA weight of the slow reference MAE the CUSUM drifts against. Much
  /// slower than fast_alpha, so a genuine shift moves the statistic long
  /// before it re-baselines the reference.
  double slow_alpha = 0.005;
  /// CUSUM allowance: per-cell increments are |err| - (1 + slack) * ref,
  /// clamped at zero, so error wobble within `slack` of the reference MAE
  /// accumulates nothing.
  double cusum_slack = 0.25;
  /// A cell counts as drifted when its CUSUM exceeds threshold * ref — i.e.
  /// it has accumulated `threshold` reference-MAEs of excess error.
  double cusum_threshold = 8.0;
  /// Samples before the CUSUM starts accumulating (the slow reference needs
  /// a baseline before "excess error" means anything).
  int64_t burn_in = 32;
};

/// Online per-cell forecast-quality monitor for one tenant: rolling MAE and
/// signed bias per grid cell plus a CUSUM drift statistic, computed in the
/// serve path against ground-truth-delayed labels (the target the simulator
/// loadgen attaches to each request — in production, the label that arrives
/// one interval later).
///
/// Aggregates are published after every observation as gauges — the input
/// contract of the ROADMAP's drift-aware online learning loop:
///   serve.quality.<tenant>.mae            mean per-cell rolling MAE
///   serve.quality.<tenant>.bias           mean per-cell rolling signed error
///   serve.quality.<tenant>.cusum          max per-cell CUSUM / reference
///   serve.quality.<tenant>.drifted_cells  cells past cusum_threshold
///   serve.quality.<tenant>.samples        observations folded in
///
/// One dispatcher thread feeds each tenant's monitor, but stats() can be
/// read concurrently (the /statusz endpoint does); a mutex covers both.
class QualityMonitor {
 public:
  explicit QualityMonitor(const std::string& tenant,
                          QualityOptions options = {});

  QualityMonitor(const QualityMonitor&) = delete;
  QualityMonitor& operator=(const QualityMonitor&) = delete;

  /// Folds one prediction/label pair into the per-cell statistics.
  /// `prediction` and `truth` are flat scaled [2*H*W] sample views of equal
  /// length `cells`; the cell count is fixed at first call (mismatched
  /// later calls are ignored — a tenant serves one grid geometry).
  void Observe(const float* prediction, const float* truth, int64_t cells);

  struct Stats {
    int64_t samples = 0;
    int64_t cells = 0;
    double mae = 0.0;            ///< Mean over cells of the rolling MAE.
    double bias = 0.0;           ///< Mean over cells of the rolling bias.
    double cusum_max = 0.0;      ///< Max per-cell CUSUM / reference MAE.
    int64_t drifted_cells = 0;   ///< Cells past cusum_threshold.
  };
  Stats stats() const;

 private:
  const QualityOptions options_;
  mutable std::mutex mu_;
  int64_t samples_ = 0;
  std::vector<double> mae_;       ///< Fast EWMA of |err| per cell.
  std::vector<double> bias_;      ///< Fast EWMA of signed err per cell.
  std::vector<double> ref_mae_;   ///< Slow reference EWMA of |err|.
  std::vector<double> cusum_;     ///< One-sided CUSUM of excess |err|.
  Stats published_;

  obs::Gauge* mae_gauge_;
  obs::Gauge* bias_gauge_;
  obs::Gauge* cusum_gauge_;
  obs::Gauge* drifted_gauge_;
  obs::Gauge* samples_gauge_;
};

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_QUALITY_H_
