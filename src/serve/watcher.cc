#include "serve/watcher.h"

#include <chrono>

#include "obs/trace.h"
#include "util/hash.h"
#include "util/io.h"

namespace musenet::serve {

SwapWatcher::SwapWatcher(ModelRegistry& registry, double interval_ms)
    : registry_(registry), interval_ms_(interval_ms) {
  poller_ = std::thread([this] { Loop(); });
}

SwapWatcher::~SwapWatcher() { Stop(); }

void SwapWatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (poller_.joinable()) poller_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

int SwapWatcher::PollOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  int committed = 0;
  for (const std::string& name : registry_.TenantNames()) {
    auto plan = registry_.Acquire(name);
    if (plan == nullptr) continue;
    auto seen = last_seen_.find(name);
    if (seen == last_seen_.end()) {
      // First sweep: anchor on the bytes the active plan was built from, so
      // a container published before the watcher started still triggers.
      seen = last_seen_.emplace(name, plan->content_hash).first;
    }
    auto bytes = util::ReadFileToString(plan->source_path);
    if (!bytes.ok()) continue;  // Mid-rewrite; next sweep sees the result.
    const uint64_t hash = util::Fnv1a64(bytes.value());
    if (hash == seen->second) continue;
    // Remember the hash before swapping: a candidate that fails shadow
    // validation is not retried until the file's bytes change again.
    seen->second = hash;
    obs::TraceInstant("serve.watch.change");
    const Status status = registry_.Swap(name);
    if (status.ok()) {
      ++committed;
      swaps_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejects_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return committed;
}

void SwapWatcher::Loop() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(interval_ms_));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    }
    PollOnce();
  }
}

}  // namespace musenet::serve
