#include "serve/quality.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace musenet::serve {

QualityMonitor::QualityMonitor(const std::string& tenant,
                               QualityOptions options)
    : options_(options),
      mae_gauge_(&obs::GetGauge("serve.quality." + tenant + ".mae")),
      bias_gauge_(&obs::GetGauge("serve.quality." + tenant + ".bias")),
      cusum_gauge_(&obs::GetGauge("serve.quality." + tenant + ".cusum")),
      drifted_gauge_(
          &obs::GetGauge("serve.quality." + tenant + ".drifted_cells")),
      samples_gauge_(
          &obs::GetGauge("serve.quality." + tenant + ".samples")) {}

void QualityMonitor::Observe(const float* prediction, const float* truth,
                             int64_t cells) {
  if (cells <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (mae_.empty()) {
    mae_.assign(static_cast<size_t>(cells), 0.0);
    bias_.assign(static_cast<size_t>(cells), 0.0);
    ref_mae_.assign(static_cast<size_t>(cells), 0.0);
    cusum_.assign(static_cast<size_t>(cells), 0.0);
  } else if (static_cast<int64_t>(mae_.size()) != cells) {
    return;  // A tenant serves one grid geometry; ignore strays.
  }

  const bool first = samples_ == 0;
  const bool burned_in = samples_ >= options_.burn_in;
  double mae_total = 0.0, bias_total = 0.0, cusum_max = 0.0;
  int64_t drifted = 0;
  for (int64_t c = 0; c < cells; ++c) {
    const double err = static_cast<double>(prediction[c]) -
                       static_cast<double>(truth[c]);
    const double abs_err = std::abs(err);
    const size_t i = static_cast<size_t>(c);
    if (first) {
      // Seed the EWMAs with the first observation instead of decaying up
      // from zero — the reference is usable immediately after burn-in.
      mae_[i] = abs_err;
      bias_[i] = err;
      ref_mae_[i] = abs_err;
    } else {
      mae_[i] += options_.fast_alpha * (abs_err - mae_[i]);
      bias_[i] += options_.fast_alpha * (err - bias_[i]);
      ref_mae_[i] += options_.slow_alpha * (abs_err - ref_mae_[i]);
    }
    if (burned_in) {
      const double allowance = (1.0 + options_.cusum_slack) * ref_mae_[i];
      cusum_[i] = std::max(0.0, cusum_[i] + abs_err - allowance);
    }
    mae_total += mae_[i];
    bias_total += bias_[i];
    // Normalize by the reference so the drift score is unitless and
    // comparable across cells with very different traffic volume.
    const double ref = std::max(ref_mae_[i], 1e-12);
    const double score = cusum_[i] / ref;
    cusum_max = std::max(cusum_max, score);
    if (score > options_.cusum_threshold) ++drifted;
  }
  ++samples_;

  published_.samples = samples_;
  published_.cells = cells;
  published_.mae = mae_total / static_cast<double>(cells);
  published_.bias = bias_total / static_cast<double>(cells);
  published_.cusum_max = cusum_max;
  published_.drifted_cells = drifted;

  mae_gauge_->Set(published_.mae);
  bias_gauge_->Set(published_.bias);
  cusum_gauge_->Set(published_.cusum_max);
  drifted_gauge_->Set(static_cast<double>(drifted));
  samples_gauge_->Set(static_cast<double>(samples_));
}

QualityMonitor::Stats QualityMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

}  // namespace musenet::serve
