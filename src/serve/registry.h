#ifndef MUSENET_SERVE_REGISTRY_H_
#define MUSENET_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "infer/engine.h"
#include "muse/model.h"
#include "util/status.h"

namespace musenet::serve {

/// One named tenant's model source: where its MUSETNSR container lives and
/// how to instantiate/plan it. A city operator registers one spec per served
/// model (per-city, per-dataset, A/B or precision variants).
struct ModelSpec {
  std::string name;            ///< Tenant name ("bike", "taxi-int8", ...).
  std::string path;            ///< MUSETNSR container (tensor::SaveTensors).
  muse::MuseNetConfig config;  ///< Architecture; must match the container.
  infer::EngineOptions engine; ///< Plan-time specialization / precision.
  uint64_t seed = 7;           ///< Construction seed (weights overwritten).
};

/// An immutable, planned serving unit: the loaded model, the inference
/// engine compiled over it, and version metadata. Once published it is never
/// mutated; readers hold it through shared_ptr snapshots, so reclamation is
/// refcount-based — the plan a draining batch replays on stays alive until
/// the last in-flight reference drops, no matter how many swaps happen
/// meanwhile.
struct ServingPlan {
  int64_t version = 0;          ///< 1-based, bumped per successful swap.
  std::string source_path;      ///< Container this plan was loaded from.
  uint64_t content_hash = 0;    ///< FNV-1a of the container bytes.
  std::unique_ptr<muse::MuseNet> model;
  std::unique_ptr<infer::Engine> engine;  ///< References *model; keep after.
};

/// Shadow-validation policy applied to every candidate plan before it can
/// become active (initial Load and every Swap).
struct RegistryOptions {
  /// Held-out inputs the candidate must predict sanely on. Validation
  /// checks every output element is finite and that the candidate engine
  /// matches the candidate model's own eval forward within the accuracy
  /// gate — the same engine-vs-model contract PR 6's specialization gate
  /// enforces at plan build. Empty skips the probe pass (load/parse/shape
  /// errors still reject).
  std::vector<data::Batch> probes;
  /// Max |engine − model| per element over the probes. Negative selects the
  /// per-precision default of the tenant's EngineOptions (fp32 1e-4,
  /// bf16 5e-2, int8 2.5e-1 — the PR 6 gates).
  float max_abs_delta = -1.0f;
  /// Test hook: called synchronously at every swap-stage transition
  /// ("load", "build", "shadow", "commit", "idle") with the tenant name.
  /// Blocking inside the hook holds the swap at that stage — which is how
  /// the /statusz-during-swap test pins an in-flight swap to observe it.
  std::function<void(const std::string& tenant, const char* stage)>
      stage_hook;
};

/// Multi-tenant registry of named, versioned serving plans with atomic
/// hot-swap.
///
/// Swap protocol (see DESIGN.md "Multi-tenant serving"):
///   1. LOAD    — read the container bytes (fault-injection hooks for I/O
///                failure and bit corruption live here), parse the MUSETNSR
///                records (CRC failures reject).
///   2. BUILD   — construct the model from the tenant spec, LoadStateDict
///                (missing/extra/mismatched tensors reject), eval mode,
///                compile the inference engine and warm its plans.
///   3. SHADOW  — replay the probe set on the candidate only; non-finite
///                outputs or an engine/model delta above the gate reject.
///                The active plan serves traffic throughout.
///   4. COMMIT  — CAS the tenant's active-plan pointer to the candidate
///                (serve.swapped). A rejected candidate is discarded and the
///                old plan keeps serving (serve.shadow_rejected).
///
/// Readers call Acquire() and hold the returned snapshot for the duration of
/// one batch replay; the shared_ptr refcount is the epoch that keeps a
/// superseded plan alive until its draining replays finish. Swaps for
/// different tenants can proceed concurrently with each other and with
/// readers; swaps for one tenant serialize.
class ModelRegistry {
 public:
  explicit ModelRegistry(RegistryOptions options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers a tenant and loads+validates its first plan (version 1).
  /// Fails without registering on a duplicate name or a rejected candidate.
  Status Load(const ModelSpec& spec);

  /// Hot-swaps `name` to the container at `path` (empty = reload the spec's
  /// current path). Runs the full swap protocol; on any rejection the active
  /// plan is untouched and keeps serving. Thread-safe against readers and
  /// other swaps.
  Status Swap(const std::string& name, const std::string& path = "");

  /// Snapshot of the tenant's active plan, or nullptr for an unknown
  /// tenant. Hold it for the duration of one replay; release promptly so
  /// superseded plans can retire.
  std::shared_ptr<const ServingPlan> Acquire(const std::string& name) const;

  /// Active version of `name` (0 when unknown).
  int64_t version(const std::string& name) const;

  /// Registered tenant names, sorted.
  std::vector<std::string> TenantNames() const;

  /// Point-in-time status of one tenant, for /statusz. Reads the active
  /// plan through one atomic Acquire, so the (version, source, hash,
  /// precision) tuple is internally consistent — never torn across a
  /// concurrent commit; swap_state/candidate_version are racy-by-design
  /// progress indicators of an in-flight swap.
  struct TenantStatus {
    std::string name;
    int64_t version = 0;            ///< Active plan version (0 = none).
    std::string source_path;        ///< Container the active plan came from.
    uint64_t content_hash = 0;      ///< FNV-1a of the active container.
    std::string precision;          ///< "fp32" / "bf16" / "int8".
    std::string swap_state;         ///< "idle" / "load" / "build" / ...
    int64_t candidate_version = 0;  ///< In-flight swap target (0 = none).
  };

  /// Status of every tenant, sorted by name.
  std::vector<TenantStatus> TenantStatuses() const;

 private:
  struct Tenant {
    ModelSpec spec;
    std::atomic<std::shared_ptr<const ServingPlan>> active;
    std::mutex swap_mu;       ///< Serializes swaps of this tenant only.
    int64_t next_version = 1; ///< Guarded by swap_mu.
    /// In-flight swap progress, for /statusz and the flight recorder:
    /// 0 idle, 1 load, 2 build, 3 shadow, 4 commit.
    std::atomic<int> swap_stage{0};
    std::atomic<int64_t> candidate_version{0};  ///< 0 = no swap running.
  };

  /// Stages 1–3 of the swap protocol: load, build and shadow-validate a
  /// candidate at `version`. Counts serve.shadow_rejected on any failure.
  /// `on_stage` (may be empty) observes stage entry ("load", "build",
  /// "shadow").
  Result<std::shared_ptr<const ServingPlan>> BuildCandidate(
      const ModelSpec& spec, const std::string& path, int64_t version,
      const std::function<void(const char*)>& on_stage) const;

  Tenant* FindTenant(const std::string& name) const;

  RegistryOptions options_;
  mutable std::mutex mu_;  ///< Guards the tenant map's shape.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_REGISTRY_H_
