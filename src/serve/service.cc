#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/stopwatch.h"

namespace musenet::serve {

namespace ts = musenet::tensor;

ShedPolicy ParseShedPolicy(const std::string& name) {
  if (name == "oldest" || name == "drop-oldest") return ShedPolicy::kDropOldest;
  return ShedPolicy::kRejectNewest;
}

ForecastService::ForecastService(ModelRegistry& registry,
                                 ServiceOptions options)
    : registry_(registry), options_(options) {
  MUSE_CHECK(options_.max_batch >= 1) << "max_batch must be >= 1";
  MUSE_CHECK(options_.max_queue >= 1) << "max_queue must be >= 1";
  MUSE_CHECK(options_.max_wait_ms >= 0.0) << "max_wait_ms must be >= 0";
  for (const std::string& name : registry_.TenantNames()) {
    auto state = std::make_unique<TenantState>();
    state->name = name;
    if (options_.monitor_quality) {
      state->quality =
          std::make_unique<QualityMonitor>(name, options_.quality);
    }
    TenantState* raw = state.get();
    tenants_.emplace(name, std::move(state));
    raw->dispatcher = std::thread([this, raw] { DispatchLoop(*raw); });
  }
}

ForecastService::~ForecastService() { Drain(); }

// TimeOut and Shed count before fulfilling the promise, for the same reason
// DispatchLoop does: the serve.* counters must already reflect a request by
// the time its future resolves, or a reconciliation snapshot taken right
// after future.get() can be off by the in-flight request.
void ForecastService::TimeOut(Pending&& pending) {
  obs::GetCounter("serve.timed_out").Add();
  obs::FlightRecorder::Instance().Record("serve.deadline_expired",
                                        pending.request_id);
  pending.promise.set_exception(std::make_exception_ptr(
      DeadlineError("request deadline passed before completion")));
}

void ForecastService::Shed(TenantState& tenant, Pending&& pending,
                           const char* reason) {
  obs::GetCounter("serve.shed").Add();
  obs::GetCounter("serve." + tenant.name + ".shed").Add();
  obs::FlightRecorder::Instance().Record("serve.shed", pending.request_id, 0,
                                        reason);
  pending.promise.set_exception(std::make_exception_ptr(
      ShedError(std::string("request shed: ") + reason)));
}

std::future<tensor::Tensor> ForecastService::Submit(const std::string& tenant,
                                                    data::Batch request,
                                                    double deadline_ms) {
  MUSE_CHECK(request.batch_size() == 1)
      << "ForecastService::Submit takes single-grid requests; got batch "
      << request.batch_size();
  obs::GetCounter("serve.requests").Add();

  Pending pending;
  pending.batch = std::move(request);
  // The rid is the trace-correlation key: it names this request in the
  // serve.request instant, the serve.batch / infer.run span args, and the
  // latency-histogram exemplar, so an outlier bucket resolves to a concrete
  // request's spans in the trace.
  pending.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceInstant("serve.request", "rid", pending.request_id);
  pending.enqueue_ns = util::MonotonicNowNanos();
  const double effective_deadline =
      deadline_ms < 0.0 ? options_.deadline_ms : deadline_ms;
  if (effective_deadline > 0.0) {
    pending.deadline_ns =
        pending.enqueue_ns + static_cast<int64_t>(effective_deadline * 1e6);
  }
  std::future<tensor::Tensor> future = pending.promise.get_future();

  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("unknown tenant '" + tenant + "'")));
    return future;
  }
  TenantState& state = *it->second;
  if (draining_.load(std::memory_order_acquire)) {
    pending.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("ForecastService is draining")));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(state.mu);
    // 1. Token bucket: refill continuously, spend one token per admission.
    if (options_.rate_rps > 0.0) {
      const double burst = options_.burst > 0.0
                               ? options_.burst
                               : std::max(1.0, options_.rate_rps);
      if (state.refill_ns == 0) {
        state.tokens = burst;  // First request finds a full bucket.
      } else {
        const double elapsed_s =
            static_cast<double>(pending.enqueue_ns - state.refill_ns) / 1e9;
        state.tokens =
            std::min(burst, state.tokens + elapsed_s * options_.rate_rps);
      }
      state.refill_ns = pending.enqueue_ns;
      if (state.tokens < 1.0) {
        Shed(state, std::move(pending), "rate limit");
        return future;
      }
      state.tokens -= 1.0;
    }

    // 2. Bounded queue.
    if (static_cast<int>(state.queue.size()) >= options_.max_queue) {
      if (options_.shed_policy == ShedPolicy::kRejectNewest) {
        Shed(state, std::move(pending), "queue full");
        return future;
      }
      Pending oldest = std::move(state.queue.front());
      state.queue.pop_front();
      Shed(state, std::move(oldest), "displaced by newer request");
    }

    // 3. Deadline-aware admission: don't queue work that is already
    // hopeless — if one batch's expected service time blows the deadline,
    // shed now instead of timing out later.
    if (pending.deadline_ns > 0) {
      const int64_t ewma = state.ewma_batch_ns.load(std::memory_order_relaxed);
      if (ewma > 0 && pending.enqueue_ns + ewma > pending.deadline_ns) {
        Shed(state, std::move(pending), "deadline unmeetable");
        return future;
      }
    }

    state.queue.push_back(std::move(pending));
    obs::GetHistogram("serve.queue_depth", obs::QueueDepthBuckets())
        .Observe(static_cast<double>(state.queue.size()));
  }
  obs::GetCounter("serve.admitted").Add();
  obs::GetCounter("serve." + state.name + ".admitted").Add();
  state.cv.notify_one();
  return future;
}

void ForecastService::DispatchLoop(TenantState& tenant) {
  auto& latency_hist =
      obs::GetHistogram("serve.latency_ms", obs::LatencyBucketsMs());
  auto& infer_latency_hist =
      obs::GetHistogram("infer.latency_ms", obs::LatencyBucketsMs());
  auto& batch_size_hist =
      obs::GetHistogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64});
  auto& completed = obs::GetCounter("serve.completed");
  const auto wait = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.max_wait_ms));

  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lock(tenant.mu);
      tenant.cv.wait(lock, [this, &tenant] {
        return draining_.load(std::memory_order_acquire) ||
               !tenant.queue.empty();
      });
      if (tenant.queue.empty()) return;  // Draining with a dry queue.
      const auto deadline = std::chrono::steady_clock::now() + wait;
      tenant.cv.wait_until(lock, deadline, [this, &tenant] {
        return draining_.load(std::memory_order_acquire) ||
               static_cast<int>(tenant.queue.size()) >= options_.max_batch;
      });
      // Expired requests complete with DeadlineError instead of occupying a
      // batch slot; live ones fill the group up to max_batch.
      const int64_t now_ns = util::MonotonicNowNanos();
      group.reserve(static_cast<size_t>(options_.max_batch));
      while (!tenant.queue.empty() &&
             static_cast<int>(group.size()) < options_.max_batch) {
        Pending p = std::move(tenant.queue.front());
        tenant.queue.pop_front();
        if (p.deadline_ns > 0 && now_ns > p.deadline_ns) {
          TimeOut(std::move(p));
          continue;
        }
        group.push_back(std::move(p));
      }
    }
    if (group.empty()) continue;

    const int64_t n = static_cast<int64_t>(group.size());
    // The batch span carries the first member's rid so a trace search for
    // one request finds the batch that served it (and, via the engine's rid
    // propagation, the replay lanes underneath).
    obs::ScopedSpan span("serve.batch", "size", n, "rid",
                         group[0].request_id);
    const int64_t start_ns = util::MonotonicNowNanos();

    // The snapshot pins this batch's plan: a Swap() committing mid-replay
    // retires the old plan only after this reference drops, and the next
    // batch's Acquire sees the new plan.
    std::shared_ptr<const ServingPlan> plan = registry_.Acquire(tenant.name);
    if (plan == nullptr) {
      for (Pending& p : group) {
        p.promise.set_exception(std::make_exception_ptr(std::runtime_error(
            "no active plan for tenant '" + tenant.name + "'")));
      }
      continue;
    }

    const double slow_ms = util::FaultInjector::Instance().TakeSlowReplay();
    if (slow_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(slow_ms));
    }

    data::Batch merged;
    if (n == 1) {
      merged = group[0].batch;
    } else {
      std::vector<ts::Tensor> closeness, period, trend, target;
      closeness.reserve(group.size());
      period.reserve(group.size());
      trend.reserve(group.size());
      target.reserve(group.size());
      for (Pending& p : group) {
        closeness.push_back(p.batch.closeness);
        period.push_back(p.batch.period);
        trend.push_back(p.batch.trend);
        target.push_back(p.batch.target);
        merged.target_indices.insert(merged.target_indices.end(),
                                     p.batch.target_indices.begin(),
                                     p.batch.target_indices.end());
      }
      merged.closeness = ts::Concat(closeness, 0);
      merged.period = ts::Concat(period, 0);
      merged.trend = ts::Concat(trend, 0);
      merged.target = ts::Concat(target, 0);
    }

    plan->engine->set_trace_request_id(group[0].request_id);
    ts::Tensor prediction = plan->engine->Predict(merged);
    plan->engine->set_trace_request_id(-1);
    const int64_t done_ns = util::MonotonicNowNanos();

    // EWMA of batch service time feeds deadline-aware admission.
    const int64_t batch_ns = done_ns - start_ns;
    const int64_t prev = tenant.ewma_batch_ns.load(std::memory_order_relaxed);
    tenant.ewma_batch_ns.store(prev == 0 ? batch_ns : (prev * 7 + batch_ns) / 8,
                               std::memory_order_relaxed);

    for (int64_t i = 0; i < n; ++i) {
      Pending& p = group[static_cast<size_t>(i)];
      if (p.deadline_ns > 0 && done_ns > p.deadline_ns) {
        TimeOut(std::move(p));
        continue;
      }
      ts::Tensor slice = n == 1 ? prediction : ts::Slice(prediction, 0, i, 1);
      // Count and observe BEFORE fulfilling the promise: a caller that
      // snapshots the counters right after future.get() returns must see
      // this request in serve.completed (admitted == completed + timed_out
      // is the reconciliation the bench and CI smoke assert on).
      completed.Add();
      const double millis = static_cast<double>(done_ns - p.enqueue_ns) / 1e6;
      // The rid rides along as the bucket's exemplar: a /metrics scrape of
      // an outlier latency bucket names a request whose spans are in the
      // trace.
      latency_hist.Observe(millis, p.request_id);
      infer_latency_hist.Observe(millis, p.request_id);
      if (tenant.quality != nullptr && p.batch.target.num_elements() > 0 &&
          p.batch.target.num_elements() == slice.num_elements()) {
        tenant.quality->Observe(slice.data(), p.batch.target.data(),
                                slice.num_elements());
      }
      p.promise.set_value(std::move(slice));
    }
    batch_size_hist.Observe(static_cast<double>(n));
  }
}

void ForecastService::Drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    for (auto& [name, state] : tenants_) {
      if (state->dispatcher.joinable()) state->dispatcher.join();
    }
    return;
  }
  for (auto& [name, state] : tenants_) state->cv.notify_all();
  for (auto& [name, state] : tenants_) {
    if (state->dispatcher.joinable()) state->dispatcher.join();
  }
}

int64_t ForecastService::queue_depth(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return static_cast<int64_t>(it->second->queue.size());
}

ForecastService::TenantRuntime ForecastService::runtime(
    const std::string& tenant) const {
  TenantRuntime runtime;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return runtime;
  const TenantState& state = *it->second;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    runtime.queue_depth = static_cast<int64_t>(state.queue.size());
    if (options_.rate_rps > 0.0) {
      const double burst = options_.burst > 0.0
                               ? options_.burst
                               : std::max(1.0, options_.rate_rps);
      // Same continuous-refill formula Submit applies, so the reported fill
      // reflects tokens accrued since the last admission, not just the
      // balance it left behind.
      double tokens = state.tokens;
      if (state.refill_ns == 0) {
        tokens = burst;  // No request yet: a first one finds a full bucket.
      } else {
        const double elapsed_s =
            static_cast<double>(util::MonotonicNowNanos() - state.refill_ns) /
            1e9;
        tokens = std::min(burst, tokens + elapsed_s * options_.rate_rps);
      }
      runtime.token_fill = tokens / burst;
    } else {
      runtime.token_fill = 1.0;  // Unlimited: always "full".
    }
  }
  runtime.ewma_batch_ms =
      static_cast<double>(
          state.ewma_batch_ns.load(std::memory_order_relaxed)) /
      1e6;
  runtime.quality_enabled = state.quality != nullptr;
  if (state.quality != nullptr) runtime.quality = state.quality->stats();
  return runtime;
}

}  // namespace musenet::serve
