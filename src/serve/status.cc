#include "serve/status.h"

#include <cinttypes>
#include <cstdio>

#include "obs/expo.h"
#include "obs/flight.h"

namespace musenet::serve {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double value) {
  char buf[64];
  // Round-trip precision, same as MetricsToJson, so the dashboards scraping
  // /statusz and /metrics agree bit-for-bit on shared quantities.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += buf;
}

}  // namespace

std::string StatusJson(const ModelRegistry& registry,
                       const ForecastService* service) {
  std::string out = "{\"tenants\":[";
  bool first = true;
  for (const ModelRegistry::TenantStatus& tenant :
       registry.TenantStatuses()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    AppendEscaped(&out, tenant.name);
    out += ",\"version\":";
    AppendInt(&out, tenant.version);
    out += ",\"source_path\":";
    AppendEscaped(&out, tenant.source_path);
    char hash[32];
    std::snprintf(hash, sizeof(hash), "\"%016" PRIx64 "\"",
                  tenant.content_hash);
    out += ",\"content_hash\":";
    out += hash;
    out += ",\"precision\":";
    AppendEscaped(&out, tenant.precision);
    out += ",\"swap_state\":";
    AppendEscaped(&out, tenant.swap_state);
    out += ",\"candidate_version\":";
    AppendInt(&out, tenant.candidate_version);
    if (service != nullptr) {
      const ForecastService::TenantRuntime runtime =
          service->runtime(tenant.name);
      out += ",\"queue_depth\":";
      AppendInt(&out, runtime.queue_depth);
      out += ",\"token_fill\":";
      AppendDouble(&out, runtime.token_fill);
      out += ",\"ewma_batch_ms\":";
      AppendDouble(&out, runtime.ewma_batch_ms);
      if (runtime.quality_enabled) {
        out += ",\"quality\":{\"samples\":";
        AppendInt(&out, runtime.quality.samples);
        out += ",\"cells\":";
        AppendInt(&out, runtime.quality.cells);
        out += ",\"mae\":";
        AppendDouble(&out, runtime.quality.mae);
        out += ",\"bias\":";
        AppendDouble(&out, runtime.quality.bias);
        out += ",\"cusum_max\":";
        AppendDouble(&out, runtime.quality.cusum_max);
        out += ",\"drifted_cells\":";
        AppendInt(&out, runtime.quality.drifted_cells);
        out += "}";
      }
    }
    out += "}";
  }
  out += "],\"flight_recorded\":";
  AppendInt(&out, obs::FlightRecorder::Instance().recorded());
  out += "}";
  return out;
}

bool HealthCheck(const ModelRegistry& registry, std::string* body) {
  bool ready = true;
  std::string detail;
  for (const ModelRegistry::TenantStatus& tenant :
       registry.TenantStatuses()) {
    if (tenant.version > 0) {
      detail += "ready " + tenant.name + " v" +
                std::to_string(tenant.version) + "\n";
    } else {
      detail += "unready " + tenant.name + " (no active plan)\n";
      ready = false;
    }
  }
  *body = (ready ? "ok\n" : "unavailable\n") + detail;
  return ready;
}

void RegisterServeEndpoints(obs::ExpoServer& server,
                            const ModelRegistry& registry,
                            const ForecastService* service) {
  server.Handle("/statusz",
                [&registry, service](const std::string& query) {
                  obs::ExpoServer::Response response;
                  if (query.find("dump=1") != std::string::npos) {
                    const Status dumped =
                        obs::DumpFlightRecorder("statusz_dump");
                    if (!dumped.ok()) {
                      response.status = 503;
                      response.body = dumped.ToString() + "\n";
                      return response;
                    }
                  }
                  response.content_type = "application/json";
                  response.body = StatusJson(registry, service);
                  return response;
                });
  server.Handle("/healthz", [&registry](const std::string&) {
    obs::ExpoServer::Response response;
    if (!HealthCheck(registry, &response.body)) response.status = 503;
    return response;
  });
}

}  // namespace musenet::serve
