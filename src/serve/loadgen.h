#ifndef MUSENET_SERVE_LOADGEN_H_
#define MUSENET_SERVE_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "serve/service.h"
#include "sim/city.h"

namespace musenet::serve {

/// Closed-loop diurnal load generation policy.
struct LoadGenOptions {
  double duration_s = 10.0;  ///< Wall-clock run length.
  /// Arrival rate (requests/s) when the diurnal profile is at its peak.
  double peak_rps = 50.0;
  /// Simulated days compressed into duration_s — the generator sweeps the
  /// profile over this many days, so one run sees night troughs and both
  /// commute rushes.
  int sim_days = 1;
  uint64_t seed = 17;
  /// Closed-loop back-pressure: at most this many requests in flight; the
  /// generator harvests the oldest before issuing past the cap.
  int max_outstanding = 256;
  /// Per-request deadline forwarded to Submit (<0 = service default).
  double deadline_ms = -1.0;
  /// Ignore the diurnal profile and arrive at a flat peak_rps (bench mode:
  /// "Nx sustainable load" needs a constant rate, not a daily curve).
  bool flat = false;
  /// Cooperative cancellation (SIGINT/SIGTERM drain): when set and true, the
  /// generator stops issuing and harvests what is outstanding.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of one load-generation run, classified from the request futures
/// themselves (so the report cross-checks the serve.* counters).
struct LoadGenReport {
  int64_t issued = 0;     ///< == completed + shed + timed_out + errored.
  int64_t completed = 0;  ///< Future resolved with a prediction.
  int64_t shed = 0;       ///< ShedError (admission control).
  int64_t timed_out = 0;  ///< DeadlineError (expired in queue or in flight).
  int64_t errored = 0;    ///< Anything else (should stay 0).
  double wall_s = 0.0;
  /// Completed-request latency percentiles, from the serve.latency_ms
  /// histogram delta over this run (obs::HistogramPercentile).
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate() const {
    return issued == 0 ? 0.0 : static_cast<double>(shed) / issued;
  }
};

/// Replays `city`'s diurnal demand curve as a Poisson arrival process against
/// `service` for `tenant`: the instantaneous rate is peak_rps scaled by
/// City::ProfileAt normalized to its peak over the simulated span, with
/// sim_days of profile compressed into duration_s of wall time. Requests
/// cycle through `pool` (held-out batches matching the tenant's grid).
/// Blocks until the run finishes and every issued future resolves.
LoadGenReport RunLoadGen(ForecastService& service, const std::string& tenant,
                         const std::vector<data::Batch>& pool,
                         const sim::City& city, const LoadGenOptions& options);

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_LOADGEN_H_
