#ifndef MUSENET_SERVE_SERVICE_H_
#define MUSENET_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/quality.h"
#include "serve/registry.h"
#include "tensor/tensor.h"

namespace musenet::serve {

/// Thrown into a request's future when admission control rejects it (queue
/// full, token bucket empty, or a deadline that cannot be met).
class ShedError : public std::runtime_error {
 public:
  explicit ShedError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown into a request's future when it expired in the queue: its deadline
/// passed before a dispatcher could run it.
class DeadlineError : public std::runtime_error {
 public:
  explicit DeadlineError(const std::string& what)
      : std::runtime_error(what) {}
};

/// What to do with an admitted backlog when a new request finds the tenant
/// queue full.
enum class ShedPolicy {
  /// Reject the incoming request (classic bounded-queue tail drop). Favors
  /// requests already queued — best when deadlines are loose.
  kRejectNewest,
  /// Shed the oldest queued request to make room. Favors fresh requests —
  /// best under tight deadlines, where the head of a long queue is stale
  /// anyway.
  kDropOldest,
};

/// Parses "reject" / "oldest"; kRejectNewest for anything else.
ShedPolicy ParseShedPolicy(const std::string& name);

/// Per-tenant admission and batching policy.
struct ServiceOptions {
  int max_batch = 8;        ///< Largest coalesced batch per tenant.
  double max_wait_ms = 2.0; ///< Straggler wait for an under-full batch.
  /// Bound on queued (admitted, not yet dispatched) requests per tenant.
  int max_queue = 64;
  /// Default request deadline (admission to completion); 0 = none. A
  /// Submit-time deadline overrides it.
  double deadline_ms = 0.0;
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  /// Token-bucket rate limit per tenant, requests/s; 0 = unlimited.
  double rate_rps = 0.0;
  /// Bucket capacity (burst size); <= 0 picks max(1, rate_rps).
  double burst = 0.0;
  /// Feed each completed prediction and its request's ground-truth-delayed
  /// label (Batch::target) into a per-tenant QualityMonitor, publishing
  /// serve.quality.<tenant>.* gauges. Off by default: the monitor costs one
  /// pass over the output grid per request.
  bool monitor_quality = false;
  QualityOptions quality;  ///< Monitor tuning when monitor_quality is set.
};

/// Multi-tenant forecast frontend: admission control and batched dispatch
/// over a ModelRegistry.
///
/// Each tenant gets a bounded queue, a token bucket and one dispatcher
/// thread that coalesces queued requests into batches (InferenceSession's
/// policy) and replays them on a plan snapshot acquired per batch — so a
/// hot-swap takes effect at the next batch boundary, in-flight batches drain
/// on the plan they started with, and a request admitted after Swap()
/// returns can never be served by the old plan.
///
/// Admission (Submit) sheds synchronously, cheapest checks first:
///   1. token bucket empty                        -> ShedError
///   2. queue full (kRejectNewest)                -> ShedError
///      queue full (kDropOldest)                  -> oldest queued request
///                                                   sheds, newest admitted
///   3. deadline unmeetable (now + EWMA of batch
///      service time already past it)             -> ShedError
/// Queued requests whose deadline passes before dispatch complete with
/// DeadlineError instead of occupying a batch slot.
///
/// Observability: counters serve.{requests,admitted,shed,timed_out,
/// completed} (+ per-tenant serve.<name>.{admitted,shed}), histograms
/// serve.latency_ms (admission->completion, the SLO histogram),
/// serve.queue_depth (at admission), serve.batch_size, and infer.latency_ms
/// so serving load shows up in the same histogram the engine's own session
/// feeds.
class ForecastService {
 public:
  ForecastService(ModelRegistry& registry, ServiceOptions options = {});
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Enqueues a single-grid request for `tenant`. The future resolves to the
  /// scaled [1, 2, H, W] prediction, or throws ShedError / DeadlineError /
  /// runtime_error (unknown tenant, shut down). `deadline_ms` < 0 uses the
  /// service default; 0 disables the deadline for this request.
  std::future<tensor::Tensor> Submit(const std::string& tenant,
                                     data::Batch request,
                                     double deadline_ms = -1.0);

  /// Stops admitting, runs every tenant queue dry (in-flight and queued
  /// requests complete normally; expired ones time out), joins the
  /// dispatchers. Idempotent; the destructor calls it.
  void Drain();

  ModelRegistry& registry() { return registry_; }
  const ServiceOptions& options() const { return options_; }

  /// Queued (admitted, undispatched) requests for `tenant` right now.
  int64_t queue_depth(const std::string& tenant) const;

  /// Point-in-time runtime state of one tenant, for /statusz.
  struct TenantRuntime {
    int64_t queue_depth = 0;      ///< Admitted, undispatched requests.
    double token_fill = 0.0;      ///< Token-bucket fill, 1.0 = full burst.
    double ewma_batch_ms = 0.0;   ///< EWMA batch service time.
    bool quality_enabled = false;
    QualityMonitor::Stats quality;  ///< Zero when quality_enabled is false.
  };
  /// Runtime state of `tenant`; all-defaults for an unknown tenant.
  TenantRuntime runtime(const std::string& tenant) const;

 private:
  struct Pending {
    data::Batch batch;
    std::promise<tensor::Tensor> promise;
    int64_t request_id = 0;   ///< Service-unique trace-correlation id.
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  ///< 0 = none.
  };

  struct TenantState {
    std::string name;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending> queue;
    // Token bucket, guarded by mu. Tokens refill continuously at rate_rps.
    double tokens = 0.0;
    int64_t refill_ns = 0;
    /// EWMA of batch service time, for deadline-aware admission. Atomic so
    /// Submit reads it without taking the dispatch-side lock.
    std::atomic<int64_t> ewma_batch_ns{0};
    /// Forecast-quality monitor (nullptr unless options.monitor_quality).
    std::unique_ptr<QualityMonitor> quality;
    std::thread dispatcher;
  };

  void DispatchLoop(TenantState& tenant);

  /// Completes `pending` with DeadlineError and counts it.
  void TimeOut(Pending&& pending);

  /// Completes `pending` with ShedError and counts it (tenant-attributed).
  void Shed(TenantState& tenant, Pending&& pending, const char* reason);

  ModelRegistry& registry_;
  ServiceOptions options_;
  std::atomic<bool> draining_{false};
  /// Mints Pending::request_id. Service-scoped (not per-tenant) so a rid
  /// names exactly one request across every tenant's spans and exemplars.
  std::atomic<int64_t> next_request_id_{1};
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_SERVICE_H_
