#ifndef MUSENET_SERVE_WATCHER_H_
#define MUSENET_SERVE_WATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "serve/registry.h"

namespace musenet::serve {

/// Polls every registered tenant's container path and hot-swaps on change.
///
/// Change detection is by content hash (FNV-1a of the container bytes), not
/// mtime — a rewrite with identical bytes is a no-op, and a half-written
/// container that fails shadow validation is NOT retried until its bytes
/// change again (the hash of the rejected content is remembered), so a bad
/// publish doesn't hammer the swap path every poll.
class SwapWatcher {
 public:
  /// Starts the poll thread. `interval_ms` is the sleep between sweeps.
  SwapWatcher(ModelRegistry& registry, double interval_ms = 500.0);
  ~SwapWatcher();

  SwapWatcher(const SwapWatcher&) = delete;
  SwapWatcher& operator=(const SwapWatcher&) = delete;

  /// Stops the poll thread. Idempotent; the destructor calls it.
  void Stop();

  /// One synchronous sweep over all tenants (also what the poll thread runs
  /// each interval). Returns the number of swaps committed. Exposed so tests
  /// and the CLI drain path can force a deterministic check.
  int PollOnce();

  /// Swaps committed / candidates rejected since construction.
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  int64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  ModelRegistry& registry_;
  const double interval_ms_;
  /// Last content hash acted on per tenant (served or rejected). Only the
  /// poll path touches it after construction.
  std::map<std::string, uint64_t> last_seen_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;  ///< Guarded by mu_.
  std::atomic<int64_t> swaps_{0};
  std::atomic<int64_t> rejects_{0};
  std::thread poller_;
};

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_WATCHER_H_
