#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace musenet::serve {

namespace {

struct InFlight {
  std::future<tensor::Tensor> future;
};

void Harvest(InFlight&& request, LoadGenReport* report) {
  try {
    request.future.get();
    report->completed++;
  } catch (const ShedError&) {
    report->shed++;
  } catch (const DeadlineError&) {
    report->timed_out++;
  } catch (...) {
    report->errored++;
  }
}

/// serve.latency_ms delta between two snapshots, as a histogram.
obs::MetricsSnapshot::HistogramData LatencyDelta(
    const obs::MetricsSnapshot& before, const obs::MetricsSnapshot& after) {
  obs::MetricsSnapshot::HistogramData delta;
  auto it = after.histograms.find("serve.latency_ms");
  if (it == after.histograms.end()) return delta;
  delta = it->second;
  auto prev = before.histograms.find("serve.latency_ms");
  if (prev != before.histograms.end() &&
      prev->second.counts.size() == delta.counts.size()) {
    for (size_t i = 0; i < delta.counts.size(); ++i) {
      delta.counts[i] -= prev->second.counts[i];
    }
    delta.total -= prev->second.total;
    delta.sum -= prev->second.sum;
  }
  return delta;
}

}  // namespace

LoadGenReport RunLoadGen(ForecastService& service, const std::string& tenant,
                         const std::vector<data::Batch>& pool,
                         const sim::City& city,
                         const LoadGenOptions& options) {
  MUSE_CHECK(!pool.empty()) << "load generator needs at least one probe batch";
  MUSE_CHECK(options.duration_s > 0.0) << "duration_s must be > 0";
  MUSE_CHECK(options.peak_rps > 0.0) << "peak_rps must be > 0";
  MUSE_CHECK(options.sim_days >= 1) << "sim_days must be >= 1";

  // Normalize the profile so peak_rps is hit exactly at the diurnal maximum.
  const int64_t sim_intervals = static_cast<int64_t>(options.sim_days) *
                                city.config().intervals_per_day;
  double peak_profile = 0.0;
  for (int64_t t = 0; t < sim_intervals; ++t) {
    peak_profile = std::max(peak_profile, city.ProfileAt(t));
  }
  MUSE_CHECK(peak_profile > 0.0) << "diurnal profile is identically zero";

  Rng rng(options.seed);
  LoadGenReport report;
  const obs::MetricsSnapshot before = obs::Registry::Instance().Snapshot();
  const int64_t start_ns = util::MonotonicNowNanos();
  const int64_t end_ns =
      start_ns + static_cast<int64_t>(options.duration_s * 1e9);

  std::deque<InFlight> outstanding;
  size_t next_probe = 0;
  // Arrivals follow a schedule clock, not the wall clock: each Poisson gap
  // advances next_arrival_ns, and the generator only sleeps when the
  // schedule is in the future. When issuing falls behind (service slower
  // than the offered rate), it catches up in a burst instead of silently
  // degrading the rate — otherwise sleep overhead would cap the offered
  // load below what an "8x sustainable" overload run needs.
  int64_t next_arrival_ns = start_ns;
  for (;;) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      break;
    }
    // Schedule position -> simulated interval -> instantaneous rate.
    const double progress = static_cast<double>(next_arrival_ns - start_ns) /
                            (options.duration_s * 1e9);
    const int64_t sim_t = std::min(
        sim_intervals - 1,
        static_cast<int64_t>(progress * static_cast<double>(sim_intervals)));
    const double rate =
        options.flat ? options.peak_rps
                     : options.peak_rps * city.ProfileAt(sim_t) / peak_profile;

    // Poisson arrivals: exponential inter-arrival at the current rate. The
    // night trough can push the gap past the run end; clamp so the run
    // ends on time.
    const double rate_floor = std::max(rate, options.peak_rps * 1e-3);
    const double gap_s = -std::log(1.0 - rng.Uniform()) / rate_floor;
    next_arrival_ns += static_cast<int64_t>(std::min(gap_s, 1.0) * 1e9);
    if (next_arrival_ns >= end_ns) break;
    const int64_t ahead_ns = next_arrival_ns - util::MonotonicNowNanos();
    if (ahead_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ahead_ns));
    }

    // Closed loop: cap in-flight requests, harvesting the oldest first.
    while (static_cast<int>(outstanding.size()) >= options.max_outstanding) {
      Harvest(std::move(outstanding.front()), &report);
      outstanding.pop_front();
    }
    // Opportunistically drain already-resolved futures so the deque stays
    // small under light load.
    while (!outstanding.empty() &&
           outstanding.front().future.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      Harvest(std::move(outstanding.front()), &report);
      outstanding.pop_front();
    }

    const data::Batch& probe = pool[next_probe];
    next_probe = (next_probe + 1) % pool.size();
    outstanding.push_back(
        {service.Submit(tenant, probe, options.deadline_ms)});
    report.issued++;
  }

  while (!outstanding.empty()) {
    Harvest(std::move(outstanding.front()), &report);
    outstanding.pop_front();
  }
  report.wall_s =
      static_cast<double>(util::MonotonicNowNanos() - start_ns) / 1e9;

  const obs::MetricsSnapshot after = obs::Registry::Instance().Snapshot();
  const auto latency = LatencyDelta(before, after);
  // HistogramPercentile reports NaN for "no data"; a run that completed
  // nothing reports 0 here so the report (and the JSON the bench writes
  // from it) stays well-formed.
  report.p50_ms =
      latency.total > 0 ? obs::HistogramPercentile(latency, 0.50) : 0.0;
  report.p99_ms =
      latency.total > 0 ? obs::HistogramPercentile(latency, 0.99) : 0.0;
  return report;
}

}  // namespace musenet::serve
