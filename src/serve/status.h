#ifndef MUSENET_SERVE_STATUS_H_
#define MUSENET_SERVE_STATUS_H_

#include <string>

#include "serve/registry.h"
#include "serve/service.h"

namespace musenet::obs {
class ExpoServer;
}  // namespace musenet::obs

namespace musenet::serve {

/// JSON body of /statusz: one object per tenant (sorted by name) with the
/// active plan's identity (version, source, content hash, precision), the
/// in-flight swap state, and — when `service` is non-null — the runtime
/// signals (queue depth, token-bucket fill, EWMA batch service time,
/// forecast-quality stats). Plan fields are read through one atomic plan
/// snapshot per tenant, so they are internally consistent even while a
/// swap commits.
std::string StatusJson(const ModelRegistry& registry,
                       const ForecastService* service);

/// Liveness + readiness: true (body "ok\n" plus one "ready <tenant> v<N>"
/// line per tenant) when every registered tenant has an active plan; false
/// with the unready tenants named otherwise. A registry with no tenants is
/// ready — the process is alive and serving nothing yet.
bool HealthCheck(const ModelRegistry& registry, std::string* body);

/// Registers the serving endpoints on an exposition server:
///   /statusz  — StatusJson; "?dump=1" also dumps the flight recorder to
///               the configured post-mortem path (503 detail on failure).
///   /healthz  — HealthCheck; 200 when ready, 503 otherwise (overrides the
///               obs-layer liveness-only default).
/// `registry` (and `service`, when non-null) must outlive the server.
void RegisterServeEndpoints(obs::ExpoServer& server,
                            const ModelRegistry& registry,
                            const ForecastService* service);

}  // namespace musenet::serve

#endif  // MUSENET_SERVE_STATUS_H_
