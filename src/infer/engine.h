#ifndef MUSENET_INFER_ENGINE_H_
#define MUSENET_INFER_ENGINE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/forecaster.h"
#include "infer/plan.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace musenet::obs {
class Counter;
}  // namespace musenet::obs

namespace musenet::infer {

/// Graph-free inference engine over a forecaster.
///
/// The first Predict at a given batch size traces the model's eval-mode
/// forward once (PlanForward), compiles it to a static Plan, and sizes a
/// private arena for it. Every later run at that batch size replays the flat
/// step list under a forbid-mode autograd::NoGradGuard — building a graph
/// node inside the engine is a hard error — and performs zero heap
/// allocations (see PredictInto). Weight pointers are re-resolved from the
/// traced parameter nodes on every run, so optimizer steps and
/// LoadStateDict take effect without replanning; structural changes require
/// InvalidatePlans().
///
/// Models whose PlanForward returns an empty Variable (HistoricalAverage) or
/// whose graph contains an op outside the planner's kind set fall back to
/// the model's own Predict, so the engine is safe to wrap around any
/// Forecaster.
///
/// Batched requests scale across threads by sharding, not by intra-op
/// parallelism: at serving tensor sizes a per-op ParallelFor dispatch costs
/// more than the op itself, so a batch of n is split into `lanes`
/// equal shards (lanes = largest divisor of n ≤ the active pool's thread
/// count), each lane replaying a shard-sized plan sequentially on its own
/// private arena — one pool dispatch per inference instead of one per op.
/// Sharding assumes the eval forward treats axis 0 as a pure batch axis
/// (true for every model here: eval-mode BN uses running stats and no op
/// reduces across samples). The assumption is not trusted: the first sharded
/// run at a batch size is validated against the model's own Predict at plan
/// build time, and on mismatch the engine permanently falls back to the
/// unsharded full-batch plan for that size.
class Engine {
 public:
  explicit Engine(eval::Forecaster& model);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Planned prediction for `batch`; plans lazily on first use per batch
  /// size. Falls back to `model.Predict` when the model is not plannable.
  tensor::Tensor Predict(const data::Batch& batch);

  /// Zero-allocation planned prediction into a caller-owned tensor. Requires
  /// a warm plan for this batch size (a prior Predict) and `out` already
  /// materialized at the plan's output shape; fails with FailedPrecondition
  /// otherwise instead of silently allocating.
  Status PredictInto(const data::Batch& batch, tensor::Tensor* out);

  /// Drops all compiled plans (e.g. after structural model changes or
  /// further training with a different architecture). Plans rebuild lazily.
  void InvalidatePlans();

  /// Plan compiled for `batch_size`, or nullptr (not yet built / fallback).
  const Plan* plan_for(int64_t batch_size) const;

  /// Number of shard lanes serving `batch_size`, or 0 when that size runs
  /// unsharded (full-batch plan, fallback, or not yet built).
  int64_t shard_lanes_for(int64_t batch_size) const;

  /// True when the last Predict at this batch size used the model fallback.
  bool fallback_for(int64_t batch_size) const;

 private:
  struct PlanInstance {
    Plan plan;
    std::vector<float> arena;
    std::vector<float*> ptrs;  ///< Resolved per run; sized to plan.buffers.
  };

  /// Independent replay lanes for one batch size: lane i computes samples
  /// [i·shard_size, (i+1)·shard_size) on its own plan instance and arena.
  struct ShardSet {
    int64_t shard_size = 0;
    tensor::Shape out_shape;  ///< Full-batch prediction shape.
    std::vector<PlanInstance> lanes;
  };

  /// Traces + compiles a plan for `batch` into `inst`. False when the model
  /// is unplannable at this shape (caller decides how to fall back).
  bool BuildInstance(const data::Batch& batch, PlanInstance* inst);

  /// Returns the instance for the batch's size, building it on first use.
  /// nullptr means "use the model fallback" (also cached).
  PlanInstance* GetOrBuild(const data::Batch& batch);

  /// Returns the shard set for the batch's size, building (and validating)
  /// it on first use. nullptr means "run unsharded": single-threaded pool,
  /// indivisible batch, unplannable model, or failed validation.
  ShardSet* GetOrBuildShards(const data::Batch& batch);

  /// Replays the step list into `out` (the plan's output storage).
  void Run(PlanInstance& inst, const data::Batch& batch, float* out);

  /// Core replay: refreshes the pointer table from `inputs` (per-sample
  /// base pointers for closeness/period/trend) and executes the steps.
  void RunWithInputs(PlanInstance& inst, const float* const inputs[3],
                     float* out);

  /// Replays every lane of `set` across the active pool (one dispatch).
  void RunSharded(ShardSet& set, const data::Batch& batch, float* out);

  /// Largest divisor of `batch_size` that is ≤ `threads` (1 = don't shard).
  static int64_t PickLanes(int64_t batch_size, int64_t threads);

  eval::Forecaster& model_;
  mutable std::mutex mu_;
  std::map<int64_t, PlanInstance> plans_;
  std::map<int64_t, ShardSet> shard_sets_;
  std::map<int64_t, bool> fallback_;  ///< Batch sizes that are unplannable.
  std::map<int64_t, bool> shard_fallback_;  ///< Failed shard validation.
  obs::Counter* runs_;                ///< infer.engine.runs
  obs::Counter* sharded_runs_;        ///< infer.engine.sharded_runs
  obs::Counter* fallbacks_;           ///< infer.engine.fallbacks
};

/// Drop-in Forecaster that routes Predict through an Engine while delegating
/// everything else to the wrapped model. Train invalidates compiled plans
/// (training may be preceded by architecture-affecting setup); weight-only
/// updates would not have required it, but retraining is rare and replanning
/// is one forward pass.
class EngineForecaster : public eval::Forecaster {
 public:
  explicit EngineForecaster(eval::Forecaster& inner)
      : inner_(inner), engine_(inner) {}

  std::string name() const override { return inner_.name(); }

  void Train(const data::TrafficDataset& dataset,
             const eval::TrainConfig& config) override {
    inner_.Train(dataset, config);
    engine_.InvalidatePlans();
  }

  tensor::Tensor Predict(const data::Batch& batch) override {
    return engine_.Predict(batch);
  }

  autograd::Variable PlanForward(const data::Batch& batch) override {
    return inner_.PlanForward(batch);
  }

  Engine& engine() { return engine_; }

 private:
  eval::Forecaster& inner_;
  Engine engine_;
};

}  // namespace musenet::infer

#endif  // MUSENET_INFER_ENGINE_H_
