#ifndef MUSENET_INFER_ENGINE_H_
#define MUSENET_INFER_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/forecaster.h"
#include "infer/plan.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace musenet::obs {
class Counter;
}  // namespace musenet::obs

namespace musenet::infer {

/// Graph-free inference engine over a forecaster.
///
/// The first Predict at a given batch size traces the model's eval-mode
/// forward once (PlanForward), compiles it to a static Plan, and sizes a
/// private arena for it. Every later run at that batch size replays the flat
/// step list under a forbid-mode autograd::NoGradGuard — building a graph
/// node inside the engine is a hard error — and performs zero heap
/// allocations (see PredictInto). Weight pointers are re-resolved from the
/// traced parameter nodes on every run, so optimizer steps and
/// LoadStateDict take effect without replanning; structural changes require
/// InvalidatePlans().
///
/// Models whose PlanForward returns an empty Variable (HistoricalAverage) or
/// whose graph contains an op outside the planner's kind set fall back to
/// the model's own Predict, so the engine is safe to wrap around any
/// Forecaster.
///
/// Batched requests scale across threads by sharding, not by intra-op
/// parallelism: at serving tensor sizes a per-op ParallelFor dispatch costs
/// more than the op itself, so a batch of n is split into
/// lanes = min(n, threads) near-equal shards (sizes differ by at most one —
/// the first n mod lanes lanes take the extra sample, so prime batch sizes
/// still fan out), each lane replaying a shard-sized plan sequentially on
/// its own private arena — one pool dispatch per inference instead of one
/// per op. Sharding assumes the eval forward treats axis 0 as a pure batch
/// axis (true for every model here: eval-mode BN uses running stats and no
/// op reduces across samples). The assumption is not trusted: the first
/// sharded run at a batch size is validated at plan build time (against the
/// model's own Predict, or against the engine's full-batch plan when
/// specialization is active, since specialized numerics legitimately differ
/// from fp32), and on mismatch the engine permanently falls back to the
/// unsharded full-batch plan for that size.
///
/// Plan-time specialization (EngineOptions::specialize) runs SpecializePlan
/// on every freshly built plan — BN/affine chains folded into weights,
/// weights repacked into GEMM tiles at the requested precision — then gates
/// adoption on max |specialized − base| over the planning batch. A plan
/// that fails the gate is discarded and the base fp32 plan serves instead
/// (counter infer.engine.spec_rejected). Specialization bakes the weights
/// into the plan: unlike base plans, in-place weight updates are NOT picked
/// up until InvalidatePlans() (EngineForecaster::Train does this).
struct EngineOptions {
  /// Run SpecializePlan on every built plan and adopt it when it passes the
  /// accuracy gate.
  bool specialize = false;
  /// Weight storage precision of specialized plans.
  PrecisionMode precision = PrecisionMode::kFp32;
  /// Accuracy gate: max allowed |specialized − base| element delta on the
  /// planning batch. Negative selects the per-precision default
  /// (fp32 1e-4, bf16 5e-2, int8 2.5e-1 — scaled-output units).
  float max_abs_delta = -1.0f;
};

/// Per-precision default for the specialization accuracy gate (scaled
/// prediction units). Shared by the engine's plan-adoption check and the
/// serving registry's shadow validation, so a hot-swapped plan is held to
/// the same budget as a locally built one.
float DefaultDeltaGate(PrecisionMode precision);

class Engine {
 public:
  explicit Engine(eval::Forecaster& model, EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Planned prediction for `batch`; plans lazily on first use per batch
  /// size. Falls back to `model.Predict` when the model is not plannable.
  tensor::Tensor Predict(const data::Batch& batch);

  /// Zero-allocation planned prediction into a caller-owned tensor. Requires
  /// a warm plan for this batch size (a prior Predict) and `out` already
  /// materialized at the plan's output shape; fails with FailedPrecondition
  /// otherwise instead of silently allocating.
  Status PredictInto(const data::Batch& batch, tensor::Tensor* out);

  /// Drops all compiled plans (e.g. after structural model changes or
  /// further training with a different architecture). Plans rebuild lazily.
  void InvalidatePlans();

  /// Plan compiled for `batch_size`, or nullptr (not yet built / fallback).
  const Plan* plan_for(int64_t batch_size) const;

  /// Number of shard lanes serving `batch_size`, or 0 when that size runs
  /// unsharded (full-batch plan, fallback, or not yet built).
  int64_t shard_lanes_for(int64_t batch_size) const;

  /// Per-lane shard sizes for `batch_size` (empty when unsharded). Sizes
  /// are near-equal (differ by at most one) and sum to the batch size.
  std::vector<int64_t> shard_sizes_for(int64_t batch_size) const;

  /// True when the last Predict at this batch size used the model fallback.
  bool fallback_for(int64_t batch_size) const;

  /// True when the plan serving `batch_size` is a specialized plan that
  /// passed the accuracy gate (for shards: the first-built lane).
  bool spec_active_for(int64_t batch_size) const;

  /// Accuracy-gate delta measured for `batch_size` at plan build
  /// (max |specialized − base| over the planning batch), or -1 when no
  /// specialization was attempted at that size.
  float spec_delta_for(int64_t batch_size) const;

  /// Trace-correlation id attached as a "rid" arg to the infer.run /
  /// infer.run.sharded spans of subsequent Predicts (-1 = none, the
  /// default). Set by the serving dispatcher before each batch replay; one
  /// dispatcher drives a tenant's engine, so a plain atomic is enough and
  /// the replay path stays zero-alloc (the rid is an int64 span arg — no
  /// formatting, nothing per-lane beyond a relaxed load).
  void set_trace_request_id(int64_t rid) {
    trace_rid_.store(rid, std::memory_order_relaxed);
  }

 private:
  struct PlanInstance {
    Plan plan;
    std::vector<float> arena;
    std::vector<float*> ptrs;  ///< Resolved per run; sized to plan.buffers.
  };

  /// Independent replay lanes for one batch size: lane i computes the
  /// samples [offsets[i], offsets[i] + sizes[i]) on its own plan instance
  /// and arena.
  struct ShardSet {
    std::vector<int64_t> sizes;    ///< Near-equal per-lane batch sizes.
    std::vector<int64_t> offsets;  ///< Sample offset of each lane.
    tensor::Shape out_shape;       ///< Full-batch prediction shape.
    std::vector<PlanInstance> lanes;
  };

  /// Traces + compiles a plan for `batch` into `inst` (specializing it when
  /// options_.specialize and the accuracy gate passes). False when the
  /// model is unplannable at this shape (caller decides how to fall back).
  bool BuildInstance(const data::Batch& batch, PlanInstance* inst);

  /// Sizes inst->arena and resolves the build-time-stable pointers (arena,
  /// constants) for inst->plan.
  static void FinalizeInstance(PlanInstance* inst);

  /// Returns the instance for the batch's size, building it on first use.
  /// nullptr means "use the model fallback" (also cached).
  PlanInstance* GetOrBuild(const data::Batch& batch);

  /// Returns the shard set for the batch's size, building (and validating)
  /// it on first use. nullptr means "run unsharded": single-threaded pool,
  /// indivisible batch, unplannable model, or failed validation.
  ShardSet* GetOrBuildShards(const data::Batch& batch);

  /// Replays the step list into `out` (the plan's output storage).
  void Run(PlanInstance& inst, const data::Batch& batch, float* out);

  /// Core replay: refreshes the pointer table from `inputs` (per-sample
  /// base pointers for closeness/period/trend) and executes the steps.
  void RunWithInputs(PlanInstance& inst, const float* const inputs[3],
                     float* out);

  /// Replays every lane of `set` across the active pool (one dispatch).
  void RunSharded(ShardSet& set, const data::Batch& batch, float* out);

  /// Near-equal lane sizes: min(batch_size, threads) lanes, the first
  /// batch_size mod lanes of them one sample larger. Empty = don't shard.
  static std::vector<int64_t> PickLaneSizes(int64_t batch_size,
                                            int64_t threads);

  eval::Forecaster& model_;
  EngineOptions options_;
  mutable std::mutex mu_;
  std::map<int64_t, PlanInstance> plans_;
  std::map<int64_t, ShardSet> shard_sets_;
  std::map<int64_t, bool> fallback_;  ///< Batch sizes that are unplannable.
  std::map<int64_t, bool> shard_fallback_;  ///< Failed shard validation.
  std::map<int64_t, bool> spec_active_;   ///< Specialized plan adopted.
  std::map<int64_t, float> spec_delta_;   ///< Gate delta per batch size.
  std::atomic<int64_t> trace_rid_{-1};  ///< See set_trace_request_id.
  obs::Counter* runs_;                ///< infer.engine.runs
  obs::Counter* sharded_runs_;        ///< infer.engine.sharded_runs
  obs::Counter* fallbacks_;           ///< infer.engine.fallbacks
  obs::Counter* spec_builds_;         ///< infer.engine.spec_builds
  obs::Counter* spec_rejects_;        ///< infer.engine.spec_rejected
};

/// Drop-in Forecaster that routes Predict through an Engine while delegating
/// everything else to the wrapped model. Train invalidates compiled plans
/// (training may be preceded by architecture-affecting setup); weight-only
/// updates would not have required it, but retraining is rare and replanning
/// is one forward pass.
class EngineForecaster : public eval::Forecaster {
 public:
  explicit EngineForecaster(eval::Forecaster& inner,
                            EngineOptions options = {})
      : inner_(inner), engine_(inner, options) {}

  std::string name() const override { return inner_.name(); }

  void Train(const data::TrafficDataset& dataset,
             const eval::TrainConfig& config) override {
    inner_.Train(dataset, config);
    engine_.InvalidatePlans();
  }

  tensor::Tensor Predict(const data::Batch& batch) override {
    return engine_.Predict(batch);
  }

  autograd::Variable PlanForward(const data::Batch& batch) override {
    return inner_.PlanForward(batch);
  }

  Engine& engine() { return engine_; }

 private:
  eval::Forecaster& inner_;
  Engine engine_;
};

}  // namespace musenet::infer

#endif  // MUSENET_INFER_ENGINE_H_
