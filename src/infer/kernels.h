#ifndef MUSENET_INFER_KERNELS_H_
#define MUSENET_INFER_KERNELS_H_

#include "infer/plan.h"

namespace musenet::infer {

/// Executes one plan step against resolved buffer pointers: `bufs[i]` is the
/// storage of plan buffer `i` (arena slot, weight data, batch input or baked
/// constant — aliases already resolved to their base). Dispatches into the
/// same tiled GEMM / im2col / fused kernels the autograd ops use, with
/// identical accumulation orders, so planned outputs match the traced
/// forward bit for bit. Steps specialized by SpecializePlan (spec !=
/// SpecKind::kNone) replay their pre-tiled weight from
/// `plan.packed_weights[step.packed]` instead — same ascending-k
/// accumulation through the same micro-kernel, with int8/bf16 payloads
/// dequantized into fixed stack buffers. Performs no heap allocation.
void RunStep(const Step& step, float* const* bufs, const Plan& plan);

/// Arena scratch elements a SpecKind::kConvDirect step needs: a shared
/// dequantized-weight region (non-fp32 precisions only) followed by one
/// zero-padded input image per sample. SpecializePlan sizes the step's
/// scratch buffer with this; RunStep carves the same layout back out.
int64_t DirectConvScratchElems(const StepGeom& geom, int64_t pad,
                               PrecisionMode precision);

}  // namespace musenet::infer

#endif  // MUSENET_INFER_KERNELS_H_
