#ifndef MUSENET_INFER_KERNELS_H_
#define MUSENET_INFER_KERNELS_H_

#include "infer/plan.h"

namespace musenet::infer {

/// Executes one plan step against resolved buffer pointers: `bufs[i]` is the
/// storage of plan buffer `i` (arena slot, weight data, batch input or baked
/// constant — aliases already resolved to their base). Dispatches into the
/// same tiled GEMM / im2col / fused kernels the autograd ops use, with
/// identical accumulation orders, so planned outputs match the traced
/// forward bit for bit. Performs no heap allocation.
void RunStep(const Step& step, float* const* bufs);

}  // namespace musenet::infer

#endif  // MUSENET_INFER_KERNELS_H_
