#ifndef MUSENET_INFER_PLAN_H_
#define MUSENET_INFER_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/op_kind.h"
#include "autograd/variable.h"
#include "data/dataset.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace musenet::infer {

// Static execution plan for one forecaster at one batch size.
//
// BuildPlan walks the autograd graph that PlanForward traced (eval mode,
// stochastic=false), topologically sorts the ops reachable from the
// prediction node — which by construction prunes the reconstruction decoders
// and regularizer heads — and compiles them to a flat step list over a
// preplanned float arena. Buffer lifetimes are exact (birth at the producing
// step, death after the last consuming step), so the greedy first-fit layout
// reuses arena regions aggressively; steady-state execution (engine.h) then
// runs with zero heap allocations.

/// Where a plan buffer's bytes live at execution time.
enum class BufLoc : uint8_t {
  kArena,     ///< Offset into the preplanned arena (op outputs, scratch).
  kWeight,    ///< A parameter node; pointer re-resolved on every run.
  kInput,     ///< One of the batch tensors (closeness/period/trend).
  kConstant,  ///< Value baked at plan time (eval BN stats, shaped zeros).
  kAlias,     ///< Same storage as another buffer (Reshape).
};

struct PlanBuffer {
  BufLoc loc = BufLoc::kArena;
  std::vector<int64_t> dims;
  int64_t elems = 0;
  int64_t arena_offset = -1;  ///< kArena only.
  /// kWeight: the parameter node. Holding the shared_ptr keeps it alive and
  /// lets every run re-read `node->value.data()`, so in-place optimizer
  /// updates and LoadStateDict stay visible without replanning.
  std::shared_ptr<autograd::Node> weight;
  int input_index = -1;        ///< kInput: 0=closeness, 1=period, 2=trend.
  std::vector<float> constant; ///< kConstant: plan-owned copy.
  int32_t alias_of = -1;       ///< kAlias: index of the storage owner.
};

/// Precomputed geometry for one step, so RunStep does no shape math.
/// Which fields are meaningful depends on the step's OpKind.
struct StepGeom {
  int64_t n = 0;      ///< Output element count (elementwise, unary).
  int64_t outer = 0;  ///< outer × mid × inner decomposition (sum/concat/
  int64_t mid = 0;    ///< slice); `mid` is the axis extent.
  int64_t inner = 0;
  int64_t m = 0, k = 0, cols = 0;  ///< GEMM dims (cols = n of the GEMM).
  int64_t batch = 0;               ///< Batched matmul / conv / pools.
  int64_t cin = 0, h = 0, w = 0;   ///< Conv input planes.
  int64_t cout = 0, kh = 0, kw = 0, oh = 0, ow = 0;
  int64_t window = 0;              ///< Pooling window.
  int64_t channels = 1, bias_inner = 1;  ///< BiasAct layout.
  int64_t col_elems = 0;   ///< Conv: per-sample im2col matrix size.
  int64_t pack_elems = 0;  ///< Per-sample GEMM pack scratch size.
  /// Broadcast binary: fast-path flags and right-aligned stride tables.
  bool same_shape = false;
  bool a_scalar = false;
  bool b_scalar = false;
  int rank = 0;
  int64_t dims[8] = {0};
  int64_t sa[8] = {0};
  int64_t sb[8] = {0};
  std::vector<int64_t> aux;  ///< Concat: per-input extents along the axis.
};

/// Numeric format of a specialized plan's repacked weights. Activations and
/// accumulation stay fp32 in every mode — reduced precision applies to the
/// stored weights only (dequantized panel-by-panel into the fp32
/// micro-kernel), which preserves the engine's determinism contract.
enum class PrecisionMode : uint8_t {
  kFp32,  ///< Repacked tiles, full precision.
  kInt8,  ///< Symmetric per-output-channel int8 weights + fp32 scales.
  kBf16,  ///< Round-to-nearest-even bf16 weights.
};

/// How a step was specialized (SpecializePlan); kNone replays the generic
/// kernel for its OpKind.
enum class SpecKind : uint8_t {
  kNone,
  kConvPacked,   ///< Conv2d with pre-tiled weights + folded bias/act.
  kConvDirect,   ///< Stride-1 Conv2d, im2col-free direct kernel.
  kDensePacked,  ///< MatMul with pre-tiled weights + folded bias/act.
};

/// One plan-time repacked (and optionally quantized) weight. Exactly one of
/// f32 / bf16 / i8 is populated, matching `precision`; the payload is the
/// GEMM tile layout (GemmPackATiles for conv — weight is the A operand of
/// the im2col GEMM — GemmPackBTiles for dense), with BN/affine chains
/// already folded in. Stride-1 convs use the direct layout instead
/// (`direct` set): `wd[kk * cout + r]` with kk = (ci·kh + ky)·kw + kx, the
/// same k order the im2col GEMM reduces in.
struct PackedWeight {
  PrecisionMode precision = PrecisionMode::kFp32;
  bool direct = false;  ///< Direct-conv layout instead of GEMM tiles.
  std::vector<float> f32;
  std::vector<uint16_t> bf16;
  std::vector<int8_t> i8;
  /// kInt8: per-output-channel dequant scales, padded to the packed extent
  /// (conv: ceil(cout/mr)·mr, dense: ceil(n/nr)·nr; pad lanes get 1).
  std::vector<float> scales;
  std::vector<float> bias;  ///< Folded per-channel shift (β − μ·γ/σ, +bias).
  bool has_epilogue = false;  ///< Any nonzero bias or non-identity act.
};

struct Step {
  autograd::OpKind kind = autograd::OpKind::kLeaf;
  autograd::OpAttrs attrs;
  const char* op_name = "";
  std::vector<int32_t> in;  ///< Buffer indices of the inputs.
  int32_t out = -1;         ///< Buffer index of the output.
  int32_t scratch = -1;     ///< Arena scratch buffer, or -1.
  SpecKind spec = SpecKind::kNone;
  int32_t packed = -1;    ///< Index into Plan::packed_weights (spec only).
  int32_t spec_act = 0;   ///< tensor::ActKind of the folded epilogue.
  float spec_alpha = 0;   ///< LeakyRelu slope of the folded epilogue.
  StepGeom geom;
};

struct Plan {
  std::vector<PlanBuffer> buffers;
  std::vector<Step> steps;
  std::vector<PackedWeight> packed_weights;  ///< SpecializePlan outputs.
  int32_t root = -1;          ///< Buffer holding the prediction.
  int64_t arena_elems = 0;    ///< Total arena size in floats.
  int64_t batch_size = 0;     ///< Batch size the plan was compiled for.
  tensor::Shape out_shape;    ///< Prediction shape [B, 2, H, W].
  int64_t flops = 0;          ///< GEMM/conv flops per run (for telemetry).
  PrecisionMode precision = PrecisionMode::kFp32;
  bool specialized = false;   ///< Any step rewritten by SpecializePlan.
};

/// Compiles the graph under `root` (a PlanForward result on `batch`) into a
/// Plan. `batch` identifies the input leaves by shape + content match and
/// fixes the plan's batch size. Fails with InvalidArgument on ops outside
/// the planner's closed kind set (callers then fall back to Predict).
Result<Plan> BuildPlan(const autograd::Variable& root,
                       const data::Batch& batch);

/// Recomputes arena buffer lifetimes from the current step list and lays the
/// arena out with the greedy first-fit allocator, updating every kArena
/// buffer's arena_offset and plan->arena_elems. BuildPlan calls this once;
/// SpecializePlan calls it again after rewriting steps (folded-away buffers
/// get offset 0 and cost no arena space, since no live step touches them).
void LayoutArena(Plan* plan);

}  // namespace musenet::infer

#endif  // MUSENET_INFER_PLAN_H_
