#ifndef MUSENET_INFER_PLAN_H_
#define MUSENET_INFER_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/op_kind.h"
#include "autograd/variable.h"
#include "data/dataset.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace musenet::infer {

// Static execution plan for one forecaster at one batch size.
//
// BuildPlan walks the autograd graph that PlanForward traced (eval mode,
// stochastic=false), topologically sorts the ops reachable from the
// prediction node — which by construction prunes the reconstruction decoders
// and regularizer heads — and compiles them to a flat step list over a
// preplanned float arena. Buffer lifetimes are exact (birth at the producing
// step, death after the last consuming step), so the greedy first-fit layout
// reuses arena regions aggressively; steady-state execution (engine.h) then
// runs with zero heap allocations.

/// Where a plan buffer's bytes live at execution time.
enum class BufLoc : uint8_t {
  kArena,     ///< Offset into the preplanned arena (op outputs, scratch).
  kWeight,    ///< A parameter node; pointer re-resolved on every run.
  kInput,     ///< One of the batch tensors (closeness/period/trend).
  kConstant,  ///< Value baked at plan time (eval BN stats, shaped zeros).
  kAlias,     ///< Same storage as another buffer (Reshape).
};

struct PlanBuffer {
  BufLoc loc = BufLoc::kArena;
  std::vector<int64_t> dims;
  int64_t elems = 0;
  int64_t arena_offset = -1;  ///< kArena only.
  /// kWeight: the parameter node. Holding the shared_ptr keeps it alive and
  /// lets every run re-read `node->value.data()`, so in-place optimizer
  /// updates and LoadStateDict stay visible without replanning.
  std::shared_ptr<autograd::Node> weight;
  int input_index = -1;        ///< kInput: 0=closeness, 1=period, 2=trend.
  std::vector<float> constant; ///< kConstant: plan-owned copy.
  int32_t alias_of = -1;       ///< kAlias: index of the storage owner.
};

/// Precomputed geometry for one step, so RunStep does no shape math.
/// Which fields are meaningful depends on the step's OpKind.
struct StepGeom {
  int64_t n = 0;      ///< Output element count (elementwise, unary).
  int64_t outer = 0;  ///< outer × mid × inner decomposition (sum/concat/
  int64_t mid = 0;    ///< slice); `mid` is the axis extent.
  int64_t inner = 0;
  int64_t m = 0, k = 0, cols = 0;  ///< GEMM dims (cols = n of the GEMM).
  int64_t batch = 0;               ///< Batched matmul / conv / pools.
  int64_t cin = 0, h = 0, w = 0;   ///< Conv input planes.
  int64_t cout = 0, kh = 0, kw = 0, oh = 0, ow = 0;
  int64_t window = 0;              ///< Pooling window.
  int64_t channels = 1, bias_inner = 1;  ///< BiasAct layout.
  int64_t col_elems = 0;   ///< Conv: per-sample im2col matrix size.
  int64_t pack_elems = 0;  ///< Per-sample GEMM pack scratch size.
  /// Broadcast binary: fast-path flags and right-aligned stride tables.
  bool same_shape = false;
  bool a_scalar = false;
  bool b_scalar = false;
  int rank = 0;
  int64_t dims[8] = {0};
  int64_t sa[8] = {0};
  int64_t sb[8] = {0};
  std::vector<int64_t> aux;  ///< Concat: per-input extents along the axis.
};

struct Step {
  autograd::OpKind kind = autograd::OpKind::kLeaf;
  autograd::OpAttrs attrs;
  const char* op_name = "";
  std::vector<int32_t> in;  ///< Buffer indices of the inputs.
  int32_t out = -1;         ///< Buffer index of the output.
  int32_t scratch = -1;     ///< Arena scratch buffer, or -1.
  StepGeom geom;
};

struct Plan {
  std::vector<PlanBuffer> buffers;
  std::vector<Step> steps;
  int32_t root = -1;          ///< Buffer holding the prediction.
  int64_t arena_elems = 0;    ///< Total arena size in floats.
  int64_t batch_size = 0;     ///< Batch size the plan was compiled for.
  tensor::Shape out_shape;    ///< Prediction shape [B, 2, H, W].
  int64_t flops = 0;          ///< GEMM/conv flops per run (for telemetry).
};

/// Compiles the graph under `root` (a PlanForward result on `batch`) into a
/// Plan. `batch` identifies the input leaves by shape + content match and
/// fixes the plan's batch size. Fails with InvalidArgument on ops outside
/// the planner's closed kind set (callers then fall back to Predict).
Result<Plan> BuildPlan(const autograd::Variable& root,
                       const data::Batch& batch);

}  // namespace musenet::infer

#endif  // MUSENET_INFER_PLAN_H_
