#include "infer/session.h"

#include <chrono>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace musenet::infer {

namespace ts = musenet::tensor;

InferenceSession::InferenceSession(eval::Forecaster& model,
                                   SessionOptions options)
    : engine_(model, options.engine), options_(options) {
  MUSE_CHECK(options_.max_batch >= 1) << "max_batch must be >= 1";
  MUSE_CHECK(options_.max_wait_ms >= 0.0) << "max_wait_ms must be >= 0";
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

InferenceSession::~InferenceSession() { Shutdown(); }

std::future<tensor::Tensor> InferenceSession::Submit(data::Batch request,
                                                     double deadline_ms) {
  MUSE_CHECK(request.batch_size() == 1)
      << "InferenceSession::Submit takes single-grid requests; got batch "
      << request.batch_size();
  Pending pending;
  pending.batch = std::move(request);
  pending.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceInstant("infer.request", "rid", pending.request_id);
  pending.enqueue_ns = util::MonotonicNowNanos();
  if (deadline_ms > 0.0) {
    pending.deadline_ns =
        pending.enqueue_ns + static_cast<int64_t>(deadline_ms * 1e6);
  }
  std::future<tensor::Tensor> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      pending.promise.set_exception(std::make_exception_ptr(
          std::runtime_error("InferenceSession is shut down")));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

void InferenceSession::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      if (dispatcher_.joinable()) dispatcher_.join();
      return;
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void InferenceSession::DispatchLoop() {
  auto& requests = obs::GetCounter("infer.requests");
  auto& batches = obs::GetCounter("infer.batches");
  auto& timed_out = obs::GetCounter("infer.requests_timed_out");
  auto& batch_size_hist = obs::GetHistogram(
      "infer.batch_size", {1, 2, 4, 8, 16, 32, 64});
  auto& latency_hist =
      obs::GetHistogram("infer.latency_ms", obs::LatencyBucketsMs());
  const auto wait = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(options_.max_wait_ms));

  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      // Hold the batch open for stragglers, but never past the deadline
      // set by the oldest queued request.
      const auto deadline =
          std::chrono::steady_clock::now() + wait;
      cv_.wait_until(lock, deadline, [this] {
        return shutdown_ ||
               static_cast<int>(queue_.size()) >= options_.max_batch;
      });
      // Expired requests complete with DeadlineExceededError instead of
      // occupying a batch slot; live ones fill the group up to max_batch.
      const int64_t now_ns = util::MonotonicNowNanos();
      group.reserve(static_cast<size_t>(options_.max_batch));
      while (!queue_.empty() &&
             static_cast<int>(group.size()) < options_.max_batch) {
        Pending p = std::move(queue_.front());
        queue_.pop_front();
        if (p.deadline_ns > 0 && now_ns > p.deadline_ns) {
          p.promise.set_exception(
              std::make_exception_ptr(DeadlineExceededError(
                  "request deadline passed before dispatch")));
          timed_out.Add();
          continue;
        }
        group.push_back(std::move(p));
      }
    }
    if (group.empty()) continue;

    const int64_t n = static_cast<int64_t>(group.size());
    obs::ScopedSpan span("infer.batch", "size", n, "rid",
                         group[0].request_id);
    data::Batch merged;
    if (n == 1) {
      merged = group[0].batch;
    } else {
      std::vector<ts::Tensor> closeness, period, trend, target;
      closeness.reserve(group.size());
      period.reserve(group.size());
      trend.reserve(group.size());
      target.reserve(group.size());
      for (Pending& p : group) {
        closeness.push_back(p.batch.closeness);
        period.push_back(p.batch.period);
        trend.push_back(p.batch.trend);
        target.push_back(p.batch.target);
        merged.target_indices.insert(merged.target_indices.end(),
                                     p.batch.target_indices.begin(),
                                     p.batch.target_indices.end());
      }
      merged.closeness = ts::Concat(closeness, 0);
      merged.period = ts::Concat(period, 0);
      merged.trend = ts::Concat(trend, 0);
      merged.target = ts::Concat(target, 0);
    }

    engine_.set_trace_request_id(group[0].request_id);
    ts::Tensor prediction = engine_.Predict(merged);
    engine_.set_trace_request_id(-1);
    const int64_t done_ns = util::MonotonicNowNanos();
    for (int64_t i = 0; i < n; ++i) {
      Pending& p = group[static_cast<size_t>(i)];
      if (p.deadline_ns > 0 && done_ns > p.deadline_ns) {
        p.promise.set_exception(std::make_exception_ptr(
            DeadlineExceededError("request deadline passed mid-batch")));
        timed_out.Add();
        continue;
      }
      ts::Tensor slice =
          n == 1 ? prediction : ts::Slice(prediction, 0, i, 1);
      latency_hist.Observe(
          static_cast<double>(done_ns - p.enqueue_ns) / 1e6, p.request_id);
      p.promise.set_value(std::move(slice));
    }
    requests.Add(n);
    batches.Add(1);
    batch_size_hist.Observe(static_cast<double>(n));
  }
}

}  // namespace musenet::infer
