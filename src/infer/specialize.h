#ifndef MUSENET_INFER_SPECIALIZE_H_
#define MUSENET_INFER_SPECIALIZE_H_

#include "infer/plan.h"
#include "util/status.h"

namespace musenet::infer {

// Plan-time weight specialization: rewrites a compiled Plan in place so that
// replay does strictly less work per call, at the cost of freezing the
// weights it folds (the engine replans after Train, so this is invisible to
// callers).
//
// The pass runs four stages:
//  1. Weight snapshot — every kWeight buffer becomes a kConstant copy, so
//     the rewrite can read values and the specialized plan stops chasing
//     parameter pointers at run time.
//  2. Constant folding — any step whose inputs are all constants is executed
//     once now and its output baked (this collapses the eval-mode BN
//     1/sqrt(var+eps) chain to a single per-channel vector).
//  3. Affine folding + repacking — for each Conv2d / MatMul with a constant
//     weight, the single-consumer chain of per-channel/scalar Add/Sub/Mul/
//     Div/AddScalar/MulScalar steps (the folded BN affine, bias adds), an
//     optional BiasAct, and one trailing activation are absorbed into the
//     weight (W' = W·scale per output channel, bias = shift) and a fused
//     epilogue; the weight is then packed into the GEMM micro-kernel's tile
//     layout (A-tiles for conv, B-tiles for dense) at the requested
//     precision. The step becomes kConvPacked / kDensePacked writing
//     directly to the chain's final output buffer.
//  4. Re-layout — dead steps are dropped, dead constants freed, flops
//     recomputed, and the arena re-laid-out over the new lifetimes.
//
// Numerics: stage 3 changes the arithmetic (scales are multiplied into
// weights ahead of the GEMM), so specialized output is no longer bit-equal
// to the traced forward — the engine gates adoption on a max-abs-delta
// check against the unspecialized plan. Accumulation itself still runs the
// fp32 micro-kernel in the same ascending-k order at every precision
// (int8/bf16 weights are dequantized panel-by-panel), so specialized replay
// remains deterministic and thread-count independent.

struct SpecializeOptions {
  PrecisionMode precision = PrecisionMode::kFp32;
  /// Fold BN/affine chains into weights (stage 3's chain absorption).
  bool fold_chains = true;
};

/// Specializes `plan` in place. Sets plan->specialized when at least one
/// step was rewritten; a plan with no conv/dense steps (or with every weight
/// unfoldable) comes back unchanged and ok. Never fails on model structure —
/// unsupported patterns are simply left generic.
Status SpecializePlan(Plan* plan, const SpecializeOptions& options);

}  // namespace musenet::infer

#endif  // MUSENET_INFER_SPECIALIZE_H_
