#include "infer/specialize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "infer/kernels.h"
#include "infer/precision.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace musenet::infer {

namespace ag = musenet::autograd;
namespace ts = musenet::tensor;

namespace {

int32_t ResolveBase(const Plan& plan, int32_t idx) {
  while (plan.buffers[idx].loc == BufLoc::kAlias) {
    idx = plan.buffers[idx].alias_of;
  }
  return idx;
}

/// Stage 1: every kWeight buffer becomes a plan-owned kConstant copy. The
/// rewrite needs values; replay stops chasing parameter pointers.
void SnapshotWeights(Plan* plan) {
  for (PlanBuffer& buf : plan->buffers) {
    if (buf.loc != BufLoc::kWeight) continue;
    const float* src = buf.weight->value.data();
    buf.constant.assign(src, src + buf.elems);
    buf.weight.reset();
    buf.loc = BufLoc::kConstant;
  }
}

/// Stage 2: executes steps whose inputs are all constants once, now, and
/// bakes their outputs. Collapses the eval-BN 1/sqrt(var+eps) chains (and
/// any other weight-only arithmetic) so stage 3 sees plain per-channel
/// vectors. `live` marks surviving steps.
void FoldConstants(Plan* plan, std::vector<bool>* live) {
  const int32_t root_base = ResolveBase(*plan, plan->root);
  std::vector<float*> ptrs(plan->buffers.size(), nullptr);
  for (size_t s = 0; s < plan->steps.size(); ++s) {
    Step& step = plan->steps[s];
    if (step.out == root_base) continue;  // Keep the plan executable.
    bool all_const = true;
    for (const int32_t in_idx : step.in) {
      if (plan->buffers[ResolveBase(*plan, in_idx)].loc != BufLoc::kConstant) {
        all_const = false;
        break;
      }
    }
    if (!all_const) continue;

    PlanBuffer& out = plan->buffers[step.out];
    std::vector<float> value(static_cast<size_t>(out.elems), 0.0f);
    std::vector<float> scratch;
    for (size_t i = 0; i < plan->buffers.size(); ++i) {
      PlanBuffer& buf = plan->buffers[i];
      if (buf.loc == BufLoc::kConstant) ptrs[i] = buf.constant.data();
    }
    for (size_t i = 0; i < plan->buffers.size(); ++i) {
      if (plan->buffers[i].loc == BufLoc::kAlias) {
        ptrs[i] = ptrs[ResolveBase(*plan, static_cast<int32_t>(i))];
      }
    }
    ptrs[step.out] = value.data();
    if (step.scratch >= 0) {
      scratch.resize(
          static_cast<size_t>(plan->buffers[step.scratch].elems), 0.0f);
      ptrs[step.scratch] = scratch.data();
    }
    RunStep(step, ptrs.data(), *plan);
    out.loc = BufLoc::kConstant;
    out.constant = std::move(value);
    out.arena_offset = -1;
    (*live)[s] = false;
  }
}

/// Extracts a per-channel constant: `idx` must resolve to a kConstant that
/// is either a scalar (broadcast to all channels) or exactly `channels`
/// elements whose single non-unit axis right-aligns onto axis 1 of
/// `out_dims` ([1,C,1,1] against [B,C,H,W], [N] against [M,N], ...).
bool PerChannelConst(const Plan& plan, int32_t idx, int64_t channels,
                     const std::vector<int64_t>& out_dims,
                     std::vector<float>* vals) {
  const PlanBuffer& buf = plan.buffers[ResolveBase(plan, idx)];
  if (buf.loc != BufLoc::kConstant) return false;
  if (buf.elems == 1) {
    vals->assign(static_cast<size_t>(channels), buf.constant[0]);
    return true;
  }
  if (buf.elems != channels) return false;
  const int offset =
      static_cast<int>(out_dims.size()) - static_cast<int>(buf.dims.size());
  if (offset < 0) return false;
  int non_unit = -1;
  for (size_t a = 0; a < buf.dims.size(); ++a) {
    if (buf.dims[a] != 1) {
      if (non_unit != -1) return false;
      non_unit = static_cast<int>(a);
    }
  }
  if (non_unit < 0 || non_unit + offset != 1) return false;
  vals->assign(buf.constant.begin(), buf.constant.end());
  return true;
}

/// Per-output-channel affine chain accumulated while walking downstream of
/// a conv/dense step: running value y = scale·y₀ + shift, closed by one
/// optional activation.
struct ChainFold {
  std::vector<float> scale;
  std::vector<float> shift;
  int32_t act = static_cast<int32_t>(ts::ActKind::kIdentity);
  float alpha = 0.0f;
  int32_t final_out = -1;           ///< Output buffer after the chain.
  std::vector<size_t> absorbed;     ///< Step indices folded away.
};

/// Walks the single-consumer chain downstream of step `s` (producing buffer
/// `out0` with `channels` output channels), absorbing per-channel affine
/// steps and one trailing activation. Stops at the first step it cannot
/// absorb; everything absorbed so far stays absorbed (the fold is always a
/// valid prefix).
ChainFold WalkChain(const Plan& plan, const std::vector<bool>& live,
                    const std::vector<int>& consumers,
                    const std::vector<int>& consumer_step,
                    const std::vector<bool>& aliased, int32_t root_base,
                    int32_t out0, int64_t channels) {
  ChainFold fold;
  fold.scale.assign(static_cast<size_t>(channels), 1.0f);
  fold.shift.assign(static_cast<size_t>(channels), 0.0f);
  fold.final_out = out0;

  int32_t cur = out0;
  while (true) {
    // Absorbing the consumer of `cur` turns `cur` into a dead buffer, so it
    // must have exactly one consuming step, no aliases, and not be the root.
    if (cur == root_base || aliased[cur] || consumers[cur] != 1) break;
    const size_t t = static_cast<size_t>(consumer_step[cur]);
    if (!live[t]) break;
    const Step& step = plan.steps[t];
    const std::vector<int64_t>& out_dims = plan.buffers[step.out].dims;
    std::vector<float> c;
    bool terminal = false;
    switch (step.kind) {
      case ag::OpKind::kAdd: {
        const int32_t other = step.in[step.in[0] == cur ? 1 : 0];
        if (step.in[0] == cur && step.in[1] == cur) return fold;
        if (!PerChannelConst(plan, other, channels, out_dims, &c)) return fold;
        for (int64_t i = 0; i < channels; ++i) fold.shift[i] += c[i];
        break;
      }
      case ag::OpKind::kSub: {
        if (step.in[0] == cur && step.in[1] == cur) return fold;
        if (step.in[0] == cur) {  // y − c
          if (!PerChannelConst(plan, step.in[1], channels, out_dims, &c)) {
            return fold;
          }
          for (int64_t i = 0; i < channels; ++i) fold.shift[i] -= c[i];
        } else {  // c − y
          if (!PerChannelConst(plan, step.in[0], channels, out_dims, &c)) {
            return fold;
          }
          for (int64_t i = 0; i < channels; ++i) {
            fold.scale[i] = -fold.scale[i];
            fold.shift[i] = c[i] - fold.shift[i];
          }
        }
        break;
      }
      case ag::OpKind::kMul: {
        const int32_t other = step.in[step.in[0] == cur ? 1 : 0];
        if (step.in[0] == cur && step.in[1] == cur) return fold;
        if (!PerChannelConst(plan, other, channels, out_dims, &c)) return fold;
        for (int64_t i = 0; i < channels; ++i) {
          fold.scale[i] *= c[i];
          fold.shift[i] *= c[i];
        }
        break;
      }
      case ag::OpKind::kDiv: {
        if (step.in[0] != cur || step.in[1] == cur) return fold;  // c/y.
        if (!PerChannelConst(plan, step.in[1], channels, out_dims, &c)) {
          return fold;
        }
        for (int64_t i = 0; i < channels; ++i) {
          fold.scale[i] /= c[i];
          fold.shift[i] /= c[i];
        }
        break;
      }
      case ag::OpKind::kAddScalar:
        for (int64_t i = 0; i < channels; ++i) fold.shift[i] += step.attrs.f0;
        break;
      case ag::OpKind::kMulScalar:
        for (int64_t i = 0; i < channels; ++i) {
          fold.scale[i] *= step.attrs.f0;
          fold.shift[i] *= step.attrs.f0;
        }
        break;
      case ag::OpKind::kBiasAct: {
        if (step.in[0] != cur) return fold;
        if (step.geom.channels != channels) return fold;
        if (!PerChannelConst(plan, step.in[1], channels, out_dims, &c)) {
          return fold;
        }
        for (int64_t i = 0; i < channels; ++i) fold.shift[i] += c[i];
        fold.act = static_cast<int32_t>(step.attrs.i0);
        fold.alpha = step.attrs.f0;
        terminal = true;
        break;
      }
      case ag::OpKind::kRelu:
        fold.act = static_cast<int32_t>(ts::ActKind::kRelu);
        terminal = true;
        break;
      case ag::OpKind::kLeakyRelu:
        fold.act = static_cast<int32_t>(ts::ActKind::kLeakyRelu);
        fold.alpha = step.attrs.f0;
        terminal = true;
        break;
      case ag::OpKind::kTanh:
        fold.act = static_cast<int32_t>(ts::ActKind::kTanh);
        terminal = true;
        break;
      case ag::OpKind::kSigmoid:
        fold.act = static_cast<int32_t>(ts::ActKind::kSigmoid);
        terminal = true;
        break;
      default:
        return fold;  // Not an affine/activation step: chain ends here.
    }
    fold.absorbed.push_back(t);
    fold.final_out = step.out;
    cur = step.out;
    if (terminal) break;  // An activation closes the affine form.
  }
  return fold;
}

/// Packs `w` ([rows, cols] row-major; conv A operand or dense B operand,
/// already scaled) into a PackedWeight at the requested precision. For int8
/// the quantization channel is the A row (conv output channel) or B column
/// (dense output feature).
PackedWeight PackMatrix(const std::vector<float>& w, int64_t rows,
                        int64_t cols, bool as_a_operand, PrecisionMode prec,
                        std::vector<float> bias, int32_t act) {
  PackedWeight pw;
  pw.precision = prec;
  pw.bias = std::move(bias);
  bool any_bias = false;
  for (const float b : pw.bias) any_bias = any_bias || b != 0.0f;
  pw.has_epilogue =
      any_bias || act != static_cast<int32_t>(ts::ActKind::kIdentity);

  const ts::GemmTile tile = ts::GemmTileShape();
  std::vector<float> packed;
  // Packed-position → quantization-channel map, filled alongside the pack.
  std::vector<int64_t> channel_of;
  if (as_a_operand) {
    packed.resize(static_cast<size_t>(ts::GemmPackedAElems(rows, cols)));
    ts::GemmPackATiles(rows, cols, w.data(), cols, packed.data());
    if (prec == PrecisionMode::kInt8) {
      channel_of.resize(packed.size());
      const int64_t mr = tile.mr;
      for (int64_t i0 = 0; i0 < rows; i0 += mr) {
        for (int64_t kk = 0; kk < cols; ++kk) {
          for (int64_t r = 0; r < mr; ++r) {
            channel_of[static_cast<size_t>(i0 * cols + kk * mr + r)] = i0 + r;
          }
        }
      }
    }
  } else {
    packed.resize(static_cast<size_t>(ts::GemmPackedBElems(rows, cols)));
    ts::GemmPackBTiles(rows, cols, w.data(), cols, packed.data());
    if (prec == PrecisionMode::kInt8) {
      channel_of.resize(packed.size());
      const int64_t nr = tile.nr;
      const int64_t ceil_n = (cols + nr - 1) / nr * nr;
      for (int64_t kp = 0; kp < rows; kp += ts::kGemmKc) {
        const int64_t kc = std::min(ts::kGemmKc, rows - kp);
        for (int64_t js = 0; js < ceil_n; js += nr) {
          const int64_t strip = kp * ceil_n + (js / nr) * kc * nr;
          for (int64_t kk = 0; kk < kc; ++kk) {
            for (int64_t j = 0; j < nr; ++j) {
              channel_of[static_cast<size_t>(strip + kk * nr + j)] = js + j;
            }
          }
        }
      }
    }
  }

  switch (prec) {
    case PrecisionMode::kFp32:
      pw.f32 = std::move(packed);
      break;
    case PrecisionMode::kBf16:
      pw.bf16.resize(packed.size());
      for (size_t i = 0; i < packed.size(); ++i) {
        pw.bf16[i] = Bf16FromF32(packed[i]);
      }
      break;
    case PrecisionMode::kInt8: {
      // Symmetric per-channel scales from the folded weights themselves
      // (weight-only quantization; the engine's accuracy gate on live
      // activations decides whether the plan is adopted). Padding channels
      // hold zeros; scale 1 keeps their dequant finite.
      const int64_t channels = as_a_operand ? rows : cols;
      const int64_t padded = as_a_operand
                                 ? (rows + tile.mr - 1) / tile.mr * tile.mr
                                 : (cols + tile.nr - 1) / tile.nr * tile.nr;
      std::vector<float> maxabs(static_cast<size_t>(channels), 0.0f);
      for (int64_t ch = 0; ch < channels; ++ch) {
        const float* row = w.data() + (as_a_operand ? ch * cols : ch);
        const int64_t count = as_a_operand ? cols : rows;
        const int64_t stride = as_a_operand ? 1 : cols;
        for (int64_t e = 0; e < count; ++e) {
          maxabs[ch] = std::max(maxabs[ch], std::fabs(row[e * stride]));
        }
      }
      pw.scales.assign(static_cast<size_t>(padded), 1.0f);
      for (int64_t ch = 0; ch < channels; ++ch) {
        pw.scales[ch] = maxabs[ch] > 0.0f ? maxabs[ch] / 127.0f : 1.0f;
      }
      pw.i8.resize(packed.size());
      for (size_t i = 0; i < packed.size(); ++i) {
        const float s = pw.scales[static_cast<size_t>(channel_of[i])];
        const float q = std::nearbyint(packed[i] / s);
        pw.i8[i] = static_cast<int8_t>(
            std::min(127.0f, std::max(-127.0f, q)));
      }
      break;
    }
  }
  return pw;
}

/// Packs a conv weight (`w` is [cout, kdim] row-major, already scaled) into
/// the direct-conv layout wd[kk·cout + r] — kk ascends in im2col row order
/// (ci, ky, kx), so the direct kernel reduces in the exact k order of the
/// tiled GEMM. int8 quantizes per output channel r with the same symmetric
/// maxabs/127 scales as the tiled path, so the dequantized values (and
/// therefore the replayed accumulation) are identical between layouts.
PackedWeight PackConvDirect(const std::vector<float>& w, int64_t cout,
                            int64_t kdim, PrecisionMode prec,
                            std::vector<float> bias, int32_t act) {
  PackedWeight pw;
  pw.precision = prec;
  pw.direct = true;
  pw.bias = std::move(bias);
  bool any_bias = false;
  for (const float b : pw.bias) any_bias = any_bias || b != 0.0f;
  pw.has_epilogue =
      any_bias || act != static_cast<int32_t>(ts::ActKind::kIdentity);

  std::vector<float> wd(static_cast<size_t>(kdim * cout));
  for (int64_t r = 0; r < cout; ++r) {
    const float* row = w.data() + r * kdim;
    for (int64_t kk = 0; kk < kdim; ++kk) wd[kk * cout + r] = row[kk];
  }
  switch (prec) {
    case PrecisionMode::kFp32:
      pw.f32 = std::move(wd);
      break;
    case PrecisionMode::kBf16:
      pw.bf16.resize(wd.size());
      for (size_t i = 0; i < wd.size(); ++i) pw.bf16[i] = Bf16FromF32(wd[i]);
      break;
    case PrecisionMode::kInt8: {
      pw.scales.assign(static_cast<size_t>(cout), 1.0f);
      for (int64_t r = 0; r < cout; ++r) {
        float maxabs = 0.0f;
        const float* row = w.data() + r * kdim;
        for (int64_t kk = 0; kk < kdim; ++kk) {
          maxabs = std::max(maxabs, std::fabs(row[kk]));
        }
        if (maxabs > 0.0f) pw.scales[static_cast<size_t>(r)] = maxabs / 127.0f;
      }
      pw.i8.resize(wd.size());
      for (int64_t kk = 0; kk < kdim; ++kk) {
        for (int64_t r = 0; r < cout; ++r) {
          const float s = pw.scales[static_cast<size_t>(r)];
          const float q = std::nearbyint(wd[kk * cout + r] / s);
          pw.i8[kk * cout + r] =
              static_cast<int8_t>(std::min(127.0f, std::max(-127.0f, q)));
        }
      }
      break;
    }
  }
  return pw;
}

}  // namespace

Status SpecializePlan(Plan* plan, const SpecializeOptions& options) {
  MUSE_CHECK(plan->root >= 0) << "SpecializePlan on an empty plan";
  plan->precision = options.precision;
  const int32_t root_base = ResolveBase(*plan, plan->root);

  SnapshotWeights(plan);
  std::vector<bool> live(plan->steps.size(), true);
  FoldConstants(plan, &live);

  // Per-buffer consumer census over live steps (reads through aliases count
  // against the alias base), plus which buffers have alias views at all —
  // both gate chain absorption in WalkChain.
  std::vector<int> consumers(plan->buffers.size(), 0);
  std::vector<int> consumer_step(plan->buffers.size(), -1);
  std::vector<bool> aliased(plan->buffers.size(), false);
  for (size_t i = 0; i < plan->buffers.size(); ++i) {
    if (plan->buffers[i].loc == BufLoc::kAlias) {
      aliased[ResolveBase(*plan, static_cast<int32_t>(i))] = true;
    }
  }
  for (size_t s = 0; s < plan->steps.size(); ++s) {
    if (!live[s]) continue;
    for (const int32_t in_idx : plan->steps[s].in) {
      const int32_t base = ResolveBase(*plan, in_idx);
      ++consumers[base];
      consumer_step[base] = static_cast<int>(s);
    }
  }

  // Stage 3: fold + repack each conv/dense with a constant weight.
  // Identical (weight, scale, shift, act) folds share one payload —
  // recurrent cells replay the same weight every timestep and would
  // otherwise duplicate it per step.
  struct CacheEntry {
    std::vector<float> scale;
    std::vector<float> shift;
    int32_t act;
    float alpha;
    bool direct;
    int32_t index;
  };
  std::map<int32_t, std::vector<CacheEntry>> packed_cache;
  for (size_t s = 0; options.fold_chains && s < plan->steps.size(); ++s) {
    if (!live[s]) continue;
    Step& step = plan->steps[s];
    if (step.kind != ag::OpKind::kConv2d && step.kind != ag::OpKind::kMatMul) {
      continue;
    }
    const bool is_conv = step.kind == ag::OpKind::kConv2d;
    const int32_t w_idx = ResolveBase(*plan, step.in[1]);
    const PlanBuffer& w_buf = plan->buffers[w_idx];
    if (w_buf.loc != BufLoc::kConstant) continue;
    const int64_t channels = is_conv ? step.geom.cout : step.geom.cols;

    ChainFold fold =
        WalkChain(*plan, live, consumers, consumer_step, aliased, root_base,
                  step.out, channels);

    // Scaled weight matrix: conv A operand [cout, kdim] (rows scaled),
    // dense B operand [k, n] (columns scaled).
    const int64_t kdim =
        is_conv ? step.geom.cin * step.geom.kh * step.geom.kw : step.geom.k;
    std::vector<float> w(w_buf.constant.begin(), w_buf.constant.end());
    if (is_conv) {
      for (int64_t c = 0; c < channels; ++c) {
        float* row = w.data() + c * kdim;
        for (int64_t e = 0; e < kdim; ++e) row[e] *= fold.scale[c];
      }
    } else {
      for (int64_t kk = 0; kk < kdim; ++kk) {
        float* row = w.data() + kk * channels;
        for (int64_t c = 0; c < channels; ++c) row[c] *= fold.scale[c];
      }
    }

    // Stride-1 convs replay through the im2col-free direct kernel; strided
    // convs keep the packed-tile GEMM path.
    const bool direct = is_conv && step.attrs.i0 == 1;

    // Dedup: reuse an existing payload when the same weight buffer folded
    // with an identical (scale, shift, act, layout) tuple.
    int32_t packed_index = -1;
    for (const CacheEntry& entry : packed_cache[w_idx]) {
      if (entry.scale == fold.scale && entry.shift == fold.shift &&
          entry.act == fold.act && entry.alpha == fold.alpha &&
          entry.direct == direct) {
        packed_index = entry.index;
        break;
      }
    }
    if (packed_index < 0) {
      plan->packed_weights.push_back(
          direct ? PackConvDirect(w, channels, kdim, options.precision,
                                  fold.shift, fold.act)
                 : PackMatrix(w, is_conv ? channels : kdim,
                              is_conv ? kdim : channels,
                              /*as_a_operand=*/is_conv, options.precision,
                              fold.shift, fold.act));
      packed_index = static_cast<int32_t>(plan->packed_weights.size() - 1);
      packed_cache[w_idx].push_back(
          {fold.scale, fold.shift, fold.act, fold.alpha, direct,
           packed_index});
    }

    // Rewrite the step in place: spec kernel, weight input dropped, output
    // retargeted to the chain's final buffer so downstream steps are
    // untouched. Absorbed steps die; their intermediates go dead with them.
    step.spec = direct ? SpecKind::kConvDirect
                       : (is_conv ? SpecKind::kConvPacked
                                  : SpecKind::kDensePacked);
    step.op_name = direct ? "infer.conv_direct"
                          : (is_conv ? "infer.conv_packed"
                                     : "infer.dense_packed");
    step.packed = packed_index;
    step.spec_act = fold.act;
    step.spec_alpha = fold.alpha;
    step.in.resize(1);
    step.out = fold.final_out;
    for (const size_t t : fold.absorbed) live[t] = false;
    if (direct) {
      // Scratch holds the dequantized weight (non-fp32) plus one padded
      // input image per sample; im2col and PackB scratch are gone.
      step.geom.col_elems = 0;
      step.geom.pack_elems = 0;
      plan->buffers[step.scratch].elems = DirectConvScratchElems(
          step.geom, step.attrs.i1, options.precision);
    } else if (is_conv) {
      // Replay im2cols straight into the packed-B tile layout; the separate
      // per-call PackB scratch is gone.
      const int64_t osp = step.geom.oh * step.geom.ow;
      step.geom.col_elems = ts::GemmPackedBElems(kdim, osp);
      step.geom.pack_elems = 0;
      plan->buffers[step.scratch].elems = step.geom.batch * step.geom.col_elems;
    } else if (step.scratch >= 0) {
      step.scratch = -1;  // Pre-packed B: no per-call pack scratch at all.
    }
    plan->specialized = true;
  }

  // Stage 4: drop dead steps, free dead constant payloads, recompute flops
  // and the arena layout over the new lifetimes.
  std::vector<Step> kept;
  kept.reserve(plan->steps.size());
  for (size_t s = 0; s < plan->steps.size(); ++s) {
    if (live[s]) kept.push_back(std::move(plan->steps[s]));
  }
  plan->steps = std::move(kept);

  std::vector<bool> referenced(plan->buffers.size(), false);
  auto mark = [&](int32_t idx) {
    referenced[idx] = true;
    referenced[ResolveBase(*plan, idx)] = true;
  };
  for (const Step& step : plan->steps) {
    mark(step.out);
    if (step.scratch >= 0) mark(step.scratch);
    for (const int32_t in_idx : step.in) mark(in_idx);
  }
  mark(plan->root);
  for (size_t i = 0; i < plan->buffers.size(); ++i) {
    PlanBuffer& buf = plan->buffers[i];
    if (buf.loc == BufLoc::kConstant && !referenced[i]) {
      buf.constant.clear();
      buf.constant.shrink_to_fit();
    }
  }

  plan->flops = 0;
  for (const Step& step : plan->steps) {
    const StepGeom& g = step.geom;
    switch (step.kind) {
      case ag::OpKind::kMatMul:
        plan->flops += 2 * g.m * g.cols * g.k;
        break;
      case ag::OpKind::kMatMulBatched:
        plan->flops += 2 * g.batch * g.m * g.cols * g.k;
        break;
      case ag::OpKind::kConv2d:
        plan->flops += 2 * g.batch * g.cout * g.cin * g.kh * g.kw * g.oh *
                       g.ow;
        break;
      default:
        break;
    }
  }
  LayoutArena(plan);
  return Status::OK();
}

}  // namespace musenet::infer
