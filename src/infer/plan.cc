#include "infer/plan.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "tensor/conv2d.h"
#include "tensor/gemm.h"
#include "util/check.h"

namespace musenet::infer {

namespace ag = musenet::autograd;
namespace ts = musenet::tensor;

namespace {

/// Iterative post-order DFS over node inputs — the same traversal Backward
/// uses, so the step order matches the forward evaluation order exactly.
std::vector<ag::Node*> TopologicalOrder(ag::Node* root) {
  std::vector<ag::Node*> order;
  std::unordered_set<ag::Node*> visited;
  struct Frame {
    ag::Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs.size()) {
      ag::Node* child = top.node->inputs[top.next_input++].get();
      if (child != nullptr && visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
  return order;
}

/// Right-aligned broadcast strides of `in` against `out` (0 where the input
/// axis is absent or has extent 1), indexed by output axis.
void BroadcastStridesInto(const ts::Shape& in, const ts::Shape& out,
                          int64_t* strides) {
  const int offset = out.rank() - in.rank();
  int64_t running = 1;
  for (int axis = out.rank() - 1; axis >= 0; --axis) {
    if (axis < offset || in.dim(axis - offset) == 1) {
      strides[axis] = 0;
    } else {
      strides[axis] = running;
      running *= in.dim(axis - offset);
    }
  }
}

/// BiasAct layout (mirrors fused_ops.cc): bias broadcasts with at most one
/// non-unit axis; decompose x's index space so the bias element for flat
/// index i is bias[(i / inner) % channels].
void BiasLayoutInto(const ts::Shape& x, const ts::Shape& bias,
                    int64_t* channels, int64_t* inner) {
  const int offset = x.rank() - bias.rank();
  *channels = 1;
  *inner = 1;
  int non_unit_axis = -1;
  for (int axis = 0; axis < bias.rank(); ++axis) {
    if (bias.dim(axis) != 1) non_unit_axis = axis;
  }
  if (non_unit_axis < 0) return;
  *channels = bias.dim(non_unit_axis);
  for (int axis = offset + non_unit_axis + 1; axis < x.rank(); ++axis) {
    *inner *= x.dim(axis);
  }
}

/// True when `t` matches `ref` in shape and bytes — the planner's test for
/// "this leaf is the batch tensor the caller passed in".
bool TensorMatches(const ts::Tensor& t, const ts::Tensor& ref) {
  if (!(t.shape() == ref.shape())) return false;
  return std::memcmp(t.data(), ref.data(),
                     sizeof(float) * static_cast<size_t>(
                                         t.num_elements())) == 0;
}

/// outer × mid × inner decomposition of `shape` around `axis`.
void AxisDecompose(const ts::Shape& shape, int axis, int64_t* outer,
                   int64_t* mid, int64_t* inner) {
  *outer = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape.dim(i);
  *mid = shape.dim(axis);
  *inner = 1;
  for (int i = axis + 1; i < shape.rank(); ++i) *inner *= shape.dim(i);
}

constexpr int64_t kArenaAlignElems = 16;  ///< 64-byte lines.

int64_t AlignUp(int64_t elems) {
  return (elems + kArenaAlignElems - 1) / kArenaAlignElems * kArenaAlignElems;
}

/// Fills the broadcast-binary geometry shared by kAdd/kSub/kMul/kDiv.
Status BinaryGeom(const ts::Shape& a, const ts::Shape& b, const ts::Shape& out,
                  StepGeom* geom) {
  geom->n = out.num_elements();
  if (a == b) {
    geom->same_shape = true;
    return Status::OK();
  }
  if (a.num_elements() == 1) {
    geom->a_scalar = true;
    return Status::OK();
  }
  if (b.num_elements() == 1) {
    geom->b_scalar = true;
    return Status::OK();
  }
  if (out.rank() > 8) {
    return Status::InvalidArgument("broadcast rank > 8 not plannable");
  }
  geom->rank = out.rank();
  for (int i = 0; i < out.rank(); ++i) geom->dims[i] = out.dim(i);
  BroadcastStridesInto(a, out, geom->sa);
  BroadcastStridesInto(b, out, geom->sb);
  return Status::OK();
}

}  // namespace

Result<Plan> BuildPlan(const ag::Variable& root, const data::Batch& batch) {
  MUSE_CHECK(root.defined()) << "BuildPlan on empty Variable";
  Plan plan;
  plan.batch_size = batch.batch_size();
  plan.out_shape = root.value().shape();

  const std::vector<ag::Node*> order = TopologicalOrder(root.node().get());

  // Keep the producing shared_ptr for weight leaves reachable by raw pointer.
  std::unordered_map<ag::Node*, std::shared_ptr<ag::Node>> owners;
  for (ag::Node* node : order) {
    for (const auto& in : node->inputs) owners[in.get()] = in;
  }
  owners[root.node().get()] = root.node();

  std::unordered_map<ag::Node*, int32_t> buf_of;

  auto add_buffer = [&](PlanBuffer buffer) {
    plan.buffers.push_back(std::move(buffer));
    return static_cast<int32_t>(plan.buffers.size() - 1);
  };

  const ts::Tensor* inputs[3] = {&batch.closeness, &batch.period,
                                 &batch.trend};

  for (ag::Node* node : order) {
    const ts::Shape& shape = node->value.shape();
    PlanBuffer buffer;
    buffer.dims = shape.dims();
    buffer.elems = node->value.num_elements();

    if (node->kind == ag::OpKind::kLeaf) {
      if (node->requires_grad) {
        buffer.loc = BufLoc::kWeight;
        auto it = owners.find(node);
        MUSE_CHECK(it != owners.end());
        buffer.weight = it->second;
      } else {
        int bound = -1;
        for (int i = 0; i < 3; ++i) {
          if (TensorMatches(node->value, *inputs[i])) {
            bound = i;
            break;
          }
        }
        if (bound >= 0) {
          buffer.loc = BufLoc::kInput;
          buffer.input_index = bound;
        } else {
          // Baked constant: eval-mode BN statistics, shaped zeros, etc. The
          // copy makes the plan self-contained (the traced graph can die).
          buffer.loc = BufLoc::kConstant;
          const float* src = node->value.data();
          buffer.constant.assign(src, src + buffer.elems);
        }
      }
      buf_of[node] = add_buffer(std::move(buffer));
      continue;
    }

    if (node->kind == ag::OpKind::kReshape) {
      MUSE_CHECK_EQ(node->inputs.size(), 1u);
      buffer.loc = BufLoc::kAlias;
      buffer.alias_of = buf_of.at(node->inputs[0].get());
      const int32_t idx = add_buffer(std::move(buffer));
      buf_of[node] = idx;
      continue;
    }

    // Compile one step. Geometry first so unsupported configurations fail
    // before any buffer is committed.
    Step step;
    step.kind = node->kind;
    step.attrs = node->attrs;
    step.op_name = node->op_name;
    for (const auto& in : node->inputs) {
      step.in.push_back(buf_of.at(in.get()));
    }
    StepGeom& geom = step.geom;
    int64_t scratch_elems = 0;

    const auto in_shape = [&](size_t i) -> const ts::Shape& {
      return node->inputs[i]->value.shape();
    };

    switch (node->kind) {
      case ag::OpKind::kAdd:
      case ag::OpKind::kSub:
      case ag::OpKind::kMul:
      case ag::OpKind::kDiv: {
        const Status st = BinaryGeom(in_shape(0), in_shape(1), shape, &geom);
        if (!st.ok()) return st;
        break;
      }
      case ag::OpKind::kAddScalar:
      case ag::OpKind::kMulScalar:
      case ag::OpKind::kExp:
      case ag::OpKind::kLog:
      case ag::OpKind::kSqrt:
      case ag::OpKind::kTanh:
      case ag::OpKind::kRelu:
      case ag::OpKind::kLeakyRelu:
      case ag::OpKind::kSigmoid:
      case ag::OpKind::kSoftplus:
      case ag::OpKind::kSquare:
      case ag::OpKind::kAbs:
      case ag::OpKind::kClamp:
      case ag::OpKind::kMulAddFused:
        geom.n = node->value.num_elements();
        break;
      case ag::OpKind::kBiasAct:
        geom.n = node->value.num_elements();
        BiasLayoutInto(in_shape(0), in_shape(1), &geom.channels,
                       &geom.bias_inner);
        break;
      case ag::OpKind::kSumAll:
        geom.n = node->inputs[0]->value.num_elements();
        break;
      case ag::OpKind::kSumAxis:
        AxisDecompose(in_shape(0), static_cast<int>(node->attrs.i0),
                      &geom.outer, &geom.mid, &geom.inner);
        break;
      case ag::OpKind::kMatMul: {
        geom.m = in_shape(0).dim(0);
        geom.k = in_shape(0).dim(1);
        geom.cols = in_shape(1).dim(1);
        geom.pack_elems = ts::GemmPackScratchElems(geom.m, geom.cols, geom.k);
        scratch_elems = geom.pack_elems;
        plan.flops += 2 * geom.m * geom.cols * geom.k;
        break;
      }
      case ag::OpKind::kMatMulBatched: {
        geom.batch = in_shape(0).dim(0);
        geom.m = in_shape(0).dim(1);
        geom.k = in_shape(0).dim(2);
        geom.cols = in_shape(1).dim(2);
        geom.pack_elems = ts::GemmPackScratchElems(geom.m, geom.cols, geom.k);
        scratch_elems = geom.batch * geom.pack_elems;
        plan.flops += 2 * geom.batch * geom.m * geom.cols * geom.k;
        break;
      }
      case ag::OpKind::kTranspose2d:
        geom.m = in_shape(0).dim(0);
        geom.cols = in_shape(0).dim(1);
        break;
      case ag::OpKind::kTransposeLast2:
        geom.batch = in_shape(0).dim(0);
        geom.m = in_shape(0).dim(1);
        geom.cols = in_shape(0).dim(2);
        break;
      case ag::OpKind::kSoftmax:
        geom.mid = shape.dim(shape.rank() - 1);
        geom.outer = node->value.num_elements() / geom.mid;
        break;
      case ag::OpKind::kConv2d: {
        const ts::Shape& in = in_shape(0);
        const ts::Shape& w = in_shape(1);
        geom.batch = in.dim(0);
        geom.cin = in.dim(1);
        geom.h = in.dim(2);
        geom.w = in.dim(3);
        geom.cout = w.dim(0);
        geom.kh = w.dim(2);
        geom.kw = w.dim(3);
        geom.oh = shape.dim(2);
        geom.ow = shape.dim(3);
        const int64_t kdim = geom.cin * geom.kh * geom.kw;
        const int64_t osp = geom.oh * geom.ow;
        geom.col_elems = kdim * osp;
        geom.pack_elems = ts::GemmPackScratchElems(geom.cout, osp, kdim);
        scratch_elems = geom.batch * (geom.col_elems + geom.pack_elems);
        plan.flops += 2 * geom.batch * geom.cout * kdim * osp;
        break;
      }
      case ag::OpKind::kConcat: {
        const int axis = static_cast<int>(node->attrs.i0);
        int64_t dummy_mid = 0;
        AxisDecompose(in_shape(0), axis, &geom.outer, &dummy_mid,
                      &geom.inner);
        geom.mid = shape.dim(axis);
        for (size_t i = 0; i < node->inputs.size(); ++i) {
          geom.aux.push_back(in_shape(i).dim(axis));
        }
        break;
      }
      case ag::OpKind::kSlice:
        AxisDecompose(in_shape(0), static_cast<int>(node->attrs.i0),
                      &geom.outer, &geom.mid, &geom.inner);
        break;
      case ag::OpKind::kAvgPool:
      case ag::OpKind::kMaxPool:
        geom.batch = in_shape(0).dim(0) * in_shape(0).dim(1);  // Planes.
        geom.h = in_shape(0).dim(2);
        geom.w = in_shape(0).dim(3);
        geom.window = node->attrs.i0;
        geom.oh = geom.h / geom.window;
        geom.ow = geom.w / geom.window;
        break;
      default:
        return Status::InvalidArgument(
            std::string("op not plannable: ") + node->op_name);
    }

    buffer.loc = BufLoc::kArena;
    const int32_t out_idx = add_buffer(std::move(buffer));
    buf_of[node] = out_idx;
    step.out = out_idx;

    if (scratch_elems > 0) {
      PlanBuffer scratch;
      scratch.loc = BufLoc::kArena;
      scratch.elems = scratch_elems;
      step.scratch = add_buffer(std::move(scratch));
    }

    plan.steps.push_back(std::move(step));
  }

  plan.root = buf_of.at(root.node().get());
  LayoutArena(&plan);
  return plan;
}

void LayoutArena(Plan* plan) {
  // Per-arena-buffer lifetime recomputed from the step list: [birth_step,
  // last_step] inclusive; the root's last_step is pinned past the end so no
  // step recycles its storage. Buffers no live step touches (folded away by
  // SpecializePlan) get offset 0 and contribute nothing to the arena.
  const size_t nbuf = plan->buffers.size();
  std::vector<int64_t> birth(nbuf, -1);
  std::vector<int64_t> last_use(nbuf, -1);

  auto resolve_base = [&](int32_t idx) {
    while (plan->buffers[idx].loc == BufLoc::kAlias) {
      idx = plan->buffers[idx].alias_of;
    }
    return idx;
  };

  auto touch = [&](int32_t idx, int64_t step_index, bool is_birth) {
    const int32_t base = resolve_base(idx);
    if (plan->buffers[base].loc != BufLoc::kArena) return;
    if (is_birth && birth[base] < 0) birth[base] = step_index;
    last_use[base] = std::max(last_use[base], step_index);
  };

  for (size_t s = 0; s < plan->steps.size(); ++s) {
    const Step& step = plan->steps[s];
    const int64_t si = static_cast<int64_t>(s);
    touch(step.out, si, /*is_birth=*/true);
    if (step.scratch >= 0) touch(step.scratch, si, /*is_birth=*/true);
    for (const int32_t in_idx : step.in) touch(in_idx, si, false);
  }
  if (plan->root >= 0) {
    const int32_t base = resolve_base(plan->root);
    if (plan->buffers[base].loc == BufLoc::kArena) {
      last_use[base] = static_cast<int64_t>(plan->steps.size());
    }
  }

  // Greedy first-fit layout over exact lifetimes: place buffers in index
  // (≈ birth) order at the lowest 64-byte-aligned offset whose previous
  // occupants' lifetimes are all disjoint from this one.
  struct Placed {
    int64_t offset;
    int64_t end;  ///< offset + aligned size.
    int64_t birth;
    int64_t death;
  };
  std::vector<Placed> placed;
  plan->arena_elems = 0;
  for (size_t i = 0; i < nbuf; ++i) {
    PlanBuffer& buffer = plan->buffers[i];
    if (buffer.loc != BufLoc::kArena) continue;
    if (birth[i] < 0) {
      buffer.arena_offset = 0;  // Dead: never read or written.
      continue;
    }
    const int64_t size = AlignUp(std::max<int64_t>(buffer.elems, 1));
    const int64_t b = birth[i];
    const int64_t d = last_use[i];
    int64_t offset = 0;
    for (bool moved = true; moved;) {
      moved = false;
      for (const Placed& p : placed) {
        const bool overlaps_life = b <= p.death && p.birth <= d;
        const bool overlaps_space = offset < p.end && p.offset < offset + size;
        if (overlaps_life && overlaps_space) {
          offset = p.end;  // Skip past this occupant and rescan.
          moved = true;
        }
      }
    }
    buffer.arena_offset = offset;
    placed.push_back({offset, offset + size, b, d});
    plan->arena_elems = std::max(plan->arena_elems, offset + size);
  }
}

}  // namespace musenet::infer
