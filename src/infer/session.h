#ifndef MUSENET_INFER_SESSION_H_
#define MUSENET_INFER_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "data/dataset.h"
#include "eval/forecaster.h"
#include "infer/engine.h"
#include "tensor/tensor.h"

namespace musenet::infer {

/// Thrown into a request's future when its deadline passed before the
/// dispatcher could complete it (counter `infer.requests_timed_out`).
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Batching policy of an InferenceSession.
struct SessionOptions {
  /// Largest coalesced batch. Requests beyond this wait for the next batch.
  int max_batch = 8;
  /// How long the dispatcher holds an under-full batch open for stragglers
  /// before running it. 0 runs every request immediately (no coalescing).
  double max_wait_ms = 2.0;
  /// Engine configuration (plan-time specialization, weight precision,
  /// accuracy gate) — forwarded to the session's Engine.
  EngineOptions engine;
};

/// Batched serving harness on top of the inference engine.
///
/// Submit enqueues one single-grid request and returns a future; a dispatch
/// thread coalesces queued requests into batches (up to max_batch, waiting
/// at most max_wait_ms for the batch to fill), runs the engine once per
/// batch, and slices the prediction back out per request. Coalescing turns
/// B single-sample runs into one batch-B run, which the engine's plan cache
/// compiles once per distinct size.
///
/// Observability: counters `infer.requests` / `infer.batches`, histograms
/// `infer.batch_size` and `infer.latency_ms` (enqueue-to-completion), and an
/// `infer.batch` span per dispatched batch.
class InferenceSession {
 public:
  explicit InferenceSession(eval::Forecaster& model,
                            SessionOptions options = {});
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Enqueues a single-sample request (batch_size() == 1). The future
  /// resolves to the scaled [1, 2, H, W] prediction. `deadline_ms` > 0 bounds
  /// enqueue-to-completion time: a request whose deadline passes before the
  /// dispatcher completes it gets DeadlineExceededError instead of a
  /// prediction (an expired request never occupies a batch slot). 0 = no
  /// deadline.
  std::future<tensor::Tensor> Submit(data::Batch request,
                                     double deadline_ms = 0.0);

  /// Drains the queue, stops the dispatch thread, and rejects later
  /// Submits. Idempotent; the destructor calls it.
  void Shutdown();

  Engine& engine() { return engine_; }

 private:
  struct Pending {
    data::Batch batch;
    std::promise<tensor::Tensor> promise;
    int64_t request_id = 0;   ///< Session-unique trace-correlation id.
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  ///< 0 = no deadline.
  };

  void DispatchLoop();

  Engine engine_;
  SessionOptions options_;
  /// Mints Pending::request_id, threading each request into its batch's
  /// infer.batch span, the engine replay spans underneath, and the
  /// infer.latency_ms exemplar.
  std::atomic<int64_t> next_request_id_{1};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::thread dispatcher_;
};

}  // namespace musenet::infer

#endif  // MUSENET_INFER_SESSION_H_
