#ifndef MUSENET_INFER_PRECISION_H_
#define MUSENET_INFER_PRECISION_H_

#include <cstdint>
#include <cstring>

namespace musenet::infer {

// bf16 <-> f32 conversion for reduced-precision weight storage. bf16 is the
// top 16 bits of an IEEE-754 float; encoding rounds to nearest even, so a
// round trip is the standard bf16 quantization (max relative error 2^-8).

inline uint16_t Bf16FromF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits += 0x7FFFu + ((bits >> 16) & 1u);  // Round to nearest even.
  return static_cast<uint16_t>(bits >> 16);
}

inline float F32FromBf16(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

}  // namespace musenet::infer

#endif  // MUSENET_INFER_PRECISION_H_
