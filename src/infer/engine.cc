#include "infer/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "infer/kernels.h"
#include "infer/specialize.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace musenet::infer {

namespace ag = musenet::autograd;
namespace ts = musenet::tensor;

/// fp32 repacking is bit-exact and BN folding perturbs only at fp32 rounding
/// scale; reduced precision perturbs at weight-quantization scale.
float DefaultDeltaGate(PrecisionMode precision) {
  switch (precision) {
    case PrecisionMode::kFp32:
      return 1e-4f;
    case PrecisionMode::kBf16:
      return 5e-2f;
    case PrecisionMode::kInt8:
      return 2.5e-1f;
  }
  return 1e-4f;
}

Engine::Engine(eval::Forecaster& model, EngineOptions options)
    : model_(model),
      options_(options),
      // Cached once: registry lookups build std::string keys, which would
      // break the zero-allocation contract if done per run.
      runs_(&obs::GetCounter("infer.engine.runs")),
      sharded_runs_(&obs::GetCounter("infer.engine.sharded_runs")),
      fallbacks_(&obs::GetCounter("infer.engine.fallbacks")),
      spec_builds_(&obs::GetCounter("infer.engine.spec_builds")),
      spec_rejects_(&obs::GetCounter("infer.engine.spec_rejected")) {}

void Engine::FinalizeInstance(PlanInstance* inst) {
  inst->arena.assign(static_cast<size_t>(inst->plan.arena_elems), 0.0f);
  inst->ptrs.assign(inst->plan.buffers.size(), nullptr);
  // Arena and constant pointers never move; resolve them once. Weights and
  // inputs are refreshed every run, aliases after that.
  for (size_t i = 0; i < inst->plan.buffers.size(); ++i) {
    PlanBuffer& buf = inst->plan.buffers[i];
    if (buf.loc == BufLoc::kArena) {
      inst->ptrs[i] = inst->arena.data() + buf.arena_offset;
    } else if (buf.loc == BufLoc::kConstant) {
      inst->ptrs[i] = buf.constant.data();
    }
  }
}

bool Engine::BuildInstance(const data::Batch& batch, PlanInstance* inst) {
  // One-time planning pass: put the model in eval mode (deterministic
  // BN/dropout behavior — also what Predict uses), trace the forward with
  // the graph intact, and compile it.
  obs::ScopedSpan span("infer.plan.build", "batch", batch.batch_size());
  if (auto* module = dynamic_cast<nn::Module*>(&model_)) {
    module->SetTraining(false);
  }
  // The trace needs node->inputs intact even when the caller (an evaluation
  // loop) holds a skip-mode NoGradGuard.
  ag::NoGradGuard enable_graph(ag::NoGradGuard::Mode::kEnable);
  ag::Variable traced = model_.PlanForward(batch);
  if (!traced.defined()) return false;
  Result<Plan> plan = BuildPlan(traced, batch);
  // !ok: an op outside the planner's kind set; callers fall back.
  if (!plan.ok()) return false;
  inst->plan = std::move(plan).value();
  FinalizeInstance(inst);
  if (!options_.specialize) return true;

  // Plan-time specialization + accuracy gate: rewrite a copy, replay both
  // the base and the specialized plan on the planning batch, and adopt the
  // specialized plan only when its worst element delta clears the gate.
  const int64_t bsz = batch.batch_size();
  obs::ScopedSpan spec_span("infer.plan.specialize", "batch", bsz);
  PlanInstance spec;
  spec.plan = inst->plan;
  SpecializeOptions sopts;
  sopts.precision = options_.precision;
  const Status st = SpecializePlan(&spec.plan, sopts);
  if (!st.ok() || !spec.plan.specialized) return true;  // Nothing to gain.
  FinalizeInstance(&spec);

  const float* inputs[3] = {batch.closeness.data(), batch.period.data(),
                            batch.trend.data()};
  ts::Tensor ref = ts::Tensor::Uninitialized(inst->plan.out_shape);
  RunWithInputs(*inst, inputs, ref.mutable_data());
  ts::Tensor got = ts::Tensor::Uninitialized(spec.plan.out_shape);
  RunWithInputs(spec, inputs, got.mutable_data());
  float worst = 0.0f;
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    worst = std::max(worst, std::abs(got.flat(i) - ref.flat(i)));
  }
  spec_delta_[bsz] = worst;
  const float gate = options_.max_abs_delta >= 0.0f
                         ? options_.max_abs_delta
                         : DefaultDeltaGate(options_.precision);
  if (worst <= gate) {
    *inst = std::move(spec);
    spec_active_[bsz] = true;
    spec_builds_->Add();
  } else {
    spec_active_[bsz] = false;
    spec_rejects_->Add();
  }
  return true;
}

Engine::PlanInstance* Engine::GetOrBuild(const data::Batch& batch) {
  const int64_t bsz = batch.batch_size();
  auto it = plans_.find(bsz);
  if (it != plans_.end()) return &it->second;
  if (fallback_.count(bsz) != 0) return nullptr;

  PlanInstance inst;
  if (!BuildInstance(batch, &inst)) {
    fallback_[bsz] = true;
    return nullptr;
  }
  auto [pos, inserted] = plans_.emplace(bsz, std::move(inst));
  MUSE_CHECK(inserted);
  return &pos->second;
}

std::vector<int64_t> Engine::PickLaneSizes(int64_t batch_size,
                                           int64_t threads) {
  if (threads <= 1 || batch_size <= 1) return {};
  const int64_t lanes = std::min(batch_size, threads);
  // Near-equal remainder split: sizes differ by at most one, so every
  // batch size ≥ 2 fans out (a divisor rule would leave prime sizes — 7
  // samples on 4 threads — running on a single lane).
  const int64_t base = batch_size / lanes;
  const int64_t rem = batch_size % lanes;
  std::vector<int64_t> sizes(static_cast<size_t>(lanes), base);
  for (int64_t i = 0; i < rem; ++i) ++sizes[static_cast<size_t>(i)];
  return sizes;
}

Engine::ShardSet* Engine::GetOrBuildShards(const data::Batch& batch) {
  const int64_t bsz = batch.batch_size();
  auto it = shard_sets_.find(bsz);
  if (it != shard_sets_.end()) return &it->second;
  if (shard_fallback_.count(bsz) != 0) return nullptr;
  std::vector<int64_t> sizes =
      PickLaneSizes(bsz, util::ActivePool().num_threads());
  if (sizes.empty()) return nullptr;
  const int64_t lanes = static_cast<int64_t>(sizes.size());

  // Trace once per distinct shard size (at most two — base and base+1);
  // same-size lanes share the compiled plan but get a private arena +
  // pointer table, so the lanes can replay concurrently without sharing
  // any mutable state.
  obs::ScopedSpan span("infer.plan.shard_build", "lanes", lanes);
  ShardSet set;
  set.sizes = std::move(sizes);
  set.offsets.resize(set.sizes.size(), 0);
  for (size_t i = 1; i < set.sizes.size(); ++i) {
    set.offsets[i] = set.offsets[i - 1] + set.sizes[i - 1];
  }
  set.lanes.resize(static_cast<size_t>(lanes));
  std::map<int64_t, size_t> first_of_size;
  for (size_t i = 0; i < set.lanes.size(); ++i) {
    const auto seen = first_of_size.find(set.sizes[i]);
    if (seen != first_of_size.end()) {
      set.lanes[i].plan = set.lanes[seen->second].plan;
      FinalizeInstance(&set.lanes[i]);
      continue;
    }
    data::Batch sub;
    const int64_t off = set.offsets[i];
    const int64_t len = set.sizes[i];
    sub.closeness = ts::Slice(batch.closeness, 0, off, len);
    sub.period = ts::Slice(batch.period, 0, off, len);
    sub.trend = ts::Slice(batch.trend, 0, off, len);
    sub.target = ts::Slice(batch.target, 0, off, len);
    const int64_t idx_take = std::min<int64_t>(
        len, static_cast<int64_t>(batch.target_indices.size()));
    sub.target_indices.assign(batch.target_indices.begin(),
                              batch.target_indices.begin() + idx_take);
    if (!BuildInstance(sub, &set.lanes[i])) {
      shard_fallback_[bsz] = true;
      return nullptr;
    }
    first_of_size[set.sizes[i]] = i;
  }
  std::vector<int64_t> dims = set.lanes[0].plan.out_shape.dims();
  dims[0] = bsz;
  set.out_shape = ts::Shape(std::move(dims));

  // Validate the per-sample-purity assumption end-to-end before trusting the
  // sharded path: a graph with any cross-sample op (a batch-axis reduction,
  // train-mode BN, ...) produces different numbers when split, and must run
  // on the full-batch plan instead. When specialization is active the lanes
  // carry specialized numerics, so the reference is the engine's own
  // full-batch plan (same specialization) rather than the fp32 model.
  ts::Tensor got = ts::Tensor::Uninitialized(set.out_shape);
  RunSharded(set, batch, got.mutable_data());
  ts::Tensor ref;
  PlanInstance* full =
      options_.specialize ? GetOrBuild(batch) : nullptr;
  if (full != nullptr) {
    ref = ts::Tensor::Uninitialized(full->plan.out_shape);
    Run(*full, batch, ref.mutable_data());
  } else {
    ref = model_.Predict(batch);
  }
  float worst = 0.0f;
  for (int64_t i = 0; i < ref.num_elements(); ++i) {
    worst = std::max(worst, std::abs(got.flat(i) - ref.flat(i)));
  }
  if (!(worst <= 1e-5f)) {
    shard_fallback_[bsz] = true;
    return nullptr;
  }
  auto [pos, inserted] = shard_sets_.emplace(bsz, std::move(set));
  MUSE_CHECK(inserted);
  return &pos->second;
}

void Engine::Run(PlanInstance& inst, const data::Batch& batch, float* out) {
  const float* inputs[3] = {batch.closeness.data(), batch.period.data(),
                            batch.trend.data()};
  RunWithInputs(inst, inputs, out);
  runs_->Add();
}

void Engine::RunWithInputs(PlanInstance& inst, const float* const inputs[3],
                           float* out) {
  // Hard error if anything inside the engine touches autograd: MakeOp
  // checks this guard and aborts, so a planned run provably builds no
  // graph nodes. The guard is thread-local, so it lives here (inside the
  // shard lane) rather than in the dispatching thread.
  ag::NoGradGuard no_graph(ag::NoGradGuard::Mode::kForbid);
  obs::ScopedSpan span("infer.run", "steps",
                       static_cast<int64_t>(inst.plan.steps.size()));
  const int64_t rid = trace_rid_.load(std::memory_order_relaxed);
  if (rid >= 0) span.SetArg2("rid", rid);

  for (size_t i = 0; i < inst.plan.buffers.size(); ++i) {
    const PlanBuffer& buf = inst.plan.buffers[i];
    switch (buf.loc) {
      case BufLoc::kArena:
      case BufLoc::kConstant:
        break;  // Resolved at build time; storage never moves.
      case BufLoc::kWeight:
        // The kernels never write through input pointers; const_cast only
        // reuses the shared float* buffer table.
        inst.ptrs[i] = const_cast<float*>(buf.weight->value.data());
        break;
      case BufLoc::kInput:
        inst.ptrs[i] = const_cast<float*>(inputs[buf.input_index]);
        break;
      case BufLoc::kAlias:
        inst.ptrs[i] = inst.ptrs[buf.alias_of];  // alias_of < i always.
        break;
    }
  }
  for (const Step& step : inst.plan.steps) {
    // Near-zero-cost when tracing is off (one relaxed atomic load); with
    // --trace-out every plan stage shows up as its own span.
    obs::ScopedSpan step_span(step.op_name);
    RunStep(step, inst.ptrs.data(), inst.plan);
  }
  const PlanBuffer& root = inst.plan.buffers[inst.plan.root];
  std::memcpy(out, inst.ptrs[inst.plan.root],
              sizeof(float) * static_cast<size_t>(root.elems));
}

void Engine::RunSharded(ShardSet& set, const data::Batch& batch, float* out) {
  const int64_t lanes = static_cast<int64_t>(set.lanes.size());
  obs::ScopedSpan span("infer.run.sharded", "lanes", lanes);
  const int64_t rid = trace_rid_.load(std::memory_order_relaxed);
  if (rid >= 0) span.SetArg2("rid", rid);
  const int64_t n = batch.batch_size();
  // Axis-0 slices of the contiguous [B, C, H, W] inputs are contiguous, so
  // each lane's inputs are plain base-pointer offsets — no gather needed.
  const int64_t per[3] = {batch.closeness.num_elements() / n,
                          batch.period.num_elements() / n,
                          batch.trend.num_elements() / n};
  const float* base[3] = {batch.closeness.data(), batch.period.data(),
                          batch.trend.data()};
  const int64_t out_per_sample =
      set.lanes[0].plan.buffers[set.lanes[0].plan.root].elems / set.sizes[0];
  // One pool dispatch for the whole inference. Kernels inside a lane see a
  // nested parallel region and run inline, so per-op dispatch overhead —
  // which dominates at serving tensor sizes — is paid exactly once.
  util::ActivePool().ParallelFor(0, lanes, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t lane = lo; lane < hi; ++lane) {
      const int64_t off = set.offsets[static_cast<size_t>(lane)];
      const float* inputs[3] = {base[0] + off * per[0],
                                base[1] + off * per[1],
                                base[2] + off * per[2]};
      RunWithInputs(set.lanes[static_cast<size_t>(lane)], inputs,
                    out + off * out_per_sample);
    }
  });
  runs_->Add();
  sharded_runs_->Add();
}

tensor::Tensor Engine::Predict(const data::Batch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ShardSet* set = GetOrBuildShards(batch)) {
    ts::Tensor out = ts::Tensor::Uninitialized(set->out_shape);
    RunSharded(*set, batch, out.mutable_data());
    return out;
  }
  PlanInstance* inst = GetOrBuild(batch);
  if (inst == nullptr) {
    fallbacks_->Add();
    return model_.Predict(batch);
  }
  ts::Tensor out = ts::Tensor::Uninitialized(inst->plan.out_shape);
  Run(*inst, batch, out.mutable_data());
  return out;
}

Status Engine::PredictInto(const data::Batch& batch, tensor::Tensor* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = shard_sets_.find(batch.batch_size());
  if (sit != shard_sets_.end()) {
    if (!(out->shape() == sit->second.out_shape)) {
      return Status::InvalidArgument("PredictInto: output shape mismatch");
    }
    RunSharded(sit->second, batch, out->mutable_data());
    return Status::OK();
  }
  auto it = plans_.find(batch.batch_size());
  if (it == plans_.end()) {
    return Status::FailedPrecondition(
        "PredictInto requires a warm plan: call Predict once first");
  }
  PlanInstance& inst = it->second;
  if (!(out->shape() == inst.plan.out_shape)) {
    return Status::InvalidArgument("PredictInto: output shape mismatch");
  }
  Run(inst, batch, out->mutable_data());
  return Status::OK();
}

void Engine::InvalidatePlans() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  shard_sets_.clear();
  fallback_.clear();
  shard_fallback_.clear();
  spec_active_.clear();
  spec_delta_.clear();
}

const Plan* Engine::plan_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(batch_size);
  return it == plans_.end() ? nullptr : &it->second.plan;
}

int64_t Engine::shard_lanes_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shard_sets_.find(batch_size);
  return it == shard_sets_.end()
             ? 0
             : static_cast<int64_t>(it->second.lanes.size());
}

std::vector<int64_t> Engine::shard_sizes_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shard_sets_.find(batch_size);
  return it == shard_sets_.end() ? std::vector<int64_t>{} : it->second.sizes;
}

bool Engine::fallback_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_.count(batch_size) != 0;
}

bool Engine::spec_active_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spec_active_.find(batch_size);
  return it != spec_active_.end() && it->second;
}

float Engine::spec_delta_for(int64_t batch_size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spec_delta_.find(batch_size);
  return it == spec_delta_.end() ? -1.0f : it->second;
}

}  // namespace musenet::infer
